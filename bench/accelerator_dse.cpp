// Accelerator design-space exploration on the cycle-approximate datapath
// model (src/sim): per-stage cycle breakdown for each §3 configuration, the
// bottleneck shift the quantizations cause, and a resource sweep showing
// where adding hardware stops paying — the analysis a Vivado implementation
// like the paper's would run before synthesis.
#include <iostream>

#include "bench_common.hpp"
#include "sim/accelerator.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header(
      "Accelerator design-space exploration (cycle model, Kintex-7-class)",
      "RegHD-8, D = 4096, Eq. 1 encoder, 200 MHz; pipelined datapath.");

  struct Config {
    const char* label;
    bool quantized_cluster;
    perf::Precision query;
    perf::Precision model;
  };
  const Config configs[] = {
      {"full precision", false, perf::Precision::kReal, perf::Precision::kReal},
      {"quantized cluster", true, perf::Precision::kReal, perf::Precision::kReal},
      {"binary query - integer model", true, perf::Precision::kBinary,
       perf::Precision::kReal},
      {"binary query - binary model", true, perf::Precision::kBinary,
       perf::Precision::kBinary},
  };

  auto shape_for = [](const Config& c) {
    perf::RegHDKernelShape shape;
    shape.dim = 4096;
    shape.models = 8;
    shape.features = 10;
    shape.rff_encoder = false;
    shape.quantized_cluster = c.quantized_cluster;
    shape.query = c.query;
    shape.model = c.model;
    return shape;
  };

  // --- Stage breakdown per configuration. ---------------------------------
  util::Table stages({"configuration", "encode", "search", "confid.", "predict",
                      "update", "II (cycles)", "bottleneck", "train ksamp/s"});
  for (const Config& c : configs) {
    const sim::AcceleratorModel model(shape_for(c), sim::AccelResources{});
    const sim::StageCycles cyc = model.train_sample_cycles();
    stages.add_row({c.label, std::to_string(cyc.encode), std::to_string(cyc.search),
                    std::to_string(cyc.confidence), std::to_string(cyc.predict),
                    std::to_string(cyc.update), std::to_string(cyc.initiation_interval()),
                    cyc.bottleneck(),
                    util::Table::cell(model.throughput_samples_per_sec(true) / 1e3, 1)});
  }
  std::cout << stages << '\n';

  // --- Resource sweep: how far does widening the MAC array go? ------------
  std::cout << "MAC-array sweep (full-precision configuration — DSP-bound):\n";
  util::Table macs({"MAC units", "train II", "bottleneck", "speedup vs 64"});
  double base_ii = 0.0;
  for (const std::size_t units : {64u, 128u, 256u, 512u, 1024u}) {
    sim::AccelResources res;
    res.mac_units = units;
    const sim::AcceleratorModel model(shape_for(configs[0]), res);
    const auto ii = static_cast<double>(model.train_sample_cycles().initiation_interval());
    if (base_ii == 0.0) {
      base_ii = ii;
    }
    macs.add_row({std::to_string(units),
                  std::to_string(model.train_sample_cycles().initiation_interval()),
                  model.train_sample_cycles().bottleneck(),
                  util::Table::cell_ratio(base_ii / ii)});
  }
  std::cout << macs
            << "\nOnce the search stage leaves the DSP array (quantized cluster), wider\n"
               "MAC arrays stop paying — the §3 quantizations are worth more silicon\n"
               "than more multipliers, which is the paper's hardware argument.\n\n";

  // --- Popcount-tree sweep on the fully-quantized configuration. ----------
  std::cout << "popcount-tree sweep (binary query - binary model):\n";
  util::Table pops({"popcount bits/cycle", "infer II", "bottleneck", "infer ksamp/s"});
  for (const std::size_t bits : {512u, 2048u, 8192u}) {
    sim::AccelResources res;
    res.popcount_bits = bits;
    const sim::AcceleratorModel model(shape_for(configs[3]), res);
    pops.add_row({std::to_string(bits),
                  std::to_string(model.infer_sample_cycles().initiation_interval()),
                  model.infer_sample_cycles().bottleneck(),
                  util::Table::cell(model.throughput_samples_per_sec(false) / 1e3, 1)});
  }
  std::cout << pops;
  return 0;
}
