// Figure 7 reproduction: normalized quality of RegHD-8 across the §3
// quantization configurations, per workload:
//  * full precision (integer query, integer model, cosine clusters)
//  * quantized cluster (Hamming search; §3.1)
//  * binary query – integer model   (§3.2)
//  * integer query – binary model   (§3.2)
//  * binary query – binary model    (§3.2)
//
// Paper claims: quantized cluster ≈ full (−0.3%); binary query – integer
// model close (−1.5%); integer query – binary model worse (−5.2%);
// binary–binary worst. We print quality normalized to full precision
// (1.0 = best, as Fig. 7 plots).
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header("Figure 7 — quality across quantization configurations",
                      "RegHD-8; quality normalized to full precision (higher is better).");

  struct Config {
    const char* label;
    core::ClusterMode cluster;
    core::QueryPrecision query;
    core::ModelPrecision model;
  };
  const std::vector<Config> configs = {
      {"full precision", core::ClusterMode::kFullPrecision, core::QueryPrecision::kReal,
       core::ModelPrecision::kReal},
      {"quantized cluster", core::ClusterMode::kQuantized, core::QueryPrecision::kReal,
       core::ModelPrecision::kReal},
      {"binary query - integer model", core::ClusterMode::kQuantized,
       core::QueryPrecision::kBinary, core::ModelPrecision::kReal},
      {"integer query - binary model", core::ClusterMode::kQuantized,
       core::QueryPrecision::kReal, core::ModelPrecision::kBinary},
      {"binary query - binary model", core::ClusterMode::kQuantized,
       core::QueryPrecision::kBinary, core::ModelPrecision::kBinary},
      // Extension row (QuantHD lineage, not in the paper's figure): a
      // ternary snapshot with a dead zone for small components.
      {"binary query - ternary model", core::ClusterMode::kQuantized,
       core::QueryPrecision::kBinary, core::ModelPrecision::kTernary},
  };

  std::vector<std::string> header = {"configuration"};
  for (const auto& name : data::paper_dataset_names()) {
    header.push_back(name);
  }
  header.push_back("average");
  util::Table table(header);

  std::map<std::string, std::map<std::string, double>> mse;
  for (const auto& dataset_name : data::paper_dataset_names()) {
    const bench::Workload workload = bench::make_workload(dataset_name, 0xF167);
    for (const auto& c : configs) {
      auto cfg = bench::reghd_config(8);
      bench::set_smooth_encoder(cfg, workload.train.num_features());
      cfg.reghd.cluster_mode = c.cluster;
      cfg.reghd.query_precision = c.query;
      cfg.reghd.model_precision = c.model;
      core::RegHDPipeline pipeline(cfg);
      mse[c.label][dataset_name] = bench::fit_and_score(pipeline, workload);
    }
  }

  for (const auto& c : configs) {
    std::vector<std::string> row = {c.label};
    double avg = 0.0;
    for (const auto& dataset_name : data::paper_dataset_names()) {
      const double normalized =
          mse[configs.front().label][dataset_name] / mse[c.label][dataset_name];
      row.push_back(util::Table::cell(normalized, 3));
      avg += normalized;
    }
    avg /= static_cast<double>(data::paper_dataset_names().size());
    row.push_back(util::Table::cell(avg, 3));
    table.add_row(std::move(row));
  }
  std::cout << table
            << "\nPaper reference (average normalized quality): quantized cluster ≈0.997,\n"
               "binary query - integer model ≈0.985, integer query - binary model ≈0.948,\n"
               "binary - binary lowest.\n";
  return 0;
}
