// Table 2 reproduction: quality loss and training/inference speedup and
// energy efficiency as D shrinks from 4k to 0.5k (normalized to D = 4k).
//
// Quality loss and epochs-to-converge are *measured* (averaged over several
// workloads); time and energy come from the op-level cost model on the
// FPGA profile, using the measured epoch counts — reproducing the paper's
// observation that smaller D needs more iterations, which erodes the linear
// training gain while inference gains stay near-linear in D.
#include <iostream>
#include <iterator>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "perf/device_profile.hpp"
#include "perf/kernel_costs.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header(
      "Table 2 — RegHD quality loss and efficiency vs dimensionality",
      "RegHD-8, quantized cluster; loss & epochs measured, time/energy from\n"
      "the FPGA-profile cost model with measured epoch counts (norm. to D=4k).");

  const std::vector<std::size_t> dims = {4096, 3072, 2048, 1024, 512};
  const std::vector<std::string> workload_names = {"boston", "airfoil", "ccpp"};

  struct Point {
    double mse_sum = 0.0;
    double epochs_sum = 0.0;
  };
  std::vector<Point> points(dims.size());

  std::size_t train_samples = 0;
  std::size_t features = 0;
  constexpr std::uint64_t kSeeds[] = {0x7AB1E2, 0x7AB1E3};
  for (const auto& name : workload_names) {
    for (const std::uint64_t seed : kSeeds) {
      const bench::Workload workload = bench::make_workload(name, seed);
      train_samples = std::max(train_samples, workload.train.size());
      features = workload.train.num_features();
      for (std::size_t di = 0; di < dims.size(); ++di) {
        auto cfg = bench::reghd_config(8, dims[di], seed);
        cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
        core::RegHDPipeline pipeline(cfg);
        points[di].mse_sum += bench::fit_and_score(pipeline, workload);
        points[di].epochs_sum += static_cast<double>(pipeline.report().epochs_run);
      }
    }
  }

  // Normalize quality loss per dimension against D = 4k.
  const double n_workloads = static_cast<double>(workload_names.size() * std::size(kSeeds));
  const double base_mse = points[0].mse_sum;

  const perf::DeviceProfile& fpga = perf::fpga_kintex7();
  auto shape_for = [&](std::size_t dim) {
    perf::RegHDKernelShape shape;
    shape.dim = dim;
    shape.models = 8;
    shape.features = features;
    shape.quantized_cluster = true;
    shape.rff_encoder = false;  // paper's Eq. 1 encoder in hardware
    shape.query = perf::Precision::kBinary;
    return shape;
  };

  const double base_epochs = points[0].epochs_sum / n_workloads;
  const auto base_train =
      perf::reghd_train_total(shape_for(4096), train_samples,
                              static_cast<std::size_t>(base_epochs + 0.5));
  const auto base_infer = perf::reghd_infer_sample(shape_for(4096));

  util::Table table({"D", "quality loss", "epochs", "train speedup", "train energy eff.",
                     "infer speedup", "infer energy eff."});
  for (std::size_t di = 0; di < dims.size(); ++di) {
    const double loss = 100.0 * (points[di].mse_sum - base_mse) / base_mse;
    const double epochs = points[di].epochs_sum / n_workloads;
    const auto train = perf::reghd_train_total(shape_for(dims[di]), train_samples,
                                               static_cast<std::size_t>(epochs + 0.5));
    const auto infer = perf::reghd_infer_sample(shape_for(dims[di]));
    table.add_row({std::to_string(dims[di]),
                   util::Table::cell_percent(loss),
                   util::Table::cell(epochs, 1),
                   util::Table::cell_ratio(fpga.time_ms(base_train) / fpga.time_ms(train)),
                   util::Table::cell_ratio(fpga.energy_uj(base_train) / fpga.energy_uj(train)),
                   util::Table::cell_ratio(fpga.time_ms(base_infer) / fpga.time_ms(infer)),
                   util::Table::cell_ratio(fpga.energy_uj(base_infer) /
                                           fpga.energy_uj(infer))});
  }
  std::cout << table
            << "\nPaper reference (D=1k): 0.9% loss, 3.09x/3.53x train, 3.67x/3.81x infer.\n";
  return 0;
}
