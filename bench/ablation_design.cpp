// Ablations of the design decisions this reproduction makes where the paper
// is silent or ambiguous (DESIGN.md §6):
//  1. Cluster initialization: farthest-point sampling (ours) vs random
//     binary hypervectors (the paper's literal §2.4 rule).
//  2. Model-update rule for Eq. 7: confidence-weighted (ours) vs
//     winner-only.
//  3. Softmax temperature for the confidence block.
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header("Ablations — reproduction design decisions",
                      "RegHD-8 on the 8-regime multimodal task (the regime\n"
                      "structure is what the clustering machinery must find).");

  const bench::Workload workload = bench::make_workload(
      data::make_multimodal_task(2000, 4, 8, 0xAB1A, 0.05), 0xAB1A);

  auto run = [&](core::PipelineConfig cfg, const std::string& label,
                 util::Table& table) {
    core::RegHDPipeline pipeline(std::move(cfg));
    const double mse = bench::fit_and_score(pipeline, workload);
    std::set<std::size_t> clusters_used;
    for (std::size_t i = 0; i < workload.test.size(); ++i) {
      const auto detail = pipeline.predict_detail(workload.test.row(i));
      clusters_used.insert(detail.best_cluster);
    }
    table.add_row({label, util::Table::cell(mse),
                   std::to_string(clusters_used.size()),
                   std::to_string(pipeline.report().epochs_run)});
  };

  {
    util::Table table({"cluster init", "test MSE", "clusters used", "epochs"});
    auto cfg = bench::reghd_config(8);
    cfg.reghd.cluster_init = core::ClusterInit::kFarthestPoint;
    run(cfg, "farthest-point (ours)", table);
    cfg.reghd.cluster_init = core::ClusterInit::kRandom;
    run(cfg, "random binary (paper literal)", table);
    std::cout << table << '\n';
  }

  {
    util::Table table({"Eq. 7 update rule", "test MSE", "clusters used", "epochs"});
    auto cfg = bench::reghd_config(8);
    cfg.reghd.update_rule = core::UpdateRule::kConfidenceWeighted;
    run(cfg, "confidence-weighted (ours)", table);
    cfg.reghd.update_rule = core::UpdateRule::kWinnerOnly;
    run(cfg, "winner-only", table);
    std::cout << table << '\n';
  }

  {
    util::Table table({"softmax temperature", "test MSE", "clusters used", "epochs"});
    for (const double temp : {1.0, 0.2, 0.05, 0.01}) {
      auto cfg = bench::reghd_config(8);
      cfg.reghd.softmax_temperature = temp;
      run(cfg, util::Table::cell(temp, 2), table);
    }
    std::cout << table << '\n';
  }
  return 0;
}
