// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index) and prints
// it with util::Table / util::SeriesChart so bench_output.txt reads like the
// paper. EXPERIMENTS.md records paper-vs-measured for each.
//
// Protocol shared by all benches: synthetic dataset (DESIGN.md §3
// substitution) → deterministic 75/25 train/test split → fit → test MSE.
// Training sets are optionally capped (large CCPP/wine runs) — the cap is
// printed whenever it binds, never silent.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "model/regressor.hpp"

namespace reghd::bench {

/// Default hyperspace dimensionality for the quality benches. The paper's
/// Table 2 shows ≤0.3% quality loss at D = 2k vs 4k; 2k halves bench time.
inline constexpr std::size_t kQualityDim = 2048;

/// Upper bound on training samples per dataset in the quality benches.
inline constexpr std::size_t kMaxTrainSamples = 3000;

/// One prepared benchmark workload.
struct Workload {
  std::string name;
  data::Dataset train;
  data::Dataset test;
  std::size_t capped_from = 0;  ///< Original train size if the cap bound, else 0.
};

/// Builds the named paper workload: synthesize, split 75/25, cap training.
[[nodiscard]] Workload make_workload(const std::string& dataset_name, std::uint64_t seed);

/// Builds a workload from an arbitrary dataset (toy tasks).
[[nodiscard]] Workload make_workload(data::Dataset dataset, std::uint64_t seed,
                                     std::size_t max_train = kMaxTrainSamples);

/// Constructs a RegHD pipeline with the bench-standard settings; callers
/// override fields of the returned config before constructing when needed.
[[nodiscard]] core::PipelineConfig reghd_config(std::size_t models,
                                                std::size_t dim = kQualityDim,
                                                std::uint64_t seed = 0xBE7C4);

/// Fits the learner on the workload's training split and returns test MSE.
[[nodiscard]] double fit_and_score(model::Regressor& learner, const Workload& workload);

/// Applies the bench-standard encoder bandwidth: `factor`/√n, smoother than
/// the library's 1/√n auto default. The paper's Eq. 1 encoder is a
/// low-capacity map, and its Table 1 k-trend (more models → better quality)
/// requires per-model capacity to be the binding constraint; a smoother
/// kernel reproduces that regime while keeping RFF's quality. Chosen by grid
/// search over {0.3, 0.5, 1.0}×auto (see bench/ablation_design).
void set_smooth_encoder(core::PipelineConfig& cfg, std::size_t features,
                        double factor = 0.3);

/// Prints the standard bench header (binary name, what it reproduces).
void print_header(const std::string& experiment, const std::string& description);

/// Minimal ordered JSON emitter for machine-readable bench artifacts
/// (BENCH_*.json). Supports the value shapes the benches need — numbers,
/// strings, booleans, and nested objects — preserving insertion order so the
/// files diff cleanly between runs.
class JsonValue {
 public:
  static JsonValue number(double v);
  static JsonValue integer(std::int64_t v);
  static JsonValue string(std::string v);
  static JsonValue boolean(bool v);
  static JsonValue object();

  /// Object member access; creates the key on first use (object kind only).
  JsonValue& operator[](const std::string& key);

  /// Serializes with 2-space indentation.
  [[nodiscard]] std::string str() const;

 private:
  enum class Kind { kNumber, kInteger, kString, kBool, kObject };
  void write(std::string& out, int indent) const;

  Kind kind_ = Kind::kObject;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool bool_ = false;
  std::string str_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Writes `value` to `path` (with trailing newline); prints the destination
/// to stdout. Returns false and prints to stderr when the file cannot be
/// opened.
bool write_json_file(const std::string& path, const JsonValue& value);

// ---------------------------------------------------------------------------
// Serving-load harness, shared by bench/serving and tools/load_generator.
// ---------------------------------------------------------------------------

/// Zipf(s) sampler over {0, …, n−1}: P(k) ∝ 1/(k+1)^s. s = 0 is uniform;
/// s ≈ 1 is the classic web/tenant skew where a few hot keys dominate.
/// Deterministic for a fixed (n, s, seed). Inverse-CDF lookup on a
/// precomputed table — O(log n) per draw, no allocation after construction.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s, std::uint64_t seed);
  [[nodiscard]] std::size_t next();
  [[nodiscard]] std::size_t domain() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< cumulative P(0..k), cdf_.back() == 1.
  std::mt19937_64 rng_;
};

/// Open-loop arrival schedule: request i is due at start + i/rate, anchored
/// to absolute time. The pacer never re-anchors when the system falls
/// behind — a stalled server makes wait_until return immediately and the
/// backlog of due arrivals lands as fast as the driver can submit, exactly
/// the pressure a real open-loop client applies. Measuring each latency
/// from scheduled_ns (not from the submit instant) is what makes the
/// recorded tail coordinated-omission-safe.
class OpenLoopPacer {
 public:
  OpenLoopPacer(double rate_per_sec, std::uint64_t start_ns);

  [[nodiscard]] std::uint64_t scheduled_ns(std::uint64_t index) const noexcept;

  /// Blocks until `scheduled` (coarse sleep, then a short spin for sub-ms
  /// accuracy); returns immediately when already past due.
  static void wait_until(std::uint64_t scheduled);

  [[nodiscard]] static std::uint64_t now_ns() noexcept;

 private:
  double interval_ns_;
  std::uint64_t start_ns_;
};

/// Exact-sample latency recorder: stores every observation (no bucketing
/// error in the tail) and answers nearest-rank percentiles. Feed it
/// completion − *scheduled* time from an OpenLoopPacer schedule and the
/// percentiles are coordinated-omission-safe: queries that waited behind a
/// stall carry their full due-time wait.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t reserve = 1 << 16);

  void record_ns(std::uint64_t ns);
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean_ns() const;
  /// Nearest-rank percentile, p in [0, 100]. 0 with no samples.
  [[nodiscard]] double percentile_ns(double p) const;
  [[nodiscard]] double max_ns() const;

  /// {count, mean_ns, p50_ns, p95_ns, p99_ns, max_ns} — the standard block
  /// the serving artifacts embed per load point.
  [[nodiscard]] JsonValue summary() const;

 private:
  mutable std::vector<std::uint64_t> samples_;
  mutable bool sorted_ = true;
};

}  // namespace reghd::bench
