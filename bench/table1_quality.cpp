// Table 1 reproduction: test MSE of RegHD-{1,2,8,32} against DNN, linear
// regression, decision tree, SVR, and Baseline-HD on the seven evaluation
// workloads (synthetic substitutes — DESIGN.md §3).
//
// Paper claims this table supports:
//  * RegHD quality is comparable to the classical learners;
//  * more models monotonically improve RegHD (RegHD-32 best, ≈21.3% better
//    than RegHD-1 on average);
//  * Baseline-HD (discretized HD classification) is far worse everywhere.
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <vector>

#include "baselines/baseline_hd.hpp"
#include "baselines/decision_tree.hpp"
#include "baselines/grid_search.hpp"
#include "baselines/linear.hpp"
#include "baselines/mlp.hpp"
#include "baselines/svr.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace reghd;

std::unique_ptr<model::Regressor> make_learner(const std::string& kind,
                                               const bench::Workload& workload) {
  if (kind == "DNN") {
    baselines::MlpConfig cfg;
    cfg.hidden = {128, 64};
    return std::make_unique<baselines::Mlp>(cfg);
  }
  if (kind == "LinearRegression") {
    return std::make_unique<baselines::LinearRegression>();
  }
  if (kind == "DecisionTree") {
    // Light per-dataset grid search over depth (paper §4.2 protocol).
    const auto factory = [](std::size_t i) -> std::unique_ptr<model::Regressor> {
      baselines::DecisionTreeConfig cfg;
      cfg.max_depth = 4 + 4 * i;  // 4, 8, 12
      return std::make_unique<baselines::DecisionTree>(cfg);
    };
    const auto result = baselines::grid_search(factory, 3, workload.train, 0.25, 0xD701);
    baselines::DecisionTreeConfig cfg;
    cfg.max_depth = 4 + 4 * result.best_index;
    return std::make_unique<baselines::DecisionTree>(cfg);
  }
  if (kind == "SVR") {
    return std::make_unique<baselines::Svr>();
  }
  if (kind == "Baseline-HD") {
    baselines::BaselineHdConfig cfg;
    cfg.dim = bench::kQualityDim;
    cfg.bins = 32;
    return std::make_unique<baselines::BaselineHd>(cfg);
  }
  // "RegHD-k"
  const std::size_t k = static_cast<std::size_t>(std::stoul(kind.substr(6)));
  auto cfg = bench::reghd_config(k);
  bench::set_smooth_encoder(cfg, workload.train.num_features());
  return std::make_unique<core::RegHDPipeline>(cfg);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1 — quality of regression (test MSE)",
      "Learners × the seven evaluation workloads (synthetic substitutes;\n"
      "absolute MSEs differ from the paper, orderings are the claim).");

  const std::vector<std::string> learners = {
      "DNN",     "LinearRegression", "DecisionTree", "SVR",
      "Baseline-HD", "RegHD-1",      "RegHD-2",      "RegHD-8", "RegHD-32"};

  std::vector<std::string> header = {"model"};
  for (const auto& name : data::paper_dataset_names()) {
    header.push_back(name);
  }
  util::Table table(header);

  // Average over seeds: the small datasets (diabetes: 442 samples) make
  // single-seed MSEs noisy at the ±10% level.
  constexpr std::uint64_t kSeeds[] = {0x7AB1E1, 0x7AB1E2, 0x7AB1E3};
  std::map<std::string, std::map<std::string, double>> mse;
  for (const auto& dataset_name : data::paper_dataset_names()) {
    for (const std::uint64_t seed : kSeeds) {
      const bench::Workload workload = bench::make_workload(dataset_name, seed);
      if (workload.capped_from != 0 && seed == kSeeds[0]) {
        std::cout << "[note] " << dataset_name << ": training capped at "
                  << workload.train.size() << " of " << workload.capped_from
                  << " samples\n";
      }
      for (const auto& learner_name : learners) {
        auto learner = make_learner(learner_name, workload);
        mse[learner_name][dataset_name] +=
            bench::fit_and_score(*learner, workload) / std::size(kSeeds);
      }
    }
  }

  for (const auto& learner_name : learners) {
    std::vector<std::string> row = {learner_name};
    for (const auto& dataset_name : data::paper_dataset_names()) {
      row.push_back(util::Table::cell(mse[learner_name][dataset_name], 2));
    }
    table.add_row(std::move(row));
  }
  std::cout << '\n' << table;

  // The paper's aggregate claim: RegHD-32 improves on RegHD-1 by ≈21.3% on
  // average. Report the measured aggregate.
  double improvement = 0.0;
  for (const auto& dataset_name : data::paper_dataset_names()) {
    improvement += 100.0 *
                   (mse["RegHD-1"][dataset_name] - mse["RegHD-32"][dataset_name]) /
                   mse["RegHD-1"][dataset_name];
  }
  improvement /= static_cast<double>(data::paper_dataset_names().size());
  std::cout << "\nRegHD-32 vs RegHD-1 average quality improvement: "
            << util::Table::cell_percent(improvement) << "  (paper: 21.3%)\n";
  return 0;
}
