// Extension experiment (not in the paper): streaming RegHD under concept
// drift — the "real-time learning for IoT" deployment §1 motivates, driven
// through OnlineRegHD. A drifting teacher changes abruptly twice; the
// prequential error trace shows the spike-and-recover pattern, and the
// fully-quantized embedded configuration tracks the full-precision one.
#include <iostream>

#include "bench_common.hpp"
#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header(
      "Extension — online learning under concept drift",
      "Prequential MSE over a stream whose teacher changes at samples 2000\n"
      "and 4000; windowed error per 500 samples.");

  const data::Dataset stream = data::make_drift_stream(6000, 6, {2000, 4000}, 0xD81F7);

  auto run = [&](core::OnlineConfig cfg, const std::string& label,
                 util::SeriesChart& chart) {
    core::OnlineRegHD learner(cfg, stream.num_features());
    std::vector<std::pair<std::string, double>> points;
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const double p = learner.update(stream.row(i), stream.target(i));
      const double e = p - stream.target(i);
      acc += e * e;
      if (++n == 500) {
        points.emplace_back(std::to_string(i + 1), acc / static_cast<double>(n));
        acc = 0.0;
        n = 0;
      }
    }
    chart.add_series(label, std::move(points));
  };

  util::SeriesChart chart("prequential windowed MSE (drift at 2000 and 4000)",
                          "samples seen", "windowed MSE");
  {
    core::OnlineConfig cfg;
    cfg.reghd.dim = 2048;
    cfg.reghd.models = 4;
    cfg.reghd.seed = 7;
    cfg.encoder.seed = 7;
    run(cfg, "full precision", chart);

    cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
    cfg.reghd.query_precision = core::QueryPrecision::kBinary;
    cfg.requantize_every = 128;
    run(cfg, "quantized (binary cluster + query)", chart);
  }
  std::cout << chart
            << "\nBoth configurations spike at each drift point and recover within a few\n"
               "hundred samples — the normalized-LMS update is inherently tracking, and\n"
               "quantization does not impair adaptation.\n";
  return 0;
}
