// Extension experiment (not in the paper): post-training model
// sparsification, the SparseHD-style orthogonal optimization the paper
// cites in §5 ("we can use these frameworks to sparsify the regression
// model"). Magnitude-prunes the trained RegHD-8 models and reports quality
// vs sparsity, plus the inference cost reduction a sparsity-aware kernel
// would see on the FPGA profile (non-zero components only).
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "perf/device_profile.hpp"
#include "perf/kernel_costs.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header(
      "Extension — model sparsification (SparseHD-style, paper §5)",
      "RegHD-8, magnitude pruning after training; quality measured, inference\n"
      "cost modeled with the prediction dots scaled to non-zero components.");

  const bench::Workload workload = bench::make_workload("airfoil", 0x59A125);
  auto cfg = bench::reghd_config(8);
  bench::set_smooth_encoder(cfg, workload.train.num_features());
  core::RegHDPipeline pipeline(cfg);
  const double dense_mse = bench::fit_and_score(pipeline, workload);

  const perf::DeviceProfile& fpga = perf::fpga_kintex7();
  perf::RegHDKernelShape shape;
  shape.dim = bench::kQualityDim;
  shape.models = 8;
  shape.features = workload.train.num_features();
  shape.rff_encoder = false;
  const double dense_infer = fpga.time_ms(perf::reghd_infer_sample(shape));

  util::Table table({"sparsity", "test MSE", "quality loss", "modeled infer speedup"});
  table.add_row({"0% (dense)", util::Table::cell(dense_mse, 2), "0.0%", "1.00x"});

  // Prune cumulatively: each step re-prunes the trained accumulators to the
  // target fraction.
  for (const double sparsity : {0.25, 0.5, 0.75, 0.9}) {
    core::RegHDPipeline fresh(cfg);  // refit fresh, then prune once to `sparsity`
    fresh.fit(workload.train);
    fresh.mutable_regressor().sparsify(sparsity);
    const double mse = fresh.evaluate_mse(workload.test);

    // Sparse dots touch only (1−s)·D model components.
    perf::RegHDKernelShape sparse_shape = shape;
    sparse_shape.dim = static_cast<std::size_t>((1.0 - sparsity) * shape.dim);
    // The encoder and similarity search stay dense; swap only the k dots.
    perf::OpCount infer = perf::reghd_infer_sample(shape);
    const perf::OpCount dense_dots = perf::cost_dot_real_real(shape.dim) * 8;
    const perf::OpCount sparse_dots = perf::cost_dot_real_real(sparse_shape.dim) * 8;
    // infer − dense_dots + sparse_dots, done in time domain (OpCount has no
    // subtraction by design).
    const double sparse_infer = fpga.time_ms(infer) - fpga.time_ms(dense_dots) +
                                fpga.time_ms(sparse_dots);

    table.add_row({util::Table::cell_percent(100.0 * sparsity, 0),
                   util::Table::cell(mse, 2),
                   util::Table::cell_percent(100.0 * (mse - dense_mse) / dense_mse),
                   util::Table::cell_ratio(dense_infer / sparse_infer)});
  }
  std::cout << table
            << "\nShape expectation (SparseHD): ~50% of components prune at near-zero\n"
               "quality cost; extreme sparsity trades quality for proportional savings.\n";
  return 0;
}
