// Wall-clock microbenchmarks (google-benchmark) of the computational
// kernels, complementing the analytic cost model with measured host-CPU
// numbers: similarity search (cosine vs Hamming), the §3.2 prediction dots,
// encoding, and end-to-end train/predict steps.
//
// Three modes:
//  * default             — the google-benchmark suite (BM_* below).
//  * --json[=PATH]       — hand-rolled kernel timing that emits
//                          BENCH_kernels.json: ns/op and GB/s for every
//                          kernel in every runtime-available backend
//                          (scalar, avx2, avx512, neon), the seed's pre-SIMD
//                          reference loops for speedup accounting, fused
//                          single-query predict_one latency (p50/p99 vs the
//                          materializing path), end-to-end batch
//                          encode+predict throughput, and train-epoch
//                          throughput (sequential vs mini-batch).
//  * --train-json[=PATH] — emits BENCH_train.json: training samples/sec of
//                          the sequential online trainer vs deterministic
//                          mini-batches at B ∈ {1, 32, 256} × threads ∈
//                          {1, 4} on the standard 256×10-feature, k = 8,
//                          D = 4096 workload.
//  * --telemetry-json[=PATH] — runs the standard workload with the obs/
//                          telemetry layer enabled and dumps the merged
//                          snapshot as JSON (BENCH_telemetry.json). The
//                          --json report also carries a telemetry_overhead
//                          node: the e2e encode+predict loop timed with
//                          telemetry disabled vs enabled.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <span>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "hdc/encoding.hpp"
#include "hdc/kernel_backend.hpp"
#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "util/fast_trig.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace reghd;

hdc::EncodedSample make_sample(std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  hdc::EncodedSample s;
  s.real = hdc::random_gaussian(dim, rng);
  s.bipolar = s.real.sign();
  s.binary = s.bipolar.pack();
  double n2 = 0.0;
  for (const double v : s.real.values()) {
    n2 += v * v;
  }
  s.real_norm2 = n2;
  s.real_norm = std::sqrt(n2);
  return s;
}

void BM_CosineSimilarity(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const hdc::RealHV a = hdc::random_gaussian(dim, rng);
  const hdc::RealHV b = hdc::random_gaussian(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::cosine(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_CosineSimilarity)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_HammingSimilarity(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const hdc::BinaryHV a = hdc::random_binary(dim, rng);
  const hdc::BinaryHV b = hdc::random_binary(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::hamming_similarity(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HammingSimilarity)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_DotRealReal(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  const hdc::RealHV m = hdc::random_gaussian(dim, rng);
  const hdc::EncodedSample q = make_sample(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::dot(m, q.real));
  }
}
BENCHMARK(BM_DotRealReal)->Arg(4096);

void BM_DotRealBinary(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  const hdc::RealHV m = hdc::random_gaussian(dim, rng);
  const hdc::EncodedSample q = make_sample(dim, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::dot(m, q.binary));
  }
}
BENCHMARK(BM_DotRealBinary)->Arg(4096);

void BM_DotBinaryBinary(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const hdc::EncodedSample a = make_sample(dim, 7);
  const hdc::EncodedSample b = make_sample(dim, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::bipolar_dot(a.binary, b.binary));
  }
}
BENCHMARK(BM_DotBinaryBinary)->Arg(4096);

void BM_EncodeRff(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::EncoderConfig cfg;
  cfg.kind = hdc::EncoderKind::kRffProjection;
  cfg.input_dim = 10;
  cfg.dim = dim;
  const auto encoder = hdc::make_encoder(cfg);
  util::Rng rng(9);
  std::vector<double> features(10);
  for (double& f : features) {
    f = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->encode_real(features));
  }
}
BENCHMARK(BM_EncodeRff)->Arg(1024)->Arg(4096);

void BM_EncodeNonlinearEq1(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::EncoderConfig cfg;
  cfg.kind = hdc::EncoderKind::kNonlinearFeature;
  cfg.input_dim = 10;
  cfg.dim = dim;
  const auto encoder = hdc::make_encoder(cfg);
  util::Rng rng(10);
  std::vector<double> features(10);
  for (double& f : features) {
    f = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->encode_real(features));
  }
}
BENCHMARK(BM_EncodeNonlinearEq1)->Arg(1024)->Arg(4096);

void BM_MultiModelTrainStep(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::RegHDConfig cfg;
  cfg.dim = 4096;
  cfg.models = k;
  core::MultiModelRegressor model(cfg);
  const hdc::EncodedSample s = make_sample(4096, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_step(s, 1.0));
  }
}
BENCHMARK(BM_MultiModelTrainStep)->Arg(1)->Arg(8)->Arg(32);

void BM_MultiModelPredict(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::RegHDConfig cfg;
  cfg.dim = 4096;
  cfg.models = k;
  core::MultiModelRegressor model(cfg);
  const hdc::EncodedSample s = make_sample(4096, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(s));
  }
}
BENCHMARK(BM_MultiModelPredict)->Arg(1)->Arg(8)->Arg(32);

void BM_MultiModelPredictQuantized(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::RegHDConfig cfg;
  cfg.dim = 4096;
  cfg.models = k;
  cfg.cluster_mode = core::ClusterMode::kQuantized;
  cfg.query_precision = core::QueryPrecision::kBinary;
  cfg.model_precision = core::ModelPrecision::kBinary;
  core::MultiModelRegressor model(cfg);
  const hdc::EncodedSample s = make_sample(4096, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(s));
  }
}
BENCHMARK(BM_MultiModelPredictQuantized)->Arg(8)->Arg(32);

// ---------------------------------------------------------------------------
// --json mode: per-kernel per-backend timing report
// ---------------------------------------------------------------------------

/// Repeats fn until ~60 ms have elapsed (after one warmup call) and returns
/// the mean ns per call.
template <typename F>
double time_ns(F&& fn) {
  fn();  // warmup: page in buffers, resolve the backend
  util::Stopwatch sw;
  std::size_t iters = 0;
  double elapsed_ms = 0.0;
  sw.restart();
  do {
    for (int i = 0; i < 8; ++i) {
      fn();
    }
    iters += 8;
    elapsed_ms = sw.elapsed_milliseconds();
  } while (elapsed_ms < 60.0);
  return elapsed_ms * 1e6 / static_cast<double>(iters);
}

double gb_per_s(double bytes_per_op, double ns_per_op) {
  return bytes_per_op / ns_per_op;  // B/ns == GB/s
}

// The seed's pre-SIMD loops, kept verbatim for speedup accounting.
double seed_dot_real_binary(const hdc::RealHV& a, const hdc::BinaryHV& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    acc += b.bit(i) ? a[i] : -a[i];
  }
  return acc;
}

void seed_add_scaled_binary(hdc::RealHV& a, const hdc::BinaryHV& b, double c) {
  for (std::size_t i = 0; i < a.dim(); ++i) {
    a[i] += b.bit(i) ? c : -c;
  }
}

/// The seed RFF map: serial row dot, then cos(z+b)·sin(z) — two libm trig
/// calls per component where the current encoder uses one.
void seed_rff_encode(const std::vector<double>& projection, const std::vector<double>& phase,
                     const std::vector<double>& features, std::vector<double>& out) {
  const std::size_t d = phase.size();
  const std::size_t n = features.size();
  for (std::size_t j = 0; j < d; ++j) {
    const double* row = projection.data() + j * n;
    double z = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      z += row[k] * features[k];
    }
    out[j] = std::cos(z + phase[j]) * std::sin(z);
  }
}

/// Seed-shaped full-precision predict: naive cosine similarities over the k
/// cluster accumulators plus naive model dots (2·k·D multiplies per call).
double seed_predict(const core::MultiModelRegressor& reg, const hdc::EncodedSample& s) {
  const std::size_t k = reg.num_models();
  const std::size_t d = s.real.dim();
  std::vector<double> sims(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto c = reg.cluster(i).accumulator.values();
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      acc += c[j] * s.real[j];
    }
    const double cn = std::sqrt(reg.cluster(i).norm2);
    sims[i] = (cn > 0.0 && s.real_norm > 0.0) ? acc / (cn * s.real_norm) : 0.0;
  }
  util::softmax_inplace(sims, reg.config().softmax_temperature);
  double y = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto m = reg.model(i).accumulator.values();
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      acc += m[j] * s.real[j];
    }
    y += sims[i] * acc / static_cast<double>(d);
  }
  return y;
}

void report_backend(bench::JsonValue& node, const char* field, double bytes_per_op,
                    double ns) {
  node[field]["ns_per_op"] = bench::JsonValue::number(ns);
  node[field]["gb_per_s"] = bench::JsonValue::number(gb_per_s(bytes_per_op, ns));
}

int run_kernel_json(const std::string& path) {
  constexpr std::size_t kDim = 4096;
  constexpr std::size_t kWords = kDim / 64;
  constexpr std::size_t kFeatures = 10;
  constexpr std::size_t kRows = 256;
  constexpr std::size_t kModels = 8;

  util::Rng rng(0xBE7C);
  const hdc::RealHV ra = hdc::random_gaussian(kDim, rng);
  const hdc::RealHV rb = hdc::random_gaussian(kDim, rng);
  const hdc::BipolarHV pa = hdc::random_bipolar(kDim, rng);
  const hdc::BipolarHV pb = hdc::random_bipolar(kDim, rng);
  const hdc::BinaryHV ba = hdc::random_binary(kDim, rng);
  const hdc::BinaryHV bb = hdc::random_binary(kDim, rng);
  const hdc::BinaryHV mask = hdc::random_binary(kDim, rng);
  hdc::RealHV accum = hdc::random_gaussian(kDim, rng);

  // Every backend the dispatch layer would accept on this host, scalar
  // first — the per-kernel nodes below get one entry per table, so a run on
  // AVX-512 silicon (or an aarch64 build) reports those columns too.
  std::vector<const hdc::KernelBackend*> backends;
  const hdc::BackendList tables = hdc::available_backends();
  for (std::size_t t = 0; t < tables.count; ++t) {
    backends.push_back(tables.tables[t]);
  }

  // Buffers for the GEMM batch kernels: a 16-row feature block against the
  // F×D feature-major projection (the RFF arena-encode shape) and a query
  // row against a 2k×D cluster+model bank (the multi-model predict shape).
  constexpr std::size_t kGemmRows = 16;
  std::vector<double> gemm_a(kGemmRows * kFeatures);
  std::vector<double> gemm_b(kFeatures * kDim);
  std::vector<double> gemm_c(kGemmRows * kDim, 0.0);
  std::vector<double> bank(2 * kModels * kDim);
  std::vector<double> bank_scores(2 * kModels);
  std::vector<std::uint64_t> binary_bank(2 * kModels * kWords);
  std::vector<std::int64_t> binary_scores(2 * kModels);
  std::vector<std::uint64_t> ternary_masks(2 * kModels * kWords);
  for (std::size_t r = 0; r < 2 * kModels; ++r) {
    const hdc::BinaryHV row = hdc::random_binary(kDim, rng);
    std::memcpy(binary_bank.data() + r * kWords, row.words().data(), kWords * 8);
    const hdc::BinaryHV mrow = hdc::random_binary(kDim, rng);
    std::memcpy(ternary_masks.data() + r * kWords, mrow.words().data(), kWords * 8);
  }
  std::vector<std::int8_t> sign_bipolar(kDim);
  std::vector<std::uint64_t> sign_bits(kWords);
  for (double& x : gemm_a) {
    x = rng.normal();
  }
  for (double& x : gemm_b) {
    x = rng.normal();
  }
  for (double& x : bank) {
    x = rng.normal();
  }

  bench::JsonValue root = bench::JsonValue::object();
  root["dim"] = bench::JsonValue::integer(static_cast<std::int64_t>(kDim));
  root["active_backend"] = bench::JsonValue::string(hdc::active_backend().name);
  root["cpu_supports_avx2"] = bench::JsonValue::boolean(hdc::cpu_supports_avx2());
  root["cpu_supports_avx512"] = bench::JsonValue::boolean(hdc::cpu_supports_avx512());
  root["cpu_supports_avx512_vpopcntdq"] =
      bench::JsonValue::boolean(hdc::cpu_supports_avx512_vpopcntdq());
  root["host_hardware_concurrency"] = bench::JsonValue::integer(
      static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  const char* env_threads = std::getenv("REGHD_THREADS");
  root["env_reghd_threads"] = bench::JsonValue::string(env_threads ? env_threads : "");

  bench::JsonValue& kernels = root["kernels"];

  const double* pra = ra.values().data();
  const double* prb = rb.values().data();
  const std::int8_t* ppa = pa.values().data();
  const std::int8_t* ppb = pb.values().data();
  const std::uint64_t* pba = ba.words().data();
  const std::uint64_t* pbb = bb.words().data();
  const std::uint64_t* pmask = mask.words().data();

  struct RealKernelCase {
    const char* name;
    double bytes;
    double (*run)(const hdc::KernelBackend&, const double*, const std::int8_t*,
                  const std::uint64_t*, const std::uint64_t*, const double*, std::size_t);
  };

  // Seed references first (they anchor the speedup figures).
  const double seed_drb = time_ns([&] {
    benchmark::DoNotOptimize(seed_dot_real_binary(ra, ba));
  });
  const double seed_asb = time_ns([&] { seed_add_scaled_binary(accum, ba, 0.01); });

  for (const hdc::KernelBackend* kb : backends) {
    const std::string b = kb->name;
    double ns;

    ns = time_ns([&] { benchmark::DoNotOptimize(kb->dot_real_real(pra, prb, kDim)); });
    report_backend(kernels["dot_real_real"], b.c_str(), 2.0 * kDim * 8, ns);

    ns = time_ns([&] { benchmark::DoNotOptimize(kb->dot_real_bipolar(pra, ppa, kDim)); });
    report_backend(kernels["dot_real_bipolar"], b.c_str(), kDim * 9.0, ns);

    ns = time_ns([&] { benchmark::DoNotOptimize(kb->dot_real_binary(pra, pba, kDim)); });
    report_backend(kernels["dot_real_binary"], b.c_str(), kDim * 8.0 + kWords * 8.0, ns);

    ns = time_ns(
        [&] { benchmark::DoNotOptimize(kb->masked_dot(pra, pba, pmask, kDim)); });
    report_backend(kernels["masked_dot"], b.c_str(), kDim * 8.0 + 2.0 * kWords * 8, ns);

    ns = time_ns([&] { benchmark::DoNotOptimize(kb->hamming(pba, pbb, kWords)); });
    report_backend(kernels["hamming"], b.c_str(), 2.0 * kWords * 8, ns);

    ns = time_ns(
        [&] { benchmark::DoNotOptimize(kb->masked_bipolar_dot(pba, pbb, pmask, kWords)); });
    report_backend(kernels["masked_bipolar_dot"], b.c_str(), 3.0 * kWords * 8, ns);

    ns = time_ns([&] { benchmark::DoNotOptimize(kb->bipolar_dot_dense(ppa, ppb, kDim)); });
    report_backend(kernels["bipolar_dot_dense"], b.c_str(), 2.0 * kDim, ns);

    double* pacc = accum.values().data();
    ns = time_ns([&] { kb->add_scaled_real(pacc, prb, 0.01, kDim); });
    report_backend(kernels["add_scaled_real"], b.c_str(), 3.0 * kDim * 8, ns);

    ns = time_ns([&] { kb->add_scaled_bipolar(pacc, ppa, 0.01, kDim); });
    report_backend(kernels["add_scaled_bipolar"], b.c_str(), 2.0 * kDim * 8 + kDim, ns);

    ns = time_ns([&] { kb->add_scaled_binary(pacc, pba, 0.01, kDim); });
    report_backend(kernels["add_scaled_binary"], b.c_str(),
                   2.0 * kDim * 8 + kWords * 8.0, ns);

    ns = time_ns([&] { kb->scale_real(pacc, 0.999999, kDim); });
    report_backend(kernels["scale_real"], b.c_str(), 2.0 * kDim * 8, ns);

    // In-place map keeps z in [−½, ½] after the first call — always the
    // polynomial path, which is what the encoder hits in practice.
    std::vector<double> trig_z(kDim);
    std::vector<double> trig_phase(kDim);
    std::vector<double> trig_sinp(kDim);
    for (std::size_t j = 0; j < kDim; ++j) {
      trig_z[j] = rng.normal();
      trig_phase[j] = rng.phase();
      trig_sinp[j] = util::fast_sin(trig_phase[j]);
    }
    ns = time_ns(
        [&] { kb->rff_trig_map(trig_z.data(), trig_phase.data(), trig_sinp.data(), kDim); });
    report_backend(kernels["rff_trig_map"], b.c_str(), 4.0 * kDim * 8, ns);

    // GEMM encode block: 16 rows projected through the F×D weights in one
    // cache-blocked pass (bytes = all three operands once).
    ns = time_ns([&] {
      kb->gemm_accumulate(gemm_a.data(), kFeatures, gemm_b.data(), kDim, gemm_c.data(),
                          kDim, kGemmRows, kFeatures, kDim);
    });
    report_backend(kernels["gemm_encode"], b.c_str(),
                   (kGemmRows * kFeatures + kFeatures * kDim + 2.0 * kGemmRows * kDim) * 8,
                   ns);

    // Bank scoring: one query row against the 2k cluster+model bank.
    ns = time_ns([&] {
      kb->dot_rows(pra, bank.data(), kDim, 2 * kModels, kDim, bank_scores.data());
    });
    report_backend(kernels["gemm_predict_bank"], b.c_str(),
                   (2.0 * kModels * kDim + kDim) * 8, ns);

    // Carried-state D-block bank scan: the same 2k-row f64 sweep as
    // gemm_predict_bank, fed through dot_rows_block in 1024-column blocks —
    // the fused predict_one dataflow, where each block of the query is
    // scored against every row while still L1-resident.
    {
      constexpr std::size_t kBlock = 1024;
      std::vector<const double*> row_ptrs(2 * kModels);
      std::vector<double> block_state(2 * kModels * hdc::kDotRowsBlockState);
      ns = time_ns([&] {
        std::fill(block_state.begin(), block_state.end(), 0.0);
        for (std::size_t j0 = 0; j0 < kDim; j0 += kBlock) {
          const std::size_t len = std::min(kBlock, kDim - j0);
          for (std::size_t r = 0; r < 2 * kModels; ++r) {
            row_ptrs[r] = bank.data() + r * kDim + j0;
          }
          kb->dot_rows_block(pra + j0, row_ptrs.data(), 2 * kModels, len,
                             j0 + len == kDim, block_state.data(),
                             bank_scores.data());
        }
      });
      report_backend(kernels["dot_rows_block"], b.c_str(),
                     (2.0 * kModels * kDim + kDim) * 8, ns);
    }

    // Binary bank scoring: one packed query against the 2k-row binary bank
    // (XNOR + popcount per row — the quantized predict_batch scan).
    ns = time_ns([&] {
      kb->dot_rows_binary(pba, binary_bank.data(), kWords, 2 * kModels, kDim,
                          binary_scores.data());
    });
    report_backend(kernels["dot_rows_binary"], b.c_str(),
                   (2.0 * kModels + 1.0) * kWords * 8, ns);

    // Packed ternary bank scan: masked XNOR + popcount per row — the
    // 2-bit-plane replacement for the f64 gemm_predict_bank sweep.
    ns = time_ns([&] {
      kb->dot_rows_ternary(pba, binary_bank.data(), ternary_masks.data(), kWords,
                           2 * kModels, kDim, binary_scores.data());
    });
    report_backend(kernels["dot_rows_ternary"], b.c_str(),
                   (4.0 * kModels + 1.0) * kWords * 8, ns);

    // Counter-based RFF row rematerialization: one 16-row tile (the encoder's
    // remat scratch unit) regenerated from the master seed. Pure compute —
    // the bytes figure is the tile it fills.
    constexpr std::size_t kRematTile = 16;
    std::vector<double> remat_tile(kFeatures * kRematTile);
    ns = time_ns([&] {
      kb->rff_rematerialize(0x5EED, 0.316, 128, kRematTile, kFeatures,
                            remat_tile.data(), kRematTile);
    });
    report_backend(kernels["rff_rematerialize"], b.c_str(),
                   kRematTile * kFeatures * 8.0, ns);

    // Fused sign binarization of one encoded row.
    ns = time_ns(
        [&] { kb->sign_encode(pra, sign_bipolar.data(), sign_bits.data(), kDim); });
    report_backend(kernels["sign_encode"], b.c_str(), kDim * 8.0 + kDim + kWords * 8.0,
                   ns);
  }

  kernels["dot_real_binary"]["seed"]["ns_per_op"] = bench::JsonValue::number(seed_drb);
  kernels["add_scaled_binary"]["seed"]["ns_per_op"] = bench::JsonValue::number(seed_asb);

  // RFF encode: seed formula (2 trig calls + serial dot) vs current encoder.
  hdc::EncoderConfig ecfg;
  ecfg.kind = hdc::EncoderKind::kRffProjection;
  ecfg.input_dim = kFeatures;
  ecfg.dim = kDim;
  const auto encoder = hdc::make_encoder(ecfg);
  std::vector<double> projection(kDim * kFeatures);
  std::vector<double> phase(kDim);
  std::vector<double> features(kFeatures);
  for (double& w : projection) {
    w = rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(kFeatures)));
  }
  for (double& p : phase) {
    p = rng.phase();
  }
  for (double& f : features) {
    f = rng.normal();
  }
  std::vector<double> scratch(kDim);
  const double seed_encode_ns =
      time_ns([&] { seed_rff_encode(projection, phase, features, scratch); });
  const double encode_ns =
      time_ns([&] { benchmark::DoNotOptimize(encoder->encode_real(features)); });
  kernels["rff_encode"]["seed"]["ns_per_op"] = bench::JsonValue::number(seed_encode_ns);
  report_backend(kernels["rff_encode"], hdc::active_backend().name,
                 kDim * kFeatures * 8.0, encode_ns);

  // Projection storage: resident F×D matrix vs counter-based rematerialized
  // tiles (bit-identical encodings; the trade is resident bytes for
  // regeneration compute).
  hdc::EncoderConfig remat_cfg = ecfg;
  remat_cfg.projection_storage = hdc::ProjectionStorage::kRematerialized;
  const auto remat_encoder = hdc::make_encoder(remat_cfg);
  const double remat_encode_ns =
      time_ns([&] { benchmark::DoNotOptimize(remat_encoder->encode_real(features)); });
  {
    constexpr std::size_t kRematTile = 16;
    bench::JsonValue& ps = root["projection_storage"];
    ps["resident"]["encode_ns_per_row"] = bench::JsonValue::number(encode_ns);
    ps["resident"]["projection_resident_bytes"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(kDim * kFeatures * 8));
    ps["rematerialized"]["encode_ns_per_row"] = bench::JsonValue::number(remat_encode_ns);
    // O(tile) scratch instead of the O(F·D) matrix; nothing else is resident.
    ps["rematerialized"]["projection_resident_bytes"] = bench::JsonValue::integer(0);
    ps["rematerialized"]["scratch_bytes"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(kFeatures * kRematTile * 8));
  }

  // Fused single-query latency: predict_one (encode→search→predict through
  // one L1-resident D-block loop, no EncodedSample materialization) vs the
  // materializing predict(encode(q)), both driving the rematerialized
  // projection at D = 4096, F = 10, k = 8. Single-query serving is a
  // tail-latency story, so the report carries per-call p50/p99 rather than
  // a mean over a hot loop.
  {
    core::RegHDConfig fcfg;
    fcfg.dim = kDim;
    fcfg.models = kModels;
    core::MultiModelRegressor freg(fcfg);
    util::Rng frng(0xF05E);
    std::vector<double> query(kFeatures);
    for (double& x : query) {
      x = frng.normal();
    }
    for (std::size_t i = 0; i < 64; ++i) {
      std::vector<double> f(kFeatures);
      for (double& x : f) {
        x = frng.normal();
      }
      freg.train_step(remat_encoder->encode(f), std::sin(0.1 * static_cast<double>(i)));
    }
    freg.requantize();

    constexpr std::size_t kLatencySamples = 512;
    const auto sample_ns = [&](auto&& fn) {
      std::vector<double> samples;
      samples.reserve(kLatencySamples);
      fn();  // warmup: thread-local scratch, page-in, backend resolution
      util::Stopwatch sw;
      for (std::size_t i = 0; i < kLatencySamples; ++i) {
        sw.restart();
        fn();
        samples.push_back(sw.elapsed_milliseconds() * 1e6);
      }
      std::sort(samples.begin(), samples.end());
      return samples;
    };
    const std::vector<double> fused_ns = sample_ns(
        [&] { benchmark::DoNotOptimize(freg.predict_one(*remat_encoder, query)); });
    const std::vector<double> mat_ns = sample_ns(
        [&] { benchmark::DoNotOptimize(freg.predict(remat_encoder->encode(query))); });
    const auto p50 = [](const std::vector<double>& s) { return s[s.size() / 2]; };
    const auto p99 = [](const std::vector<double>& s) { return s[(s.size() * 99) / 100]; };

    bench::JsonValue& po = root["predict_one_fused"];
    po["dim"] = bench::JsonValue::integer(static_cast<std::int64_t>(kDim));
    po["features"] = bench::JsonValue::integer(static_cast<std::int64_t>(kFeatures));
    po["models"] = bench::JsonValue::integer(static_cast<std::int64_t>(kModels));
    po["projection_storage"] = bench::JsonValue::string("rematerialized");
    po["samples"] = bench::JsonValue::integer(static_cast<std::int64_t>(kLatencySamples));
    po["fused"]["p50_ns"] = bench::JsonValue::number(p50(fused_ns));
    po["fused"]["p99_ns"] = bench::JsonValue::number(p99(fused_ns));
    po["materializing"]["p50_ns"] = bench::JsonValue::number(p50(mat_ns));
    po["materializing"]["p99_ns"] = bench::JsonValue::number(p99(mat_ns));
    po["speedup_p50"] = bench::JsonValue::number(p50(mat_ns) / p50(fused_ns));
    po["speedup_p99"] = bench::JsonValue::number(p99(mat_ns) / p99(fused_ns));
  }

  // End-to-end: encode kRows rows and predict each with a k-model regressor,
  // batched path vs the seed's per-row loops.
  core::RegHDConfig rcfg;
  rcfg.dim = kDim;
  rcfg.models = kModels;
  core::MultiModelRegressor reg(rcfg);
  data::Dataset rows("bench", kFeatures, [&] {
    std::vector<double> flat(kRows * kFeatures);
    for (double& f : flat) {
      f = rng.normal();
    }
    return flat;
  }(), std::vector<double>(kRows, 0.0));

  // Train briefly so the models are non-trivial (timing is state-independent,
  // but an all-zero model lets the compiler skip surprising amounts of work).
  {
    const core::EncodedDataset warm = core::EncodedDataset::from(*encoder, rows);
    for (std::size_t i = 0; i < warm.size(); ++i) {
      reg.train_step(warm.sample(i), std::sin(static_cast<double>(i)));
    }
    reg.requantize();
  }

  const double e2e_batched_ns = time_ns([&] {
    const core::EncodedDataset enc = core::EncodedDataset::from(*encoder, rows);
    benchmark::DoNotOptimize(reg.predict_batch(enc));
  });
  const double e2e_seed_ns = time_ns([&] {
    double sink = 0.0;
    for (std::size_t i = 0; i < kRows; ++i) {
      const auto row = rows.row(i);
      seed_rff_encode(projection, phase,
                      std::vector<double>(row.begin(), row.end()), scratch);
      hdc::EncodedSample s;
      s.real = hdc::RealHV(scratch);
      s.bipolar = s.real.sign();
      s.binary = s.bipolar.pack();
      double n2 = 0.0;
      for (const double v : scratch) {
        n2 += v * v;
      }
      s.real_norm2 = n2;
      s.real_norm = std::sqrt(n2);
      sink += seed_predict(reg, s);
    }
    benchmark::DoNotOptimize(sink);
  });

  bench::JsonValue& e2e = root["end_to_end_encode_predict"];
  e2e["rows"] = bench::JsonValue::integer(static_cast<std::int64_t>(kRows));
  e2e["features"] = bench::JsonValue::integer(static_cast<std::int64_t>(kFeatures));
  e2e["models"] = bench::JsonValue::integer(static_cast<std::int64_t>(kModels));
  e2e["seed"]["ns_per_row"] = bench::JsonValue::number(e2e_seed_ns / kRows);
  e2e["batched"]["ns_per_row"] = bench::JsonValue::number(e2e_batched_ns / kRows);
  e2e["batched"]["rows_per_s"] = bench::JsonValue::number(1e9 * kRows / e2e_batched_ns);

  // Telemetry overhead on the e2e encode+predict loop, disabled vs enabled
  // back to back. Disabled (the default state) is the cost of the compiled-in
  // instrumentation when off: one well-predicted branch per record point.
  // Enabled adds the clock reads and relaxed shard increments. Min-of-3 runs
  // per state trims allocator and frequency-scaling noise, which on shared
  // machines otherwise dwarfs the effect being measured.
  {
    const auto e2e_loop = [&] {
      const core::EncodedDataset enc = core::EncodedDataset::from(*encoder, rows);
      benchmark::DoNotOptimize(reg.predict_batch(enc));
    };
    const auto best_of3 = [&](const auto& fn) {
      double best = time_ns(fn);
      for (int r = 0; r < 2; ++r) {
        best = std::min(best, time_ns(fn));
      }
      return best;
    };
    const double tel_off_ns = best_of3(e2e_loop);
    obs::set_enabled(true);
    const double tel_on_ns = best_of3(e2e_loop);
    obs::set_enabled(false);
    obs::reset();
    bench::JsonValue& tel = root["telemetry_overhead"];
    tel["disabled"]["ns_per_row"] = bench::JsonValue::number(tel_off_ns / kRows);
    tel["enabled"]["ns_per_row"] = bench::JsonValue::number(tel_on_ns / kRows);
    tel["enabled_overhead_percent"] =
        bench::JsonValue::number(100.0 * (tel_on_ns - tel_off_ns) / tel_off_ns);
  }

  // Train-epoch throughput: one pass over the kRows encoded samples,
  // sequential train_step vs deterministic mini-batches (B = 32, default
  // thread count). --train-json expands this across B × threads.
  const core::EncodedDataset enc_train = core::EncodedDataset::from(*encoder, rows);
  std::vector<std::size_t> train_order(enc_train.size());
  std::iota(train_order.begin(), train_order.end(), 0);
  std::vector<double> train_preds(enc_train.size());
  const double train_seq_ns = time_ns([&] {
    for (std::size_t i = 0; i < enc_train.size(); ++i) {
      benchmark::DoNotOptimize(reg.train_step(enc_train.sample(i), enc_train.target(i)));
    }
  });
  const double train_b32_ns = time_ns([&] {
    for (std::size_t b0 = 0; b0 < train_order.size(); b0 += 32) {
      const std::size_t bn = std::min(train_order.size(), b0 + 32);
      reg.train_batch(enc_train,
                      std::span<const std::size_t>(train_order.data() + b0, bn - b0),
                      std::span<double>(train_preds.data(), bn - b0));
    }
  });
  bench::JsonValue& tr = root["train_epoch"];
  tr["rows"] = bench::JsonValue::integer(static_cast<std::int64_t>(enc_train.size()));
  tr["models"] = bench::JsonValue::integer(static_cast<std::int64_t>(kModels));
  tr["sequential"]["ns_per_epoch"] = bench::JsonValue::number(train_seq_ns);
  tr["sequential"]["samples_per_s"] =
      bench::JsonValue::number(1e9 * static_cast<double>(enc_train.size()) / train_seq_ns);
  tr["batch32"]["ns_per_epoch"] = bench::JsonValue::number(train_b32_ns);
  tr["batch32"]["samples_per_s"] =
      bench::JsonValue::number(1e9 * static_cast<double>(enc_train.size()) / train_b32_ns);

  // Resident-bytes accounting for the packed scan bank: a quantized k-model
  // regressor's PackedTernaryBank vs the f64 rows it replaces.
  {
    core::RegHDConfig qcfg = rcfg;
    qcfg.query_precision = core::QueryPrecision::kBinary;
    qcfg.model_precision = core::ModelPrecision::kTernary;
    const core::MultiModelRegressor qreg(qcfg);
    bench::JsonValue& mem = root["resident_bytes"];
    mem["model_bank_real_per_model"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(kDim * 8));
    mem["model_bank_packed_per_model"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(2 * kWords * 8 + 8));
    mem["packed_bank_total"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(qreg.packed_bank().resident_bytes()));
    mem["packed_bank_rows"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(qreg.packed_bank().rows));
  }

  bench::JsonValue& speedups = root["speedups_vs_seed"];
  const std::string active = hdc::active_backend().name;
  const double active_drb_ns =
      time_ns([&] { benchmark::DoNotOptimize(hdc::dot(ra, ba)); });
  speedups["dot_real_binary"] = bench::JsonValue::number(seed_drb / active_drb_ns);
  speedups["rff_encode"] = bench::JsonValue::number(seed_encode_ns / encode_ns);
  speedups["encode_predict_end_to_end"] =
      bench::JsonValue::number(e2e_seed_ns / e2e_batched_ns);
  speedups["train_epoch_batch32"] = bench::JsonValue::number(train_seq_ns / train_b32_ns);
  {
    // Effective bank-scan speedup: same 2k logical rows scored per call,
    // packed ternary planes vs the f64 bank sweep.
    const hdc::KernelBackend& akb = hdc::active_backend();
    const double bank_real_ns = time_ns([&] {
      akb.dot_rows(pra, bank.data(), kDim, 2 * kModels, kDim, bank_scores.data());
    });
    const double bank_tern_ns = time_ns([&] {
      akb.dot_rows_ternary(pba, binary_bank.data(), ternary_masks.data(), kWords,
                           2 * kModels, kDim, binary_scores.data());
    });
    speedups["ternary_bank_scan_vs_real"] =
        bench::JsonValue::number(bank_real_ns / bank_tern_ns);
  }
  speedups["active_backend"] = bench::JsonValue::string(active);

  return bench::write_json_file(path, root) ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --train-json mode: fit throughput, sequential vs mini-batches (B × threads)
// ---------------------------------------------------------------------------

int run_train_json(const std::string& path) {
  constexpr std::size_t kDim = 4096;
  constexpr std::size_t kFeatures = 10;
  constexpr std::size_t kRows = 256;
  constexpr std::size_t kModels = 8;

  util::Rng rng(0x7E41B);
  hdc::EncoderConfig ecfg;
  ecfg.kind = hdc::EncoderKind::kRffProjection;
  ecfg.input_dim = kFeatures;
  ecfg.dim = kDim;
  const auto encoder = hdc::make_encoder(ecfg);

  std::vector<double> flat(kRows * kFeatures);
  std::vector<double> targets(kRows);
  for (double& f : flat) {
    f = rng.normal();
  }
  for (std::size_t i = 0; i < kRows; ++i) {
    targets[i] = std::sin(0.1 * static_cast<double>(i));
  }
  const data::Dataset rows("train-bench", kFeatures, std::move(flat), std::move(targets));
  const core::EncodedDataset enc = core::EncodedDataset::from(*encoder, rows);

  core::RegHDConfig rcfg;
  rcfg.dim = kDim;
  rcfg.models = kModels;
  core::MultiModelRegressor reg(rcfg);
  // Warm the model so no branch trains on an all-zero state.
  for (std::size_t i = 0; i < enc.size(); ++i) {
    reg.train_step(enc.sample(i), enc.target(i));
  }
  reg.requantize();

  std::vector<std::size_t> order(enc.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> preds(enc.size());

  bench::JsonValue root = bench::JsonValue::object();
  root["active_backend"] = bench::JsonValue::string(hdc::active_backend().name);
  // Thread rows above the host's core count cannot speed anything up (the
  // pool oversubscribes one core); record the ceiling so the T-rows of this
  // file are read against the hardware that produced them.
  root["host_hardware_concurrency"] = bench::JsonValue::integer(
      static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  root["rows"] = bench::JsonValue::integer(static_cast<std::int64_t>(kRows));
  root["features"] = bench::JsonValue::integer(static_cast<std::int64_t>(kFeatures));
  root["models"] = bench::JsonValue::integer(static_cast<std::int64_t>(kModels));
  root["dim"] = bench::JsonValue::integer(static_cast<std::int64_t>(kDim));

  const double seq_ns = time_ns([&] {
    for (std::size_t i = 0; i < enc.size(); ++i) {
      benchmark::DoNotOptimize(reg.train_step(enc.sample(i), enc.target(i)));
    }
  });
  root["sequential"]["ns_per_epoch"] = bench::JsonValue::number(seq_ns);
  root["sequential"]["samples_per_s"] =
      bench::JsonValue::number(1e9 * static_cast<double>(kRows) / seq_ns);

  bench::JsonValue& batched = root["batched"];
  for (const std::size_t bsize : {std::size_t{1}, std::size_t{32}, std::size_t{256}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const double ns = time_ns([&] {
        for (std::size_t b0 = 0; b0 < order.size(); b0 += bsize) {
          const std::size_t bn = std::min(order.size(), b0 + bsize);
          reg.train_batch(enc, std::span<const std::size_t>(order.data() + b0, bn - b0),
                          std::span<double>(preds.data(), bn - b0), threads);
        }
      });
      bench::JsonValue& node =
          batched["B" + std::to_string(bsize) + "_T" + std::to_string(threads)];
      node["batch"] = bench::JsonValue::integer(static_cast<std::int64_t>(bsize));
      node["threads"] = bench::JsonValue::integer(static_cast<std::int64_t>(threads));
      node["ns_per_epoch"] = bench::JsonValue::number(ns);
      node["samples_per_s"] =
          bench::JsonValue::number(1e9 * static_cast<double>(kRows) / ns);
      node["speedup_vs_sequential"] = bench::JsonValue::number(seq_ns / ns);
    }
  }

  // Sharded data-parallel fits (core/sharded_training): each sample is one
  // complete shard-train → merge run over the same encoded rows, S × T grid.
  // Validation rows are drawn after the training block from the same rng
  // stream, so the sections above see exactly the draws they always did.
  constexpr std::size_t kValRows = 64;
  std::vector<double> val_flat(kValRows * kFeatures);
  std::vector<double> val_targets(kValRows);
  for (double& f : val_flat) {
    f = rng.normal();
  }
  for (std::size_t i = 0; i < kValRows; ++i) {
    val_targets[i] = std::sin(0.1 * static_cast<double>(kRows + i));
  }
  const data::Dataset val_rows("train-bench-val", kFeatures, std::move(val_flat),
                               std::move(val_targets));
  const core::EncodedDataset val_enc = core::EncodedDataset::from(*encoder, val_rows);

  core::RegHDConfig shard_rcfg = rcfg;
  shard_rcfg.max_epochs = 4;  // bounded, identical work per timed call
  shard_rcfg.patience = 4;

  bench::JsonValue& sharded = root["sharded"];
  double s1t1_ns = 0.0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      core::ShardedTrainConfig scfg;
      scfg.shards = shards;
      scfg.threads = threads;
      core::ShardedTrainReport last;
      const double ns = time_ns([&] {
        core::ShardedTrainer trainer(shard_rcfg);
        last = trainer.fit(enc, val_enc, scfg);
      });
      if (shards == 1 && threads == 1) {
        s1t1_ns = ns;
      }
      bench::JsonValue& node =
          sharded["S" + std::to_string(shards) + "_T" + std::to_string(threads)];
      node["shards"] = bench::JsonValue::integer(static_cast<std::int64_t>(shards));
      node["threads"] = bench::JsonValue::integer(static_cast<std::int64_t>(threads));
      node["ns_per_fit"] = bench::JsonValue::number(ns);
      node["samples_per_s"] =
          bench::JsonValue::number(1e9 * static_cast<double>(kRows) / ns);
      node["speedup_vs_S1_T1"] = bench::JsonValue::number(s1t1_ns / ns);
      node["merged_val_mse"] = bench::JsonValue::number(last.merged_val_mse);
      node["final_val_mse"] = bench::JsonValue::number(last.final_val_mse);
    }
  }

  return bench::write_json_file(path, root) ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --telemetry-json mode: run the standard workload instrumented and dump the
// obs/ snapshot — exercises the export path end to end from the bench binary.
// ---------------------------------------------------------------------------

int run_telemetry_json(const std::string& path) {
  constexpr std::size_t kDim = 4096;
  constexpr std::size_t kFeatures = 10;
  constexpr std::size_t kRows = 256;
  constexpr std::size_t kModels = 8;

  obs::set_enabled(true);
  util::Rng rng(0x0B5E);
  hdc::EncoderConfig ecfg;
  ecfg.kind = hdc::EncoderKind::kRffProjection;
  ecfg.input_dim = kFeatures;
  ecfg.dim = kDim;
  const auto encoder = hdc::make_encoder(ecfg);

  std::vector<double> flat(kRows * kFeatures);
  std::vector<double> targets(kRows);
  for (double& f : flat) {
    f = rng.normal();
  }
  for (std::size_t i = 0; i < kRows; ++i) {
    targets[i] = std::sin(0.1 * static_cast<double>(i));
  }
  const data::Dataset rows("telemetry-bench", kFeatures, std::move(flat),
                           std::move(targets));
  const core::EncodedDataset enc = core::EncodedDataset::from(*encoder, rows);

  core::RegHDConfig rcfg;
  rcfg.dim = kDim;
  rcfg.models = kModels;
  core::MultiModelRegressor reg(rcfg);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    reg.train_step(enc.sample(i), enc.target(i));
  }
  reg.requantize();
  benchmark::DoNotOptimize(reg.predict_batch(enc));

  const obs::TelemetrySnapshot snap = obs::snapshot();
  std::ofstream out(path);
  if (!out) {
    return 1;
  }
  out << obs::to_json(snap);
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--telemetry-json" || arg.rfind("--telemetry-json=", 0) == 0) {
      const std::string path =
          arg.size() > 17 ? arg.substr(17) : std::string("BENCH_telemetry.json");
      return run_telemetry_json(path);
    }
    if (arg == "--train-json" || arg.rfind("--train-json=", 0) == 0) {
      const std::string path =
          arg.size() > 13 ? arg.substr(13) : std::string("BENCH_train.json");
      return run_train_json(path);
    }
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      const std::string path =
          arg.size() > 7 ? arg.substr(7) : std::string("BENCH_kernels.json");
      return run_kernel_json(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
