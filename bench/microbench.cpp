// Wall-clock microbenchmarks (google-benchmark) of the computational
// kernels, complementing the analytic cost model with measured host-CPU
// numbers: similarity search (cosine vs Hamming), the §3.2 prediction dots,
// encoding, and end-to-end train/predict steps.
#include <benchmark/benchmark.h>

#include "core/multi_model.hpp"
#include "hdc/encoding.hpp"
#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "util/random.hpp"

namespace {

using namespace reghd;

hdc::EncodedSample make_sample(std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  hdc::EncodedSample s;
  s.real = hdc::random_gaussian(dim, rng);
  s.bipolar = s.real.sign();
  s.binary = s.bipolar.pack();
  double n2 = 0.0;
  for (const double v : s.real.values()) {
    n2 += v * v;
  }
  s.real_norm2 = n2;
  s.real_norm = std::sqrt(n2);
  return s;
}

void BM_CosineSimilarity(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const hdc::RealHV a = hdc::random_gaussian(dim, rng);
  const hdc::RealHV b = hdc::random_gaussian(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::cosine(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_CosineSimilarity)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_HammingSimilarity(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const hdc::BinaryHV a = hdc::random_binary(dim, rng);
  const hdc::BinaryHV b = hdc::random_binary(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::hamming_similarity(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_HammingSimilarity)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_DotRealReal(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  const hdc::RealHV m = hdc::random_gaussian(dim, rng);
  const hdc::EncodedSample q = make_sample(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::dot(m, q.real));
  }
}
BENCHMARK(BM_DotRealReal)->Arg(4096);

void BM_DotRealBinary(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  const hdc::RealHV m = hdc::random_gaussian(dim, rng);
  const hdc::EncodedSample q = make_sample(dim, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::dot(m, q.binary));
  }
}
BENCHMARK(BM_DotRealBinary)->Arg(4096);

void BM_DotBinaryBinary(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const hdc::EncodedSample a = make_sample(dim, 7);
  const hdc::EncodedSample b = make_sample(dim, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::bipolar_dot(a.binary, b.binary));
  }
}
BENCHMARK(BM_DotBinaryBinary)->Arg(4096);

void BM_EncodeRff(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::EncoderConfig cfg;
  cfg.kind = hdc::EncoderKind::kRffProjection;
  cfg.input_dim = 10;
  cfg.dim = dim;
  const auto encoder = hdc::make_encoder(cfg);
  util::Rng rng(9);
  std::vector<double> features(10);
  for (double& f : features) {
    f = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->encode_real(features));
  }
}
BENCHMARK(BM_EncodeRff)->Arg(1024)->Arg(4096);

void BM_EncodeNonlinearEq1(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  hdc::EncoderConfig cfg;
  cfg.kind = hdc::EncoderKind::kNonlinearFeature;
  cfg.input_dim = 10;
  cfg.dim = dim;
  const auto encoder = hdc::make_encoder(cfg);
  util::Rng rng(10);
  std::vector<double> features(10);
  for (double& f : features) {
    f = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->encode_real(features));
  }
}
BENCHMARK(BM_EncodeNonlinearEq1)->Arg(1024)->Arg(4096);

void BM_MultiModelTrainStep(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::RegHDConfig cfg;
  cfg.dim = 4096;
  cfg.models = k;
  core::MultiModelRegressor model(cfg);
  const hdc::EncodedSample s = make_sample(4096, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_step(s, 1.0));
  }
}
BENCHMARK(BM_MultiModelTrainStep)->Arg(1)->Arg(8)->Arg(32);

void BM_MultiModelPredict(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::RegHDConfig cfg;
  cfg.dim = 4096;
  cfg.models = k;
  core::MultiModelRegressor model(cfg);
  const hdc::EncodedSample s = make_sample(4096, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(s));
  }
}
BENCHMARK(BM_MultiModelPredict)->Arg(1)->Arg(8)->Arg(32);

void BM_MultiModelPredictQuantized(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::RegHDConfig cfg;
  cfg.dim = 4096;
  cfg.models = k;
  cfg.cluster_mode = core::ClusterMode::kQuantized;
  cfg.query_precision = core::QueryPrecision::kBinary;
  cfg.model_precision = core::ModelPrecision::kBinary;
  core::MultiModelRegressor model(cfg);
  const hdc::EncodedSample s = make_sample(4096, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(s));
  }
}
BENCHMARK(BM_MultiModelPredictQuantized)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
