// Figure 8 reproduction: training and inference efficiency of
// RegHD-{2,8,32} vs DNN and Baseline-HD on the Kintex-7 FPGA profile.
//
// Protocol: epoch counts are *measured* by actually training each learner on
// a representative workload; per-sample operation tallies come from the
// analytic cost model; the device profile maps tallies to time and energy.
// Results are normalized to DNN (speedup / energy-efficiency > 1 means the
// learner beats the DNN), matching the paper's presentation.
//
// Paper headline: RegHD-8 trains 5.6× faster / 12.3× more energy-efficient
// than DNN, and infers 2.9× faster / 4.2× more efficiently; efficiency
// scales ≈linearly in the model count k.
#include <iostream>

#include "baselines/mlp.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "perf/device_profile.hpp"
#include "perf/kernel_costs.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header(
      "Figure 8 — training/inference efficiency vs DNN and Baseline-HD",
      "FPGA cost-model ratios with measured epoch counts; normalized to DNN.\n"
      "All RegHD rows use the binary (quantized) cluster, per the paper.");

  const bench::Workload workload = bench::make_workload("ccpp", 0xF168);
  const std::size_t samples = workload.train.size();
  const std::size_t features = workload.train.num_features();

  // --- Measure epochs to convergence. -------------------------------------
  baselines::MlpConfig dnn_cfg;
  dnn_cfg.hidden = {256, 128};  // grid-searched topology class used on FPGA
  baselines::Mlp dnn(dnn_cfg);
  dnn.fit(workload.train);
  const std::size_t dnn_epochs = dnn.epochs_run();

  // Average epoch counts over a few seeds — single-run counts are noisy.
  auto reghd_epochs = [&](std::size_t k) {
    std::size_t total = 0;
    constexpr std::uint64_t kSeeds[] = {11, 22, 33};
    for (const std::uint64_t seed : kSeeds) {
      auto cfg = bench::reghd_config(k, bench::kQualityDim, seed);
      cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
      cfg.reghd.query_precision = core::QueryPrecision::kBinary;
      core::RegHDPipeline pipeline(cfg);
      pipeline.fit(workload.train);
      total += pipeline.report().epochs_run;
    }
    return (total + 1) / 3;
  };

  const perf::DeviceProfile& fpga = perf::fpga_kintex7();

  // --- DNN cost. -----------------------------------------------------------
  perf::MlpKernelShape dnn_shape;
  dnn_shape.inputs = features;
  dnn_shape.hidden1 = 256;
  dnn_shape.hidden2 = 128;
  const auto dnn_train = perf::mlp_train_total(dnn_shape, samples, dnn_epochs);
  const auto dnn_infer = perf::mlp_infer_sample(dnn_shape);

  // --- Baseline-HD cost (needs many bins for precision; 256 per §5). ------
  const auto bhd_train =
      perf::baseline_hd_train_sample(features, 4096, 256) *
      (static_cast<std::uint64_t>(samples) * 20ULL);
  const auto bhd_infer = perf::baseline_hd_infer_sample(features, 4096, 256);

  util::Table table({"model", "epochs", "train speedup", "train energy eff.",
                     "infer speedup", "infer energy eff."});
  table.add_row({"DNN", std::to_string(dnn_epochs), "1.00x", "1.00x", "1.00x", "1.00x"});
  table.add_row(
      {"Baseline-HD", "20",
       util::Table::cell_ratio(fpga.time_ms(dnn_train) / fpga.time_ms(bhd_train)),
       util::Table::cell_ratio(fpga.energy_uj(dnn_train) / fpga.energy_uj(bhd_train)),
       util::Table::cell_ratio(fpga.time_ms(dnn_infer) / fpga.time_ms(bhd_infer)),
       util::Table::cell_ratio(fpga.energy_uj(dnn_infer) / fpga.energy_uj(bhd_infer))});

  for (const std::size_t k : {2u, 8u, 32u}) {
    const std::size_t epochs = reghd_epochs(k);
    perf::RegHDKernelShape shape;
    shape.dim = 4096;
    shape.models = k;
    shape.features = features;
    shape.quantized_cluster = true;
    shape.query = perf::Precision::kBinary;
    shape.rff_encoder = false;  // Eq. 1 encoder in the hardware pipeline
    const auto train = perf::reghd_train_total(shape, samples, epochs);
    const auto infer = perf::reghd_infer_sample(shape);
    table.add_row(
        {"RegHD-" + std::to_string(k), std::to_string(epochs),
         util::Table::cell_ratio(fpga.time_ms(dnn_train) / fpga.time_ms(train)),
         util::Table::cell_ratio(fpga.energy_uj(dnn_train) / fpga.energy_uj(train)),
         util::Table::cell_ratio(fpga.time_ms(dnn_infer) / fpga.time_ms(infer)),
         util::Table::cell_ratio(fpga.energy_uj(dnn_infer) / fpga.energy_uj(infer))});
  }

  std::cout << table
            << "\nPaper reference: RegHD-8 5.6x/12.3x train, 2.9x/4.2x infer vs DNN;\n"
               "RegHD-8 is 2.8x/2.1x faster/more efficient to train than RegHD-32.\n";

  // The paper's second platform: an embedded ARM CPU (Raspberry Pi 3B+).
  // Flatter per-op ratios than the FPGA, so the quantization gains shrink
  // but the orderings persist.
  const perf::DeviceProfile& cpu = perf::embedded_cpu();
  util::Table cpu_table({"model (cortex-a53)", "train speedup", "infer speedup"});
  cpu_table.add_row({"DNN", "1.00x", "1.00x"});
  for (const std::size_t k : {2u, 8u, 32u}) {
    const std::size_t epochs = reghd_epochs(k);
    perf::RegHDKernelShape shape;
    shape.dim = 4096;
    shape.models = k;
    shape.features = features;
    shape.quantized_cluster = true;
    shape.query = perf::Precision::kBinary;
    shape.rff_encoder = false;
    const auto train = perf::reghd_train_total(shape, samples, epochs);
    const auto infer = perf::reghd_infer_sample(shape);
    cpu_table.add_row(
        {"RegHD-" + std::to_string(k),
         util::Table::cell_ratio(cpu.time_ms(dnn_train) / cpu.time_ms(train)),
         util::Table::cell_ratio(cpu.time_ms(dnn_infer) / cpu.time_ms(infer))});
  }
  std::cout << '\n' << cpu_table;
  return 0;
}
