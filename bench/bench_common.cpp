#include "bench_common.hpp"

#include <cmath>
#include <iostream>
#include <numeric>

#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace reghd::bench {

Workload make_workload(const std::string& dataset_name, std::uint64_t seed) {
  return make_workload(data::make_paper_dataset(dataset_name, seed), seed);
}

Workload make_workload(data::Dataset dataset, std::uint64_t seed, std::size_t max_train) {
  Workload w;
  w.name = dataset.name();
  util::Rng rng(seed ^ 0xB46C);
  data::TrainTestSplit split = data::train_test_split(dataset, 0.25, rng);
  if (split.train.size() > max_train) {
    w.capped_from = split.train.size();
    std::vector<std::size_t> head(max_train);
    std::iota(head.begin(), head.end(), 0);  // split is already shuffled
    split.train = split.train.subset(head);
  }
  w.train = std::move(split.train);
  w.test = std::move(split.test);
  return w;
}

core::PipelineConfig reghd_config(std::size_t models, std::size_t dim, std::uint64_t seed) {
  core::PipelineConfig cfg;
  cfg.reghd.models = models;
  cfg.reghd.dim = dim;
  cfg.reghd.seed = seed;
  cfg.reghd.max_epochs = 40;
  cfg.reghd.patience = 6;
  return cfg;
}

double fit_and_score(model::Regressor& learner, const Workload& workload) {
  learner.fit(workload.train);
  const std::vector<double> predictions = learner.predict_batch(workload.test);
  return util::mse(predictions, workload.test.targets());
}

void set_smooth_encoder(core::PipelineConfig& cfg, std::size_t features, double factor) {
  cfg.encoder.projection_stddev = factor / std::sqrt(static_cast<double>(features));
}

void print_header(const std::string& experiment, const std::string& description) {
  std::cout << util::section_banner(experiment) << description << "\n\n";
}

}  // namespace reghd::bench
