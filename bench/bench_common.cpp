#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <numeric>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace reghd::bench {

Workload make_workload(const std::string& dataset_name, std::uint64_t seed) {
  return make_workload(data::make_paper_dataset(dataset_name, seed), seed);
}

Workload make_workload(data::Dataset dataset, std::uint64_t seed, std::size_t max_train) {
  Workload w;
  w.name = dataset.name();
  util::Rng rng(seed ^ 0xB46C);
  data::TrainTestSplit split = data::train_test_split(dataset, 0.25, rng);
  if (split.train.size() > max_train) {
    w.capped_from = split.train.size();
    std::vector<std::size_t> head(max_train);
    std::iota(head.begin(), head.end(), 0);  // split is already shuffled
    split.train = split.train.subset(head);
  }
  w.train = std::move(split.train);
  w.test = std::move(split.test);
  return w;
}

core::PipelineConfig reghd_config(std::size_t models, std::size_t dim, std::uint64_t seed) {
  core::PipelineConfig cfg;
  cfg.reghd.models = models;
  cfg.reghd.dim = dim;
  cfg.reghd.seed = seed;
  cfg.reghd.max_epochs = 40;
  cfg.reghd.patience = 6;
  return cfg;
}

double fit_and_score(model::Regressor& learner, const Workload& workload) {
  learner.fit(workload.train);
  const std::vector<double> predictions = learner.predict_batch(workload.test);
  return util::mse(predictions, workload.test.targets());
}

void set_smooth_encoder(core::PipelineConfig& cfg, std::size_t features, double factor) {
  cfg.encoder.projection_stddev = factor / std::sqrt(static_cast<double>(features));
}

void print_header(const std::string& experiment, const std::string& description) {
  std::cout << util::section_banner(experiment) << description << "\n\n";
}

JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

JsonValue JsonValue::integer(std::int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInteger;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::object() { return JsonValue{}; }

JsonValue& JsonValue::operator[](const std::string& key) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      return v;
    }
  }
  members_.emplace_back(key, JsonValue::object());
  return members_.back().second;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

void JsonValue::write(std::string& out, int indent) const {
  switch (kind_) {
    case Kind::kNumber: {
      std::ostringstream oss;
      oss.precision(12);
      oss << num_;
      out += oss.str();
      return;
    }
    case Kind::kInteger:
      out += std::to_string(int_);
      return;
    case Kind::kString:
      write_escaped(out, str_);
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      const std::string pad(static_cast<std::size_t>(indent + 2), ' ');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent + 2);
        if (i + 1 < members_.size()) {
          out += ',';
        }
        out += '\n';
      }
      out += std::string(static_cast<std::size_t>(indent), ' ');
      out += '}';
      return;
    }
  }
}

std::string JsonValue::str() const {
  std::string out;
  write(out, 0);
  return out;
}

bool write_json_file(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  out << value.str() << "\n";
  std::cout << "wrote " << path << "\n";
  return true;
}

ZipfSampler::ZipfSampler(std::size_t n, double s, std::uint64_t seed)
    : rng_(seed) {
  if (n == 0) {
    throw std::invalid_argument("ZipfSampler: empty domain");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against rounding leaving the last bin short
}

std::size_t ZipfSampler::next() {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double u = uni(rng_);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

OpenLoopPacer::OpenLoopPacer(double rate_per_sec, std::uint64_t start_ns)
    : interval_ns_(1e9 / rate_per_sec), start_ns_(start_ns) {
  if (!(rate_per_sec > 0.0)) {
    throw std::invalid_argument("OpenLoopPacer: rate must be positive");
  }
}

std::uint64_t OpenLoopPacer::scheduled_ns(std::uint64_t index) const noexcept {
  return start_ns_ +
         static_cast<std::uint64_t>(interval_ns_ * static_cast<double>(index));
}

std::uint64_t OpenLoopPacer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void OpenLoopPacer::wait_until(std::uint64_t scheduled) {
  // Coarse sleep down to ~200 µs out, then spin: sleep_for alone overshoots
  // by a scheduler quantum, which at high rates smears the whole schedule.
  constexpr std::uint64_t kSpinWindowNs = 200'000;
  std::uint64_t now = now_ns();
  while (now + kSpinWindowNs < scheduled) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(scheduled - now - kSpinWindowNs));
    now = now_ns();
  }
  while (now_ns() < scheduled) {
    // Yielding spin: at high rates the inter-arrival gap is inside the spin
    // window, so this loop is where the load generator lives. A hard spin
    // would monopolize a core the server under test may need (the bench
    // co-locates client and server); yield cedes the slice whenever another
    // thread is runnable and returns immediately when none is.
    std::this_thread::yield();
  }
}

LatencyRecorder::LatencyRecorder(std::size_t reserve) {
  samples_.reserve(reserve);
}

void LatencyRecorder::record_ns(std::uint64_t ns) {
  samples_.push_back(ns);
  sorted_ = false;
}

double LatencyRecorder::mean_ns() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const std::uint64_t s : samples_) {
    total += static_cast<double>(s);
  }
  return total / static_cast<double>(samples_.size());
}

double LatencyRecorder::percentile_ns(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return static_cast<double>(samples_[std::min(index, samples_.size() - 1)]);
}

double LatencyRecorder::max_ns() const {
  return samples_.empty()
             ? 0.0
             : static_cast<double>(*std::max_element(samples_.begin(), samples_.end()));
}

JsonValue LatencyRecorder::summary() const {
  JsonValue j = JsonValue::object();
  j["count"] = JsonValue::integer(static_cast<std::int64_t>(count()));
  j["mean_ns"] = JsonValue::number(mean_ns());
  j["p50_ns"] = JsonValue::number(percentile_ns(50.0));
  j["p95_ns"] = JsonValue::number(percentile_ns(95.0));
  j["p99_ns"] = JsonValue::number(percentile_ns(99.0));
  j["max_ns"] = JsonValue::number(max_ns());
  return j;
}

}  // namespace reghd::bench
