#include "bench_common.hpp"

#include <cmath>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>

#include "data/synthetic.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace reghd::bench {

Workload make_workload(const std::string& dataset_name, std::uint64_t seed) {
  return make_workload(data::make_paper_dataset(dataset_name, seed), seed);
}

Workload make_workload(data::Dataset dataset, std::uint64_t seed, std::size_t max_train) {
  Workload w;
  w.name = dataset.name();
  util::Rng rng(seed ^ 0xB46C);
  data::TrainTestSplit split = data::train_test_split(dataset, 0.25, rng);
  if (split.train.size() > max_train) {
    w.capped_from = split.train.size();
    std::vector<std::size_t> head(max_train);
    std::iota(head.begin(), head.end(), 0);  // split is already shuffled
    split.train = split.train.subset(head);
  }
  w.train = std::move(split.train);
  w.test = std::move(split.test);
  return w;
}

core::PipelineConfig reghd_config(std::size_t models, std::size_t dim, std::uint64_t seed) {
  core::PipelineConfig cfg;
  cfg.reghd.models = models;
  cfg.reghd.dim = dim;
  cfg.reghd.seed = seed;
  cfg.reghd.max_epochs = 40;
  cfg.reghd.patience = 6;
  return cfg;
}

double fit_and_score(model::Regressor& learner, const Workload& workload) {
  learner.fit(workload.train);
  const std::vector<double> predictions = learner.predict_batch(workload.test);
  return util::mse(predictions, workload.test.targets());
}

void set_smooth_encoder(core::PipelineConfig& cfg, std::size_t features, double factor) {
  cfg.encoder.projection_stddev = factor / std::sqrt(static_cast<double>(features));
}

void print_header(const std::string& experiment, const std::string& description) {
  std::cout << util::section_banner(experiment) << description << "\n\n";
}

JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

JsonValue JsonValue::integer(std::int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInteger;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::object() { return JsonValue{}; }

JsonValue& JsonValue::operator[](const std::string& key) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      return v;
    }
  }
  members_.emplace_back(key, JsonValue::object());
  return members_.back().second;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

void JsonValue::write(std::string& out, int indent) const {
  switch (kind_) {
    case Kind::kNumber: {
      std::ostringstream oss;
      oss.precision(12);
      oss << num_;
      out += oss.str();
      return;
    }
    case Kind::kInteger:
      out += std::to_string(int_);
      return;
    case Kind::kString:
      write_escaped(out, str_);
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      const std::string pad(static_cast<std::size_t>(indent + 2), ' ');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent + 2);
        if (i + 1 < members_.size()) {
          out += ',';
        }
        out += '\n';
      }
      out += std::string(static_cast<std::size_t>(indent), ' ');
      out += '}';
      return;
    }
  }
}

std::string JsonValue::str() const {
  std::string out;
  write(out, 0);
  return out;
}

bool write_json_file(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  out << value.str() << "\n";
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace reghd::bench
