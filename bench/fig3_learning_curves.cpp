// Figure 3 reproduction:
//  (a) regression quality across retraining iterations (single model) — the
//      iterative-learning claim of §2.3;
//  (b) single-model vs multi-model on a complex (multi-regime) task — the
//      capacity argument that motivates §2.4.
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace reghd;

core::RegHDPipeline fit_reghd(std::size_t k, const bench::Workload& workload,
                              std::size_t max_epochs = 30) {
  auto cfg = bench::reghd_config(k);
  cfg.reghd.max_epochs = max_epochs;
  cfg.reghd.patience = max_epochs;  // run the full curve; no early stop
  core::RegHDPipeline pipeline(cfg);
  pipeline.fit(workload.train);
  return pipeline;
}

std::vector<std::pair<std::string, double>> curve(const core::RegHDPipeline& pipeline) {
  std::vector<std::pair<std::string, double>> points;
  for (const auto& record : pipeline.report().history) {
    points.emplace_back(std::to_string(record.epoch + 1), record.val_mse);
  }
  return points;
}

}  // namespace

int main() {
  bench::print_header("Figure 3 — learning curves",
                      "(a) single-model quality vs training iterations;\n"
                      "(b) single vs multi-model on a multi-regime task.");

  // (a) Smooth task: iterative retraining keeps improving for a while.
  {
    const bench::Workload sine =
        bench::make_workload(data::make_sine_task(1200, 0xF16A), 0xF16A);
    const core::RegHDPipeline single = fit_reghd(1, sine);
    util::SeriesChart chart("Fig 3a: single-model iterative learning (sine task)",
                            "epoch", "validation MSE (standardized)");
    chart.add_series("RegHD-1", curve(single));
    std::cout << chart << '\n';
    const auto& history = single.report().history;
    std::cout << "first-epoch val MSE " << util::Table::cell(history.front().val_mse)
              << " -> best " << util::Table::cell(single.report().best_val_mse)
              << "  (iterative training improves on single-pass)\n\n";
  }

  // (b) Complex task: 8 well-separated regimes saturate one hypervector.
  {
    const bench::Workload complex_task = bench::make_workload(
        data::make_multimodal_task(2000, 4, 8, 0xF16B, 0.05), 0xF16B);
    const core::RegHDPipeline single = fit_reghd(1, complex_task);
    const core::RegHDPipeline multi = fit_reghd(8, complex_task);

    util::SeriesChart chart("Fig 3b: single vs multi-model (8-regime task)", "epoch",
                            "validation MSE (standardized)");
    chart.add_series("RegHD-1 (single model)", curve(single));
    chart.add_series("RegHD-8 (multi model)", curve(multi));
    std::cout << chart << '\n';

    const double mse_single = single.evaluate_mse(complex_task.test);
    const double mse_multi = multi.evaluate_mse(complex_task.test);
    std::cout << "test MSE: single " << util::Table::cell(mse_single) << " vs multi "
              << util::Table::cell(mse_multi) << "  ("
              << util::Table::cell_ratio(mse_single / mse_multi)
              << " better with multi-model; paper Fig. 3b shows the same gap)\n";
  }
  return 0;
}
