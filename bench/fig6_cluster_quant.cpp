// Figure 6 reproduction: regression quality with and without cluster
// quantization. Three variants of RegHD-8:
//  * integer clusters (full-precision cosine search),
//  * the proposed framework (binary Hamming search over per-epoch snapshots,
//    integer updates — §3.1 / Eq. 9),
//  * naive one-shot binarization (the paper's foil: binary clusters frozen
//    at initialization).
//
// Paper claims: the framework matches integer quality (≤0.3% loss) while
// naive binarization loses significantly; the framework may need slightly
// more iterations.
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header("Figure 6 — cluster quantization",
                      "RegHD-8 on multi-regime + ccpp-like workloads.");

  struct Variant {
    const char* label;
    core::ClusterMode mode;
    core::ClusterInit init;
  };
  const Variant variants[] = {
      {"integer clusters (cosine)", core::ClusterMode::kFullPrecision,
       core::ClusterInit::kFarthestPoint},
      {"quantized framework (Hamming)", core::ClusterMode::kQuantized,
       core::ClusterInit::kFarthestPoint},
      {"naive binarization (frozen)", core::ClusterMode::kNaiveBinary,
       core::ClusterInit::kRandom},
  };

  const bench::Workload workloads[] = {
      bench::make_workload(data::make_multimodal_task(2000, 4, 8, 0xF166, 0.05), 0xF166),
      bench::make_workload("ccpp", 0xF166),
  };

  for (const auto& workload : workloads) {
    std::cout << "workload: " << workload.name << "\n";
    util::Table table({"variant", "test MSE", "quality loss vs integer", "epochs"});
    double reference = 0.0;
    for (const auto& v : variants) {
      auto cfg = bench::reghd_config(8);
      cfg.reghd.cluster_mode = v.mode;
      cfg.reghd.cluster_init = v.init;
      core::RegHDPipeline pipeline(cfg);
      const double mse = bench::fit_and_score(pipeline, workload);
      if (reference == 0.0) {
        reference = mse;
      }
      table.add_row({v.label, util::Table::cell(mse),
                     util::Table::cell_percent(100.0 * (mse - reference) / reference),
                     std::to_string(pipeline.report().epochs_run)});
    }
    std::cout << table << '\n';
  }
  std::cout << "Paper reference: framework ≈ integer quality (≤0.3% loss), naive\n"
               "binarization significantly worse; framework may add a few epochs.\n";
  return 0;
}
