// §2.3 capacity-model reproduction: the worked example ("D = 100,000 and
// T = 0.5 identifies P = 10,000 patterns with 5.7% error"), the closed-form
// false-positive surface (Eq. 4), and a Monte-Carlo cross-check.
#include <iostream>

#include "bench_common.hpp"
#include "hdc/capacity.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header("§2.3 — hypervector capacity model (Eq. 4)",
                      "Closed form vs Monte-Carlo; inversion to max pattern count.");

  {
    hdc::CapacityQuery q;
    q.dimension = 100000;
    q.patterns = 10000;
    q.threshold = 0.5;
    std::cout << "paper worked example: D=100k, T=0.5, P=10k -> false-positive rate "
              << util::Table::cell_percent(100.0 * hdc::false_positive_probability(q))
              << "  (paper: 5.7%)\n\n";
  }

  util::Table surface({"D", "P", "T", "closed form", "monte carlo (3k trials)"});
  util::Rng rng(0xCAFAC17);
  struct Case {
    std::size_t d;
    std::size_t p;
    double t;
  };
  for (const Case c : {Case{2000, 200, 0.5}, Case{2000, 500, 0.5}, Case{4000, 400, 0.5},
                       Case{2000, 200, 0.3}, Case{1000, 400, 0.4}}) {
    hdc::CapacityQuery q;
    q.dimension = c.d;
    q.patterns = c.p;
    q.threshold = c.t;
    const double closed = hdc::false_positive_probability(q);
    const double mc = hdc::simulate_false_positive_rate(q, 3000, rng);
    surface.add_row({std::to_string(c.d), std::to_string(c.p), util::Table::cell(c.t, 1),
                     util::Table::cell_percent(100.0 * closed, 2),
                     util::Table::cell_percent(100.0 * mc, 2)});
  }
  std::cout << surface << '\n';

  util::Table inversion({"D", "T", "max P at 5.7% error"});
  for (const std::size_t d : {1000u, 4000u, 10000u, 100000u}) {
    inversion.add_row({std::to_string(d), "0.5",
                       std::to_string(hdc::max_patterns(d, 0.5, 0.057))});
  }
  std::cout << inversion
            << "\nCapacity grows linearly in D — the motivation for multi-model RegHD\n"
               "instead of ever-larger single hypervectors (§2.4).\n";
  return 0;
}
