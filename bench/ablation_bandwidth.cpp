// Ablation of the bench encoder bandwidth (DESIGN.md §6.10): the RFF
// projection stddev (×1/√n) controls per-model capacity. The sharp library
// default (1.0×) makes k = 1 saturate the achievable quality so extra
// models cannot help; the smoother 0.3× reproduces the paper's Table 1
// regime where clustering pays. This bench prints the grid that choice came
// from.
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header(
      "Ablation — encoder bandwidth vs model count",
      "Test MSE on airfoil/ccpp-like workloads; bandwidth in units of the\n"
      "1/√n auto default. The k-gain column is the Table 1 quantity.");

  for (const std::string& name : {std::string("airfoil"), std::string("ccpp")}) {
    const bench::Workload workload = bench::make_workload(name, 0xAB0BD);
    std::cout << "workload: " << name << "\n";
    util::Table table({"bandwidth", "RegHD-1 MSE", "RegHD-8 MSE", "k-gain (1 -> 8)"});
    for (const double factor : {1.0, 0.5, 0.3}) {
      double mse[2] = {0.0, 0.0};
      int idx = 0;
      for (const std::size_t k : {1u, 8u}) {
        auto cfg = bench::reghd_config(k);
        bench::set_smooth_encoder(cfg, workload.train.num_features(), factor);
        core::RegHDPipeline pipeline(cfg);
        mse[idx++] = bench::fit_and_score(pipeline, workload);
      }
      table.add_row({util::Table::cell(factor, 1) + "x", util::Table::cell(mse[0], 2),
                     util::Table::cell(mse[1], 2),
                     util::Table::cell_percent(100.0 * (mse[0] - mse[1]) / mse[0])});
    }
    std::cout << table << '\n';
  }
  std::cout << "Sharper kernels lift k = 1 toward the noise floor and erase the\n"
               "multi-model gain; the paper's weak Eq. 1 encoder sits in the smooth\n"
               "regime, which is why its Table 1 shows consistent k-gains.\n";
  return 0;
}
