// Tenant-store scale bench: drives serve::TenantStore through ≥1M distinct
// tenant keys under a bounded resident budget and Zipf-skewed traffic, and
// writes BENCH_tenants.json.
//
// Two phases, both single-threaded (the store's deployment shape — one
// owner thread per shard):
//
//   sweep  — one update per key over every tenant id in sequence. Guarantees
//            the distinct-tenant floor, and is the worst case for the LRU:
//            every access past the budget is a miss that evicts the tail
//            (serialize → spill) and activates a cold learner.
//   zipf   — mixed predict/update traffic with Zipf(s)-distributed keys, the
//            classic multi-tenant skew. Hot tenants pin themselves resident;
//            the tail churns through eviction/reactivation.
//
// Reported per phase: ops/s, hit/miss counts; overall: resident bytes per
// tenant, eviction and activation latency p50/p99 (obs histograms), spill
// pressure (bytes, budget discards). Flags: --tenants N --ops N --zipf-s S
// --budget N --quick --json PATH --seed N.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/online.hpp"
#include "hdc/encoding.hpp"
#include "obs/telemetry.hpp"
#include "serve/tenant_store.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace reghd {
namespace {

[[nodiscard]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fixed pool of feature rows; key → row is a cheap deterministic map so the
/// driver adds no per-op noise to what the store costs.
struct RowPool {
  RowPool(std::size_t rows, std::size_t nf, std::uint64_t seed) : width(nf) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> dist(0.0, 1.0);
    flat.resize(rows * nf);
    for (double& v : flat) {
      v = dist(rng);
    }
    targets.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      double s = 0.0;
      for (std::size_t k = 0; k < nf; ++k) {
        s += flat[r * nf + k] * (k % 3 == 0 ? 1.5 : -0.5);
      }
      targets[r] = s;
    }
  }
  [[nodiscard]] std::span<const double> row(std::uint64_t key) const {
    const std::size_t r = key % targets.size();
    return {flat.data() + r * width, width};
  }
  [[nodiscard]] double target(std::uint64_t key) const {
    return targets[key % targets.size()];
  }
  std::size_t width;
  std::vector<double> flat;
  std::vector<double> targets;
};

bench::JsonValue histo_block(const obs::HistogramSnapshot& h) {
  bench::JsonValue b = bench::JsonValue::object();
  b["count"] = bench::JsonValue::integer(static_cast<std::int64_t>(h.count));
  b["mean_ns"] = bench::JsonValue::number(h.mean_ns());
  b["p50_ns"] = bench::JsonValue::number(h.p50_ns());
  b["p99_ns"] = bench::JsonValue::number(h.p99_ns());
  return b;
}

int run(const util::Args& args) {
  const bool quick = args.get_bool("quick", false);
  const std::size_t tenants = static_cast<std::size_t>(
      args.get_int("tenants", quick ? 50'000 : 1'000'000));
  const std::size_t ops =
      static_cast<std::size_t>(args.get_int("ops", quick ? 200'000 : 2'000'000));
  const double zipf_s = args.get_double("zipf-s", 0.9);
  const std::size_t budget =
      static_cast<std::size_t>(args.get_int("budget", 4096));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string json_path = args.get_string("json", "BENCH_tenants.json");

  bench::print_header("tenant_store",
                      "per-tenant model bank under LRU budget + Zipf traffic");
  std::cout << "tenants=" << tenants << " ops=" << ops << " zipf_s=" << zipf_s
            << " budget=" << budget << (quick ? " (quick)" : "") << "\n";

  constexpr std::size_t kFeatures = 16;
  core::OnlineConfig online;
  online.reghd.dim = 512;
  online.reghd.models = 2;
  online.reghd.seed = seed;
  // Rematerialized projections: per-tenant state must not carry a D×F matrix.
  online.encoder.projection_storage = hdc::ProjectionStorage::kRematerialized;
  online.requantize_every = 64;

  serve::TenantStoreConfig tc;
  tc.resident_budget = budget;
  tc.tiered_dims = true;  // most tenants stay in the cheap low-update tiers
  tc.tier_updates = {64, 512};
  tc.spill_budget_bytes = 256ull << 20;  // cap in-memory spill at 256 MiB

  obs::set_enabled(true);
  obs::reset();
  serve::TenantStore store(tc, online, kFeatures);
  const RowPool pool(512, kFeatures, seed ^ 0x9E3779B97F4A7C15ull);

  // Phase 1: sequential sweep — every key exactly once, one update each.
  const std::uint64_t sweep_start = now_ns();
  for (std::uint64_t key = 0; key < tenants; ++key) {
    store.update(key, pool.row(key), pool.target(key));
  }
  const double sweep_s = static_cast<double>(now_ns() - sweep_start) * 1e-9;
  const serve::TenantStoreStats after_sweep = store.stats();

  // Phase 2: Zipf-skewed steady state — 3 predicts per update, hot keys
  // dominating. Re-uses the same key space, so reactivation paths run too.
  bench::ZipfSampler zipf(tenants, zipf_s, seed);
  std::uint64_t predicts = 0;
  std::uint64_t updates = 0;
  double sink = 0.0;
  const std::uint64_t zipf_start = now_ns();
  for (std::size_t i = 0; i < ops; ++i) {
    const auto key = static_cast<std::uint64_t>(zipf.next());
    if ((i & 3U) == 0) {
      sink += store.update(key, pool.row(key), pool.target(key));
      ++updates;
    } else {
      sink += store.predict(key, pool.row(key));
      ++predicts;
    }
  }
  const double zipf_sec = static_cast<double>(now_ns() - zipf_start) * 1e-9;
  const serve::TenantStoreStats final_stats = store.stats();
  const obs::TelemetrySnapshot tel = obs::snapshot();

  const std::uint64_t zipf_hits = final_stats.hits - after_sweep.hits;
  const std::uint64_t zipf_misses = final_stats.misses - after_sweep.misses;
  const double bytes_per_tenant =
      final_stats.resident > 0
          ? static_cast<double>(final_stats.resident_bytes) /
                static_cast<double>(final_stats.resident)
          : 0.0;

  util::Table table({"metric", "value"});
  table.add_row({"sweep ops/s",
                 std::to_string(static_cast<double>(tenants) / sweep_s)});
  table.add_row({"zipf ops/s",
                 std::to_string(static_cast<double>(ops) / zipf_sec)});
  table.add_row({"zipf hit rate",
                 std::to_string(static_cast<double>(zipf_hits) /
                                static_cast<double>(zipf_hits + zipf_misses))});
  table.add_row({"resident tenants", std::to_string(final_stats.resident)});
  table.add_row({"resident bytes/tenant", std::to_string(bytes_per_tenant)});
  table.add_row({"evictions", std::to_string(final_stats.evictions)});
  table.add_row({"reactivations", std::to_string(final_stats.reactivations)});
  table.add_row({"promotions", std::to_string(final_stats.promotions)});
  table.add_row({"spill discards", std::to_string(final_stats.spill_discards)});
  table.add_row(
      {"evict p99 us",
       std::to_string(tel.histogram(obs::Histo::kTenantEvictNs).p99_ns() / 1e3)});
  std::cout << table;
  std::cout << "(checksum " << sink << ")\n";

  bench::JsonValue root = bench::JsonValue::object();
  root["bench"] = bench::JsonValue::string("tenant_store");
  root["quick"] = bench::JsonValue::boolean(quick);
  bench::JsonValue& cfg = root["config"] = bench::JsonValue::object();
  cfg["tenants"] = bench::JsonValue::integer(static_cast<std::int64_t>(tenants));
  cfg["ops"] = bench::JsonValue::integer(static_cast<std::int64_t>(ops));
  cfg["zipf_s"] = bench::JsonValue::number(zipf_s);
  cfg["resident_budget"] = bench::JsonValue::integer(static_cast<std::int64_t>(budget));
  cfg["base_dim"] = bench::JsonValue::integer(static_cast<std::int64_t>(online.reghd.dim));
  cfg["models"] = bench::JsonValue::integer(static_cast<std::int64_t>(online.reghd.models));
  cfg["features"] = bench::JsonValue::integer(static_cast<std::int64_t>(kFeatures));
  cfg["spill_budget_bytes"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(tc.spill_budget_bytes));

  bench::JsonValue& sweep = root["sweep"] = bench::JsonValue::object();
  sweep["distinct_tenants"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(tenants));
  sweep["seconds"] = bench::JsonValue::number(sweep_s);
  sweep["ops_per_sec"] =
      bench::JsonValue::number(static_cast<double>(tenants) / sweep_s);
  sweep["hits"] = bench::JsonValue::integer(static_cast<std::int64_t>(after_sweep.hits));
  sweep["misses"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(after_sweep.misses));

  bench::JsonValue& zp = root["zipf"] = bench::JsonValue::object();
  zp["ops"] = bench::JsonValue::integer(static_cast<std::int64_t>(ops));
  zp["predicts"] = bench::JsonValue::integer(static_cast<std::int64_t>(predicts));
  zp["updates"] = bench::JsonValue::integer(static_cast<std::int64_t>(updates));
  zp["seconds"] = bench::JsonValue::number(zipf_sec);
  zp["ops_per_sec"] = bench::JsonValue::number(static_cast<double>(ops) / zipf_sec);
  zp["hits"] = bench::JsonValue::integer(static_cast<std::int64_t>(zipf_hits));
  zp["misses"] = bench::JsonValue::integer(static_cast<std::int64_t>(zipf_misses));
  zp["hit_rate"] =
      bench::JsonValue::number(static_cast<double>(zipf_hits) /
                               static_cast<double>(zipf_hits + zipf_misses));

  bench::JsonValue& st = root["store"] = bench::JsonValue::object();
  st["resident"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(final_stats.resident));
  st["resident_bytes"] = bench::JsonValue::integer(
      static_cast<std::int64_t>(final_stats.resident_bytes));
  st["resident_bytes_per_tenant"] = bench::JsonValue::number(bytes_per_tenant);
  st["spilled"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(final_stats.spilled));
  st["spill_bytes"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(final_stats.spill_bytes));
  st["activations"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(final_stats.activations));
  st["reactivations"] = bench::JsonValue::integer(
      static_cast<std::int64_t>(final_stats.reactivations));
  st["evictions"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(final_stats.evictions));
  st["promotions"] =
      bench::JsonValue::integer(static_cast<std::int64_t>(final_stats.promotions));
  st["spill_discards"] = bench::JsonValue::integer(
      static_cast<std::int64_t>(final_stats.spill_discards));

  bench::JsonValue& lat = root["latency"] = bench::JsonValue::object();
  lat["evict"] = histo_block(tel.histogram(obs::Histo::kTenantEvictNs));
  lat["activate"] = histo_block(tel.histogram(obs::Histo::kTenantActivateNs));

  obs::set_enabled(false);
  return bench::write_json_file(json_path, root) ? 0 : 2;
}

}  // namespace
}  // namespace reghd

int main(int argc, char** argv) {
  try {
    const reghd::util::Args args(argc, argv);
    return reghd::run(args);
  } catch (const std::exception& e) {
    std::cerr << "tenant_store bench error: " << e.what() << "\n";
    return 2;
  }
}
