// Figure 9 reproduction: training and inference efficiency of the §3
// quantization configurations, normalized to full-precision RegHD-8.
//
// Paper claims: cluster quantization alone gives ≈1.9×/2.1× training
// speedup/energy; binary query – integer model ≈1.4×/1.5×; binary–binary the
// fastest; inference gains are larger (≈2.0×/2.3× for quantized clusters)
// because inference has no cluster-update step to dilute them.
#include <iostream>

#include "bench_common.hpp"
#include "perf/device_profile.hpp"
#include "perf/kernel_costs.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header(
      "Figure 9 — efficiency across quantization configurations",
      "FPGA cost-model ratios, RegHD-8, normalized to full-precision RegHD.");

  struct Config {
    const char* label;
    bool quantized_cluster;
    perf::Precision query;
    perf::Precision model;
  };
  const Config configs[] = {
      {"full precision", false, perf::Precision::kReal, perf::Precision::kReal},
      {"quantized cluster", true, perf::Precision::kReal, perf::Precision::kReal},
      {"binary query - integer model", true, perf::Precision::kBinary,
       perf::Precision::kReal},
      {"integer query - binary model", true, perf::Precision::kReal,
       perf::Precision::kBinary},
      {"binary query - binary model", true, perf::Precision::kBinary,
       perf::Precision::kBinary},
  };

  const perf::DeviceProfile& fpga = perf::fpga_kintex7();
  constexpr std::size_t kSamples = 2000;
  constexpr std::size_t kEpochs = 20;

  auto shape_for = [](const Config& c) {
    perf::RegHDKernelShape shape;
    shape.dim = 4096;
    shape.models = 8;
    shape.features = 10;
    shape.rff_encoder = false;
    shape.quantized_cluster = c.quantized_cluster;
    shape.query = c.query;
    shape.model = c.model;
    return shape;
  };

  const auto base_train = perf::reghd_train_total(shape_for(configs[0]), kSamples, kEpochs);
  const auto base_infer = perf::reghd_infer_sample(shape_for(configs[0]));

  util::Table table({"configuration", "train speedup", "train energy eff.",
                     "infer speedup", "infer energy eff."});
  for (const auto& c : configs) {
    const auto train = perf::reghd_train_total(shape_for(c), kSamples, kEpochs);
    const auto infer = perf::reghd_infer_sample(shape_for(c));
    table.add_row(
        {c.label,
         util::Table::cell_ratio(fpga.time_ms(base_train) / fpga.time_ms(train)),
         util::Table::cell_ratio(fpga.energy_uj(base_train) / fpga.energy_uj(train)),
         util::Table::cell_ratio(fpga.time_ms(base_infer) / fpga.time_ms(infer)),
         util::Table::cell_ratio(fpga.energy_uj(base_infer) / fpga.energy_uj(infer))});
  }
  std::cout << table
            << "\nPaper reference (training): quantized cluster 1.9x/2.1x; binary query\n"
               "- integer model 1.4x/1.5x; binary-binary 1.6x/1.8x. Inference gains are\n"
               "larger (no cluster-update step): quantized cluster 2.0x/2.3x.\n";
  return 0;
}
