// Serving-runtime benchmark: tail latency and throughput of the shard-per-
// core server (serve/server.hpp) under Zipf-skewed load, emitted as
// BENCH_serving.json.
//
// Phases:
//   service_capacity  per-row cost of the two admission paths measured on
//                     the core APIs directly (fused predict_reusing vs
//                     standardize → arena encode → bank scan) — the
//                     scheduler-free upper bound on the batching win.
//   saturation        closed-loop throughput through the server: admission
//                     batching enabled (batch_threshold 4) vs forced
//                     single-query (threshold ∞), same shard count. The
//                     ratio is the headline "admission batcher ≥ 4×" check.
//   latency_curve     open-loop p50/p95/p99 vs offered load at fractions of
//                     the saturated rate, with the per-stage breakdown
//                     (queue wait / batch assembly / encode / bank scan)
//                     and the admission batch-size occupancy histogram from
//                     the obs/ stage timers.
//   publish_storm     the trainer publishing snapshots at 10 Hz under load:
//                     steady-state p99 without publishes vs p99 with the
//                     full train+publish pipeline active, plus publish →
//                     swap staleness. Target: storm p99 ≤ 2× steady p99.
//   no_alloc          global operator new is replaced in this TU and armed
//                     through serve/alloc_probe.hpp: any allocation inside
//                     the worker's drained-work section (either path) is
//                     counted. Target: zero.
//
// Latency methodology: open-loop arrivals follow an absolute schedule
// (bench_common OpenLoopPacer) and every latency is completion − scheduled
// time, so queries that queue behind a stall keep their full wait —
// coordinated-omission-safe (the recorder stores exact samples, no bucket
// error in the tail).
//
// Flags: --quick (CI-sized runs) --json PATH --dim D --features F
//        --models K --shards S --seed N
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "obs/telemetry.hpp"
#include "serve/alloc_probe.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"

namespace {

// --- no-alloc accounting: every allocation made while the serving worker is
// inside its drained-work section (flag set via the alloc probe) counts.
thread_local bool tls_in_predict_path = false;
std::atomic<std::uint64_t> g_predict_path_allocs{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  if (tls_in_predict_path) {
    g_predict_path_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    const std::size_t rounded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  } else {
    p = std::malloc(size == 0 ? 1 : size);
  }
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace reghd;

std::uint64_t now_ns() { return bench::OpenLoopPacer::now_ns(); }

struct BenchSetup {
  bool quick = false;
  std::string json_path = "BENCH_serving.json";
  std::size_t dim = 2048;
  // 32-feature readings: wide enough that per-row rematerialization (∝ F·D)
  // dominates the fused path while the bank scan amortizes it across the
  // admission group — the regime the admission batcher targets.
  std::size_t features = 32;
  std::size_t models = 4;
  std::size_t shards = 1;
  std::uint64_t seed = 17;
  std::size_t keys = 1024;
  double zipf_s = 1.1;
  bool resident = false;
};

core::OnlineConfig online_config(const BenchSetup& s) {
  core::OnlineConfig cfg;
  cfg.reghd.dim = s.dim;
  cfg.reghd.models = s.models;
  cfg.reghd.seed = s.seed;
  cfg.reghd.threads = 1;  // the shard worker is the parallelism unit
  cfg.requantize_every = 256;
  // The serving deployment configuration: no resident F×D projection
  // matrix — RFF rows are regenerated on the fly. A lone query pays the full
  // rematerialization; an admission batch regenerates each tile once for
  // the whole group, which is precisely the cost structure the admission
  // batcher exists to exploit (--resident measures the materialized-matrix
  // regime instead).
  if (!s.resident) {
    cfg.encoder.projection_storage = hdc::ProjectionStorage::kRematerialized;
  }
  return cfg;
}

serve::ServeConfig serve_config(const BenchSetup& s, std::size_t batch_threshold) {
  serve::ServeConfig cfg;
  cfg.shards = s.shards;
  cfg.batch_threshold = batch_threshold;
  // 128-row admission groups amortize the rematerialized projection harder
  // than the server's conservative 64-row default.
  cfg.max_batch = 128;
  cfg.publish_interval_ms = 0.0;  // phases opt into publishing explicitly
  cfg.publish_every_updates = std::size_t{1} << 30;
  return cfg;
}

core::OnlineRegHD pretrained(const BenchSetup& s, const data::Dataset& pool) {
  core::OnlineRegHD learner(online_config(s), pool.num_features());
  for (std::size_t i = 0; i < 1024; ++i) {
    const std::size_t r = i % pool.size();
    learner.update(pool.row(r), pool.target(r));
  }
  return learner;
}

struct DriveStats {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  double seconds = 0.0;

  [[nodiscard]] double qps() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

/// Closed loop: keep `inflight` requests outstanding, completing the oldest
/// to free a slot. Measures service capacity (what the server can absorb).
DriveStats run_closed_loop(serve::Server& server, const data::Dataset& pool,
                           bench::ZipfSampler& keys, std::size_t inflight,
                           double seconds) {
  std::vector<serve::RequestSlot> slots(inflight);
  std::deque<std::size_t> outstanding;
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < inflight; ++i) {
    free_slots.push_back(i);
  }
  DriveStats stats;
  const std::uint64_t t0 = now_ns();
  const auto deadline =
      t0 + static_cast<std::uint64_t>(seconds * 1e9);
  for (;;) {
    const bool closing = now_ns() >= deadline;
    if (!closing && !free_slots.empty()) {
      const std::size_t s = free_slots.back();
      free_slots.pop_back();
      const std::uint64_t key = keys.next();
      slots[s].reset();
      while (!server.try_predict(key, pool.row(key % pool.size()), &slots[s])) {
        // full ring = backpressure; spin until admitted
      }
      outstanding.push_back(s);
      continue;
    }
    if (outstanding.empty()) {
      break;  // closing and fully drained
    }
    const std::size_t s = outstanding.front();
    outstanding.pop_front();
    slots[s].wait();
    ++stats.completed;
    stats.errors += slots[s].error != 0 ? 1 : 0;
    free_slots.push_back(s);
  }
  stats.seconds = static_cast<double>(now_ns() - t0) / 1e9;
  return stats;
}

struct OpenLoopResult {
  bench::LatencyRecorder latency;
  DriveStats stats;
};

/// Open loop: arrivals on the pacer's absolute schedule; when the slot pool
/// is exhausted the driver blocks on the oldest request, but latencies are
/// still measured from each arrival's *scheduled* time (CO-safe). Every
/// `train_every`-th arrival additionally submits one fire-and-forget
/// training sample (0 disables training traffic).
OpenLoopResult run_open_loop(serve::Server& server, const data::Dataset& pool,
                             bench::ZipfSampler& keys, double rate_per_sec,
                             double seconds, std::uint64_t train_every) {
  constexpr std::size_t kSlotPool = 8192;
  std::vector<serve::RequestSlot> slots(kSlotPool);
  std::vector<std::uint64_t> scheduled(kSlotPool, 0);
  std::deque<std::size_t> outstanding;
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < kSlotPool; ++i) {
    free_slots.push_back(i);
  }
  OpenLoopResult result;
  const std::uint64_t t0 = now_ns();
  const bench::OpenLoopPacer pacer(rate_per_sec, t0);
  const auto deadline = t0 + static_cast<std::uint64_t>(seconds * 1e9);

  const auto complete = [&](std::size_t s) {
    const std::uint64_t done = slots[s].done_ns.load(std::memory_order_acquire);
    result.latency.record_ns(done > scheduled[s] ? done - scheduled[s] : 0);
    result.stats.errors += slots[s].error != 0 ? 1 : 0;
    ++result.stats.completed;
    free_slots.push_back(s);
  };

  for (std::uint64_t i = 0;; ++i) {
    const std::uint64_t sched = pacer.scheduled_ns(i);
    if (sched >= deadline) {
      break;
    }
    bench::OpenLoopPacer::wait_until(sched);
    while (!outstanding.empty() && slots[outstanding.front()].ready()) {
      complete(outstanding.front());
      outstanding.pop_front();
    }
    if (free_slots.empty()) {
      const std::size_t s = outstanding.front();
      outstanding.pop_front();
      slots[s].wait();
      complete(s);
    }
    const std::size_t s = free_slots.back();
    free_slots.pop_back();
    const std::uint64_t key = keys.next();
    slots[s].reset();
    scheduled[s] = sched;
    while (!server.try_predict(key, pool.row(key % pool.size()), &slots[s])) {
    }
    outstanding.push_back(s);
    if (train_every != 0 && i % train_every == 0) {
      const std::uint64_t tk = keys.next();
      (void)server.try_train(tk, pool.row(tk % pool.size()),
                             pool.target(tk % pool.size()));
    }
  }
  while (!outstanding.empty()) {
    const std::size_t s = outstanding.front();
    outstanding.pop_front();
    slots[s].wait();
    complete(s);
  }
  result.stats.seconds = static_cast<double>(now_ns() - t0) / 1e9;
  return result;
}

bench::JsonValue histo_json(const obs::HistogramSnapshot& h) {
  bench::JsonValue j = bench::JsonValue::object();
  j["count"] = bench::JsonValue::integer(static_cast<std::int64_t>(h.count));
  j["mean_ns"] = bench::JsonValue::number(h.mean_ns());
  j["p50_ns"] = bench::JsonValue::number(h.p50_ns());
  j["p95_ns"] = bench::JsonValue::number(h.p95_ns());
  j["p99_ns"] = bench::JsonValue::number(h.p99_ns());
  return j;
}

/// The admission batch-size occupancy histogram: power-of-two upper edges
/// (the obs bucket layout), only non-empty buckets emitted.
bench::JsonValue batch_fill_json(const obs::HistogramSnapshot& h) {
  bench::JsonValue j = bench::JsonValue::object();
  j["mean_rows"] = bench::JsonValue::number(h.mean_ns());  // unitless histo
  bench::JsonValue buckets = bench::JsonValue::object();
  for (std::size_t b = 0; b < obs::kHistoBuckets; ++b) {
    if (h.buckets[b] == 0) {
      continue;
    }
    const std::uint64_t upper = b == 0 ? 0 : (std::uint64_t{1} << b);
    buckets["le_" + std::to_string(upper)] =
        bench::JsonValue::integer(static_cast<std::int64_t>(h.buckets[b]));
  }
  j["rows_histogram"] = buckets;
  return j;
}

bench::JsonValue stage_breakdown_json(const obs::TelemetrySnapshot& snap) {
  bench::JsonValue stages = bench::JsonValue::object();
  stages["queue_wait"] = histo_json(snap.histogram(obs::Histo::kServeQueueWaitNs));
  stages["assemble"] = histo_json(snap.histogram(obs::Histo::kServeAssembleNs));
  stages["encode"] = histo_json(snap.histogram(obs::Histo::kServeEncodeNs));
  stages["bank_scan"] = histo_json(snap.histogram(obs::Histo::kServeScanNs));
  stages["e2e_worker"] = histo_json(snap.histogram(obs::Histo::kServePredictNs));
  return stages;
}

bench::JsonValue latency_json(const bench::LatencyRecorder& lat) {
  return lat.summary();
}

int run(const util::Args& args) {
  BenchSetup setup;
  setup.quick = args.get_bool("quick", false);
  setup.json_path = args.get_string("json", "BENCH_serving.json");
  setup.dim = static_cast<std::size_t>(args.get_int("dim", 2048));
  setup.features = static_cast<std::size_t>(args.get_int("features", 32));
  setup.models = static_cast<std::size_t>(args.get_int("models", 4));
  setup.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  setup.seed = static_cast<std::uint64_t>(args.get_int("seed", 17));
  setup.resident = args.get_bool("resident", false);

  const double measure_s = setup.quick ? 0.4 : 1.5;
  const double warmup_s = setup.quick ? 0.1 : 0.3;

  bench::print_header(
      "serving",
      "Shard-per-core serving runtime: admission-batched bank scan vs fused\n"
      "single-query path, open-loop tail latency, snapshot publish storms,\n"
      "and the predict-path no-allocation check.");

  // multimodal_task honors the requested feature width (friedman1 is fixed
  // at 10 features); the regime structure also gives the k models distinct
  // clusters to specialize on, like the paper's Fig. 3b task.
  const data::Dataset pool =
      data::make_multimodal_task(2048, setup.features, setup.models, setup.seed);
  const core::OnlineRegHD learner = pretrained(setup, pool);
  obs::set_enabled(true);

  bench::JsonValue root = bench::JsonValue::object();
  root["bench"] = bench::JsonValue::string("serving");
  {
    bench::JsonValue host = bench::JsonValue::object();
    host["hardware_concurrency"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(std::thread::hardware_concurrency()));
    const char* threads_env = std::getenv("REGHD_THREADS");
    host["reghd_threads_env"] =
        bench::JsonValue::string(threads_env != nullptr ? threads_env : "");
    host["quick"] = bench::JsonValue::boolean(setup.quick);
    root["host"] = host;
  }
  {
    bench::JsonValue cfg = bench::JsonValue::object();
    cfg["dim"] = bench::JsonValue::integer(static_cast<std::int64_t>(setup.dim));
    cfg["features"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(setup.features));
    cfg["models"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(setup.models));
    cfg["shards"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(setup.shards));
    cfg["keys"] = bench::JsonValue::integer(static_cast<std::int64_t>(setup.keys));
    cfg["zipf_s"] = bench::JsonValue::number(setup.zipf_s);
    cfg["max_batch"] = bench::JsonValue::integer(128);
    cfg["projection_storage"] = bench::JsonValue::string(
        setup.resident ? "resident" : "rematerialized");
    root["config"] = cfg;
  }

  // --- Phase: service_capacity (core paths, no server in the loop) -------
  {
    constexpr std::size_t kBatch = 64;
    const std::size_t nf = pool.num_features();
    std::vector<double> raw(kBatch * nf);
    for (std::size_t i = 0; i < kBatch; ++i) {
      const auto row = pool.row(i % pool.size());
      std::copy(row.begin(), row.end(), raw.begin() + i * nf);
    }
    std::vector<double> scaled(kBatch * nf);
    std::vector<double> out(kBatch);
    std::vector<double> single_scratch(nf);
    core::EncodedDataset arena;
    core::MultiModelRegressor::PredictScratch scratch;
    learner.model().prepare_predict_scratch(scratch);

    const auto budget_ns =
        static_cast<std::uint64_t>((setup.quick ? 0.1 : 0.3) * 1e9);
    const auto time_reps = [&](auto&& body) {
      // One untimed rep warms lazily-sized buffers out of the measurement.
      body();
      std::uint64_t reps = 0;
      const std::uint64_t t0 = now_ns();
      while (now_ns() - t0 < budget_ns) {
        body();
        ++reps;
      }
      return static_cast<double>(now_ns() - t0) / static_cast<double>(reps);
    };

    const double single_batch_ns = time_reps([&] {
      for (std::size_t i = 0; i < kBatch; ++i) {
        out[i] = learner.predict_reusing({raw.data() + i * nf, nf}, single_scratch);
      }
    });
    const double batched_batch_ns = time_reps([&] {
      learner.standardize_rows_into({raw.data(), kBatch * nf}, kBatch,
                                    {scaled.data(), kBatch * nf});
      arena.assign_rows(learner.encoder(), {scaled.data(), kBatch * nf}, kBatch, 1);
      learner.model().predict_batch_into(arena, {out.data(), kBatch}, scratch);
      for (std::size_t i = 0; i < kBatch; ++i) {
        out[i] = learner.unscale(out[i]);
      }
    });
    const double single_row_ns = single_batch_ns / kBatch;
    const double batched_row_ns = batched_batch_ns / kBatch;
    std::cout << "service capacity (batch " << kBatch << "): fused "
              << single_row_ns / 1e3 << " us/row, bank scan "
              << batched_row_ns / 1e3 << " us/row  ("
              << single_row_ns / batched_row_ns << "x)\n";
    bench::JsonValue j = bench::JsonValue::object();
    j["batch_rows"] = bench::JsonValue::integer(kBatch);
    j["single_ns_per_row"] = bench::JsonValue::number(single_row_ns);
    j["batched_ns_per_row"] = bench::JsonValue::number(batched_row_ns);
    j["core_path_speedup"] = bench::JsonValue::number(single_row_ns / batched_row_ns);
    root["service_capacity"] = j;
  }

  // --- Phase: saturation (closed loop through the server) ----------------
  double saturated_qps = 0.0;
  {
    constexpr std::size_t kInflight = 256;
    double batched_qps = 0.0;
    double single_qps = 0.0;
    for (const bool batched : {true, false}) {
      serve::Server server(
          serve_config(setup, batched ? 4 : std::numeric_limits<std::size_t>::max()),
          online_config(setup), pool.num_features());
      for (std::size_t s = 0; s < setup.shards; ++s) {
        server.bootstrap(s, learner);
      }
      server.start();
      bench::ZipfSampler keys(setup.keys, setup.zipf_s, setup.seed);
      (void)run_closed_loop(server, pool, keys, kInflight, warmup_s);
      const DriveStats stats =
          run_closed_loop(server, pool, keys, kInflight, measure_s);
      server.stop();
      (batched ? batched_qps : single_qps) = stats.qps();
      std::cout << "saturation " << (batched ? "batched" : "single-forced")
                << ": " << stats.qps() << " qps (" << stats.completed
                << " requests, " << stats.errors << " errors)\n";
    }
    saturated_qps = batched_qps;
    const double ratio = single_qps > 0.0 ? batched_qps / single_qps : 0.0;
    std::cout << "admission batching speedup at saturation: " << ratio << "x\n";
    bench::JsonValue j = bench::JsonValue::object();
    j["inflight"] = bench::JsonValue::integer(kInflight);
    j["batched_qps"] = bench::JsonValue::number(batched_qps);
    j["single_forced_qps"] = bench::JsonValue::number(single_qps);
    j["batched_over_single"] = bench::JsonValue::number(ratio);
    j["meets_4x_target"] = bench::JsonValue::boolean(ratio >= 4.0);
    root["saturation"] = j;
  }

  // --- Phase: latency curve (open loop at fractions of saturation) -------
  {
    serve::Server server(serve_config(setup, 4), online_config(setup),
                         pool.num_features());
    for (std::size_t s = 0; s < setup.shards; ++s) {
      server.bootstrap(s, learner);
    }
    server.start();
    bench::JsonValue curve = bench::JsonValue::object();
    const std::vector<double> fractions =
        setup.quick ? std::vector<double>{0.5}
                    : std::vector<double>{0.2, 0.5, 0.8};
    for (const double f : fractions) {
      const double rate = saturated_qps * f;
      bench::ZipfSampler keys(setup.keys, setup.zipf_s, setup.seed + 1);
      (void)run_open_loop(server, pool, keys, rate, warmup_s, 0);
      obs::reset();
      const OpenLoopResult r = run_open_loop(server, pool, keys, rate, measure_s, 0);
      const obs::TelemetrySnapshot snap = obs::snapshot();
      std::cout << "offered " << rate << " qps (" << f * 100 << "% of sat): p50 "
                << r.latency.percentile_ns(50) / 1e3 << " us, p99 "
                << r.latency.percentile_ns(99) / 1e3 << " us, errors "
                << r.stats.errors << "\n";
      bench::JsonValue point = bench::JsonValue::object();
      point["offered_qps"] = bench::JsonValue::number(rate);
      point["achieved_qps"] = bench::JsonValue::number(r.stats.qps());
      point["errors"] = bench::JsonValue::integer(
          static_cast<std::int64_t>(r.stats.errors));
      point["latency"] = latency_json(r.latency);
      point["stages"] = stage_breakdown_json(snap);
      point["batch_fill"] =
          batch_fill_json(snap.histogram(obs::Histo::kServeBatchFill));
      bench::JsonValue paths = bench::JsonValue::object();
      paths["batches"] = bench::JsonValue::integer(
          static_cast<std::int64_t>(snap.counter(obs::Counter::kServeBatches)));
      paths["batched_rows"] = bench::JsonValue::integer(
          static_cast<std::int64_t>(snap.counter(obs::Counter::kServeBatchRows)));
      paths["single_rows"] = bench::JsonValue::integer(
          static_cast<std::int64_t>(snap.counter(obs::Counter::kServeSingleRows)));
      point["paths"] = paths;
      curve["load_" + std::to_string(static_cast<int>(f * 100)) + "pct"] = point;
    }
    server.stop();
    root["latency_curve"] = curve;
  }

  // --- Phase: publish storm (trainer at 10 Hz under load) ----------------
  // Both runs carry identical predict + train traffic; the only difference
  // is whether the trainer publishes snapshots (10 Hz) or holds them back —
  // the p99 delta isolates the cost of publish + hot-swap, not of training.
  {
    const double rate = saturated_qps * 0.4;
    const double storm_s = setup.quick ? 0.6 : 2.0;
    constexpr std::uint64_t kTrainEvery = 8;
    double steady_p99 = 0.0;
    double storm_p99 = 0.0;
    bench::JsonValue j = bench::JsonValue::object();
    for (const bool storm : {false, true}) {
      serve::ServeConfig sc = serve_config(setup, 4);
      if (storm) {
        sc.publish_interval_ms = 100.0;  // 10 Hz whenever updates are pending
      }
      serve::Server server(sc, online_config(setup), pool.num_features());
      for (std::size_t s = 0; s < setup.shards; ++s) {
        server.bootstrap(s, learner);
      }
      server.start();
      bench::ZipfSampler keys(setup.keys, setup.zipf_s, setup.seed + 2);
      const std::uint64_t train_every = kTrainEvery;
      (void)run_open_loop(server, pool, keys, rate, warmup_s, train_every);
      obs::reset();
      const OpenLoopResult r =
          run_open_loop(server, pool, keys, rate, storm_s, train_every);
      const obs::TelemetrySnapshot snap = obs::snapshot();
      server.stop();
      const double p99 = r.latency.percentile_ns(99);
      (storm ? storm_p99 : steady_p99) = p99;
      std::cout << (storm ? "publish storm" : "steady state") << " @ " << rate
                << " qps: p99 " << p99 / 1e3 << " us\n";
      if (storm) {
        j["publishes"] = bench::JsonValue::integer(static_cast<std::int64_t>(
            snap.counter(obs::Counter::kServeSnapshotPublishes)));
        j["swaps"] = bench::JsonValue::integer(static_cast<std::int64_t>(
            snap.counter(obs::Counter::kServeSnapshotSwaps)));
        j["train_applied"] = bench::JsonValue::integer(static_cast<std::int64_t>(
            snap.counter(obs::Counter::kServeTrainApplied)));
        j["staleness"] = histo_json(snap.histogram(obs::Histo::kServeStalenessNs));
        j["publish"] = histo_json(snap.histogram(obs::Histo::kServePublishNs));
      }
    }
    const double ratio = steady_p99 > 0.0 ? storm_p99 / steady_p99 : 0.0;
    std::cout << "publish-storm p99 inflation: " << ratio << "x\n";
    j["offered_qps"] = bench::JsonValue::number(rate);
    j["steady_p99_ns"] = bench::JsonValue::number(steady_p99);
    j["storm_p99_ns"] = bench::JsonValue::number(storm_p99);
    j["storm_over_steady"] = bench::JsonValue::number(ratio);
    j["meets_2x_target"] = bench::JsonValue::boolean(ratio <= 2.0);
    root["publish_storm"] = j;
  }

  // --- Phase: no_alloc (probe-armed traffic through both paths) ----------
  {
    serve::Server server(serve_config(setup, 4), online_config(setup),
                         pool.num_features());
    for (std::size_t s = 0; s < setup.shards; ++s) {
      server.bootstrap(s, learner);
    }
    server.start();
    bench::ZipfSampler keys(setup.keys, setup.zipf_s, setup.seed + 3);
    // Warm every buffer to steady state before arming, then count.
    (void)run_closed_loop(server, pool, keys, 64, warmup_s);
    (void)run_closed_loop(server, pool, keys, 1, warmup_s);
    g_predict_path_allocs.store(0, std::memory_order_relaxed);
    serve::set_predict_path_probe(
        +[](bool entering) { tls_in_predict_path = entering; });
    const DriveStats batch_stats =
        run_closed_loop(server, pool, keys, 64, setup.quick ? 0.2 : 0.5);
    const DriveStats single_stats =
        run_closed_loop(server, pool, keys, 1, setup.quick ? 0.2 : 0.5);
    serve::set_predict_path_probe(nullptr);
    server.stop();
    const std::uint64_t allocs =
        g_predict_path_allocs.load(std::memory_order_relaxed);
    std::cout << "no-alloc check: " << allocs << " allocations across "
              << batch_stats.completed + single_stats.completed
              << " probed requests (both paths)\n";
    bench::JsonValue j = bench::JsonValue::object();
    j["probed_requests"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(batch_stats.completed + single_stats.completed));
    j["predict_path_allocs"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(allocs));
    j["clean"] = bench::JsonValue::boolean(allocs == 0);
    root["no_alloc"] = j;
  }

  obs::set_enabled(false);
  return bench::write_json_file(setup.json_path, root) ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "serving bench error: " << e.what() << "\n";
    return 2;
  }
}
