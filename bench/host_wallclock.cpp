// Host-CPU wall-clock comparison (the paper's §4.1 "In software, we verified
// RegHD functionality using C++ implementation"): actual fit() and
// predict_batch() times of every learner on this machine, on one shared
// workload. Complements the device cost models with measured numbers — on a
// superscalar host the FPGA's bit-level advantages shrink, which is exactly
// why the paper targets FPGAs.
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/baseline_hd.hpp"
#include "baselines/decision_tree.hpp"
#include "baselines/knn.hpp"
#include "baselines/linear.hpp"
#include "baselines/mlp.hpp"
#include "baselines/svr.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace reghd;
  bench::print_header("Host wall-clock — all learners on one workload",
                      "airfoil-like workload; fit + batch-predict times on this machine.");

  const bench::Workload workload = bench::make_workload("airfoil", 0x77A11);

  std::vector<std::unique_ptr<model::Regressor>> learners;
  learners.push_back(std::make_unique<baselines::LinearRegression>());
  learners.push_back(std::make_unique<baselines::DecisionTree>());
  learners.push_back(std::make_unique<baselines::KnnRegressor>());
  learners.push_back(std::make_unique<baselines::Svr>());
  {
    baselines::MlpConfig cfg;
    cfg.hidden = {128, 64};
    learners.push_back(std::make_unique<baselines::Mlp>(cfg));
  }
  {
    baselines::BaselineHdConfig cfg;
    cfg.dim = bench::kQualityDim;
    cfg.bins = 32;
    learners.push_back(std::make_unique<baselines::BaselineHd>(cfg));
  }
  learners.push_back(std::make_unique<core::RegHDPipeline>(bench::reghd_config(8)));
  {
    auto cfg = bench::reghd_config(8);
    cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
    cfg.reghd.query_precision = core::QueryPrecision::kBinary;
    learners.push_back(std::make_unique<core::RegHDPipeline>(cfg));
  }

  util::Table table({"learner", "fit (ms)", "predict/sample (us)", "test MSE"});
  for (auto& learner : learners) {
    util::Stopwatch fit_watch;
    learner->fit(workload.train);
    const double fit_ms = fit_watch.elapsed_milliseconds();

    util::Stopwatch predict_watch;
    const std::vector<double> predictions = learner->predict_batch(workload.test);
    const double per_sample_us =
        predict_watch.elapsed_microseconds() / static_cast<double>(workload.test.size());

    table.add_row({learner->name(), util::Table::cell(fit_ms, 1),
                   util::Table::cell(per_sample_us, 1),
                   util::Table::cell(util::mse(predictions, workload.test.targets()), 2)});
  }
  std::cout << table
            << "\nNote: host CPUs lack the FPGA's wide bit-level parallelism, so the\n"
               "quantized configuration's advantage here is smaller than in Fig. 8/9 —\n"
               "the reason the paper pairs the algorithm with custom hardware.\n";
  return 0;
}
