// checkpoint_torture — kill-and-resume harness for the crash-safe
// checkpoint subsystem (core/checkpoint).
//
// The harness runs an online RegHD stream twice over the same synthetic
// data:
//
//  1. an uninterrupted reference run, and
//  2. a tortured run that is "killed" --kills times at random points
//     (dropping all state that was not checkpointed), resuming each time
//     from the newest valid checkpoint via CheckpointManager::recover().
//
// On a rotating schedule the checkpoint written right before a kill is
// damaged through the fault-injection hooks (truncation, bit flips, short
// writes — silent storage corruption the writer never notices), so recovery
// must detect the damage via CRC32C and fall back to an older checkpoint,
// replaying the lost samples. A detected-failure case (kFailAt: the write
// syscall itself errors) is exercised too, asserting that a failed save
// never damages existing checkpoints.
//
// Success criteria, both enforced:
//  * the tortured run's final serialized state is BIT-IDENTICAL to the
//    reference run's, and
//  * every injected corruption is detected as a typed util::FormatError
//    when the damaged file is loaded directly.
//
//   checkpoint_torture [--kills 10] [--rows 1200] [--every 64] [--seed 7]
//                      [--dim 512] [--models 4] [--dir PATH]
//
// Exit status: 0 on success, 1 on any mismatch or undetected corruption.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/reghd.hpp"
#include "data/synthetic.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/fault_injection.hpp"
#include "util/framing.hpp"
#include "util/random.hpp"

namespace {

using namespace reghd;
namespace fs = std::filesystem;

std::string serialize(const core::OnlineRegHD& learner) {
  std::ostringstream out(std::ios::binary);
  core::save_online_checkpoint(out, learner);
  return out.str();
}

int fail(const std::string& message) {
  std::cerr << "checkpoint_torture: FAIL — " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto kills = static_cast<std::size_t>(args.get_int("kills", 10));
  const auto rows = static_cast<std::size_t>(args.get_int("rows", 1200));
  const auto every = static_cast<std::size_t>(args.get_int("every", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string dir = args.get_string(
      "dir", (fs::temp_directory_path() / "reghd-torture").string());

  core::OnlineConfig cfg;
  cfg.reghd.dim = static_cast<std::size_t>(args.get_int("dim", 512));
  cfg.reghd.models = static_cast<std::size_t>(args.get_int("models", 4));
  cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
  cfg.reghd.seed = seed;
  cfg.requantize_every = 96;  // off-cadence with --every: snapshots go stale

  try {
    const data::Dataset dataset = data::make_friedman1(rows, 123);

    // Reference: the stream that never crashes.
    core::OnlineRegHD reference(cfg, dataset.num_features());
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      reference.update(dataset.row(i), dataset.target(i));
    }
    const std::string reference_bytes = serialize(reference);

    fs::remove_all(dir);
    core::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dir = dir;
    ckpt_cfg.keep_last = 3;
    ckpt_cfg.every = every;

    // Detected-failure case: a save whose write syscall errors must throw
    // and must not disturb the checkpoint directory.
    {
      core::CheckpointManager manager(ckpt_cfg);
      core::OnlineRegHD probe(cfg, dataset.num_features());
      for (std::size_t i = 0; i < every; ++i) {
        probe.update(dataset.row(i), dataset.target(i));
      }
      manager.save(probe);
      const auto before = manager.checkpoints();
      manager.set_fault_plan({util::FaultMode::kFailAt, 100, seed});
      bool threw = false;
      try {
        manager.save(probe);
      } catch (const util::IoError&) {
        threw = true;
      }
      if (!threw) {
        return fail("kFailAt save did not raise util::IoError");
      }
      if (manager.checkpoints() != before) {
        return fail("failed save changed the checkpoint set");
      }
      fs::remove_all(dir);
    }

    const util::FaultMode silent_modes[] = {util::FaultMode::kTruncateAt,
                                            util::FaultMode::kBitFlipAt,
                                            util::FaultMode::kShortWrite};
    util::Rng rng(seed ^ 0x7041A7UL);
    std::size_t corruptions = 0;
    std::size_t detected = 0;

    for (std::size_t cycle = 0; cycle <= kills; ++cycle) {
      core::CheckpointManager manager(ckpt_cfg);
      std::optional<core::OnlineRegHD> learner = manager.recover();
      if (!learner) {
        learner.emplace(cfg, dataset.num_features());
      }
      const std::size_t start = learner->samples_seen();
      const bool final_pass = cycle == kills;
      const std::size_t stop =
          final_pass ? dataset.size()
                     : std::min(dataset.size(),
                                start + 1 + rng.uniform_index(dataset.size() / 4 + 1));
      for (std::size_t i = start; i < stop; ++i) {
        learner->update(dataset.row(i), dataset.target(i));
        manager.maybe_save(*learner);
      }
      if (final_pass) {
        const std::string tortured_bytes = serialize(*learner);
        if (tortured_bytes != reference_bytes) {
          return fail("resumed stream state is not bit-identical to the reference");
        }
        break;
      }

      // Every other kill: the last checkpoint before the crash lands on
      // storage silently damaged. Recovery next cycle must reject it.
      if (cycle % 2 == 0) {
        const util::FaultMode mode = silent_modes[corruptions % 3];
        const std::size_t size = serialize(*learner).size();
        const auto at = rng.uniform_index(size);
        manager.set_fault_plan({mode, at, seed + cycle});
        const std::string path = manager.save(*learner);
        ++corruptions;
        try {
          std::istringstream in(util::read_file_bytes(path), std::ios::binary);
          (void)core::load_online_checkpoint(in);
          return fail("corrupted checkpoint (" + util::to_string(mode) + " at byte " +
                      std::to_string(at) + ") loaded without error: " + path);
        } catch (const util::FormatError&) {
          ++detected;  // the required typed error
        }
      }
      // "kill -9": the learner is dropped; un-checkpointed progress is lost.
    }

    if (detected != corruptions) {
      return fail("only " + std::to_string(detected) + "/" + std::to_string(corruptions) +
                  " corruptions raised typed errors");
    }
    std::cout << "checkpoint_torture: OK — " << kills << " kill/resume cycles, "
              << corruptions << "/" << corruptions
              << " injected corruptions detected, final state bit-identical\n";
    fs::remove_all(dir);
    return 0;
  } catch (const std::exception& e) {
    return fail(std::string("unexpected exception: ") + e.what());
  }
}
