// make_golden — regenerates the committed golden model blobs under
// tests/golden/ that pin the on-disk format (see DESIGN.md).
//
// Produces, deterministically (fixed seeds, threads = 1):
//   pipeline_v1.reghd — a trained pipeline in the legacy v1 container
//   pipeline_v2.reghd — the same pipeline in the v2 checksummed container
//   online_v2.reghd   — a full online-learner checkpoint (file kind ONLN)
//   queries.txt       — query rows, hexfloat, "count features" header
//   predictions.txt   — per query: "<pipeline pred> <online pred>" hexfloat
//
// Run from the repository root after any INTENTIONAL format change:
//   build/tools/make_golden --dir tests/golden
// and commit the result. core_golden_model_test then fails on any
// UNINTENTIONAL change to how existing blobs parse or predict.
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/reghd.hpp"
#include "data/synthetic.hpp"
#include "util/args.hpp"

namespace {

using namespace reghd;

void write_binary(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("cannot write " + path.string());
  }
  std::cout << "wrote " << path.string() << " (" << bytes.size() << " bytes)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::filesystem::path dir = args.get_string("dir", "tests/golden");
  try {
    std::filesystem::create_directories(dir);

    // Small on purpose: the blobs are committed, and format stability does
    // not depend on scale.
    core::PipelineConfig cfg;
    cfg.reghd.dim = 256;
    cfg.reghd.models = 4;
    cfg.reghd.max_epochs = 12;
    cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
    cfg.reghd.model_precision = core::ModelPrecision::kTernary;
    cfg.reghd.seed = 42;
    cfg.reghd.threads = 1;

    const data::Dataset train = data::make_friedman1(256, 7);
    core::RegHDPipeline pipeline(cfg);
    pipeline.fit(train);

    std::ostringstream v1(std::ios::binary);
    core::save_pipeline_v1(v1, pipeline);
    write_binary(dir / "pipeline_v1.reghd", v1.str());

    std::ostringstream v2(std::ios::binary);
    core::save_pipeline(v2, pipeline);
    write_binary(dir / "pipeline_v2.reghd", v2.str());

    core::OnlineConfig online_cfg;
    online_cfg.reghd = cfg.reghd;
    online_cfg.requantize_every = 64;
    online_cfg.decay = 0.999;
    core::OnlineRegHD learner(online_cfg, train.num_features());
    for (std::size_t i = 0; i < 200; ++i) {
      learner.update(train.row(i), train.target(i));
    }
    std::ostringstream online(std::ios::binary);
    core::save_online_checkpoint(online, learner);
    write_binary(dir / "online_v2.reghd", online.str());

    const data::Dataset queries = data::make_friedman1(8, 99);
    std::ofstream qf(dir / "queries.txt");
    std::ofstream pf(dir / "predictions.txt");
    qf << std::hexfloat;
    pf << std::hexfloat;
    qf << queries.size() << " " << queries.num_features() << "\n";
    for (std::size_t i = 0; i < queries.size(); ++i) {
      for (const double x : queries.row(i)) {
        qf << x << " ";
      }
      qf << "\n";
      pf << pipeline.predict(queries.row(i)) << " "
         << learner.predict(queries.row(i)) << "\n";
    }
    if (!qf || !pf) {
      throw std::runtime_error("cannot write query/prediction text files");
    }
    std::cout << "wrote " << (dir / "queries.txt").string() << " and "
              << (dir / "predictions.txt").string() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "make_golden: error: " << e.what() << "\n";
    return 2;
  }
}
