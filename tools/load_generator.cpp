// load_generator — drives a live serving runtime (serve/server.hpp) with
// Zipf-skewed tenant/key traffic and reports client-observed latency.
//
//   load_generator [--shards N] [--rate QPS] [--concurrency C]
//                  [--duration-s S] [--features F] [--dim D] [--models K]
//                  [--keys N] [--zipf-s S] [--train-every N] [--pretrain N]
//                  [--batch-threshold N] [--quantized] [--seed S]
//                  [--tenants N] [--resident-budget N] [--tenant-spill-dir P]
//                  [--json PATH] [--assert-p99-ms X] [--assert-zero-errors]
//
// Two driver modes:
//   --rate 0  (default) closed loop: keep --concurrency requests in flight;
//             latency is measured submit → completion. Measures capacity.
//   --rate R  open loop: arrivals on an absolute schedule at R requests/s
//             (bench_common OpenLoopPacer); latency is measured *scheduled*
//             arrival → completion, so stalls keep their full wait —
//             coordinated-omission-safe. Measures tail latency at load.
//
// --train-every N interleaves one fire-and-forget online training sample
// every N requests, exercising the trainer + snapshot-publish pipeline under
// the same load. The workload is the synthetic friedman1 stream (keys map to
// rows); the server is pre-trained with --pretrain updates before traffic.
//
// --tenants N switches the server into tenant mode: every key is a tenant id
// drawn Zipf-skewed from {0..N-1}, each owning its own model in a per-shard
// TenantStore bounded to --resident-budget resident tenants (LRU eviction
// through the checkpoint spiller). There is no pretrained bootstrap in this
// mode — tenants learn from the interleaved --train-every traffic — and the
// run reports activation/eviction/hit-rate stats alongside latency.
//
// --assert-p99-ms / --assert-zero-errors turn the run into a pass/fail gate
// (CI serving smoke): exit 1 when violated, 0 otherwise.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/online.hpp"
#include "data/synthetic.hpp"
#include "obs/telemetry.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace reghd;

struct RunResult {
  bench::LatencyRecorder latency;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t trained = 0;
  double seconds = 0.0;
};

std::uint64_t now_ns() { return bench::OpenLoopPacer::now_ns(); }

/// Closed loop: a full window of in-flight requests, oldest-first harvest.
RunResult drive_closed(serve::Server& server, const data::Dataset& pool,
                       bench::ZipfSampler& keys, std::size_t concurrency,
                       double seconds, std::uint64_t train_every) {
  std::vector<serve::RequestSlot> slots(concurrency);
  std::vector<std::uint64_t> submit_ns(concurrency, 0);
  std::deque<std::size_t> outstanding;
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < concurrency; ++i) {
    free_slots.push_back(i);
  }
  RunResult r;
  std::uint64_t submitted = 0;
  const std::uint64_t t0 = now_ns();
  const auto deadline = t0 + static_cast<std::uint64_t>(seconds * 1e9);
  for (;;) {
    const bool closing = now_ns() >= deadline;
    if (!closing && !free_slots.empty()) {
      const std::size_t s = free_slots.back();
      free_slots.pop_back();
      const std::uint64_t key = keys.next();
      slots[s].reset();
      submit_ns[s] = now_ns();
      while (!server.try_predict(key, pool.row(key % pool.size()), &slots[s])) {
      }
      outstanding.push_back(s);
      if (train_every != 0 && submitted % train_every == 0) {
        const std::uint64_t tk = keys.next();
        r.trained += server.try_train(tk, pool.row(tk % pool.size()),
                                      pool.target(tk % pool.size()))
                         ? 1
                         : 0;
      }
      ++submitted;
      continue;
    }
    if (outstanding.empty()) {
      break;
    }
    const std::size_t s = outstanding.front();
    outstanding.pop_front();
    slots[s].wait();
    const std::uint64_t done = slots[s].done_ns.load(std::memory_order_acquire);
    r.latency.record_ns(done > submit_ns[s] ? done - submit_ns[s] : 0);
    r.errors += slots[s].error != 0 ? 1 : 0;
    ++r.completed;
    free_slots.push_back(s);
  }
  r.seconds = static_cast<double>(now_ns() - t0) / 1e9;
  return r;
}

/// Open loop on the pacer's absolute schedule; latency from scheduled time.
RunResult drive_open(serve::Server& server, const data::Dataset& pool,
                     bench::ZipfSampler& keys, double rate, std::size_t concurrency,
                     double seconds, std::uint64_t train_every) {
  const std::size_t pool_size = std::max<std::size_t>(concurrency, 1024);
  std::vector<serve::RequestSlot> slots(pool_size);
  std::vector<std::uint64_t> scheduled(pool_size, 0);
  std::deque<std::size_t> outstanding;
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < pool_size; ++i) {
    free_slots.push_back(i);
  }
  RunResult r;
  const std::uint64_t t0 = now_ns();
  const bench::OpenLoopPacer pacer(rate, t0);
  const auto deadline = t0 + static_cast<std::uint64_t>(seconds * 1e9);
  const auto complete = [&](std::size_t s) {
    const std::uint64_t done = slots[s].done_ns.load(std::memory_order_acquire);
    r.latency.record_ns(done > scheduled[s] ? done - scheduled[s] : 0);
    r.errors += slots[s].error != 0 ? 1 : 0;
    ++r.completed;
    free_slots.push_back(s);
  };
  for (std::uint64_t i = 0;; ++i) {
    const std::uint64_t sched = pacer.scheduled_ns(i);
    if (sched >= deadline) {
      break;
    }
    bench::OpenLoopPacer::wait_until(sched);
    while (!outstanding.empty() && slots[outstanding.front()].ready()) {
      complete(outstanding.front());
      outstanding.pop_front();
    }
    if (free_slots.empty()) {
      const std::size_t s = outstanding.front();
      outstanding.pop_front();
      slots[s].wait();
      complete(s);
    }
    const std::size_t s = free_slots.back();
    free_slots.pop_back();
    const std::uint64_t key = keys.next();
    slots[s].reset();
    scheduled[s] = sched;
    while (!server.try_predict(key, pool.row(key % pool.size()), &slots[s])) {
    }
    outstanding.push_back(s);
    if (train_every != 0 && i % train_every == 0) {
      const std::uint64_t tk = keys.next();
      r.trained += server.try_train(tk, pool.row(tk % pool.size()),
                                    pool.target(tk % pool.size()))
                       ? 1
                       : 0;
    }
  }
  while (!outstanding.empty()) {
    const std::size_t s = outstanding.front();
    outstanding.pop_front();
    slots[s].wait();
    complete(s);
  }
  r.seconds = static_cast<double>(now_ns() - t0) / 1e9;
  return r;
}

int run(const util::Args& args) {
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 1));
  const double rate = args.get_double("rate", 0.0);
  const auto concurrency = static_cast<std::size_t>(args.get_int("concurrency", 32));
  const double duration_s = args.get_double("duration-s", 10.0);
  const auto features = static_cast<std::size_t>(args.get_int("features", 16));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 1024));
  const auto models = static_cast<std::size_t>(args.get_int("models", 4));
  const auto num_keys = static_cast<std::size_t>(args.get_int("keys", 1024));
  const double zipf_s = args.get_double("zipf-s", 1.0);
  const auto train_every = static_cast<std::uint64_t>(args.get_int("train-every", 0));
  const auto pretrain = static_cast<std::size_t>(args.get_int("pretrain", 512));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto tenants = static_cast<std::size_t>(args.get_int("tenants", 0));

  core::OnlineConfig online;
  online.reghd.dim = dim;
  online.reghd.models = models;
  online.reghd.seed = seed;
  online.reghd.threads = 1;
  online.requantize_every = 256;
  if (args.get_bool("quantized", false)) {
    online.reghd.cluster_mode = core::ClusterMode::kQuantized;
    online.reghd.query_precision = core::QueryPrecision::kBinary;
    online.reghd.model_precision = core::ModelPrecision::kTernary;
  }

  serve::ServeConfig sc;
  sc.shards = shards;
  sc.batch_threshold = static_cast<std::size_t>(args.get_int("batch-threshold", 4));
  sc.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 64));
  sc.publish_interval_ms = args.get_double("publish-interval-ms", 100.0);
  sc.checkpoint_dir = args.get_string("checkpoint-dir", "");
  if (tenants > 0) {
    serve::TenantStoreConfig tc;
    tc.resident_budget =
        static_cast<std::size_t>(args.get_int("resident-budget", 1024));
    tc.spill_dir = args.get_string("tenant-spill-dir", "");
    sc.tenant = tc;
  }

  const data::Dataset pool = data::make_friedman1(2048, features);
  core::OnlineRegHD learner(online, pool.num_features());
  for (std::size_t i = 0; i < pretrain; ++i) {
    const std::size_t r = i % pool.size();
    learner.update(pool.row(r), pool.target(r));
  }

  obs::set_enabled(true);
  serve::Server server(sc, online, pool.num_features());
  if (tenants == 0) {
    for (std::size_t s = 0; s < shards; ++s) {
      server.bootstrap(s, learner);
    }
  }
  server.start();

  bench::ZipfSampler keys(tenants > 0 ? tenants : num_keys, zipf_s, seed);
  std::cout << "load_generator: " << shards << " shard(s), "
            << (rate > 0.0 ? "open loop @ " + std::to_string(rate) + " qps"
                           : "closed loop x" + std::to_string(concurrency))
            << ", " << duration_s << " s, zipf(" << zipf_s << ") over "
            << (tenants > 0 ? tenants : num_keys)
            << (tenants > 0 ? " tenants\n" : " keys\n");
  const RunResult r =
      rate > 0.0
          ? drive_open(server, pool, keys, rate, concurrency, duration_s, train_every)
          : drive_closed(server, pool, keys, concurrency, duration_s, train_every);
  server.stop();
  serve::TenantStoreStats tstats;
  if (tenants > 0) {
    for (std::size_t s = 0; s < shards; ++s) {
      const serve::TenantStoreStats ss = server.tenant_stats(s);
      tstats.hits += ss.hits;
      tstats.misses += ss.misses;
      tstats.activations += ss.activations;
      tstats.reactivations += ss.reactivations;
      tstats.evictions += ss.evictions;
      tstats.promotions += ss.promotions;
      tstats.spill_discards += ss.spill_discards;
      tstats.resident += ss.resident;
      tstats.spilled += ss.spilled;
      tstats.resident_bytes += ss.resident_bytes;
      tstats.spill_bytes += ss.spill_bytes;
    }
  }
  const obs::TelemetrySnapshot snap = obs::snapshot();
  obs::set_enabled(false);

  const double qps = r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;
  util::Table table({"metric", "value"});
  table.add_row({"completed", std::to_string(r.completed)});
  table.add_row({"errors", std::to_string(r.errors)});
  table.add_row({"train submitted", std::to_string(r.trained)});
  table.add_row({"throughput qps", util::Table::cell(qps, 1)});
  table.add_row({"p50 ms", util::Table::cell(r.latency.percentile_ns(50) / 1e6, 3)});
  table.add_row({"p95 ms", util::Table::cell(r.latency.percentile_ns(95) / 1e6, 3)});
  table.add_row({"p99 ms", util::Table::cell(r.latency.percentile_ns(99) / 1e6, 3)});
  table.add_row({"max ms", util::Table::cell(r.latency.max_ns() / 1e6, 3)});
  table.add_row({"queue rejects",
                 std::to_string(snap.counter(obs::Counter::kServeQueueRejects))});
  table.add_row({"batched rows",
                 std::to_string(snap.counter(obs::Counter::kServeBatchRows))});
  table.add_row({"single rows",
                 std::to_string(snap.counter(obs::Counter::kServeSingleRows))});
  table.add_row({"train applied",
                 std::to_string(snap.counter(obs::Counter::kServeTrainApplied))});
  table.add_row({"snapshot publishes",
                 std::to_string(snap.counter(obs::Counter::kServeSnapshotPublishes))});
  table.add_row({"snapshot swaps",
                 std::to_string(snap.counter(obs::Counter::kServeSnapshotSwaps))});
  if (tenants > 0) {
    const double lookups = static_cast<double>(tstats.hits + tstats.misses);
    table.add_row({"tenant hit rate",
                   util::Table::cell(lookups > 0.0
                                         ? static_cast<double>(tstats.hits) / lookups
                                         : 0.0,
                                     4)});
    table.add_row({"tenant activations", std::to_string(tstats.activations)});
    table.add_row({"tenant reactivations", std::to_string(tstats.reactivations)});
    table.add_row({"tenant evictions", std::to_string(tstats.evictions)});
    table.add_row({"tenant resident", std::to_string(tstats.resident)});
    table.add_row({"tenant resident bytes", std::to_string(tstats.resident_bytes)});
  }
  std::cout << table;

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    bench::JsonValue root = bench::JsonValue::object();
    root["tool"] = bench::JsonValue::string("load_generator");
    root["host_hardware_concurrency"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(std::thread::hardware_concurrency()));
    root["mode"] = bench::JsonValue::string(rate > 0.0 ? "open" : "closed");
    root["offered_qps"] = bench::JsonValue::number(rate);
    root["shards"] = bench::JsonValue::integer(static_cast<std::int64_t>(shards));
    root["duration_s"] = bench::JsonValue::number(r.seconds);
    root["completed"] =
        bench::JsonValue::integer(static_cast<std::int64_t>(r.completed));
    root["errors"] = bench::JsonValue::integer(static_cast<std::int64_t>(r.errors));
    root["achieved_qps"] = bench::JsonValue::number(qps);
    root["latency"] = r.latency.summary();
    bench::JsonValue counters = bench::JsonValue::object();
    counters["queue_rejects"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(snap.counter(obs::Counter::kServeQueueRejects)));
    counters["batched_rows"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(snap.counter(obs::Counter::kServeBatchRows)));
    counters["single_rows"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(snap.counter(obs::Counter::kServeSingleRows)));
    counters["train_applied"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(snap.counter(obs::Counter::kServeTrainApplied)));
    counters["snapshot_publishes"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(
            snap.counter(obs::Counter::kServeSnapshotPublishes)));
    counters["snapshot_swaps"] = bench::JsonValue::integer(
        static_cast<std::int64_t>(snap.counter(obs::Counter::kServeSnapshotSwaps)));
    root["serve_counters"] = counters;
    if (tenants > 0) {
      bench::JsonValue tb = bench::JsonValue::object();
      tb["tenants"] = bench::JsonValue::integer(static_cast<std::int64_t>(tenants));
      tb["resident_budget"] = bench::JsonValue::integer(
          static_cast<std::int64_t>(sc.tenant->resident_budget));
      tb["hits"] = bench::JsonValue::integer(static_cast<std::int64_t>(tstats.hits));
      tb["misses"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.misses));
      tb["activations"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.activations));
      tb["reactivations"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.reactivations));
      tb["evictions"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.evictions));
      tb["promotions"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.promotions));
      tb["spill_discards"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.spill_discards));
      tb["resident"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.resident));
      tb["resident_bytes"] =
          bench::JsonValue::integer(static_cast<std::int64_t>(tstats.resident_bytes));
      root["tenant"] = tb;
    }
    if (!bench::write_json_file(json_path, root)) {
      return 2;
    }
  }

  int status = 0;
  if (args.get_bool("assert-zero-errors", false) && r.errors != 0) {
    std::cerr << "ASSERT FAILED: " << r.errors << " errored requests\n";
    status = 1;
  }
  if (args.has("assert-p99-ms")) {
    const double bound = args.get_double("assert-p99-ms", 0.0);
    const double p99_ms = r.latency.percentile_ns(99) / 1e6;
    if (p99_ms > bound) {
      std::cerr << "ASSERT FAILED: p99 " << p99_ms << " ms > bound " << bound
                << " ms\n";
      status = 1;
    }
  }
  if (r.completed == 0) {
    std::cerr << "ASSERT FAILED: no requests completed\n";
    status = 1;
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "load_generator error: " << e.what() << "\n";
    return 2;
  }
}
