// reghd — command-line front end for training, evaluating, and serving RegHD
// models on CSV data.
//
//   reghd train   --csv data.csv --out model.bin [--models 8] [--dim 4096]
//                 [--alpha 0.15] [--quantized] [--binary-query] [--binary-model]
//                 [--test-fraction 0.25] [--seed 42] [--target-col -1]
//                 [--batch B] [--checkpoint-dir DIR --checkpoint-every EPOCHS]
//                 [--shards S] [--refine-epochs R]
//                 (--batch B trains in deterministic batch-frozen mini-batches
//                 of B samples, parallelized over --threads workers; results
//                 depend only on B, and B = 1 matches the default online
//                 sample-by-sample training bit for bit; --shards S trains S
//                 independent replicas on disjoint shards in parallel and
//                 merges them by HD bundling, --refine-epochs R adds R
//                 sequential full-data epochs after the merge — see
//                 core/sharded_training.hpp)
//   reghd eval    --csv data.csv --model model.bin [--target-col -1]
//   reghd predict --csv data.csv --model model.bin [--target-col -1]
//                 (prints one prediction per input row; rows are encoded and
//                 predicted in parallel via the batched pipeline path)
//   reghd stream  --csv data.csv [--checkpoint-dir DIR] [--checkpoint-every N]
//                 [--resume] [--out model.bin]
//                 (prequential online learning, row by row; with
//                 --checkpoint-dir the full stream state is checkpointed
//                 atomically every N updates, and --resume restarts from the
//                 newest valid checkpoint, replaying only the rows after it —
//                 the resumed model is bit-identical to an uninterrupted run)
//   reghd serve   --csv data.csv [--shards S] [--batch-threshold N]
//                 [--max-batch N] [--train-every N] [--publish-interval-ms M]
//                 [--checkpoint-dir DIR]
//                 (replays the CSV through the shard-per-core serving runtime:
//                 every row is a predict request routed by key to a shard
//                 worker — admission-batched onto the bank-scan path when the
//                 queue is deep, fused single-query otherwise — and every Nth
//                 row also feeds the shard's online trainer, which publishes
//                 immutable model snapshots the workers hot-swap lock-free)
//   reghd info    --model model.bin
//   reghd synth   --dataset boston --out boston.csv [--seed 1]
//                 (writes one of the built-in synthetic workloads as CSV)
//
// train/eval/predict accept --threads N to cap the worker count of the
// batched encode/predict paths (default: REGHD_THREADS environment variable,
// else hardware concurrency). Thread count never changes results.
//
// train and stream accept --stats (print a per-stage counter/latency table),
// --telemetry-json PATH and --telemetry-prom PATH (write the run's obs/
// telemetry snapshot as JSON / Prometheus text exposition). Any of the three
// enables the runtime telemetry layer for the run; it is off by default.
//
// Exit status: 0 on success, 1 on usage error, 2 on runtime failure.
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "core/reghd.hpp"
#include "serve/server.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace reghd;

int usage(const std::string& program) {
  std::cerr << "usage:\n"
            << "  " << program << " train   --csv FILE --out MODEL [options]\n"
            << "  " << program << " eval    --csv FILE --model MODEL\n"
            << "  " << program << " predict --csv FILE --model MODEL\n"
            << "  " << program << " stream  --csv FILE [--checkpoint-dir DIR] [--resume]\n"
            << "  " << program << " serve   --csv FILE [--shards S] [--train-every N]\n"
            << "  " << program << " info    --model MODEL\n"
            << "  " << program << " synth   --dataset NAME --out FILE\n"
            << "train options: --models K --dim D --alpha LR --quantized\n"
            << "  --binary-query --binary-model --test-fraction F --seed S\n"
            << "  --batch B (deterministic mini-batches of B samples, parallel\n"
            << "  across --threads workers; 0 = online sample-by-sample, default)\n"
            << "  --checkpoint-dir DIR --checkpoint-every EPOCHS (periodic atomic\n"
            << "  snapshots of the fitting pipeline; newest K kept)\n"
            << "  --shards S (data-parallel: S replicas on disjoint shards, merged\n"
            << "  by HD bundling; 1 = plain fit, default) --refine-epochs R\n"
            << "  (sequential full-data epochs after the merge; default 0)\n"
            << "stream options: --models K --dim D --alpha LR --quantized --seed S\n"
            << "  --decay D --requantize-every N --checkpoint-dir DIR\n"
            << "  --checkpoint-every UPDATES --keep-last K --resume --out MODEL\n"
            << "serve options: --shards S (worker/trainer thread pairs; default 1)\n"
            << "  --batch-threshold N (queued depth that flips admission onto the\n"
            << "  batched bank-scan path; default 4) --max-batch N (default 64)\n"
            << "  --train-every N (every Nth row also trains; 0 = serve only,\n"
            << "  default 1) --publish-interval-ms M (snapshot publish cadence,\n"
            << "  default 50) --checkpoint-dir DIR (per-shard persistence; shards\n"
            << "  recover from it on start) plus the stream model options above\n"
            << "  --tenant-budget N (N > 0 switches to per-tenant models: rows are\n"
            << "  tenants keyed i mod --tenants, at most N resident per shard, LRU\n"
            << "  spill beyond) --tenants T (tenant id space; default 64)\n"
            << "  --tenant-spill-dir DIR (evicted tenants persist here)\n"
            << "common (train/stream/serve): --projection-storage resident|rematerialized\n"
            << "  (rematerialized regenerates RFF projection rows on the fly —\n"
            << "  O(tile) scratch instead of the resident F×D matrix; encodings\n"
            << "  are bit-identical either way)\n"
            << "common: --target-col N (negative counts from the end; default -1)\n"
            << "  --threads N (batch encode/predict workers; default REGHD_THREADS\n"
            << "  or hardware concurrency)\n"
            << "telemetry (train/stream): --stats (per-stage counter/latency table)\n"
            << "  --telemetry-json PATH --telemetry-prom PATH (JSON / Prometheus\n"
            << "  text exposition of the run's counters and latency histograms)\n";
  return 1;
}

data::Dataset load(const util::Args& args) {
  data::CsvOptions opts;
  opts.target_column = static_cast<int>(args.get_int("target-col", -1));
  return data::load_csv_file(args.get_string("csv", ""), opts);
}

/// Turns on the obs/ telemetry layer when any telemetry flag is present.
/// Returns true if emit_telemetry should run at the end of the command.
bool setup_telemetry(const util::Args& args) {
  const bool wanted = args.get_bool("stats", false) || args.has("telemetry-json") ||
                      args.has("telemetry-prom");
  if (wanted) {
    obs::set_enabled(true);
  }
  return wanted;
}

/// Emits the merged telemetry snapshot in every requested format: a human
/// table on stdout (--stats), JSON (--telemetry-json PATH) and Prometheus
/// text exposition (--telemetry-prom PATH).
void emit_telemetry(const util::Args& args) {
  const obs::TelemetrySnapshot snap = obs::snapshot();
  if (args.get_bool("stats", false)) {
    std::cout << obs::to_table(snap);
  }
  const std::string json_path = args.get_string("telemetry-json", "");
  if (!json_path.empty()) {
    util::atomic_write_file(json_path, obs::to_json(snap));
    std::cout << "telemetry written to " << json_path << "\n";
  }
  const std::string prom_path = args.get_string("telemetry-prom", "");
  if (!prom_path.empty()) {
    util::atomic_write_file(prom_path, obs::to_prometheus(snap));
    std::cout << "telemetry written to " << prom_path << "\n";
  }
}

int cmd_train(const util::Args& args) {
  const std::string out_path = args.get_string("out", "");
  if (!args.has("csv") || out_path.empty()) {
    std::cerr << "train: --csv and --out are required\n";
    return 1;
  }
  const bool telemetry = setup_telemetry(args);
  data::Dataset dataset = load(args);

  core::PipelineConfig cfg;
  cfg.reghd.models = static_cast<std::size_t>(args.get_int("models", 8));
  cfg.reghd.dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  cfg.reghd.learning_rate = args.get_double("alpha", 0.15);
  cfg.reghd.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.reghd.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  cfg.reghd.batch_size = static_cast<std::size_t>(args.get_int("batch", 0));
  if (args.get_bool("quantized", false)) {
    cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
  }
  if (args.get_bool("binary-query", false)) {
    cfg.reghd.query_precision = core::QueryPrecision::kBinary;
  }
  if (args.get_bool("binary-model", false)) {
    cfg.reghd.model_precision = core::ModelPrecision::kBinary;
  }
  cfg.encoder.projection_storage =
      hdc::projection_storage_from_string(args.get_string("projection-storage", "resident"));

  const double test_fraction = args.get_double("test-fraction", 0.25);
  util::Rng rng(cfg.reghd.seed);
  const data::TrainTestSplit split = data::train_test_split(dataset, test_fraction, rng);

  core::RegHDPipeline pipeline(cfg);
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 1));
  const auto refine_epochs = static_cast<std::size_t>(args.get_int("refine-epochs", 0));
  const std::string ckpt_dir = args.get_string("checkpoint-dir", "");
  if (shards > 1 || refine_epochs > 0) {
    if (!ckpt_dir.empty()) {
      std::cerr << "train: --checkpoint-dir is not supported with --shards / "
                   "--refine-epochs (shard fits have no global epoch stream)\n";
      return 1;
    }
    core::ShardedTrainConfig sharded_cfg;
    sharded_cfg.shards = shards;
    sharded_cfg.refine_epochs = refine_epochs;
    sharded_cfg.threads = cfg.reghd.threads;
    const core::ShardedTrainReport sharded = pipeline.fit_sharded(split.train, sharded_cfg);
    std::cout << "sharded fit: " << sharded.shards << " shards";
    for (const core::ShardReport& sr : sharded.shard_reports) {
      std::cout << " [" << sr.shard << ": " << sr.rows << " rows, "
                << sr.report.epochs_run << " epochs]";
    }
    std::cout << "\nmerged val mse=" << sharded.merged_val_mse;
    if (refine_epochs > 0) {
      std::cout << ", refined (" << sharded.refine_history.size()
                << " epochs) val mse=" << sharded.final_val_mse;
    }
    std::cout << "\n";
  } else if (ckpt_dir.empty()) {
    pipeline.fit(split.train);
  } else {
    core::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dir = ckpt_dir;
    ckpt_cfg.keep_last = static_cast<std::size_t>(args.get_int("keep-last", 3));
    core::CheckpointManager manager(ckpt_cfg);
    core::TrainingHooks hooks;
    hooks.checkpoint_every = static_cast<std::size_t>(args.get_int("checkpoint-every", 1));
    hooks.on_checkpoint = [&](std::size_t epoch) {
      const std::string path = manager.save(pipeline, epoch + 1);
      std::cout << "checkpoint: " << path << "\n";
    };
    pipeline.fit(split.train, hooks);
  }
  std::cout << "trained " << pipeline.name() << " on " << split.train.size()
            << " samples: " << pipeline.report().summary() << "\n";

  const std::vector<double> predictions = pipeline.predict_batch(split.test);
  const util::RegressionMetrics metrics =
      util::evaluate_regression(predictions, split.test.targets());
  std::cout << "held-out test (" << split.test.size() << " samples): "
            << metrics.to_string() << "\n";

  core::save_pipeline_file(out_path, pipeline);
  std::cout << "model written to " << out_path << "\n";
  if (telemetry) {
    emit_telemetry(args);
  }
  return 0;
}

int cmd_eval(const util::Args& args) {
  if (!args.has("csv") || !args.has("model")) {
    std::cerr << "eval: --csv and --model are required\n";
    return 1;
  }
  core::RegHDPipeline pipeline = core::load_pipeline_file(args.get_string("model", ""));
  pipeline.set_threads(static_cast<std::size_t>(args.get_int("threads", 0)));
  const data::Dataset dataset = load(args);
  const std::vector<double> predictions = pipeline.predict_batch(dataset);
  const util::RegressionMetrics metrics =
      util::evaluate_regression(predictions, dataset.targets());
  std::cout << pipeline.name() << " on " << dataset.name() << " (" << dataset.size()
            << " samples): " << metrics.to_string() << "\n";
  return 0;
}

int cmd_predict(const util::Args& args) {
  if (!args.has("csv") || !args.has("model")) {
    std::cerr << "predict: --csv and --model are required\n";
    return 1;
  }
  core::RegHDPipeline pipeline = core::load_pipeline_file(args.get_string("model", ""));
  pipeline.set_threads(static_cast<std::size_t>(args.get_int("threads", 0)));
  const data::Dataset dataset = load(args);
  // One batched call: rows are scaled, encoded, and predicted in parallel.
  for (const double y : pipeline.predict_batch(dataset)) {
    std::cout << y << "\n";
  }
  return 0;
}

int cmd_stream(const util::Args& args) {
  if (!args.has("csv")) {
    std::cerr << "stream: --csv is required\n";
    return 1;
  }
  const bool telemetry = setup_telemetry(args);
  const data::Dataset dataset = load(args);
  const std::string ckpt_dir = args.get_string("checkpoint-dir", "");
  if (args.get_bool("resume", false) && ckpt_dir.empty()) {
    std::cerr << "stream: --resume requires --checkpoint-dir\n";
    return 1;
  }

  core::OnlineConfig cfg;
  cfg.reghd.models = static_cast<std::size_t>(args.get_int("models", 8));
  cfg.reghd.dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  cfg.reghd.learning_rate = args.get_double("alpha", 0.15);
  cfg.reghd.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.reghd.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  if (args.get_bool("quantized", false)) {
    cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
  }
  cfg.decay = args.get_double("decay", 1.0);
  cfg.requantize_every = static_cast<std::size_t>(args.get_int("requantize-every", 256));
  cfg.encoder.projection_storage =
      hdc::projection_storage_from_string(args.get_string("projection-storage", "resident"));

  std::optional<core::CheckpointManager> manager;
  if (!ckpt_dir.empty()) {
    core::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dir = ckpt_dir;
    ckpt_cfg.keep_last = static_cast<std::size_t>(args.get_int("keep-last", 3));
    ckpt_cfg.every = static_cast<std::size_t>(args.get_int("checkpoint-every", 0));
    manager.emplace(ckpt_cfg);
  }

  std::optional<core::OnlineRegHD> learner;
  if (args.get_bool("resume", false)) {
    learner = manager->recover();
    if (learner) {
      std::cout << "resumed from checkpoint at step " << learner->samples_seen() << "\n";
      if (learner->num_features() != dataset.num_features()) {
        std::cerr << "stream: checkpoint expects " << learner->num_features()
                  << " features but the CSV has " << dataset.num_features() << "\n";
        return 2;
      }
    } else {
      std::cout << "no recoverable checkpoint; starting fresh\n";
    }
  }
  if (!learner) {
    learner.emplace(cfg, dataset.num_features());
  }

  // Prequential pass: rows before samples_seen were already consumed by the
  // checkpointed run, so a resume replays only the tail — bit-identical to a
  // stream that was never interrupted.
  const std::size_t start = std::min(learner->samples_seen(), dataset.size());
  double abs_err = 0.0;
  double sq_err = 0.0;
  std::size_t scored = 0;
  for (std::size_t i = start; i < dataset.size(); ++i) {
    const double y = dataset.target(i);
    const double pred = learner->update(dataset.row(i), y);
    abs_err += std::abs(pred - y);
    sq_err += (pred - y) * (pred - y);
    ++scored;
    if (manager) {
      manager->maybe_save(*learner);
    }
  }
  if (scored > 0) {
    const double n = static_cast<double>(scored);
    std::cout << "prequential over " << scored << " updates: mae=" << abs_err / n
              << " mse=" << sq_err / n << "\n";
  } else {
    std::cout << "no new rows to process (stream already at step "
              << learner->samples_seen() << ")\n";
  }
  if (manager) {
    std::cout << "final checkpoint: " << manager->save(*learner) << "\n";
  }

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    std::ostringstream bytes(std::ios::binary);
    core::save_online_checkpoint(bytes, *learner);
    util::atomic_write_file(out_path, bytes.str());
    std::cout << "stream state written to " << out_path << "\n";
  }
  if (telemetry) {
    emit_telemetry(args);
  }
  return 0;
}

int cmd_serve(const util::Args& args) {
  if (!args.has("csv")) {
    std::cerr << "serve: --csv is required\n";
    return 1;
  }
  const bool telemetry = setup_telemetry(args);
  const data::Dataset dataset = load(args);

  core::OnlineConfig cfg;
  cfg.reghd.models = static_cast<std::size_t>(args.get_int("models", 8));
  cfg.reghd.dim = static_cast<std::size_t>(args.get_int("dim", 4096));
  cfg.reghd.learning_rate = args.get_double("alpha", 0.15);
  cfg.reghd.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.reghd.threads = 1;  // the shard worker is the parallelism unit
  if (args.get_bool("quantized", false)) {
    cfg.reghd.cluster_mode = core::ClusterMode::kQuantized;
  }
  cfg.decay = args.get_double("decay", 1.0);
  cfg.requantize_every = static_cast<std::size_t>(args.get_int("requantize-every", 256));
  cfg.encoder.projection_storage =
      hdc::projection_storage_from_string(args.get_string("projection-storage", "resident"));

  serve::ServeConfig sc;
  sc.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  sc.batch_threshold = static_cast<std::size_t>(args.get_int("batch-threshold", 4));
  sc.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 64));
  sc.publish_interval_ms = args.get_double("publish-interval-ms", 50.0);
  sc.checkpoint_dir = args.get_string("checkpoint-dir", "");
  const auto tenant_budget =
      static_cast<std::size_t>(args.get_int("tenant-budget", 0));
  const auto tenant_space =
      static_cast<std::uint64_t>(args.get_int("tenants", 64));
  if (tenant_budget > 0) {
    serve::TenantStoreConfig tc;
    tc.resident_budget = tenant_budget;
    tc.spill_dir = args.get_string("tenant-spill-dir", "");
    sc.tenant = tc;
  }

  const auto train_every = static_cast<std::size_t>(args.get_int("train-every", 1));
  serve::Server server(sc, cfg, dataset.num_features());
  server.start();

  // CSV replay: row i is a predict request keyed by its index (so multi-shard
  // runs spread rows across workers), and every train-every-th row also feeds
  // the shard trainer. Prequential flavor: the prediction is scored against
  // the label before that label can possibly train the row's shard.
  double abs_err = 0.0;
  double sq_err = 0.0;
  std::uint64_t trained = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    // In tenant mode the key names a tenant (i mod --tenants) and routes to
    // that tenant's own model; otherwise it is just the load-spreading hash.
    const std::uint64_t key = tenant_budget > 0 ? i % tenant_space : i;
    const double y = dataset.target(i);
    const double pred = server.predict(key, dataset.row(i));
    abs_err += std::abs(pred - y);
    sq_err += (pred - y) * (pred - y);
    if (train_every > 0 && i % train_every == 0) {
      while (!server.try_train(key, dataset.row(i), y)) {
        std::this_thread::yield();  // train ring full: let the trainer drain
      }
      ++trained;
    }
  }
  server.stop();  // drains both rings; with --checkpoint-dir, persists shards

  const double n = static_cast<double>(dataset.size());
  std::cout << "served " << dataset.size() << " rows across " << sc.shards
            << " shard(s): prequential mae=" << abs_err / n << " mse=" << sq_err / n
            << "\n";
  std::uint64_t applied = 0;
  for (std::size_t s = 0; s < sc.shards; ++s) {
    applied += server.train_applied(s);
    if (tenant_budget > 0) {
      const serve::TenantStoreStats ts = server.tenant_stats(s);
      std::cout << "shard " << s << ": " << ts.resident << " resident tenants, "
                << ts.activations << " activations, " << ts.evictions
                << " evictions, " << ts.reactivations << " reactivations\n";
    } else {
      const std::shared_ptr<const serve::ModelSnapshot> snap = server.snapshot(s);
      std::cout << "shard " << s << ": snapshot epoch " << (snap ? snap->epoch : 0)
                << ", trained updates " << (snap ? snap->trained_updates : 0) << "\n";
    }
  }
  std::cout << "train: " << trained << " submitted, " << applied << " applied\n";
  if (telemetry) {
    emit_telemetry(args);
  }
  return 0;
}

int cmd_info(const util::Args& args) {
  if (!args.has("model")) {
    std::cerr << "info: --model is required\n";
    return 1;
  }
  const core::RegHDPipeline pipeline =
      core::load_pipeline_file(args.get_string("model", ""));
  const core::PipelineConfig& cfg = pipeline.config();
  util::Table table({"field", "value"});
  table.add_row({"name", pipeline.name()});
  table.add_row({"dimensionality D", std::to_string(cfg.reghd.dim)});
  table.add_row({"models k", std::to_string(cfg.reghd.models)});
  table.add_row({"encoder", hdc::to_string(cfg.encoder.kind)});
  table.add_row({"input features", std::to_string(cfg.encoder.input_dim)});
  table.add_row({"cluster mode", core::to_string(cfg.reghd.cluster_mode)});
  table.add_row({"prediction mode", cfg.reghd.prediction_mode().to_string()});
  table.add_row({"update rule", core::to_string(cfg.reghd.update_rule)});
  table.add_row({"learning rate", util::Table::cell(cfg.reghd.learning_rate, 3)});
  table.add_row({"model sparsity",
                 util::Table::cell_percent(100.0 * pipeline.regressor().model_sparsity())});
  std::cout << table;
  return 0;
}

int cmd_synth(const util::Args& args) {
  const std::string out_path = args.get_string("out", "");
  const std::string name = args.get_string("dataset", "");
  if (name.empty() || out_path.empty()) {
    std::cerr << "synth: --dataset and --out are required; datasets:";
    for (const auto& n : data::paper_dataset_names()) {
      std::cerr << ' ' << n;
    }
    std::cerr << "\n";
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const data::Dataset dataset = data::make_paper_dataset(name, seed);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "synth: cannot open " << out_path << " for writing\n";
    return 2;
  }
  data::save_csv(out, dataset);
  std::cout << "wrote " << dataset.size() << " samples x " << dataset.num_features()
            << " features to " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.positional().empty()) {
    return usage(args.program());
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "train") {
      return cmd_train(args);
    }
    if (command == "eval") {
      return cmd_eval(args);
    }
    if (command == "predict") {
      return cmd_predict(args);
    }
    if (command == "stream") {
      return cmd_stream(args);
    }
    if (command == "serve") {
      return cmd_serve(args);
    }
    if (command == "info") {
      return cmd_info(args);
    }
    if (command == "synth") {
      return cmd_synth(args);
    }
    std::cerr << "unknown command '" << command << "'\n";
    return usage(args.program());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
