// Hypervector algebra: similarity metrics, accumulation, binding, bundling,
// and permutation.
//
// These free functions are the computational kernels of RegHD. The quantized
// fast paths (Hamming distance, sign-masked accumulation) are exact algebraic
// counterparts of the full-precision operations on bipolar data:
//
//   bipolar_dot(a, b)      = D − 2 · hamming_distance(a, b)
//   hamming_similarity     = bipolar_dot / D = cosine of the bipolar vectors
//   dot(real, binary)      = Σ_j ±real_j, the multiply-free dot of §3.2
//
// Dimension mismatches are precondition violations and throw.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/hypervector.hpp"

namespace reghd::hdc {

// ---------------------------------------------------------------------------
// Dot products
//
// Read-only operands are taken as views (RealHVView & friends); owning
// hypervectors convert implicitly, and the SoA encoded arena passes its flat
// planes through the same signatures without copies.
// ---------------------------------------------------------------------------

/// Full-precision dot product.
[[nodiscard]] double dot(RealHVView a, RealHVView b);

/// Dot of a real vector with a dense ±1 vector (model · encoded sample).
[[nodiscard]] double dot(RealHVView a, BipolarHVView b);

/// Multiply-free dot of a real vector with a packed binary vector under the
/// bipolar interpretation: Σ_j (bit_j ? +a_j : −a_j). This is the paper's
/// "binary query – integer model" / "integer query – binary model" kernel.
[[nodiscard]] double dot(RealHVView a, BinaryHVView b);

/// Bipolar dot of two packed vectors: D − 2·hamming. Integer-exact.
[[nodiscard]] std::int64_t bipolar_dot(BinaryHVView a, BinaryHVView b);

/// Bipolar dot of two dense ±1 vectors.
[[nodiscard]] std::int64_t bipolar_dot(BipolarHVView a, BipolarHVView b);

/// Masked bipolar dot: Σ over dims where mask is set of a_j·b_j (bipolar
/// interpretation). The ternary-model kernel: dead-zone components carry a
/// zero weight. Computed word-wise: 2·popcount(XNOR(a,b) ∧ mask) − |mask|.
[[nodiscard]] std::int64_t masked_bipolar_dot(BinaryHVView a, BinaryHVView b,
                                              BinaryHVView mask);

/// Masked signed accumulation: Σ over dims where mask is set of
/// (signs_j ? +a_j : −a_j). The ternary-model kernel for real queries.
[[nodiscard]] double masked_dot(RealHVView a, BinaryHVView signs, BinaryHVView mask);

// ---------------------------------------------------------------------------
// Distances and similarities
// ---------------------------------------------------------------------------

/// Number of differing components.
[[nodiscard]] std::size_t hamming_distance(BinaryHVView a, BinaryHVView b);

/// Hamming-based similarity in [−1, 1]: 1 − 2·hamming/D. Equals the cosine
/// similarity of the corresponding bipolar vectors (paper §3.1's efficient
/// similarity).
[[nodiscard]] double hamming_similarity(BinaryHVView a, BinaryHVView b);

/// Euclidean norm.
[[nodiscard]] double norm(RealHVView a);

/// Cosine similarity (Eq. 5). Returns 0 if either vector is all-zero.
[[nodiscard]] double cosine(RealHVView a, RealHVView b);

/// Cosine of a real vector against a dense ±1 vector (‖b‖ = √D).
[[nodiscard]] double cosine(RealHVView a, BipolarHVView b);

/// Cosine of a real vector against a packed ±1 vector (‖b‖ = √D).
[[nodiscard]] double cosine(RealHVView a, BinaryHVView b);

// ---------------------------------------------------------------------------
// Accumulation (model updates)
// ---------------------------------------------------------------------------

/// a += c · b for each of the sample representations. These implement the
/// paper's update rules (Eqs. 2, 7, 8, 9).
void add_scaled(RealHV& a, RealHVView b, double c);
void add_scaled(RealHV& a, BipolarHVView b, double c);
void add_scaled(RealHV& a, BinaryHVView b, double c);

/// a *= c.
void scale(RealHV& a, double c);

// ---------------------------------------------------------------------------
// Classic HDC structure operations (used by the ID-level encoder and the
// Baseline-HD comparator)
// ---------------------------------------------------------------------------

/// XOR binding of packed vectors (bipolar component-wise multiplication).
[[nodiscard]] BinaryHV xor_bind(const BinaryHV& a, const BinaryHV& b);

/// In-place xor_bind into a caller-owned buffer (must already have the right
/// dimensionality) — the allocation-free form for per-feature encoder loops.
void xor_bind_into(BinaryHV& out, const BinaryHV& a, const BinaryHV& b);

/// Circular rotation by `shift` positions (ρ-permutation).
[[nodiscard]] BinaryHV permute(const BinaryHV& a, std::size_t shift);

/// In-place permute into a caller-owned buffer of the same dimensionality
/// (out must not alias a).
void permute_into(BinaryHV& out, const BinaryHV& a, std::size_t shift);

/// Majority bundling of an odd or even number of packed vectors; ties on an
/// even count break toward 1 deterministically.
[[nodiscard]] BinaryHV majority(const std::vector<BinaryHV>& vectors);

}  // namespace reghd::hdc
