#include "hdc/random_hv.hpp"

#include <algorithm>

namespace reghd::hdc {

BipolarHV random_bipolar(std::size_t dim, util::Rng& rng) {
  std::vector<std::int8_t> out(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    out[i] = static_cast<std::int8_t>(rng.rademacher());
  }
  return BipolarHV(std::move(out));
}

BinaryHV random_binary(std::size_t dim, util::Rng& rng) {
  BinaryHV out(dim);
  // One engine word supplies 64 bits; the final partial word is masked by
  // only setting bits below dim, preserving the zero-padding invariant.
  for (std::size_t i = 0; i < dim; i += 64) {
    std::uint64_t bits = rng.bits();
    const std::size_t limit = std::min<std::size_t>(64, dim - i);
    for (std::size_t j = 0; j < limit; ++j) {
      out.set_bit(i + j, (bits & 1ULL) != 0);
      bits >>= 1;
    }
  }
  return out;
}

RealHV random_gaussian(std::size_t dim, util::Rng& rng, double mean, double stddev) {
  std::vector<double> out(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    out[i] = rng.normal(mean, stddev);
  }
  return RealHV(std::move(out));
}

std::vector<BipolarHV> random_bipolar_set(std::size_t count, std::size_t dim, util::Rng& rng) {
  std::vector<BipolarHV> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(random_bipolar(dim, rng));
  }
  return out;
}

BinaryHV flip_noise(const BinaryHV& v, double p, util::Rng& rng) {
  REGHD_CHECK(p >= 0.0 && p <= 1.0, "flip probability must lie in [0,1], got " << p);
  BinaryHV out = v;
  for (std::size_t i = 0; i < v.dim(); ++i) {
    if (rng.bernoulli(p)) {
      out.set_bit(i, !out.bit(i));
    }
  }
  return out;
}

RealHV gaussian_noise(const RealHV& v, double stddev, util::Rng& rng) {
  REGHD_CHECK(stddev >= 0.0, "noise stddev must be non-negative, got " << stddev);
  RealHV out = v;
  for (double& x : out.values()) {
    x += rng.normal(0.0, stddev);
  }
  return out;
}

}  // namespace reghd::hdc
