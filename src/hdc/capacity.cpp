#include "hdc/capacity.hpp"

#include <cmath>

#include "hdc/hypervector.hpp"
#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "util/check.hpp"
#include "util/statistics.hpp"

namespace reghd::hdc {

namespace {

void check_query(const CapacityQuery& q) {
  REGHD_CHECK(q.dimension > 0, "capacity model requires positive dimension");
  REGHD_CHECK(q.patterns > 0, "capacity model requires at least one pattern");
  REGHD_CHECK(q.threshold > 0.0 && q.threshold < 1.0,
              "capacity threshold must lie in (0,1), got " << q.threshold);
}

}  // namespace

double false_positive_probability(const CapacityQuery& query) {
  check_query(query);
  const double z = query.threshold * std::sqrt(static_cast<double>(query.dimension) /
                                               static_cast<double>(query.patterns));
  return util::normal_tail(z);
}

std::size_t max_patterns(std::size_t dimension, double threshold, double max_error) {
  REGHD_CHECK(max_error > 0.0 && max_error < 0.5,
              "max_error must lie in (0, 0.5), got " << max_error);
  // Invert Pr(Z > T√(D/P)) ≤ ε  ⇔  T√(D/P) ≥ Q⁻¹(ε)  ⇔  P ≤ D·T²/Q⁻¹(ε)².
  const double z = util::normal_quantile(1.0 - max_error);
  const double p = static_cast<double>(dimension) * threshold * threshold / (z * z);
  if (p < 1.0) {
    return 0;
  }
  return static_cast<std::size_t>(p);
}

std::size_t min_dimension(std::size_t patterns, double threshold, double max_error) {
  REGHD_CHECK(patterns > 0, "min_dimension requires at least one pattern");
  REGHD_CHECK(max_error > 0.0 && max_error < 0.5,
              "max_error must lie in (0, 0.5), got " << max_error);
  const double z = util::normal_quantile(1.0 - max_error);
  const double d = static_cast<double>(patterns) * z * z / (threshold * threshold);
  return static_cast<std::size_t>(std::ceil(d));
}

double simulate_false_positive_rate(const CapacityQuery& query, std::size_t trials,
                                    util::Rng& rng) {
  check_query(query);
  REGHD_CHECK(trials > 0, "simulation requires at least one trial");

  // Superpose P random bipolar patterns into one accumulator.
  RealHV memory(query.dimension);
  for (std::size_t p = 0; p < query.patterns; ++p) {
    add_scaled(memory, random_bipolar(query.dimension, rng), 1.0);
  }

  const double cut = query.threshold * static_cast<double>(query.dimension);
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const BipolarHV probe = random_bipolar(query.dimension, rng);
    if (dot(memory, probe) > cut) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace reghd::hdc
