// AVX2+FMA implementations of the kernel backend. This translation unit is
// the only one compiled with -mavx2 -mfma (see src/hdc/CMakeLists.txt); it
// is entered only after runtime CPUID dispatch confirms the host supports
// both feature sets, so the rest of the build stays portable x86-64.
//
// Sign application from packed bits uses the same IEEE-754 sign-bit XOR as
// the scalar backend, vectorized four lanes at a time: the bit for lane l of
// a 4-wide group at offset j is moved to bit 63 with a per-lane variable
// shift (VPSLLVQ), masked to the sign bit, and XORed into the doubles.
// Integer kernels are bit-exact with scalar; real kernels accumulate in
// multiple lanes and so differ from scalar only by summation order.
#include "hdc/kernel_backend.hpp"

#ifdef REGHD_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>

#include "hdc/rff_remat.hpp"
#include "util/fast_trig.hpp"

namespace reghd::hdc {

namespace {

constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;

inline double apply_sign(double v, std::uint64_t keep) {
  const std::uint64_t flip = (~keep & 1ULL) << 63;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^ flip);
}

inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d shuf = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, shuf));
}

inline std::int64_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i sum = _mm_add_epi32(lo, hi);
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(sum);
}

/// Loads 4 consecutive int8 ±1 components as a vector of 4 doubles.
inline __m256d load4_bipolar(const std::int8_t* p) {
  std::int32_t raw;
  std::memcpy(&raw, p, sizeof(raw));
  const __m128i bytes = _mm_cvtsi32_si128(raw);
  return _mm256_cvtepi32_pd(_mm_cvtepi8_epi32(bytes));
}

// The lane-constant vectors below are built inside each function (no
// namespace-scope __m256i: its dynamic initializer would execute AVX
// instructions at program load, before runtime dispatch can rule them out).

/// Sign-flip masks (bit 63 per lane) for the 4-wide group at bit offset j of
/// `inverted_word` (= ~bits: flip where the packed bit is 0). Lane l's bit
/// (j+l) is moved to position 63 with a per-lane shift of 63−l.
inline __m256d group_flips(std::uint64_t inverted_word, std::size_t j) {
  const __m256i lane_shifts = _mm256_setr_epi64x(63, 62, 61, 60);
  const __m256i bits = _mm256_set1_epi64x(static_cast<long long>(inverted_word >> j));
  const __m256i flips = _mm256_and_si256(_mm256_sllv_epi64(bits, lane_shifts),
                                         _mm256_set1_epi64x(static_cast<long long>(kSignBit)));
  return _mm256_castsi256_pd(flips);
}

/// Lane vector whose sign bit (bit 63) carries mask bit j+l of `mask_word`.
/// Only the sign bit is meaningful — which is all BLENDV reads — so no
/// compare or AND is needed after the per-lane shift.
inline __m256d group_sign_select(std::uint64_t mask_word, std::size_t j) {
  const __m256i lane_shifts = _mm256_setr_epi64x(63, 62, 61, 60);
  const __m256i bits = _mm256_set1_epi64x(static_cast<long long>(mask_word >> j));
  return _mm256_castsi256_pd(_mm256_sllv_epi64(bits, lane_shifts));
}

double avx2_dot_real_real(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12), _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
  }
  double acc = hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double avx2_dot_real_bipolar(const double* a, const std::int8_t* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), load4_bipolar(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), load4_bipolar(b + i + 4), acc1);
  }
  double acc = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    acc += b[i] > 0 ? a[i] : -a[i];
  }
  return acc;
}

double avx2_dot_real_binary(const double* a, const std::uint64_t* bits, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t inv = ~bits[w];
    for (std::size_t j = 0; j < 64; j += 8) {
      const __m256d v0 = _mm256_loadu_pd(a + i + j);
      const __m256d v1 = _mm256_loadu_pd(a + i + j + 4);
      acc0 = _mm256_add_pd(acc0, _mm256_xor_pd(v0, group_flips(inv, j)));
      acc1 = _mm256_add_pd(acc1, _mm256_xor_pd(v1, group_flips(inv, j + 4)));
    }
  }
  double acc = hsum(_mm256_add_pd(acc0, acc1));
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      acc += apply_sign(a[i + j], word >> j);
    }
  }
  return acc;
}

double avx2_masked_dot(const double* a, const std::uint64_t* signs,
                       const std::uint64_t* mask, std::size_t n) {
  // Masked lanes contribute +0.0 via BLENDV against zero (exact), replacing
  // the previous cmpeq-built all-ones mask + AND — one shifted vector per
  // group is enough because BLENDV keys on the sign bit alone.
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t m = mask[w];
    if (m == 0) {
      continue;
    }
    const std::uint64_t inv = ~signs[w];
    for (std::size_t j = 0; j < 64; j += 8) {
      const __m256d v0 = _mm256_xor_pd(_mm256_loadu_pd(a + i + j), group_flips(inv, j));
      const __m256d v1 =
          _mm256_xor_pd(_mm256_loadu_pd(a + i + j + 4), group_flips(inv, j + 4));
      acc0 = _mm256_add_pd(acc0, _mm256_blendv_pd(zero, v0, group_sign_select(m, j)));
      acc1 = _mm256_add_pd(acc1, _mm256_blendv_pd(zero, v1, group_sign_select(m, j + 4)));
    }
  }
  double acc = hsum(_mm256_add_pd(acc0, acc1));
  if (i < n) {
    const std::uint64_t sign_bits = signs[i >> 6];
    std::uint64_t active = mask[i >> 6];
    while (active != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(active));
      active &= active - 1;
      acc += apply_sign(a[i + j], sign_bits >> j);
    }
  }
  return acc;
}

/// popcount(a XOR b) over whole words — the single copy of the popcount
/// inner loop shared by hamming and the binary bank scan. POPCNT (enabled by
/// -mavx2) runs one word per cycle; four independent counters hide the
/// instruction latency. AVX2 has no vector popcount.
inline std::int64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words) {
  std::int64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    c0 += std::popcount(a[i] ^ b[i]);
    c1 += std::popcount(a[i + 1] ^ b[i + 1]);
    c2 += std::popcount(a[i + 2] ^ b[i + 2]);
    c3 += std::popcount(a[i + 3] ^ b[i + 3]);
  }
  for (; i < words; ++i) {
    c0 += std::popcount(a[i] ^ b[i]);
  }
  return c0 + c1 + c2 + c3;
}

/// 2·popcount(XNOR(a,b) ∧ mask) − popcount(mask) — the single copy of the
/// masked popcount inner loop shared by masked_bipolar_dot and the ternary
/// bank scan. Two interleaved agree/active counter pairs (two POPCNTs per
/// word) keep the port-bound chain latency-hidden like xor_popcount.
inline std::int64_t masked_xnor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                         const std::uint64_t* mask, std::size_t words) {
  std::int64_t agree0 = 0, agree1 = 0;
  std::int64_t active0 = 0, active1 = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    agree0 += std::popcount(~(a[i] ^ b[i]) & mask[i]);
    active0 += std::popcount(mask[i]);
    agree1 += std::popcount(~(a[i + 1] ^ b[i + 1]) & mask[i + 1]);
    active1 += std::popcount(mask[i + 1]);
  }
  for (; i < words; ++i) {
    agree0 += std::popcount(~(a[i] ^ b[i]) & mask[i]);
    active0 += std::popcount(mask[i]);
  }
  return 2 * (agree0 + agree1) - (active0 + active1);
}

std::int64_t avx2_hamming(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  return xor_popcount(a, b, words);
}

std::int64_t avx2_masked_bipolar_dot(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* mask, std::size_t words) {
  return masked_xnor_popcount(a, b, mask, words);
}

std::int64_t avx2_bipolar_dot_dense(const std::int8_t* a, const std::int8_t* b,
                                    std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i pa = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i pb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pa, pb));
  }
  std::int64_t total = hsum_epi32(acc);
  for (; i < n; ++i) {
    total += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return total;
}

void avx2_add_scaled_real(double* a, const double* b, double c, std::size_t n) {
  // mul + add (no FMA): each slot must round exactly like the scalar
  // backend's `a[i] += c * b[i]` so both tables accumulate bit-identically.
  // The kernel is memory-bound; the win comes from access pattern, not
  // arithmetic. std::vector storage is only 16-byte aligned, so a plain
  // unaligned 32-byte loop splits a cache line on every other access of the
  // read-modify-write destination — peel to 32-byte alignment of `a` first
  // so all full-width destination accesses are aligned.
  const __m256d cv = _mm256_set1_pd(c);
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(a + i) & 31U) != 0) {
    a[i] += c * b[i];
    ++i;
  }
  for (; i + 16 <= n; i += 16) {
    _mm256_store_pd(a + i, _mm256_add_pd(_mm256_load_pd(a + i),
                                         _mm256_mul_pd(cv, _mm256_loadu_pd(b + i))));
    _mm256_store_pd(a + i + 4,
                    _mm256_add_pd(_mm256_load_pd(a + i + 4),
                                  _mm256_mul_pd(cv, _mm256_loadu_pd(b + i + 4))));
    _mm256_store_pd(a + i + 8,
                    _mm256_add_pd(_mm256_load_pd(a + i + 8),
                                  _mm256_mul_pd(cv, _mm256_loadu_pd(b + i + 8))));
    _mm256_store_pd(a + i + 12,
                    _mm256_add_pd(_mm256_load_pd(a + i + 12),
                                  _mm256_mul_pd(cv, _mm256_loadu_pd(b + i + 12))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(a + i, _mm256_add_pd(_mm256_load_pd(a + i),
                                         _mm256_mul_pd(cv, _mm256_loadu_pd(b + i))));
  }
  for (; i < n; ++i) {
    a[i] += c * b[i];
  }
}

void avx2_add_scaled_bipolar(double* a, const std::int8_t* b, double c, std::size_t n) {
  const __m256d cv = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(a + i,
                     _mm256_fmadd_pd(cv, load4_bipolar(b + i), _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) {
    a[i] += b[i] > 0 ? c : -c;
  }
}

void avx2_add_scaled_binary(double* a, const std::uint64_t* bits, double c,
                            std::size_t n) {
  const __m256d cv = _mm256_set1_pd(c);
  const std::uint64_t c_bits = std::bit_cast<std::uint64_t>(c);
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t inv = ~bits[w];
    for (std::size_t j = 0; j < 64; j += 4) {
      const __m256d incr = _mm256_xor_pd(cv, group_flips(inv, j));
      _mm256_storeu_pd(a + i + j, _mm256_add_pd(_mm256_loadu_pd(a + i + j), incr));
    }
  }
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      const std::uint64_t flip = (~(word >> j) & 1ULL) << 63;
      a[i + j] += std::bit_cast<double>(c_bits ^ flip);
    }
  }
}

void avx2_merge_accumulate(double* acc, const double* rep, const double* base,
                           std::size_t n) {
  // sub then add per lane (no FMA, no cross-lane work): each slot rounds
  // exactly like the scalar backend's `acc[i] += rep[i] - base[i]`, so both
  // tables produce bit-identical merged accumulators. Alignment-peeled on the
  // read-modify-write destination like avx2_add_scaled_real.
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(acc + i) & 31U) != 0) {
    acc[i] += rep[i] - base[i];
    ++i;
  }
  for (; i + 16 <= n; i += 16) {
    _mm256_store_pd(acc + i,
                    _mm256_add_pd(_mm256_load_pd(acc + i),
                                  _mm256_sub_pd(_mm256_loadu_pd(rep + i),
                                                _mm256_loadu_pd(base + i))));
    _mm256_store_pd(acc + i + 4,
                    _mm256_add_pd(_mm256_load_pd(acc + i + 4),
                                  _mm256_sub_pd(_mm256_loadu_pd(rep + i + 4),
                                                _mm256_loadu_pd(base + i + 4))));
    _mm256_store_pd(acc + i + 8,
                    _mm256_add_pd(_mm256_load_pd(acc + i + 8),
                                  _mm256_sub_pd(_mm256_loadu_pd(rep + i + 8),
                                                _mm256_loadu_pd(base + i + 8))));
    _mm256_store_pd(acc + i + 12,
                    _mm256_add_pd(_mm256_load_pd(acc + i + 12),
                                  _mm256_sub_pd(_mm256_loadu_pd(rep + i + 12),
                                                _mm256_loadu_pd(base + i + 12))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(acc + i,
                    _mm256_add_pd(_mm256_load_pd(acc + i),
                                  _mm256_sub_pd(_mm256_loadu_pd(rep + i),
                                                _mm256_loadu_pd(base + i))));
  }
  for (; i < n; ++i) {
    acc[i] += rep[i] - base[i];
  }
}

void avx2_scale_real(double* a, double c, std::size_t n) {
  // Same alignment-peeled pattern as avx2_add_scaled_real: the in-place
  // destination is the whole working set, so aligned full-width accesses are
  // the entire optimization.
  const __m256d cv = _mm256_set1_pd(c);
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(a + i) & 31U) != 0) {
    a[i] *= c;
    ++i;
  }
  for (; i + 16 <= n; i += 16) {
    _mm256_store_pd(a + i, _mm256_mul_pd(cv, _mm256_load_pd(a + i)));
    _mm256_store_pd(a + i + 4, _mm256_mul_pd(cv, _mm256_load_pd(a + i + 4)));
    _mm256_store_pd(a + i + 8, _mm256_mul_pd(cv, _mm256_load_pd(a + i + 8)));
    _mm256_store_pd(a + i + 12, _mm256_mul_pd(cv, _mm256_load_pd(a + i + 12)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(a + i, _mm256_mul_pd(cv, _mm256_load_pd(a + i)));
  }
  for (; i < n; ++i) {
    a[i] *= c;
  }
}

void avx2_rff_trig_map(double* z, const double* phase, const double* sin_phase,
                       std::size_t n) {
  // util::fast_sin replayed 4 lanes wide: identical operations in identical
  // order per element (this TU is compiled with -ffp-contract=off, so the
  // compiler cannot fuse any of them into FMAs), hence bit-identical to the
  // scalar kernel. Out-of-range/NaN lanes are redone with the scalar
  // fallback, which matches fast_sin's own std::sin escape.
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d two_over_pi = _mm256_set1_pd(6.36619772367581382433e-01);
  const __m256d shift = _mm256_set1_pd(6755399441055744.0);
  const __m256d pio2_hi = _mm256_set1_pd(1.57079632673412561417e+00);
  const __m256d pio2_lo = _mm256_set1_pd(6.07710050650619224932e-11);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d range = _mm256_set1_pd(1073741824.0);  // 2^30
  const __m256i one64 = _mm256_set1_epi64x(1);
  const __m256i two64 = _mm256_set1_epi64x(2);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_add_pd(_mm256_mul_pd(two, _mm256_loadu_pd(z + i)),
                                    _mm256_loadu_pd(phase + i));
    const __m256d shifted = _mm256_add_pd(_mm256_mul_pd(x, two_over_pi), shift);
    const __m256i q = _mm256_castpd_si256(shifted);
    const __m256d k = _mm256_sub_pd(shifted, shift);
    const __m256d r = _mm256_sub_pd(_mm256_sub_pd(x, _mm256_mul_pd(k, pio2_hi)),
                                    _mm256_mul_pd(k, pio2_lo));
    const __m256d r2 = _mm256_mul_pd(r, r);

    __m256d sp = _mm256_set1_pd(1.58969099521155010221e-10);
    sp = _mm256_add_pd(_mm256_set1_pd(-2.50507602534068634195e-08),
                       _mm256_mul_pd(r2, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(2.75573137070700676789e-06),
                       _mm256_mul_pd(r2, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(-1.98412698298579493134e-04),
                       _mm256_mul_pd(r2, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(8.33333333332248946124e-03),
                       _mm256_mul_pd(r2, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(-1.66666666666666324348e-01),
                       _mm256_mul_pd(r2, sp));
    const __m256d ps = _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r, r2), sp));

    __m256d cp = _mm256_set1_pd(-1.13596475577881948265e-11);
    cp = _mm256_add_pd(_mm256_set1_pd(2.08757232129817482790e-09),
                       _mm256_mul_pd(r2, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(-2.75573143513906633035e-07),
                       _mm256_mul_pd(r2, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(2.48015872894767294178e-05),
                       _mm256_mul_pd(r2, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(-1.38888888888741095749e-03),
                       _mm256_mul_pd(r2, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(4.16666666666666019037e-02),
                       _mm256_mul_pd(r2, cp));
    const __m256d pc =
        _mm256_add_pd(_mm256_sub_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(half, r2)),
                      _mm256_mul_pd(_mm256_mul_pd(r2, r2), cp));

    const __m256d odd = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(q, one64), one64));
    __m256d v = _mm256_blendv_pd(ps, pc, odd);
    const __m256i sign_flip = _mm256_slli_epi64(_mm256_and_si256(q, two64), 62);
    v = _mm256_xor_pd(v, _mm256_castsi256_pd(sign_flip));

    __m256d out = _mm256_mul_pd(half, _mm256_sub_pd(v, _mm256_loadu_pd(sin_phase + i)));

    const __m256d absx = _mm256_and_pd(x, abs_mask);
    // NLT_UQ: true when !(|x| < 2^30), which also catches NaN — the same
    // condition fast_sin uses for its std::sin fallback.
    const int oor = _mm256_movemask_pd(_mm256_cmp_pd(absx, range, _CMP_NLT_UQ));
    if (oor != 0) {
      alignas(32) double xa[4];
      alignas(32) double oa[4];
      _mm256_store_pd(xa, x);
      _mm256_store_pd(oa, out);
      for (int l = 0; l < 4; ++l) {
        if ((oor & (1 << l)) != 0) {
          oa[l] = 0.5 * (std::sin(xa[l]) - sin_phase[i + static_cast<std::size_t>(l)]);
        }
      }
      out = _mm256_load_pd(oa);
    }
    _mm256_storeu_pd(z + i, out);
  }
  for (; i < n; ++i) {
    z[i] = 0.5 * (util::fast_sin(2.0 * z[i] + phase[i]) - sin_phase[i]);
  }
}

/// Low 64 bits of a 64×64 multiply per lane. AVX2 has no VPMULLQ, so the
/// product is assembled from 32×32→64 pieces:
///   a·b mod 2⁶⁴ = lo(a)·lo(b) + ((lo(a)·hi(b) + hi(a)·lo(b)) « 32).
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

/// util::SplitMix64's output mix per lane (the state addition happens in the
/// caller — detail::splitmix_at seeks by counter, so "state" is just an add).
inline __m256i splitmix_mix(__m256i z) {
  z = mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
              _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mullo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
              _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// Exact uint64 → double conversion for lane values < 2⁵³ (AVX2 has no
/// u64→f64 cvt). Both 32-bit halves convert exactly via the 2⁵² magic-bias
/// trick, and hi·2³² + lo recombines exactly (every intermediate is an
/// integer < 2⁵³), so each lane equals the scalar static_cast<double>.
inline __m256d u64_to_double_53(__m256i v) {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m256d bias = _mm256_set1_pd(0x1.0p52);
  const __m256i lo = _mm256_and_si256(v, _mm256_set1_epi64x(0xFFFFFFFFLL));
  const __m256i hi = _mm256_srli_epi64(v, 32);
  const __m256d lo_d = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo, magic)), bias);
  const __m256d hi_d = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, magic)), bias);
  return _mm256_add_pd(_mm256_mul_pd(hi_d, _mm256_set1_pd(0x1.0p32)), lo_d);
}

/// util::fast_log replayed 4 lanes wide — identical operations in identical
/// order per element (this TU is compiled with -ffp-contract=off), hence
/// bit-identical on the caller's domain, positive normal lanes (the
/// Box–Muller uniform u₁ ∈ [2⁻⁵³, 1]; fast_log itself owns no wider domain).
/// The scalar [√½ fold is two exact candidate values behind a compare — here
/// one compare mask feeding two blends. DIVPD is correctly rounded, so the
/// s = f/(2+f) lanes match scalar exactly.
inline __m256d fast_log4(__m256d x) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256i bits = _mm256_castpd_si256(x);
  const __m256d m_half = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
      _mm256_set1_epi64x(0x3FE0000000000000LL)));
  // biased exponent < 2^11, so the magic-bias conversion is exact and the
  // merged subtraction (2^52 + 1022 is exactly representable) still yields
  // the exact integer-valued e of the scalar code.
  __m256d e = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(bits, 52),
                                          _mm256_set1_epi64x(0x4330000000000000LL))),
      _mm256_set1_pd(0x1.0p52 + 1022.0));
  const __m256d low =
      _mm256_cmp_pd(m_half, _mm256_set1_pd(7.07106781186547524401e-01), _CMP_LT_OQ);
  const __m256d m = _mm256_blendv_pd(m_half, _mm256_add_pd(m_half, m_half), low);
  e = _mm256_blendv_pd(e, _mm256_sub_pd(e, one), low);

  const __m256d f = _mm256_sub_pd(m, one);
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  __m256d t1 = _mm256_add_pd(_mm256_set1_pd(2.222219843214978396e-01),
                             _mm256_mul_pd(w, _mm256_set1_pd(1.531383769920937332e-01)));
  t1 = _mm256_mul_pd(w, _mm256_add_pd(_mm256_set1_pd(3.999999999940941908e-01),
                                      _mm256_mul_pd(w, t1)));
  __m256d t2 = _mm256_add_pd(_mm256_set1_pd(1.818357216161805012e-01),
                             _mm256_mul_pd(w, _mm256_set1_pd(1.479819860511658591e-01)));
  t2 = _mm256_add_pd(_mm256_set1_pd(2.857142874366239149e-01), _mm256_mul_pd(w, t2));
  t2 = _mm256_mul_pd(z, _mm256_add_pd(_mm256_set1_pd(6.666666666666735130e-01),
                                      _mm256_mul_pd(w, t2)));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq = _mm256_mul_pd(_mm256_mul_pd(half, f), f);
  const __m256d ln2lo = _mm256_set1_pd(1.90821492927058770002e-10);
  const __m256d ln2hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d inner = _mm256_add_pd(_mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                                      _mm256_mul_pd(e, ln2lo));
  return _mm256_sub_pd(_mm256_mul_pd(e, ln2hi),
                       _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
}

struct SinCos4 {
  __m256d sin;
  __m256d cos;
};

/// util::fast_sin and util::fast_cos replayed 4 lanes wide for |x| < 2³⁰
/// (the caller's domain is the Box–Muller angle ∈ [0, 2π), so the scalar
/// functions' std::sin/std::cos escape is dead code here). Both share one
/// Cody–Waite reduction and both polynomials — the scalar pair recomputes
/// identical intermediates, so sharing keeps every lane bit-identical while
/// halving the work of calling them separately.
inline SinCos4 fast_sincos4(__m256d x) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d two_over_pi = _mm256_set1_pd(6.36619772367581382433e-01);
  const __m256d shift = _mm256_set1_pd(6755399441055744.0);
  const __m256d pio2_hi = _mm256_set1_pd(1.57079632673412561417e+00);
  const __m256d pio2_lo = _mm256_set1_pd(6.07710050650619224932e-11);
  const __m256i one64 = _mm256_set1_epi64x(1);
  const __m256i two64 = _mm256_set1_epi64x(2);

  const __m256d shifted = _mm256_add_pd(_mm256_mul_pd(x, two_over_pi), shift);
  const __m256i q = _mm256_castpd_si256(shifted);
  const __m256d k = _mm256_sub_pd(shifted, shift);
  const __m256d r = _mm256_sub_pd(_mm256_sub_pd(x, _mm256_mul_pd(k, pio2_hi)),
                                  _mm256_mul_pd(k, pio2_lo));
  const __m256d r2 = _mm256_mul_pd(r, r);

  __m256d sp = _mm256_set1_pd(1.58969099521155010221e-10);
  sp = _mm256_add_pd(_mm256_set1_pd(-2.50507602534068634195e-08),
                     _mm256_mul_pd(r2, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(2.75573137070700676789e-06),
                     _mm256_mul_pd(r2, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(-1.98412698298579493134e-04),
                     _mm256_mul_pd(r2, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(8.33333333332248946124e-03),
                     _mm256_mul_pd(r2, sp));
  sp = _mm256_add_pd(_mm256_set1_pd(-1.66666666666666324348e-01),
                     _mm256_mul_pd(r2, sp));
  const __m256d ps = _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r, r2), sp));

  __m256d cp = _mm256_set1_pd(-1.13596475577881948265e-11);
  cp = _mm256_add_pd(_mm256_set1_pd(2.08757232129817482790e-09),
                     _mm256_mul_pd(r2, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(-2.75573143513906633035e-07),
                     _mm256_mul_pd(r2, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(2.48015872894767294178e-05),
                     _mm256_mul_pd(r2, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(-1.38888888888741095749e-03),
                     _mm256_mul_pd(r2, cp));
  cp = _mm256_add_pd(_mm256_set1_pd(4.16666666666666019037e-02),
                     _mm256_mul_pd(r2, cp));
  const __m256d pc =
      _mm256_add_pd(_mm256_sub_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(half, r2)),
                    _mm256_mul_pd(_mm256_mul_pd(r2, r2), cp));

  const __m256d odd =
      _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(q, one64), one64));
  SinCos4 out;
  // sin: even quadrant → ±sin(r), odd → ±cos(r); sign from bit 1 of q.
  const __m256i sin_flip = _mm256_slli_epi64(_mm256_and_si256(q, two64), 62);
  out.sin = _mm256_xor_pd(_mm256_blendv_pd(ps, pc, odd), _mm256_castsi256_pd(sin_flip));
  // cos: the roles swapped; sign from bit 1 of q + 1.
  const __m256i cos_flip =
      _mm256_slli_epi64(_mm256_and_si256(_mm256_add_epi64(q, one64), two64), 62);
  out.cos = _mm256_xor_pd(_mm256_blendv_pd(pc, ps, odd), _mm256_castsi256_pd(cos_flip));
  return out;
}

void avx2_rff_rematerialize(std::uint64_t seed, double stddev, std::size_t row0,
                            std::size_t rows, std::size_t n_features, double* out,
                            std::size_t ld) {
  // Four consecutive rows per lane group, walking the weight index together:
  // the four lanes of weight pair (k, k+1) land in out[k·ld + r .. r+3] —
  // unit-stride stores in the kernel's feature-major layout. Every lane
  // replays the exact operation sequence of detail::rff_rematerialize_rows
  // (which also handles the rows % 4 tail): counter-seeked SplitMix64 draws
  // through mullo64/splitmix_mix, exact u64→double, then Box–Muller through
  // fast_log4/fast_sincos4 and the correctly-rounded VSQRTPD — bit-identical
  // to scalar.
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  constexpr double kInv53 = 0x1.0p-53;
  const __m256d stddev_v = _mm256_set1_pd(stddev);
  const __m256d two_pi = _mm256_set1_pd(kTwoPi);
  const __m256d inv53 = _mm256_set1_pd(kInv53);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_two = _mm256_set1_pd(-2.0);
  constexpr std::uint64_t kG = detail::kSmGamma;
  const __m256i lane_gamma = _mm256_setr_epi64x(
      0, static_cast<long long>(kG), static_cast<long long>(2 * kG),
      static_cast<long long>(3 * kG));

  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    // Lane l's row seed is mix(seed + (row0 + r + l + 1)·γ) — the (row0+r+l)-th
    // SplitMix64 output of `seed`, exactly detail::splitmix_at.
    const std::uint64_t base =
        seed + (static_cast<std::uint64_t>(row0 + r) + 1) * kG;
    const __m256i row_seed = splitmix_mix(
        _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(base)), lane_gamma));
    double* out_r = out + r;
    for (std::size_t k = 0; k < n_features; k += 2) {
      const __m256i draw_a = splitmix_mix(_mm256_add_epi64(
          row_seed, _mm256_set1_epi64x(static_cast<long long>(
                        (static_cast<std::uint64_t>(k) + 1) * kG))));
      const __m256i draw_b = splitmix_mix(_mm256_add_epi64(
          row_seed, _mm256_set1_epi64x(static_cast<long long>(
                        (static_cast<std::uint64_t>(k) + 2) * kG))));
      const __m256d a = u64_to_double_53(_mm256_srli_epi64(draw_a, 11));
      const __m256d b = u64_to_double_53(_mm256_srli_epi64(draw_b, 11));
      const __m256d u1 = _mm256_mul_pd(_mm256_add_pd(a, one), inv53);
      const __m256d u2 = _mm256_mul_pd(b, inv53);
      const __m256d radius = _mm256_sqrt_pd(_mm256_mul_pd(neg_two, fast_log4(u1)));
      const __m256d angle = _mm256_mul_pd(two_pi, u2);
      const SinCos4 sc = fast_sincos4(angle);
      _mm256_storeu_pd(out_r + k * ld,
                       _mm256_mul_pd(_mm256_mul_pd(radius, sc.cos), stddev_v));
      if (k + 1 < n_features) {
        _mm256_storeu_pd(out_r + (k + 1) * ld,
                         _mm256_mul_pd(_mm256_mul_pd(radius, sc.sin), stddev_v));
      }
    }
  }
  if (r < rows) {
    detail::rff_rematerialize_rows(seed, stddev, row0 + r, rows - r, n_features,
                                   out + r, ld);
  }
}

void avx2_rff_remat_dot(std::uint64_t seed, double stddev, std::size_t row0,
                        std::size_t rows, const double* x, std::size_t n_features,
                        double* out) {
  // The same lane walk (and therefore the same bit-identical weight draws) as
  // avx2_rff_rematerialize, but the weight pair is consumed in registers the
  // moment it exists: z ← z + x_k·w, mul then add with k ascending — the
  // gemm_accumulate per-element chain — so the single-query path never
  // stores a weight tile. Row tails replay the scalar reference.
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  constexpr double kInv53 = 0x1.0p-53;
  const __m256d stddev_v = _mm256_set1_pd(stddev);
  const __m256d two_pi = _mm256_set1_pd(kTwoPi);
  const __m256d inv53 = _mm256_set1_pd(kInv53);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_two = _mm256_set1_pd(-2.0);
  constexpr std::uint64_t kG = detail::kSmGamma;
  const __m256i lane_gamma = _mm256_setr_epi64x(
      0, static_cast<long long>(kG), static_cast<long long>(2 * kG),
      static_cast<long long>(3 * kG));

  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const std::uint64_t base =
        seed + (static_cast<std::uint64_t>(row0 + r) + 1) * kG;
    const __m256i row_seed = splitmix_mix(
        _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(base)), lane_gamma));
    __m256d z = _mm256_setzero_pd();
    for (std::size_t k = 0; k < n_features; k += 2) {
      const __m256i draw_a = splitmix_mix(_mm256_add_epi64(
          row_seed, _mm256_set1_epi64x(static_cast<long long>(
                        (static_cast<std::uint64_t>(k) + 1) * kG))));
      const __m256i draw_b = splitmix_mix(_mm256_add_epi64(
          row_seed, _mm256_set1_epi64x(static_cast<long long>(
                        (static_cast<std::uint64_t>(k) + 2) * kG))));
      const __m256d a = u64_to_double_53(_mm256_srli_epi64(draw_a, 11));
      const __m256d b = u64_to_double_53(_mm256_srli_epi64(draw_b, 11));
      const __m256d u1 = _mm256_mul_pd(_mm256_add_pd(a, one), inv53);
      const __m256d u2 = _mm256_mul_pd(b, inv53);
      const __m256d radius = _mm256_sqrt_pd(_mm256_mul_pd(neg_two, fast_log4(u1)));
      const __m256d angle = _mm256_mul_pd(two_pi, u2);
      const SinCos4 sc = fast_sincos4(angle);
      const __m256d w_cos = _mm256_mul_pd(_mm256_mul_pd(radius, sc.cos), stddev_v);
      z = _mm256_add_pd(z, _mm256_mul_pd(_mm256_set1_pd(x[k]), w_cos));
      if (k + 1 < n_features) {
        const __m256d w_sin = _mm256_mul_pd(_mm256_mul_pd(radius, sc.sin), stddev_v);
        z = _mm256_add_pd(z, _mm256_mul_pd(_mm256_set1_pd(x[k + 1]), w_sin));
      }
    }
    _mm256_storeu_pd(out + r, z);
  }
  if (r < rows) {
    detail::rff_remat_dot_rows(seed, stddev, row0 + r, rows - r, x, n_features,
                               out + r);
  }
}

void avx2_gemm_accumulate(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                          std::size_t k, std::size_t n) {
  // Same traversal as the scalar kernel (column tile = 512 doubles), with C
  // register-blocked 16 wide: the 4 accumulator vectors stay in registers
  // across the whole k loop, so each C element is loaded and stored once per
  // column tile instead of once per k. mul + add (no FMA) and ascending k
  // keep every element's rounding sequence identical to scalar.
  constexpr std::size_t kColTile = 512;
  for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
    const std::size_t jn = std::min(n, j0 + kColTile);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * lda;
      double* crow = c + r * ldc;
      std::size_t j = j0;
      for (; j + 16 <= jn; j += 16) {
        __m256d c0 = _mm256_loadu_pd(crow + j);
        __m256d c1 = _mm256_loadu_pd(crow + j + 4);
        __m256d c2 = _mm256_loadu_pd(crow + j + 8);
        __m256d c3 = _mm256_loadu_pd(crow + j + 12);
        for (std::size_t kk = 0; kk < k; ++kk) {
          const __m256d av = _mm256_broadcast_sd(arow + kk);
          const double* bp = b + kk * ldb + j;
          c0 = _mm256_add_pd(c0, _mm256_mul_pd(av, _mm256_loadu_pd(bp)));
          c1 = _mm256_add_pd(c1, _mm256_mul_pd(av, _mm256_loadu_pd(bp + 4)));
          c2 = _mm256_add_pd(c2, _mm256_mul_pd(av, _mm256_loadu_pd(bp + 8)));
          c3 = _mm256_add_pd(c3, _mm256_mul_pd(av, _mm256_loadu_pd(bp + 12)));
        }
        _mm256_storeu_pd(crow + j, c0);
        _mm256_storeu_pd(crow + j + 4, c1);
        _mm256_storeu_pd(crow + j + 8, c2);
        _mm256_storeu_pd(crow + j + 12, c3);
      }
      for (; j < jn; ++j) {
        double acc = crow[j];
        for (std::size_t kk = 0; kk < k; ++kk) {
          acc += arow[kk] * b[kk * ldb + j];
        }
        crow[j] = acc;
      }
    }
  }
}

void avx2_dot_rows(const double* q, const double* rows, std::size_t ld,
                   std::size_t num_rows, std::size_t n, double* out) {
  // Row pairs share every q load; each row keeps the 4-accumulator structure
  // of avx2_dot_real_real (16-wide FMA loop, then 4-wide into acc0, then the
  // (0+1)+(2+3) horizontal sum and scalar tail), so out[r] is bit-identical
  // to avx2_dot_real_real(rows + r·ld, q, n).
  std::size_t r = 0;
  for (; r + 2 <= num_rows; r += 2) {
    const double* a0 = rows + r * ld;
    const double* a1 = a0 + ld;
    __m256d p00 = _mm256_setzero_pd(), p01 = _mm256_setzero_pd();
    __m256d p02 = _mm256_setzero_pd(), p03 = _mm256_setzero_pd();
    __m256d p10 = _mm256_setzero_pd(), p11 = _mm256_setzero_pd();
    __m256d p12 = _mm256_setzero_pd(), p13 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m256d q0 = _mm256_loadu_pd(q + i);
      const __m256d q1 = _mm256_loadu_pd(q + i + 4);
      const __m256d q2 = _mm256_loadu_pd(q + i + 8);
      const __m256d q3 = _mm256_loadu_pd(q + i + 12);
      p00 = _mm256_fmadd_pd(_mm256_loadu_pd(a0 + i), q0, p00);
      p01 = _mm256_fmadd_pd(_mm256_loadu_pd(a0 + i + 4), q1, p01);
      p02 = _mm256_fmadd_pd(_mm256_loadu_pd(a0 + i + 8), q2, p02);
      p03 = _mm256_fmadd_pd(_mm256_loadu_pd(a0 + i + 12), q3, p03);
      p10 = _mm256_fmadd_pd(_mm256_loadu_pd(a1 + i), q0, p10);
      p11 = _mm256_fmadd_pd(_mm256_loadu_pd(a1 + i + 4), q1, p11);
      p12 = _mm256_fmadd_pd(_mm256_loadu_pd(a1 + i + 8), q2, p12);
      p13 = _mm256_fmadd_pd(_mm256_loadu_pd(a1 + i + 12), q3, p13);
    }
    for (; i + 4 <= n; i += 4) {
      const __m256d qv = _mm256_loadu_pd(q + i);
      p00 = _mm256_fmadd_pd(_mm256_loadu_pd(a0 + i), qv, p00);
      p10 = _mm256_fmadd_pd(_mm256_loadu_pd(a1 + i), qv, p10);
    }
    double s0 = hsum(_mm256_add_pd(_mm256_add_pd(p00, p01), _mm256_add_pd(p02, p03)));
    double s1 = hsum(_mm256_add_pd(_mm256_add_pd(p10, p11), _mm256_add_pd(p12, p13)));
    for (; i < n; ++i) {
      s0 += a0[i] * q[i];
      s1 += a1[i] * q[i];
    }
    out[r] = s0;
    out[r + 1] = s1;
  }
  for (; r < num_rows; ++r) {
    out[r] = avx2_dot_real_real(rows + r * ld, q, n);
  }
}

void avx2_dot_rows_block(const double* q, const double* const* rows,
                         std::size_t num_rows, std::size_t len, bool last,
                         double* state, double* out) {
  // Carries avx2_dot_real_real's four vector accumulators per row (16
  // doubles of each row's kDotRowsBlockState slot). Non-final block lengths
  // are multiples of 64, so the 16-wide main loop consumes every non-final
  // block exactly and the lane phase — which 4-group of a 16-stride
  // iteration each element feeds — is a function of i mod 16 and survives
  // the block boundary. The 4-wide spill into acc0, the (0+1)+(2+3)
  // horizontal sum and the scalar tail run only on the final call, exactly
  // once — so out[r] replays avx2_dot_real_real(row_r, q, total_n)
  // operation for operation.
  for (std::size_t r = 0; r < num_rows; ++r) {
    double* st = state + r * kDotRowsBlockState;
    __m256d acc0 = _mm256_loadu_pd(st);
    __m256d acc1 = _mm256_loadu_pd(st + 4);
    __m256d acc2 = _mm256_loadu_pd(st + 8);
    __m256d acc3 = _mm256_loadu_pd(st + 12);
    const double* a = rows[r];
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(q + i), acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(q + i + 4), acc1);
      acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(q + i + 8), acc2);
      acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12), _mm256_loadu_pd(q + i + 12),
                             acc3);
    }
    if (!last) {
      _mm256_storeu_pd(st, acc0);
      _mm256_storeu_pd(st + 4, acc1);
      _mm256_storeu_pd(st + 8, acc2);
      _mm256_storeu_pd(st + 12, acc3);
      continue;
    }
    for (; i + 4 <= len; i += 4) {
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(q + i), acc0);
    }
    double acc = hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
    for (; i < len; ++i) {
      acc += a[i] * q[i];
    }
    out[r] = acc;
  }
}

void avx2_dot_rows_binary(const std::uint64_t* q, const std::uint64_t* rows,
                          std::size_t ld, std::size_t num_rows, std::size_t n,
                          std::int64_t* out) {
  // Per row exactly n − 2·hamming through the shared xor_popcount loop. The
  // q words are a ⌈n/64⌉-word strip that stays L1-resident across the whole
  // bank, and the kernel is POPCNT-port bound, so there is nothing left for
  // a bespoke row-paired loop to win — one inner-loop copy serves hamming
  // and both bank scans.
  const std::size_t words = (n + 63) / 64;
  const auto nn = static_cast<std::int64_t>(n);
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = nn - 2 * xor_popcount(rows + r * ld, q, words);
  }
}

void avx2_dot_rows_ternary(const std::uint64_t* q, const std::uint64_t* signs,
                           const std::uint64_t* masks, std::size_t ld,
                           std::size_t num_rows, std::size_t n, std::int64_t* out) {
  // Per row exactly masked_bipolar_dot(signs_r, q, mask_r) through the
  // shared masked_xnor_popcount loop; see avx2_dot_rows_binary for why the
  // bank scan does not need its own inner-loop copy.
  const std::size_t words = (n + 63) / 64;
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = masked_xnor_popcount(signs + r * ld, q, masks + r * ld, words);
  }
}

void avx2_sign_encode(const double* v, std::int8_t* bipolar, std::uint64_t* bits,
                      std::size_t n) {
  // 4 lanes per compare; the negative-lane movemask nibble both indexes a
  // 16-entry table of ±1 byte groups and (inverted) lands in the packed word.
  // CMP_LT_OQ is false for NaN, so NaN maps to +1 / bit set exactly like the
  // scalar kernel (and RealHV::sign() + BipolarHV::pack()).
  alignas(64) static constexpr std::uint32_t kNibbleBytes[16] = {
      0x01010101U, 0x010101FFU, 0x0101FF01U, 0x0101FFFFU,
      0x01FF0101U, 0x01FF01FFU, 0x01FFFF01U, 0x01FFFFFFU,
      0xFF010101U, 0xFF0101FFU, 0xFF01FF01U, 0xFF01FFFFU,
      0xFFFF0101U, 0xFFFF01FFU, 0xFFFFFF01U, 0xFFFFFFFFU,
  };
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  const std::size_t full_words = n / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 64; j += 4) {
      const int neg =
          _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(v + i + j), zero, _CMP_LT_OQ));
      std::memcpy(bipolar + i + j, &kNibbleBytes[neg], sizeof(std::uint32_t));
      word |= static_cast<std::uint64_t>(~neg & 0xF) << j;
    }
    bits[w] = word;
    i += 64;
  }
  if (i < n) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; i + j < n; ++j) {
      const bool negative = v[i + j] < 0.0;
      bipolar[i + j] = static_cast<std::int8_t>(1 - 2 * static_cast<int>(negative));
      word |= static_cast<std::uint64_t>(!negative) << j;
    }
    bits[i >> 6] = word;
  }
}

constexpr KernelBackend kAvx2Backend{
    "avx2",
    4,
    avx2_dot_real_real,
    avx2_dot_real_bipolar,
    avx2_dot_real_binary,
    avx2_masked_dot,
    avx2_hamming,
    avx2_masked_bipolar_dot,
    avx2_bipolar_dot_dense,
    avx2_add_scaled_real,
    avx2_add_scaled_bipolar,
    avx2_add_scaled_binary,
    avx2_merge_accumulate,
    avx2_scale_real,
    avx2_rff_trig_map,
    avx2_rff_rematerialize,
    avx2_rff_remat_dot,
    avx2_gemm_accumulate,
    avx2_dot_rows,
    avx2_dot_rows_block,
    avx2_dot_rows_binary,
    avx2_dot_rows_ternary,
    avx2_sign_encode,
};

}  // namespace

const KernelBackend* avx2_backend_table() noexcept { return &kAvx2Backend; }

}  // namespace reghd::hdc

#endif  // REGHD_HAVE_AVX2
