// AVX-512 implementations of the kernel backend. This translation unit is
// the only one compiled with -mavx512f -mavx512bw (see src/hdc/
// CMakeLists.txt); it is entered only after runtime cpuid+xgetbv dispatch
// confirms the CPU reports avx512f+avx512bw and the OS has enabled the
// ZMM/opmask register state, so the rest of the build stays portable.
//
// The table is composed at first use as a copy of the AVX2 table with the
// kernels the wider ISA actually improves overridden: the 512-bit real
// reductions (dot_real_real / dot_rows / dot_rows_block share one exact
// operation sequence), the per-component streaming kernels
// (add_scaled_real / merge_accumulate / scale_real / gemm_accumulate,
// mul-then-add so each slot rounds exactly like scalar), the mask-register
// sign_encode, and — when the CPU additionally reports avx512_vpopcntdq —
// VPOPCNTDQ-vectorized popcount kernels for the packed bank scans (AVX2 has
// no vector popcount; these are the popcount-throughput-bound kernels the
// quantized path lives on), and the 8-lane fused rff_remat_dot — the
// Box–Muller pipeline is the whole cost of a rematerialized single query,
// so doubling its lane count is what moves predict_one's latency.
// Everything else (the bit-sign dot family, the tile-writing RFF
// rematerializer) is inherited from the AVX2 table unchanged: those kernels
// are bound by shifts/blends, not by vector width.
#include "hdc/kernel_backend.hpp"

#ifdef REGHD_HAVE_AVX512

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <numbers>

#include "hdc/rff_remat.hpp"

namespace reghd::hdc {

// Defined in kernel_backend_avx2.cpp; the base table this one patches.
const KernelBackend* avx2_backend_table() noexcept;

namespace {

inline double hsum512(__m512d v) {
  __m256d lo = _mm512_castpd512_pd256(v);
  const __m256d hi = _mm512_extractf64x4_pd(v, 1);
  lo = _mm256_add_pd(lo, hi);
  __m128d l = _mm256_castpd256_pd128(lo);
  const __m128d h = _mm256_extractf128_pd(lo, 1);
  l = _mm_add_pd(l, h);
  const __m128d shuf = _mm_unpackhi_pd(l, l);
  return _mm_cvtsd_f64(_mm_add_sd(l, shuf));
}

double avx512_dot_real_real(const double* a, const double* b, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd();
  __m512d acc3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i), acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8), _mm512_loadu_pd(b + i + 8), acc1);
    acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 16), _mm512_loadu_pd(b + i + 16), acc2);
    acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 24), _mm512_loadu_pd(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i), acc0);
  }
  double acc =
      hsum512(_mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3)));
  for (; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

void avx512_dot_rows(const double* q, const double* rows, std::size_t ld,
                     std::size_t num_rows, std::size_t n, double* out) {
  // Row pairs share every q load; each row keeps the 4-accumulator structure
  // of avx512_dot_real_real (32-wide FMA loop, 8-wide spill into acc0,
  // (0+1)+(2+3) horizontal sum, scalar tail), so out[r] is bit-identical to
  // avx512_dot_real_real(rows + r·ld, q, n).
  std::size_t r = 0;
  for (; r + 2 <= num_rows; r += 2) {
    const double* a0 = rows + r * ld;
    const double* a1 = a0 + ld;
    __m512d p00 = _mm512_setzero_pd(), p01 = _mm512_setzero_pd();
    __m512d p02 = _mm512_setzero_pd(), p03 = _mm512_setzero_pd();
    __m512d p10 = _mm512_setzero_pd(), p11 = _mm512_setzero_pd();
    __m512d p12 = _mm512_setzero_pd(), p13 = _mm512_setzero_pd();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      const __m512d q0 = _mm512_loadu_pd(q + i);
      const __m512d q1 = _mm512_loadu_pd(q + i + 8);
      const __m512d q2 = _mm512_loadu_pd(q + i + 16);
      const __m512d q3 = _mm512_loadu_pd(q + i + 24);
      p00 = _mm512_fmadd_pd(_mm512_loadu_pd(a0 + i), q0, p00);
      p01 = _mm512_fmadd_pd(_mm512_loadu_pd(a0 + i + 8), q1, p01);
      p02 = _mm512_fmadd_pd(_mm512_loadu_pd(a0 + i + 16), q2, p02);
      p03 = _mm512_fmadd_pd(_mm512_loadu_pd(a0 + i + 24), q3, p03);
      p10 = _mm512_fmadd_pd(_mm512_loadu_pd(a1 + i), q0, p10);
      p11 = _mm512_fmadd_pd(_mm512_loadu_pd(a1 + i + 8), q1, p11);
      p12 = _mm512_fmadd_pd(_mm512_loadu_pd(a1 + i + 16), q2, p12);
      p13 = _mm512_fmadd_pd(_mm512_loadu_pd(a1 + i + 24), q3, p13);
    }
    for (; i + 8 <= n; i += 8) {
      const __m512d qv = _mm512_loadu_pd(q + i);
      p00 = _mm512_fmadd_pd(_mm512_loadu_pd(a0 + i), qv, p00);
      p10 = _mm512_fmadd_pd(_mm512_loadu_pd(a1 + i), qv, p10);
    }
    double s0 = hsum512(_mm512_add_pd(_mm512_add_pd(p00, p01), _mm512_add_pd(p02, p03)));
    double s1 = hsum512(_mm512_add_pd(_mm512_add_pd(p10, p11), _mm512_add_pd(p12, p13)));
    for (; i < n; ++i) {
      s0 += a0[i] * q[i];
      s1 += a1[i] * q[i];
    }
    out[r] = s0;
    out[r + 1] = s1;
  }
  for (; r < num_rows; ++r) {
    out[r] = avx512_dot_real_real(rows + r * ld, q, n);
  }
}

void avx512_dot_rows_block(const double* q, const double* const* rows,
                           std::size_t num_rows, std::size_t len, bool last,
                           double* state, double* out) {
  // Carries avx512_dot_real_real's four 512-bit accumulators per row (the
  // full 32-double kDotRowsBlockState slot). Non-final block lengths are
  // multiples of 64, so the 32-wide main loop consumes them exactly and the
  // lane phase survives the boundary; the 8-wide spill, horizontal sum and
  // scalar tail run only on the final call.
  for (std::size_t r = 0; r < num_rows; ++r) {
    double* st = state + r * kDotRowsBlockState;
    __m512d acc0 = _mm512_loadu_pd(st);
    __m512d acc1 = _mm512_loadu_pd(st + 8);
    __m512d acc2 = _mm512_loadu_pd(st + 16);
    __m512d acc3 = _mm512_loadu_pd(st + 24);
    const double* a = rows[r];
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
      acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(q + i), acc0);
      acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8), _mm512_loadu_pd(q + i + 8), acc1);
      acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 16), _mm512_loadu_pd(q + i + 16),
                             acc2);
      acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 24), _mm512_loadu_pd(q + i + 24),
                             acc3);
    }
    if (!last) {
      _mm512_storeu_pd(st, acc0);
      _mm512_storeu_pd(st + 8, acc1);
      _mm512_storeu_pd(st + 16, acc2);
      _mm512_storeu_pd(st + 24, acc3);
      continue;
    }
    for (; i + 8 <= len; i += 8) {
      acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(q + i), acc0);
    }
    double acc =
        hsum512(_mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3)));
    for (; i < len; ++i) {
      acc += a[i] * q[i];
    }
    out[r] = acc;
  }
}

void avx512_add_scaled_real(double* a, const double* b, double c, std::size_t n) {
  // mul + add (no FMA): each slot must round exactly like the scalar
  // backend's `a[i] += c * b[i]`. Alignment-peeled to 64-byte destination
  // accesses like the AVX2 kernel (std::vector storage is only 16-byte
  // aligned).
  const __m512d cv = _mm512_set1_pd(c);
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(a + i) & 63U) != 0) {
    a[i] += c * b[i];
    ++i;
  }
  for (; i + 32 <= n; i += 32) {
    _mm512_store_pd(a + i, _mm512_add_pd(_mm512_load_pd(a + i),
                                         _mm512_mul_pd(cv, _mm512_loadu_pd(b + i))));
    _mm512_store_pd(a + i + 8,
                    _mm512_add_pd(_mm512_load_pd(a + i + 8),
                                  _mm512_mul_pd(cv, _mm512_loadu_pd(b + i + 8))));
    _mm512_store_pd(a + i + 16,
                    _mm512_add_pd(_mm512_load_pd(a + i + 16),
                                  _mm512_mul_pd(cv, _mm512_loadu_pd(b + i + 16))));
    _mm512_store_pd(a + i + 24,
                    _mm512_add_pd(_mm512_load_pd(a + i + 24),
                                  _mm512_mul_pd(cv, _mm512_loadu_pd(b + i + 24))));
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_store_pd(a + i, _mm512_add_pd(_mm512_load_pd(a + i),
                                         _mm512_mul_pd(cv, _mm512_loadu_pd(b + i))));
  }
  for (; i < n; ++i) {
    a[i] += c * b[i];
  }
}

void avx512_merge_accumulate(double* acc, const double* rep, const double* base,
                             std::size_t n) {
  // sub then add per lane: each slot rounds exactly like the scalar
  // backend's `acc[i] += rep[i] - base[i]` (the shard-merge proofs rely on
  // bit-identity across tables).
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(acc + i) & 63U) != 0) {
    acc[i] += rep[i] - base[i];
    ++i;
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_store_pd(acc + i,
                    _mm512_add_pd(_mm512_load_pd(acc + i),
                                  _mm512_sub_pd(_mm512_loadu_pd(rep + i),
                                                _mm512_loadu_pd(base + i))));
  }
  for (; i < n; ++i) {
    acc[i] += rep[i] - base[i];
  }
}

void avx512_scale_real(double* a, double c, std::size_t n) {
  const __m512d cv = _mm512_set1_pd(c);
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(a + i) & 63U) != 0) {
    a[i] *= c;
    ++i;
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_store_pd(a + i, _mm512_mul_pd(cv, _mm512_load_pd(a + i)));
  }
  for (; i < n; ++i) {
    a[i] *= c;
  }
}

void avx512_gemm_accumulate(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                            std::size_t k, std::size_t n) {
  // Same traversal as the scalar kernel (column tile = 512 doubles), C
  // register-blocked 32 wide. mul + add (no FMA) and ascending k keep every
  // element's rounding sequence identical to scalar.
  constexpr std::size_t kColTile = 512;
  for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
    const std::size_t jn = std::min(n, j0 + kColTile);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * lda;
      double* crow = c + r * ldc;
      std::size_t j = j0;
      for (; j + 32 <= jn; j += 32) {
        __m512d c0 = _mm512_loadu_pd(crow + j);
        __m512d c1 = _mm512_loadu_pd(crow + j + 8);
        __m512d c2 = _mm512_loadu_pd(crow + j + 16);
        __m512d c3 = _mm512_loadu_pd(crow + j + 24);
        for (std::size_t kk = 0; kk < k; ++kk) {
          const __m512d av = _mm512_set1_pd(arow[kk]);
          const double* bp = b + kk * ldb + j;
          c0 = _mm512_add_pd(c0, _mm512_mul_pd(av, _mm512_loadu_pd(bp)));
          c1 = _mm512_add_pd(c1, _mm512_mul_pd(av, _mm512_loadu_pd(bp + 8)));
          c2 = _mm512_add_pd(c2, _mm512_mul_pd(av, _mm512_loadu_pd(bp + 16)));
          c3 = _mm512_add_pd(c3, _mm512_mul_pd(av, _mm512_loadu_pd(bp + 24)));
        }
        _mm512_storeu_pd(crow + j, c0);
        _mm512_storeu_pd(crow + j + 8, c1);
        _mm512_storeu_pd(crow + j + 16, c2);
        _mm512_storeu_pd(crow + j + 24, c3);
      }
      for (; j < jn; ++j) {
        double acc = crow[j];
        for (std::size_t kk = 0; kk < k; ++kk) {
          acc += arow[kk] * b[kk * ldb + j];
        }
        crow[j] = acc;
      }
    }
  }
}

/// ±1 byte groups for an 8-bit negative-lane mask: byte l is 0xFF (−1) when
/// mask bit l is set, 0x01 (+1) otherwise.
constexpr std::array<std::uint64_t, 256> kMaskBytes = [] {
  std::array<std::uint64_t, 256> table{};
  for (unsigned m = 0; m < 256; ++m) {
    std::uint64_t v = 0;
    for (unsigned l = 0; l < 8; ++l) {
      const std::uint64_t byte = ((m >> l) & 1U) != 0 ? 0xFFULL : 0x01ULL;
      v |= byte << (8 * l);
    }
    table[m] = v;
  }
  return table;
}();

void avx512_sign_encode(const double* v, std::int8_t* bipolar, std::uint64_t* bits,
                        std::size_t n) {
  // One VCMPPD per 8 lanes straight into a mask register; the mask byte both
  // indexes the ±1 byte-group table and (inverted) lands in the packed word.
  // _CMP_LT_OQ is false for NaN, so NaN maps to +1 / bit set exactly like
  // the scalar kernel.
  const __m512d zero = _mm512_setzero_pd();
  std::size_t i = 0;
  const std::size_t full_words = n / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 64; j += 8) {
      const auto neg = static_cast<unsigned>(
          _mm512_cmp_pd_mask(_mm512_loadu_pd(v + i + j), zero, _CMP_LT_OQ));
      std::memcpy(bipolar + i + j, &kMaskBytes[neg], sizeof(std::uint64_t));
      word |= static_cast<std::uint64_t>(~neg & 0xFFU) << j;
    }
    bits[w] = word;
    i += 64;
  }
  if (i < n) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; i + j < n; ++j) {
      const bool negative = v[i + j] < 0.0;
      bipolar[i + j] = static_cast<std::int8_t>(1 - 2 * static_cast<int>(negative));
      word |= static_cast<std::uint64_t>(!negative) << j;
    }
    bits[i >> 6] = word;
  }
}

// ---------------------------------------------------------------------------
// VPOPCNTDQ popcount family. The TU baseline is avx512f+avx512bw; these
// functions opt into the vpopcntdq extension with a target attribute and are
// only installed in the table when cpuid reports the feature. Integer-exact,
// so they are bit-identical to the scalar/AVX2 POPCNT loops by construction.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512bw,avx512vpopcntdq"))) std::int64_t
vpop_xor_popcount(const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  std::int64_t total = _mm512_reduce_add_epi64(acc);
  for (; i < words; ++i) {
    total += std::popcount(a[i] ^ b[i]);
  }
  return total;
}

__attribute__((target("avx512f,avx512bw,avx512vpopcntdq"))) std::int64_t
vpop_masked_xnor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          const std::uint64_t* mask, std::size_t words) {
  __m512i agree = _mm512_setzero_si512();
  __m512i active = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i m = _mm512_loadu_si512(mask + i);
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    // ~(a ^ b) & m in one ANDNOT.
    agree = _mm512_add_epi64(agree, _mm512_popcnt_epi64(_mm512_andnot_si512(x, m)));
    active = _mm512_add_epi64(active, _mm512_popcnt_epi64(m));
  }
  std::int64_t agree_total = _mm512_reduce_add_epi64(agree);
  std::int64_t active_total = _mm512_reduce_add_epi64(active);
  for (; i < words; ++i) {
    agree_total += std::popcount(~(a[i] ^ b[i]) & mask[i]);
    active_total += std::popcount(mask[i]);
  }
  return 2 * agree_total - active_total;
}

std::int64_t vpop_hamming(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  return vpop_xor_popcount(a, b, words);
}

std::int64_t vpop_masked_bipolar_dot(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* mask, std::size_t words) {
  return vpop_masked_xnor_popcount(a, b, mask, words);
}

void vpop_dot_rows_binary(const std::uint64_t* q, const std::uint64_t* rows,
                          std::size_t ld, std::size_t num_rows, std::size_t n,
                          std::int64_t* out) {
  const std::size_t words = (n + 63) / 64;
  const auto nn = static_cast<std::int64_t>(n);
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = nn - 2 * vpop_xor_popcount(rows + r * ld, q, words);
  }
}

void vpop_dot_rows_ternary(const std::uint64_t* q, const std::uint64_t* signs,
                           const std::uint64_t* masks, std::size_t ld,
                           std::size_t num_rows, std::size_t n, std::int64_t* out) {
  const std::size_t words = (n + 63) / 64;
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = vpop_masked_xnor_popcount(signs + r * ld, q, masks + r * ld, words);
  }
}

// ---------------------------------------------------------------------------
// 8-lane Box–Muller replay for the fused single-query projection. These are
// the AVX2 TU's mullo64 / splitmix_mix / u64_to_double_53 / fast_log4 /
// fast_sincos4 helpers widened to 512 bits: identical operations in identical
// per-lane order (blendv becomes a mask blend, xor_pd goes through the
// integer domain — both AVX-512F-only and bit-transparent), VSQRTPD and
// VDIVPD are correctly rounded at any width, so every lane stays
// bit-identical to the scalar reference in rff_remat.hpp.
// ---------------------------------------------------------------------------

inline __m512i mullo64_512(__m512i a, __m512i b) {
  // Low 64 bits of a 64×64 multiply per lane without AVX-512DQ's VPMULLQ:
  //   a·b mod 2⁶⁴ = lo(a)·lo(b) + ((lo(a)·hi(b) + hi(a)·lo(b)) « 32).
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i lolo = _mm512_mul_epu32(a, b);
  const __m512i cross = _mm512_add_epi64(_mm512_mul_epu32(a, b_hi),
                                         _mm512_mul_epu32(a_hi, b));
  return _mm512_add_epi64(lolo, _mm512_slli_epi64(cross, 32));
}

inline __m512i splitmix_mix8(__m512i z) {
  z = mullo64_512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
                  _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mullo64_512(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
                  _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

inline __m512d u64_to_double_53_512(__m512i v) {
  // Exact uint64 → double for lane values < 2⁵³ via the 2⁵² magic-bias trick
  // (AVX-512F has no u64→f64 cvt; that is a DQ instruction).
  const __m512i magic = _mm512_set1_epi64(0x4330000000000000LL);
  const __m512d bias = _mm512_set1_pd(0x1.0p52);
  const __m512i lo = _mm512_and_si512(v, _mm512_set1_epi64(0xFFFFFFFFLL));
  const __m512i hi = _mm512_srli_epi64(v, 32);
  const __m512d lo_d =
      _mm512_sub_pd(_mm512_castsi512_pd(_mm512_or_si512(lo, magic)), bias);
  const __m512d hi_d =
      _mm512_sub_pd(_mm512_castsi512_pd(_mm512_or_si512(hi, magic)), bias);
  return _mm512_add_pd(_mm512_mul_pd(hi_d, _mm512_set1_pd(0x1.0p32)), lo_d);
}

inline __m512d fast_log8(__m512d x) {
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512i bits = _mm512_castpd_si512(x);
  const __m512d m_half = _mm512_castsi512_pd(_mm512_or_si512(
      _mm512_and_si512(bits, _mm512_set1_epi64(0x000FFFFFFFFFFFFFLL)),
      _mm512_set1_epi64(0x3FE0000000000000LL)));
  __m512d e = _mm512_sub_pd(
      _mm512_castsi512_pd(_mm512_or_si512(_mm512_srli_epi64(bits, 52),
                                          _mm512_set1_epi64(0x4330000000000000LL))),
      _mm512_set1_pd(0x1.0p52 + 1022.0));
  const __mmask8 low =
      _mm512_cmp_pd_mask(m_half, _mm512_set1_pd(7.07106781186547524401e-01), _CMP_LT_OQ);
  const __m512d m = _mm512_mask_blend_pd(low, m_half, _mm512_add_pd(m_half, m_half));
  e = _mm512_mask_blend_pd(low, e, _mm512_sub_pd(e, one));

  const __m512d f = _mm512_sub_pd(m, one);
  const __m512d s = _mm512_div_pd(f, _mm512_add_pd(_mm512_set1_pd(2.0), f));
  const __m512d z = _mm512_mul_pd(s, s);
  const __m512d w = _mm512_mul_pd(z, z);
  __m512d t1 = _mm512_add_pd(_mm512_set1_pd(2.222219843214978396e-01),
                             _mm512_mul_pd(w, _mm512_set1_pd(1.531383769920937332e-01)));
  t1 = _mm512_mul_pd(w, _mm512_add_pd(_mm512_set1_pd(3.999999999940941908e-01),
                                      _mm512_mul_pd(w, t1)));
  __m512d t2 = _mm512_add_pd(_mm512_set1_pd(1.818357216161805012e-01),
                             _mm512_mul_pd(w, _mm512_set1_pd(1.479819860511658591e-01)));
  t2 = _mm512_add_pd(_mm512_set1_pd(2.857142874366239149e-01), _mm512_mul_pd(w, t2));
  t2 = _mm512_mul_pd(z, _mm512_add_pd(_mm512_set1_pd(6.666666666666735130e-01),
                                      _mm512_mul_pd(w, t2)));
  const __m512d r = _mm512_add_pd(t2, t1);
  const __m512d hfsq = _mm512_mul_pd(_mm512_mul_pd(half, f), f);
  const __m512d ln2lo = _mm512_set1_pd(1.90821492927058770002e-10);
  const __m512d ln2hi = _mm512_set1_pd(6.93147180369123816490e-01);
  const __m512d inner = _mm512_add_pd(_mm512_mul_pd(s, _mm512_add_pd(hfsq, r)),
                                      _mm512_mul_pd(e, ln2lo));
  return _mm512_sub_pd(_mm512_mul_pd(e, ln2hi),
                       _mm512_sub_pd(_mm512_sub_pd(hfsq, inner), f));
}

struct SinCos8 {
  __m512d sin;
  __m512d cos;
};

inline SinCos8 fast_sincos8(__m512d x) {
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d two_over_pi = _mm512_set1_pd(6.36619772367581382433e-01);
  const __m512d shift = _mm512_set1_pd(6755399441055744.0);
  const __m512d pio2_hi = _mm512_set1_pd(1.57079632673412561417e+00);
  const __m512d pio2_lo = _mm512_set1_pd(6.07710050650619224932e-11);
  const __m512i one64 = _mm512_set1_epi64(1);
  const __m512i two64 = _mm512_set1_epi64(2);

  const __m512d shifted = _mm512_add_pd(_mm512_mul_pd(x, two_over_pi), shift);
  const __m512i q = _mm512_castpd_si512(shifted);
  const __m512d k = _mm512_sub_pd(shifted, shift);
  const __m512d r = _mm512_sub_pd(_mm512_sub_pd(x, _mm512_mul_pd(k, pio2_hi)),
                                  _mm512_mul_pd(k, pio2_lo));
  const __m512d r2 = _mm512_mul_pd(r, r);

  __m512d sp = _mm512_set1_pd(1.58969099521155010221e-10);
  sp = _mm512_add_pd(_mm512_set1_pd(-2.50507602534068634195e-08),
                     _mm512_mul_pd(r2, sp));
  sp = _mm512_add_pd(_mm512_set1_pd(2.75573137070700676789e-06),
                     _mm512_mul_pd(r2, sp));
  sp = _mm512_add_pd(_mm512_set1_pd(-1.98412698298579493134e-04),
                     _mm512_mul_pd(r2, sp));
  sp = _mm512_add_pd(_mm512_set1_pd(8.33333333332248946124e-03),
                     _mm512_mul_pd(r2, sp));
  sp = _mm512_add_pd(_mm512_set1_pd(-1.66666666666666324348e-01),
                     _mm512_mul_pd(r2, sp));
  const __m512d ps = _mm512_add_pd(r, _mm512_mul_pd(_mm512_mul_pd(r, r2), sp));

  __m512d cp = _mm512_set1_pd(-1.13596475577881948265e-11);
  cp = _mm512_add_pd(_mm512_set1_pd(2.08757232129817482790e-09),
                     _mm512_mul_pd(r2, cp));
  cp = _mm512_add_pd(_mm512_set1_pd(-2.75573143513906633035e-07),
                     _mm512_mul_pd(r2, cp));
  cp = _mm512_add_pd(_mm512_set1_pd(2.48015872894767294178e-05),
                     _mm512_mul_pd(r2, cp));
  cp = _mm512_add_pd(_mm512_set1_pd(-1.38888888888741095749e-03),
                     _mm512_mul_pd(r2, cp));
  cp = _mm512_add_pd(_mm512_set1_pd(4.16666666666666019037e-02),
                     _mm512_mul_pd(r2, cp));
  const __m512d pc =
      _mm512_add_pd(_mm512_sub_pd(_mm512_set1_pd(1.0), _mm512_mul_pd(half, r2)),
                    _mm512_mul_pd(_mm512_mul_pd(r2, r2), cp));

  const __mmask8 odd = _mm512_test_epi64_mask(q, one64);
  SinCos8 out;
  // sin: even quadrant → ±sin(r), odd → ±cos(r); sign from bit 1 of q.
  const __m512i sin_flip = _mm512_slli_epi64(_mm512_and_si512(q, two64), 62);
  out.sin = _mm512_castsi512_pd(_mm512_xor_si512(
      _mm512_castpd_si512(_mm512_mask_blend_pd(odd, ps, pc)), sin_flip));
  // cos: the roles swapped; sign from bit 1 of q + 1.
  const __m512i cos_flip =
      _mm512_slli_epi64(_mm512_and_si512(_mm512_add_epi64(q, one64), two64), 62);
  out.cos = _mm512_castsi512_pd(_mm512_xor_si512(
      _mm512_castpd_si512(_mm512_mask_blend_pd(odd, pc, ps)), cos_flip));
  return out;
}

void avx512_rff_remat_dot(std::uint64_t seed, double stddev, std::size_t row0,
                          std::size_t rows, const double* x, std::size_t n_features,
                          double* out) {
  // Eight consecutive rows per vector, weights consumed in registers the
  // moment they exist: z ← z + x_k·w with k ascending, mul then add — the
  // gemm_accumulate per-element chain — so the single-query path neither
  // stores nor reloads a weight tile. Every lane replays the scalar
  // reference operation for operation; row tails fall back to it directly.
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  constexpr double kInv53 = 0x1.0p-53;
  const __m512d stddev_v = _mm512_set1_pd(stddev);
  const __m512d two_pi = _mm512_set1_pd(kTwoPi);
  const __m512d inv53 = _mm512_set1_pd(kInv53);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d neg_two = _mm512_set1_pd(-2.0);
  constexpr std::uint64_t kG = detail::kSmGamma;
  const __m512i lane_gamma = _mm512_setr_epi64(
      0, static_cast<long long>(kG), static_cast<long long>(2 * kG),
      static_cast<long long>(3 * kG), static_cast<long long>(4 * kG),
      static_cast<long long>(5 * kG), static_cast<long long>(6 * kG),
      static_cast<long long>(7 * kG));

  std::size_t r = 0;
  for (; r + 8 <= rows; r += 8) {
    // Lane l's row seed is mix(seed + (row0 + r + l + 1)·γ) — exactly
    // detail::splitmix_at.
    const std::uint64_t base =
        seed + (static_cast<std::uint64_t>(row0 + r) + 1) * kG;
    const __m512i row_seed = splitmix_mix8(
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(base)), lane_gamma));
    __m512d z = _mm512_setzero_pd();
    for (std::size_t k = 0; k < n_features; k += 2) {
      const __m512i draw_a = splitmix_mix8(_mm512_add_epi64(
          row_seed, _mm512_set1_epi64(static_cast<long long>(
                        (static_cast<std::uint64_t>(k) + 1) * kG))));
      const __m512i draw_b = splitmix_mix8(_mm512_add_epi64(
          row_seed, _mm512_set1_epi64(static_cast<long long>(
                        (static_cast<std::uint64_t>(k) + 2) * kG))));
      const __m512d a = u64_to_double_53_512(_mm512_srli_epi64(draw_a, 11));
      const __m512d b = u64_to_double_53_512(_mm512_srli_epi64(draw_b, 11));
      const __m512d u1 = _mm512_mul_pd(_mm512_add_pd(a, one), inv53);
      const __m512d u2 = _mm512_mul_pd(b, inv53);
      const __m512d radius = _mm512_sqrt_pd(_mm512_mul_pd(neg_two, fast_log8(u1)));
      const __m512d angle = _mm512_mul_pd(two_pi, u2);
      const SinCos8 sc = fast_sincos8(angle);
      const __m512d w_cos = _mm512_mul_pd(_mm512_mul_pd(radius, sc.cos), stddev_v);
      z = _mm512_add_pd(z, _mm512_mul_pd(_mm512_set1_pd(x[k]), w_cos));
      if (k + 1 < n_features) {
        const __m512d w_sin = _mm512_mul_pd(_mm512_mul_pd(radius, sc.sin), stddev_v);
        z = _mm512_add_pd(z, _mm512_mul_pd(_mm512_set1_pd(x[k + 1]), w_sin));
      }
    }
    _mm512_storeu_pd(out + r, z);
  }
  if (r < rows) {
    detail::rff_remat_dot_rows(seed, stddev, row0 + r, rows - r, x, n_features,
                               out + r);
  }
}

KernelBackend make_avx512_table(bool vpopcntdq) {
  KernelBackend table = *avx2_backend_table();
  table.name = "avx512";
  table.f64_lanes = 8;
  table.dot_real_real = avx512_dot_real_real;
  table.add_scaled_real = avx512_add_scaled_real;
  table.merge_accumulate = avx512_merge_accumulate;
  table.scale_real = avx512_scale_real;
  table.gemm_accumulate = avx512_gemm_accumulate;
  table.rff_remat_dot = avx512_rff_remat_dot;
  table.dot_rows = avx512_dot_rows;
  table.dot_rows_block = avx512_dot_rows_block;
  table.sign_encode = avx512_sign_encode;
  if (vpopcntdq) {
    table.hamming = vpop_hamming;
    table.masked_bipolar_dot = vpop_masked_bipolar_dot;
    table.dot_rows_binary = vpop_dot_rows_binary;
    table.dot_rows_ternary = vpop_dot_rows_ternary;
  }
  return table;
}

}  // namespace

const KernelBackend* avx512_backend_table(bool vpopcntdq) noexcept {
  // Two fixed variants behind function-local statics: the table is composed
  // on first call (always after runtime dispatch has confirmed AVX-512), and
  // both variants report the same name — VPOPCNTDQ is a sub-dispatch, not a
  // user-visible backend.
  static const KernelBackend base = make_avx512_table(false);
  static const KernelBackend vpop = make_avx512_table(true);
  return vpopcntdq ? &vpop : &base;
}

}  // namespace reghd::hdc

#endif  // REGHD_HAVE_AVX512
