// Shared scalar core of the RFF projection rematerialization kernel.
//
// Both kernel-backend translation units include this header: the scalar
// table uses it as the whole kernel, the AVX2 table uses it for row tails
// (rows % 4) around its lane-parallel main loop. Keeping the reference
// operation sequence in one place is what makes the bit-exactness contract
// in kernel_backend.hpp auditable — there is exactly one definition of how a
// weight is derived from (seed, row, feature), and the AVX2 main loop
// replays it operation for operation.
//
// Neither TU may let the compiler contract the arithmetic into FMAs: the
// scalar TU targets baseline x86-64 (no FMA instructions exist), the AVX2 TU
// is compiled with -ffp-contract=off. fast_log / fast_cos / fast_sin are
// branch-free on the domains used here (u₁ ∈ [2⁻⁵³, 1], angle ∈ [0, 2π)).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>

#include "util/fast_trig.hpp"
#include "util/random.hpp"

namespace reghd::hdc::detail {

/// SplitMix64's additive constant. The rematerialization kernel seeks the
/// stream by counter — the i-th output of seed s is mix(s + (i+1)·γ) — so
/// any row tile regenerates its weights without stepping through the prefix.
constexpr std::uint64_t kSmGamma = 0x9e3779b97f4a7c15ULL;

/// The i-th (0-indexed) SplitMix64 output of `seed`, by counter seek.
[[nodiscard]] constexpr std::uint64_t splitmix_at(std::uint64_t seed,
                                                  std::uint64_t i) noexcept {
  return util::SplitMix64(seed + i * kSmGamma).next();
}

/// Reference implementation of KernelBackend::rff_rematerialize (see the
/// contract there): writes w_{row0+r, k} to out[k·ld + r], feature-major.
inline void rff_rematerialize_rows(std::uint64_t seed, double stddev, std::size_t row0,
                                   std::size_t rows, std::size_t n_features, double* out,
                                   std::size_t ld) {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  constexpr double kInv53 = 0x1.0p-53;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t row_seed = splitmix_at(seed, row0 + r);
    for (std::size_t k = 0; k < n_features; k += 2) {
      const double a = static_cast<double>(splitmix_at(row_seed, k) >> 11);
      const double b = static_cast<double>(splitmix_at(row_seed, k + 1) >> 11);
      const double u1 = (a + 1.0) * kInv53;  // (0, 1] — inside fast_log's domain
      const double u2 = b * kInv53;          // [0, 1)
      const double radius = std::sqrt(-2.0 * util::fast_log(u1));
      const double angle = kTwoPi * u2;  // < 2π — fast_cos/sin stay branch-free
      out[k * ld + r] = (radius * util::fast_cos(angle)) * stddev;
      if (k + 1 < n_features) {
        out[(k + 1) * ld + r] = (radius * util::fast_sin(angle)) * stddev;
      }
    }
  }
}

/// Reference implementation of KernelBackend::rff_remat_dot (see the
/// contract there): out[r] = the ascending-k mul-then-add chain over row
/// (row0+r)'s weights, each weight derived exactly as in
/// rff_rematerialize_rows above — the weight expression and the gemm/axpy
/// accumulation chain replayed back to back, with no tile in between.
inline void rff_remat_dot_rows(std::uint64_t seed, double stddev, std::size_t row0,
                               std::size_t rows, const double* x,
                               std::size_t n_features, double* out) {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  constexpr double kInv53 = 0x1.0p-53;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t row_seed = splitmix_at(seed, row0 + r);
    double z = 0.0;
    for (std::size_t k = 0; k < n_features; k += 2) {
      const double a = static_cast<double>(splitmix_at(row_seed, k) >> 11);
      const double b = static_cast<double>(splitmix_at(row_seed, k + 1) >> 11);
      const double u1 = (a + 1.0) * kInv53;  // (0, 1] — inside fast_log's domain
      const double u2 = b * kInv53;          // [0, 1)
      const double radius = std::sqrt(-2.0 * util::fast_log(u1));
      const double angle = kTwoPi * u2;  // < 2π — fast_cos/sin stay branch-free
      z += x[k] * ((radius * util::fast_cos(angle)) * stddev);
      if (k + 1 < n_features) {
        z += x[k + 1] * ((radius * util::fast_sin(angle)) * stddev);
      }
    }
    out[r] = z;
  }
}

}  // namespace reghd::hdc::detail
