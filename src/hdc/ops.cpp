#include "hdc/ops.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace reghd::hdc {

namespace {

void check_dims(std::size_t a, std::size_t b, const char* op) {
  REGHD_CHECK(a == b, op << ": dimension mismatch " << a << " vs " << b);
}

}  // namespace

double dot(const RealHV& a, const RealHV& b) {
  check_dims(a.dim(), b.dim(), "dot(real,real)");
  double acc = 0.0;
  const auto va = a.values();
  const auto vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    acc += va[i] * vb[i];
  }
  return acc;
}

double dot(const RealHV& a, const BipolarHV& b) {
  check_dims(a.dim(), b.dim(), "dot(real,bipolar)");
  double acc = 0.0;
  const auto va = a.values();
  const auto vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    acc += vb[i] > 0 ? va[i] : -va[i];
  }
  return acc;
}

double dot(const RealHV& a, const BinaryHV& b) {
  check_dims(a.dim(), b.dim(), "dot(real,binary)");
  double acc = 0.0;
  const auto va = a.values();
  const auto words = b.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    const std::size_t base = w << 6;
    const std::size_t limit = std::min<std::size_t>(64, va.size() - base);
    for (std::size_t j = 0; j < limit; ++j) {
      acc += (bits & 1ULL) ? va[base + j] : -va[base + j];
      bits >>= 1;
    }
  }
  return acc;
}

std::int64_t bipolar_dot(const BinaryHV& a, const BinaryHV& b) {
  check_dims(a.dim(), b.dim(), "bipolar_dot(binary,binary)");
  const auto h = static_cast<std::int64_t>(hamming_distance(a, b));
  return static_cast<std::int64_t>(a.dim()) - 2 * h;
}

std::int64_t bipolar_dot(const BipolarHV& a, const BipolarHV& b) {
  check_dims(a.dim(), b.dim(), "bipolar_dot(bipolar,bipolar)");
  std::int64_t acc = 0;
  const auto va = a.values();
  const auto vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    acc += static_cast<std::int64_t>(va[i]) * static_cast<std::int64_t>(vb[i]);
  }
  return acc;
}

std::int64_t masked_bipolar_dot(const BinaryHV& a, const BinaryHV& b,
                                const BinaryHV& mask) {
  check_dims(a.dim(), b.dim(), "masked_bipolar_dot");
  check_dims(a.dim(), mask.dim(), "masked_bipolar_dot(mask)");
  const auto wa = a.words();
  const auto wb = b.words();
  const auto wm = mask.words();
  std::int64_t agree = 0;
  std::int64_t active = 0;
  for (std::size_t i = 0; i < wa.size(); ++i) {
    const std::uint64_t m = wm[i];
    agree += std::popcount(~(wa[i] ^ wb[i]) & m);
    active += std::popcount(m);
  }
  return 2 * agree - active;
}

double masked_dot(const RealHV& a, const BinaryHV& signs, const BinaryHV& mask) {
  check_dims(a.dim(), signs.dim(), "masked_dot");
  check_dims(a.dim(), mask.dim(), "masked_dot(mask)");
  const auto va = a.values();
  const auto ws = signs.words();
  const auto wm = mask.words();
  double acc = 0.0;
  for (std::size_t w = 0; w < wm.size(); ++w) {
    std::uint64_t active = wm[w];
    const std::uint64_t sign_bits = ws[w];
    const std::size_t base = w << 6;
    while (active != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(active));
      active &= active - 1;  // clear lowest set bit
      const double v = va[base + j];
      acc += (sign_bits >> j) & 1ULL ? v : -v;
    }
  }
  return acc;
}

std::size_t hamming_distance(const BinaryHV& a, const BinaryHV& b) {
  check_dims(a.dim(), b.dim(), "hamming_distance");
  std::size_t total = 0;
  const auto wa = a.words();
  const auto wb = b.words();
  for (std::size_t i = 0; i < wa.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(wa[i] ^ wb[i]));
  }
  return total;
}

double hamming_similarity(const BinaryHV& a, const BinaryHV& b) {
  REGHD_CHECK(a.dim() > 0, "hamming_similarity of empty vectors");
  const auto h = static_cast<double>(hamming_distance(a, b));
  return 1.0 - 2.0 * h / static_cast<double>(a.dim());
}

double norm(const RealHV& a) { return std::sqrt(dot(a, a)); }

double cosine(const RealHV& a, const RealHV& b) {
  check_dims(a.dim(), b.dim(), "cosine(real,real)");
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) {
    return 0.0;
  }
  return dot(a, b) / (na * nb);
}

double cosine(const RealHV& a, const BipolarHV& b) {
  check_dims(a.dim(), b.dim(), "cosine(real,bipolar)");
  const double na = norm(a);
  if (na == 0.0 || a.dim() == 0) {
    return 0.0;
  }
  return dot(a, b) / (na * std::sqrt(static_cast<double>(a.dim())));
}

double cosine(const RealHV& a, const BinaryHV& b) {
  check_dims(a.dim(), b.dim(), "cosine(real,binary)");
  const double na = norm(a);
  if (na == 0.0 || a.dim() == 0) {
    return 0.0;
  }
  return dot(a, b) / (na * std::sqrt(static_cast<double>(a.dim())));
}

void add_scaled(RealHV& a, const RealHV& b, double c) {
  check_dims(a.dim(), b.dim(), "add_scaled(real,real)");
  const auto vb = b.values();
  const auto va = a.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    va[i] += c * vb[i];
  }
}

void add_scaled(RealHV& a, const BipolarHV& b, double c) {
  check_dims(a.dim(), b.dim(), "add_scaled(real,bipolar)");
  const auto vb = b.values();
  const auto va = a.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    va[i] += vb[i] > 0 ? c : -c;
  }
}

void add_scaled(RealHV& a, const BinaryHV& b, double c) {
  check_dims(a.dim(), b.dim(), "add_scaled(real,binary)");
  const auto va = a.values();
  const auto words = b.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    const std::size_t base = w << 6;
    const std::size_t limit = std::min<std::size_t>(64, va.size() - base);
    for (std::size_t j = 0; j < limit; ++j) {
      va[base + j] += (bits & 1ULL) ? c : -c;
      bits >>= 1;
    }
  }
}

void scale(RealHV& a, double c) {
  for (double& v : a.values()) {
    v *= c;
  }
}

BinaryHV xor_bind(const BinaryHV& a, const BinaryHV& b) {
  check_dims(a.dim(), b.dim(), "xor_bind");
  // In the bipolar view, component-wise multiplication corresponds to XNOR
  // of the bits: (+1)(+1)=+1 ↔ 1 xnor 1 = 1. We implement XNOR and keep the
  // trailing padding bits zeroed.
  BinaryHV out(a.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    out.set_bit(i, a.bit(i) == b.bit(i));
  }
  return out;
}

BinaryHV permute(const BinaryHV& a, std::size_t shift) {
  const std::size_t d = a.dim();
  REGHD_CHECK(d > 0, "permute of empty vector");
  BinaryHV out(d);
  const std::size_t s = shift % d;
  for (std::size_t i = 0; i < d; ++i) {
    out.set_bit((i + s) % d, a.bit(i));
  }
  return out;
}

BinaryHV majority(const std::vector<BinaryHV>& vectors) {
  REGHD_CHECK(!vectors.empty(), "majority of no vectors");
  const std::size_t d = vectors.front().dim();
  std::vector<std::int64_t> counts(d, 0);
  for (const auto& v : vectors) {
    check_dims(v.dim(), d, "majority");
    for (std::size_t i = 0; i < d; ++i) {
      counts[i] += v.bit(i) ? 1 : -1;
    }
  }
  BinaryHV out(d);
  for (std::size_t i = 0; i < d; ++i) {
    out.set_bit(i, counts[i] >= 0);
  }
  return out;
}

}  // namespace reghd::hdc
