#include "hdc/ops.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "hdc/kernel_backend.hpp"

namespace reghd::hdc {

namespace {

void check_dims(std::size_t a, std::size_t b, const char* op) {
  REGHD_CHECK(a == b, op << ": dimension mismatch " << a << " vs " << b);
}

/// 64 consecutive bits of the circular d-bit vector `w` starting at bit q
/// (q < d). Reads never cross the d boundary in one chunk, so the padding
/// bits of the final word are never picked up.
std::uint64_t circular_read64(std::span<const std::uint64_t> w, std::size_t d,
                              std::size_t q) {
  std::uint64_t out = 0;
  std::size_t got = 0;
  while (got < 64) {
    std::size_t pos = q + got;
    if (pos >= d) {
      pos %= d;
    }
    const std::size_t word = pos >> 6;
    const std::size_t off = pos & 63;
    const std::size_t avail = std::min<std::size_t>(64 - off, d - pos);
    const std::size_t take = std::min<std::size_t>(64 - got, avail);
    const std::uint64_t chunk =
        (w[word] >> off) & (take == 64 ? ~0ULL : ((1ULL << take) - 1));
    out |= chunk << got;
    got += take;
  }
  return out;
}

}  // namespace

double dot(RealHVView a, RealHVView b) {
  check_dims(a.dim(), b.dim(), "dot(real,real)");
  return active_backend().dot_real_real(a.values().data(), b.values().data(), a.dim());
}

double dot(RealHVView a, BipolarHVView b) {
  check_dims(a.dim(), b.dim(), "dot(real,bipolar)");
  return active_backend().dot_real_bipolar(a.values().data(), b.values().data(), a.dim());
}

double dot(RealHVView a, BinaryHVView b) {
  check_dims(a.dim(), b.dim(), "dot(real,binary)");
  return active_backend().dot_real_binary(a.values().data(), b.words().data(), a.dim());
}

std::int64_t bipolar_dot(BinaryHVView a, BinaryHVView b) {
  check_dims(a.dim(), b.dim(), "bipolar_dot(binary,binary)");
  const std::int64_t h = static_cast<std::int64_t>(hamming_distance(a, b));
  return static_cast<std::int64_t>(a.dim()) - 2 * h;
}

std::int64_t bipolar_dot(BipolarHVView a, BipolarHVView b) {
  check_dims(a.dim(), b.dim(), "bipolar_dot(bipolar,bipolar)");
  return active_backend().bipolar_dot_dense(a.values().data(), b.values().data(), a.dim());
}

std::int64_t masked_bipolar_dot(BinaryHVView a, BinaryHVView b, BinaryHVView mask) {
  check_dims(a.dim(), b.dim(), "masked_bipolar_dot");
  check_dims(a.dim(), mask.dim(), "masked_bipolar_dot(mask)");
  return active_backend().masked_bipolar_dot(a.words().data(), b.words().data(),
                                             mask.words().data(), a.word_count());
}

double masked_dot(RealHVView a, BinaryHVView signs, BinaryHVView mask) {
  check_dims(a.dim(), signs.dim(), "masked_dot");
  check_dims(a.dim(), mask.dim(), "masked_dot(mask)");
  return active_backend().masked_dot(a.values().data(), signs.words().data(),
                                     mask.words().data(), a.dim());
}

std::size_t hamming_distance(BinaryHVView a, BinaryHVView b) {
  check_dims(a.dim(), b.dim(), "hamming_distance");
  return static_cast<std::size_t>(
      active_backend().hamming(a.words().data(), b.words().data(), a.word_count()));
}

double hamming_similarity(BinaryHVView a, BinaryHVView b) {
  REGHD_CHECK(a.dim() > 0, "hamming_similarity of empty vectors");
  const auto h = static_cast<double>(hamming_distance(a, b));
  return 1.0 - 2.0 * h / static_cast<double>(a.dim());
}

double norm(RealHVView a) { return std::sqrt(dot(a, a)); }

double cosine(RealHVView a, RealHVView b) {
  check_dims(a.dim(), b.dim(), "cosine(real,real)");
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) {
    return 0.0;
  }
  return dot(a, b) / (na * nb);
}

double cosine(RealHVView a, BipolarHVView b) {
  check_dims(a.dim(), b.dim(), "cosine(real,bipolar)");
  const double na = norm(a);
  if (na == 0.0 || a.dim() == 0) {
    return 0.0;
  }
  return dot(a, b) / (na * std::sqrt(static_cast<double>(a.dim())));
}

double cosine(RealHVView a, BinaryHVView b) {
  check_dims(a.dim(), b.dim(), "cosine(real,binary)");
  const double na = norm(a);
  if (na == 0.0 || a.dim() == 0) {
    return 0.0;
  }
  return dot(a, b) / (na * std::sqrt(static_cast<double>(a.dim())));
}

void add_scaled(RealHV& a, RealHVView b, double c) {
  check_dims(a.dim(), b.dim(), "add_scaled(real,real)");
  active_backend().add_scaled_real(a.values().data(), b.values().data(), c, a.dim());
}

void add_scaled(RealHV& a, BipolarHVView b, double c) {
  check_dims(a.dim(), b.dim(), "add_scaled(real,bipolar)");
  active_backend().add_scaled_bipolar(a.values().data(), b.values().data(), c, a.dim());
}

void add_scaled(RealHV& a, BinaryHVView b, double c) {
  check_dims(a.dim(), b.dim(), "add_scaled(real,binary)");
  active_backend().add_scaled_binary(a.values().data(), b.words().data(), c, a.dim());
}

void scale(RealHV& a, double c) {
  active_backend().scale_real(a.values().data(), c, a.dim());
}

BinaryHV xor_bind(const BinaryHV& a, const BinaryHV& b) {
  BinaryHV out(a.dim());
  xor_bind_into(out, a, b);
  return out;
}

void xor_bind_into(BinaryHV& out, const BinaryHV& a, const BinaryHV& b) {
  check_dims(a.dim(), b.dim(), "xor_bind");
  check_dims(out.dim(), a.dim(), "xor_bind(out)");
  // In the bipolar view, component-wise multiplication corresponds to XNOR
  // of the bits: (+1)(+1)=+1 ↔ 1 xnor 1 = 1. Whole-word XNOR, with the
  // trailing padding bits of the final word re-zeroed.
  const auto wa = a.words();
  const auto wb = b.words();
  const auto wo = out.words();
  for (std::size_t i = 0; i < wa.size(); ++i) {
    wo[i] = ~(wa[i] ^ wb[i]);
  }
  const std::size_t tail = a.dim() & 63;
  if (tail != 0 && !wo.empty()) {
    wo.back() &= (1ULL << tail) - 1;
  }
}

BinaryHV permute(const BinaryHV& a, std::size_t shift) {
  const std::size_t d = a.dim();
  REGHD_CHECK(d > 0, "permute of empty vector");
  BinaryHV out(d);
  permute_into(out, a, shift);
  return out;
}

void permute_into(BinaryHV& out, const BinaryHV& a, std::size_t shift) {
  const std::size_t d = a.dim();
  REGHD_CHECK(d > 0, "permute of empty vector");
  check_dims(out.dim(), d, "permute(out)");
  const std::size_t s = shift % d;
  // out bit p = a bit ((p − s) mod d): each output word is 64 consecutive
  // circular bits of a, assembled word-at-a-time instead of bit-by-bit.
  const auto wa = a.words();
  const auto wo = out.words();
  std::size_t q = (d - s) % d;  // source bit index for output bit 0
  for (std::size_t w = 0; w < wo.size(); ++w) {
    wo[w] = circular_read64(wa, d, q);
    q = (q + 64) % d;
  }
  const std::size_t tail = d & 63;
  if (tail != 0) {
    wo.back() &= (1ULL << tail) - 1;
  }
}

BinaryHV majority(const std::vector<BinaryHV>& vectors) {
  REGHD_CHECK(!vectors.empty(), "majority of no vectors");
  const std::size_t d = vectors.front().dim();
  std::vector<std::int64_t> counts(d, 0);
  for (const auto& v : vectors) {
    check_dims(v.dim(), d, "majority");
    const auto words = v.words();
    for (std::size_t i = 0; i < d; ++i) {
      // Branchless ±1 from the packed bit.
      counts[i] += 2 * static_cast<std::int64_t>((words[i >> 6] >> (i & 63)) & 1ULL) - 1;
    }
  }
  BinaryHV out(d);
  for (std::size_t i = 0; i < d; ++i) {
    out.set_bit(i, counts[i] >= 0);
  }
  return out;
}

}  // namespace reghd::hdc
