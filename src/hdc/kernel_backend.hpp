// Vectorized kernel backend with runtime CPU dispatch.
//
// Every hot hypervector kernel (the §3.2 prediction dots, Hamming popcounts,
// masked ternary kernels, and the add_scaled accumulation family) exists in
// several implementations:
//
//  * scalar — portable C++, branchless where the seed code branched per bit
//             (sign application via IEEE-754 sign-bit XOR instead of a
//             compare per component). Bit-exact with the original reference
//             loops: identical values are added in identical order.
//  * avx2   — AVX2+FMA intrinsics compiled in a separate translation unit
//             with -mavx2 -mfma so the rest of the build stays portable.
//             Integer kernels are bit-exact with scalar; real kernels use
//             multiple accumulators and therefore differ only by summation
//             order (≤ a few ULP).
//  * avx512 — AVX-512F/BW widening of the avx2 table (512-bit reductions and
//             per-component kernels; VPOPCNTDQ-vectorized popcount family
//             when the CPU reports avx512_vpopcntdq). Kernels the wider ISA
//             does not improve are inherited from the avx2 table.
//  * neon   — aarch64 NEON (baseline on that architecture); the x86 tables
//             are compiled out there and vice versa.
//
// The active backend is resolved exactly once, on first use:
//   1. REGHD_KERNEL=scalar|avx2|avx512|neon environment override (an
//      unavailable request falls back to scalar with a warning on stderr
//      that enumerates the backends actually available on this host);
//   2. otherwise the widest table the binary carries whose ISA the CPU
//      reports: avx512 (F+BW, with OS XSAVE state for ZMM/opmask), then
//      avx2 (+fma), then neon, else scalar.
//
// ops.cpp and encoding.cpp route through active_backend(); tests and the
// microbench harness iterate available_backends() to pin the
// backend-equivalence properties over every table the host can run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace reghd::hdc {

/// Per-row carried-state stride (in doubles) of dot_rows_block. Sized for
/// the widest backend: 4 × 8 f64 lanes (AVX-512's four 512-bit accumulator
/// registers); narrower backends use a prefix of each row's slot.
inline constexpr std::size_t kDotRowsBlockState = 32;

/// NEON f64 lane width. A compile-time constant (not read from the table) so
/// x86 builds — where the NEON table is compiled out — can still reason
/// about the embedded target's SIMD width (see perf/device_profile.cpp).
inline constexpr unsigned kNeonF64Lanes = 2;

/// Table of raw-pointer kernels. `n` counts components; `words` counts
/// 64-bit storage words of bit-packed operands (padding bits are zero, an
/// invariant BinaryHV maintains).
struct KernelBackend {
  const char* name;

  /// f64 SIMD lanes this table's real kernels process per vector op (1 for
  /// scalar, 4 for avx2, 8 for avx512, 2 for neon). Informational — used by
  /// perf/device_profile's per-lane cost estimates and the bench report.
  unsigned f64_lanes;

  /// Σ a[i]·b[i].
  double (*dot_real_real)(const double* a, const double* b, std::size_t n);
  /// Σ ±a[i] with the sign taken from a dense ±1 vector.
  double (*dot_real_bipolar)(const double* a, const std::int8_t* b, std::size_t n);
  /// Σ ±a[i] with the sign taken from packed bits (bit 1 ⇔ +1).
  double (*dot_real_binary)(const double* a, const std::uint64_t* bits, std::size_t n);
  /// Σ over mask-set dims of ±a[i], signs from packed bits.
  double (*masked_dot)(const double* a, const std::uint64_t* signs,
                       const std::uint64_t* mask, std::size_t n);
  /// popcount(a XOR b) over whole words.
  std::int64_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words);
  /// 2·popcount(XNOR(a,b) ∧ mask) − popcount(mask) over whole words.
  std::int64_t (*masked_bipolar_dot)(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* mask, std::size_t words);
  /// Σ a[i]·b[i] over dense ±1 vectors.
  std::int64_t (*bipolar_dot_dense)(const std::int8_t* a, const std::int8_t* b,
                                    std::size_t n);
  /// a[i] += c·b[i].
  void (*add_scaled_real)(double* a, const double* b, double c, std::size_t n);
  /// a[i] += ±c, signs from a dense ±1 vector.
  void (*add_scaled_bipolar)(double* a, const std::int8_t* b, double c, std::size_t n);
  /// a[i] += ±c, signs from packed bits.
  void (*add_scaled_binary)(double* a, const std::uint64_t* bits, double c,
                            std::size_t n);
  /// Shard-merge accumulation over accumulator banks:
  ///   acc[i] += rep[i] − base[i]
  /// with each component rounded as one subtract then one add. Every
  /// component is independent (no cross-lane accumulation, no multiply), so
  /// the AVX2 lane-parallel replay is bit-identical to scalar — the
  /// shard-merge order-invariance proofs rely on that.
  void (*merge_accumulate)(double* acc, const double* rep, const double* base,
                           std::size_t n);
  /// a[i] *= c.
  void (*scale_real)(double* a, double c, std::size_t n);
  /// In-place RFF trig map: z[i] ← ½·(sin(2·z[i] + phase[i]) − sin_phase[i]),
  /// with sine evaluated by util::fast_sin. The AVX2 version replays the
  /// exact per-element operation sequence 4 lanes at a time (its TU is built
  /// with -ffp-contract=off), so the result is bit-identical to scalar.
  void (*rff_trig_map)(double* z, const double* phase, const double* sin_phase,
                       std::size_t n);
  /// Counter-based regeneration of Gaussian RFF projection rows — the
  /// memory-elision twin of a resident projection matrix. Writes the weights
  /// of hyperspace rows [row0, row0 + rows) in feature-major (transposed)
  /// layout: out[k·ld + r] = w_{row0+r, k} for k < n_features, r < rows —
  /// exactly the B-operand layout gemm_accumulate streams, so a tile can be
  /// regenerated into L1/L2 scratch and multiplied in place.
  ///
  /// Derivation (the bit-exactness contract; see DESIGN.md): row j's stream
  /// seed is the (j+1)-th SplitMix64 output of `seed`; weight pair (2p, 2p+1)
  /// of row j draws two further SplitMix64 outputs from that row seed (a
  /// pure counter → any tile of any row range regenerates independently),
  /// converts them to uniforms u₁ ∈ (0,1], u₂ ∈ [0,1), and maps them through
  /// Box–Muller with util::fast_log / fast_cos / fast_sin:
  ///   w[2p] = (√(−2·ln u₁)·cos(2π·u₂))·stddev,
  ///   w[2p+1] = (√(−2·ln u₁)·sin(2π·u₂))·stddev.
  /// Every operation is branch-free with a fixed order; sqrt is IEEE
  /// correctly rounded in both backends, so the AVX2 lane-parallel replay is
  /// bit-identical to scalar — and any tiling of (row0, rows) produces the
  /// identical weights.
  void (*rff_rematerialize)(std::uint64_t seed, double stddev, std::size_t row0,
                            std::size_t rows, std::size_t n_features, double* out,
                            std::size_t ld);
  /// Fused single-query projection: out[r] = Σ_k x[k] · w_{row0+r, k} for
  /// r < rows, with the weights derived exactly as rff_rematerialize above
  /// (same seed/counter scheme, same Box–Muller operation sequence) but
  /// consumed in registers — the weight tile is never stored. Each out[r]
  /// accumulates with k strictly ascending from 0.0, each contribution
  /// rounded as a separate multiply then add (no FMA), so the result is
  /// bit-identical to rff_rematerialize into a scratch tile followed by a
  /// gemm_accumulate/add_scaled_real chain — and bit-identical across
  /// backends (per-component: each out[r] has one fixed scalar operation
  /// sequence). This is the B = 1 latency kernel: a batch amortizes the
  /// tile store over its rows, a single query gets nothing back for it.
  void (*rff_remat_dot)(std::uint64_t seed, double stddev, std::size_t row0,
                        std::size_t rows, const double* x, std::size_t n_features,
                        double* out);
  /// Cache-blocked matrix multiply-accumulate over row-major operands:
  ///   c[r·ldc + j] += Σ_k a[r·lda + k] · b[k·ldb + j]   (r < m, j < n)
  /// Each output element accumulates contributions with k strictly ascending
  /// and each contribution rounded as a separate multiply then add (no FMA),
  /// so the per-element rounding sequence is identical to a chain of
  /// add_scaled_real axpys — bit-identical across backends; only the cache
  /// blocking differs.
  void (*gemm_accumulate)(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                          std::size_t k, std::size_t n);
  /// Bank scoring: out[r] = Σ_j q[j] · rows[r·ld + j] for r < num_rows. Each
  /// output is reduced in exactly the order of this backend's dot_real_real —
  /// bit-identical to num_rows separate dot_real_real calls — but row pairs
  /// share the q loads, which is what makes the k-model bank scan cheap.
  void (*dot_rows)(const double* q, const double* rows, std::size_t ld,
                   std::size_t num_rows, std::size_t n, double* out);
  /// Blocked bank scoring with carried per-row reduction state — the fused
  /// single-query fast path scores D-block slices of the bank as they are
  /// encoded, without ever materializing the full query. The caller streams
  /// the query in consecutive blocks: `q` points at the current block,
  /// `rows[r]` at row r's slice for the same block (pre-offset by the
  /// caller), `len` is the block's component count, and `state` is
  /// num_rows × kDotRowsBlockState doubles, zero-initialized before the
  /// first block and carried untouched between calls. Every non-final block
  /// length must be a multiple of 64; `last` is true exactly on the final
  /// call, which writes out[r].
  ///
  /// Contract: out[r] is bit-identical to this backend's
  /// dot_real_real(row_r, q, total_n) over the concatenated blocks. The
  /// scalar table carries its single running sum; SIMD tables carry their
  /// vector accumulators in `state` (64-multiple boundaries keep the lane
  /// phase of the main loop intact) and run their horizontal-reduction and
  /// tail phases only on the final call — replaying dot_real_real's exact
  /// operation sequence.
  void (*dot_rows_block)(const double* q, const double* const* rows,
                         std::size_t num_rows, std::size_t len, bool last,
                         double* state, double* out);
  /// Packed-bank bipolar scoring: out[r] = n − 2·popcount(q XOR rows[r·ld…])
  /// for r < num_rows — the XNOR+popcount bipolar dot of a packed binary
  /// query against each row of a contiguous bit-packed bank. `ld` counts
  /// 64-bit words per bank row; the word count per row is ⌈n/64⌉. Padding
  /// bits are zero on both sides (the BinaryHV invariant), so XOR leaves
  /// them zero and whole-word popcounts need no masking. Integer-exact and
  /// therefore bit-identical across backends and to per-row
  /// hamming/bipolar_dot chains (d = n − 2·h).
  void (*dot_rows_binary)(const std::uint64_t* q, const std::uint64_t* rows,
                          std::size_t ld, std::size_t num_rows, std::size_t n,
                          std::int64_t* out);
  /// Packed-bank ternary scoring: the masked XNOR+popcount bipolar dot of a
  /// packed binary query against each row of a 2-bit-plane bank —
  ///   out[r] = 2·popcount(XNOR(q, signs[r·ld…]) ∧ masks[r·ld…])
  ///            − popcount(masks[r·ld…])
  /// for r < num_rows, i.e. per row exactly masked_bipolar_dot(signs_r, q,
  /// mask_r). `ld` counts 64-bit words per bank row in both planes; the word
  /// count per row is ⌈n/64⌉ and padding/mask bits beyond n are zero (the
  /// BinaryHV invariant), so whole-word popcounts need no edge masking. A
  /// full (all-ones up to n) mask row degenerates to dot_rows_binary's
  /// n − 2·hamming — which is how binarized model rows ride in the same bank
  /// as ternary ones. Integer-exact, bit-identical across backends.
  void (*dot_rows_ternary)(const std::uint64_t* q, const std::uint64_t* signs,
                           const std::uint64_t* masks, std::size_t ld,
                           std::size_t num_rows, std::size_t n, std::int64_t* out);
  /// Fused sign binarization of one encoded row:
  ///   bipolar[i] = (v[i] < 0) ? −1 : +1,  bit i of `bits` = !(v[i] < 0)
  /// (NaN maps to +1 / bit set, matching RealHV::sign() followed by
  /// BipolarHV::pack()). Padding bits of the final word are written zero.
  /// Bit-exact across backends.
  void (*sign_encode)(const double* v, std::int8_t* bipolar, std::uint64_t* bits,
                      std::size_t n);
};

/// The portable backend; always available.
[[nodiscard]] const KernelBackend& scalar_backend() noexcept;

/// The AVX2 backend, or nullptr when the binary was built without AVX2
/// support or the CPU lacks avx2/fma.
[[nodiscard]] const KernelBackend* avx2_backend() noexcept;

/// The AVX-512 backend, or nullptr when the binary was built without it or
/// the CPU/OS lacks avx512f+avx512bw with ZMM/opmask state enabled. The
/// returned table uses VPOPCNTDQ popcount kernels when the CPU reports
/// avx512_vpopcntdq, scalar-POPCNT ones otherwise — same name, same results.
[[nodiscard]] const KernelBackend* avx512_backend() noexcept;

/// The aarch64 NEON backend, or nullptr on other architectures. NEON is
/// baseline on aarch64, so no runtime CPU check is needed.
[[nodiscard]] const KernelBackend* neon_backend() noexcept;

/// True when the running CPU reports avx2 and fma.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// True when the CPU reports avx512f+avx512bw and the OS has enabled the
/// ZMM/opmask register state (XCR0 via xgetbv).
[[nodiscard]] bool cpu_supports_avx512() noexcept;

/// True when cpu_supports_avx512() and the CPU also reports the VPOPCNTDQ
/// extension (vectorized 64-bit popcount).
[[nodiscard]] bool cpu_supports_avx512_vpopcntdq() noexcept;

/// Resolves a backend by name ("scalar", "avx2", "avx512" or "neon");
/// returns nullptr for an unknown name or an unavailable backend. Exposed
/// for tests and benches.
[[nodiscard]] const KernelBackend* backend_by_name(const char* name) noexcept;

/// Every backend available at runtime, in resolution-preference order
/// scalar, avx2, avx512, neon (scalar is always present, so count ≥ 1).
struct BackendList {
  const KernelBackend* tables[4] = {nullptr, nullptr, nullptr, nullptr};
  std::size_t count = 0;
};
[[nodiscard]] BackendList available_backends() noexcept;

/// Resolves a REGHD_KERNEL request string. Returns the chosen table on
/// success; otherwise returns nullptr and, when `message` is non-null,
/// fills it with the fallback warning — which enumerates the backends
/// actually available on this host. Exposed so tests can pin the message.
[[nodiscard]] const KernelBackend* resolve_backend_request(const char* request,
                                                           std::string* message);

/// The backend every hdc:: kernel routes through. Resolved once, on first
/// call (REGHD_KERNEL override, then CPU detection); stable thereafter.
[[nodiscard]] const KernelBackend& active_backend() noexcept;

}  // namespace reghd::hdc
