// Vectorized kernel backend with runtime CPU dispatch.
//
// Every hot hypervector kernel (the §3.2 prediction dots, Hamming popcounts,
// masked ternary kernels, and the add_scaled accumulation family) exists in
// two implementations:
//
//  * scalar — portable C++, branchless where the seed code branched per bit
//             (sign application via IEEE-754 sign-bit XOR instead of a
//             compare per component). Bit-exact with the original reference
//             loops: identical values are added in identical order.
//  * avx2   — AVX2+FMA intrinsics compiled in a separate translation unit
//             with -mavx2 -mfma so the rest of the build stays portable.
//             Integer kernels are bit-exact with scalar; real kernels use
//             multiple accumulators and therefore differ only by summation
//             order (≤ a few ULP).
//
// The active backend is resolved exactly once, on first use:
//   1. REGHD_KERNEL=scalar|avx2 environment override (an unavailable request
//      falls back to scalar with a warning on stderr);
//   2. otherwise AVX2 when both the binary carries the code and the CPU
//      reports the avx2+fma features, else scalar.
//
// ops.cpp and encoding.cpp route through active_backend(); tests and the
// microbench harness grab specific tables via scalar_backend() /
// avx2_backend() to pin backend-equivalence properties.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reghd::hdc {

/// Table of raw-pointer kernels. `n` counts components; `words` counts
/// 64-bit storage words of bit-packed operands (padding bits are zero, an
/// invariant BinaryHV maintains).
struct KernelBackend {
  const char* name;

  /// Σ a[i]·b[i].
  double (*dot_real_real)(const double* a, const double* b, std::size_t n);
  /// Σ ±a[i] with the sign taken from a dense ±1 vector.
  double (*dot_real_bipolar)(const double* a, const std::int8_t* b, std::size_t n);
  /// Σ ±a[i] with the sign taken from packed bits (bit 1 ⇔ +1).
  double (*dot_real_binary)(const double* a, const std::uint64_t* bits, std::size_t n);
  /// Σ over mask-set dims of ±a[i], signs from packed bits.
  double (*masked_dot)(const double* a, const std::uint64_t* signs,
                       const std::uint64_t* mask, std::size_t n);
  /// popcount(a XOR b) over whole words.
  std::int64_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words);
  /// 2·popcount(XNOR(a,b) ∧ mask) − popcount(mask) over whole words.
  std::int64_t (*masked_bipolar_dot)(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* mask, std::size_t words);
  /// Σ a[i]·b[i] over dense ±1 vectors.
  std::int64_t (*bipolar_dot_dense)(const std::int8_t* a, const std::int8_t* b,
                                    std::size_t n);
  /// a[i] += c·b[i].
  void (*add_scaled_real)(double* a, const double* b, double c, std::size_t n);
  /// a[i] += ±c, signs from a dense ±1 vector.
  void (*add_scaled_bipolar)(double* a, const std::int8_t* b, double c, std::size_t n);
  /// a[i] += ±c, signs from packed bits.
  void (*add_scaled_binary)(double* a, const std::uint64_t* bits, double c,
                            std::size_t n);
  /// Shard-merge accumulation over accumulator banks:
  ///   acc[i] += rep[i] − base[i]
  /// with each component rounded as one subtract then one add. Every
  /// component is independent (no cross-lane accumulation, no multiply), so
  /// the AVX2 lane-parallel replay is bit-identical to scalar — the
  /// shard-merge order-invariance proofs rely on that.
  void (*merge_accumulate)(double* acc, const double* rep, const double* base,
                           std::size_t n);
  /// a[i] *= c.
  void (*scale_real)(double* a, double c, std::size_t n);
  /// In-place RFF trig map: z[i] ← ½·(sin(2·z[i] + phase[i]) − sin_phase[i]),
  /// with sine evaluated by util::fast_sin. The AVX2 version replays the
  /// exact per-element operation sequence 4 lanes at a time (its TU is built
  /// with -ffp-contract=off), so the result is bit-identical to scalar.
  void (*rff_trig_map)(double* z, const double* phase, const double* sin_phase,
                       std::size_t n);
  /// Counter-based regeneration of Gaussian RFF projection rows — the
  /// memory-elision twin of a resident projection matrix. Writes the weights
  /// of hyperspace rows [row0, row0 + rows) in feature-major (transposed)
  /// layout: out[k·ld + r] = w_{row0+r, k} for k < n_features, r < rows —
  /// exactly the B-operand layout gemm_accumulate streams, so a tile can be
  /// regenerated into L1/L2 scratch and multiplied in place.
  ///
  /// Derivation (the bit-exactness contract; see DESIGN.md): row j's stream
  /// seed is the (j+1)-th SplitMix64 output of `seed`; weight pair (2p, 2p+1)
  /// of row j draws two further SplitMix64 outputs from that row seed (a
  /// pure counter → any tile of any row range regenerates independently),
  /// converts them to uniforms u₁ ∈ (0,1], u₂ ∈ [0,1), and maps them through
  /// Box–Muller with util::fast_log / fast_cos / fast_sin:
  ///   w[2p] = (√(−2·ln u₁)·cos(2π·u₂))·stddev,
  ///   w[2p+1] = (√(−2·ln u₁)·sin(2π·u₂))·stddev.
  /// Every operation is branch-free with a fixed order; sqrt is IEEE
  /// correctly rounded in both backends, so the AVX2 lane-parallel replay is
  /// bit-identical to scalar — and any tiling of (row0, rows) produces the
  /// identical weights.
  void (*rff_rematerialize)(std::uint64_t seed, double stddev, std::size_t row0,
                            std::size_t rows, std::size_t n_features, double* out,
                            std::size_t ld);
  /// Cache-blocked matrix multiply-accumulate over row-major operands:
  ///   c[r·ldc + j] += Σ_k a[r·lda + k] · b[k·ldb + j]   (r < m, j < n)
  /// Each output element accumulates contributions with k strictly ascending
  /// and each contribution rounded as a separate multiply then add (no FMA),
  /// so the per-element rounding sequence is identical to a chain of
  /// add_scaled_real axpys — bit-identical across backends; only the cache
  /// blocking differs.
  void (*gemm_accumulate)(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                          std::size_t k, std::size_t n);
  /// Bank scoring: out[r] = Σ_j q[j] · rows[r·ld + j] for r < num_rows. Each
  /// output is reduced in exactly the order of this backend's dot_real_real —
  /// bit-identical to num_rows separate dot_real_real calls — but row pairs
  /// share the q loads, which is what makes the k-model bank scan cheap.
  void (*dot_rows)(const double* q, const double* rows, std::size_t ld,
                   std::size_t num_rows, std::size_t n, double* out);
  /// Packed-bank bipolar scoring: out[r] = n − 2·popcount(q XOR rows[r·ld…])
  /// for r < num_rows — the XNOR+popcount bipolar dot of a packed binary
  /// query against each row of a contiguous bit-packed bank. `ld` counts
  /// 64-bit words per bank row; the word count per row is ⌈n/64⌉. Padding
  /// bits are zero on both sides (the BinaryHV invariant), so XOR leaves
  /// them zero and whole-word popcounts need no masking. Integer-exact and
  /// therefore bit-identical across backends and to per-row
  /// hamming/bipolar_dot chains (d = n − 2·h).
  void (*dot_rows_binary)(const std::uint64_t* q, const std::uint64_t* rows,
                          std::size_t ld, std::size_t num_rows, std::size_t n,
                          std::int64_t* out);
  /// Packed-bank ternary scoring: the masked XNOR+popcount bipolar dot of a
  /// packed binary query against each row of a 2-bit-plane bank —
  ///   out[r] = 2·popcount(XNOR(q, signs[r·ld…]) ∧ masks[r·ld…])
  ///            − popcount(masks[r·ld…])
  /// for r < num_rows, i.e. per row exactly masked_bipolar_dot(signs_r, q,
  /// mask_r). `ld` counts 64-bit words per bank row in both planes; the word
  /// count per row is ⌈n/64⌉ and padding/mask bits beyond n are zero (the
  /// BinaryHV invariant), so whole-word popcounts need no edge masking. A
  /// full (all-ones up to n) mask row degenerates to dot_rows_binary's
  /// n − 2·hamming — which is how binarized model rows ride in the same bank
  /// as ternary ones. Integer-exact, bit-identical across backends.
  void (*dot_rows_ternary)(const std::uint64_t* q, const std::uint64_t* signs,
                           const std::uint64_t* masks, std::size_t ld,
                           std::size_t num_rows, std::size_t n, std::int64_t* out);
  /// Fused sign binarization of one encoded row:
  ///   bipolar[i] = (v[i] < 0) ? −1 : +1,  bit i of `bits` = !(v[i] < 0)
  /// (NaN maps to +1 / bit set, matching RealHV::sign() followed by
  /// BipolarHV::pack()). Padding bits of the final word are written zero.
  /// Bit-exact across backends.
  void (*sign_encode)(const double* v, std::int8_t* bipolar, std::uint64_t* bits,
                      std::size_t n);
};

/// The portable backend; always available.
[[nodiscard]] const KernelBackend& scalar_backend() noexcept;

/// The AVX2 backend, or nullptr when the binary was built without AVX2
/// support or the CPU lacks avx2/fma.
[[nodiscard]] const KernelBackend* avx2_backend() noexcept;

/// True when the running CPU reports avx2 and fma.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// Resolves a backend by name ("scalar" or "avx2"); returns nullptr for an
/// unknown name or an unavailable backend. Exposed for tests and benches.
[[nodiscard]] const KernelBackend* backend_by_name(const char* name) noexcept;

/// The backend every hdc:: kernel routes through. Resolved once, on first
/// call (REGHD_KERNEL override, then CPU detection); stable thereafter.
[[nodiscard]] const KernelBackend& active_backend() noexcept;

}  // namespace reghd::hdc
