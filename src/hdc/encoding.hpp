// Similarity-preserving encoders: the mapping from an n-dimensional feature
// vector into D-dimensional hyperspace (paper §2.2).
//
// Three encoders are provided:
//
//  * NonlinearFeatureEncoder — the paper's Eq. 1, literally:
//        H_j = Σ_k cos(f_k·B_{k,j} + b_j) · sin(f_k·B_{k,j})
//    with random bipolar base hypervectors B_k and a random phase vector b.
//    Because B_{k,j} = ±1, the sum factors exactly as
//        H_j = cos(b_j) · Σ_k B_{k,j}·(sin 2f_k)/2  −  sin(b_j) · Σ_k sin²f_k
//    which turns the O(n·D) trigonometric evaluation into 2n trig calls, one
//    ±1 projection, and one fused axpy. encode_reference() keeps the direct
//    form; the test suite pins their equality to float tolerance.
//
//  * RffProjectionEncoder — the random-Fourier-feature variant used across
//    the HD-learning literature: H_j = cos(w_j·F + b_j)·sin(w_j·F) with
//    Gaussian projection rows w_j. Richer than Eq. 1 (full-rank random
//    projection rather than a projection of a fixed 1-D transform); this is
//    the library default for the quality experiments.
//
//  * IdLevelEncoder — the classic ID–level record encoding (feature
//    identities bound to quantized feature levels, bundled by accumulation),
//    provided for the Baseline-HD comparator and as a categorical-friendly
//    alternative.
//
// All encoders are deterministic functions of (config, seed). encode()
// returns the three coupled representations RegHD consumes: the real-valued
// encoder output ("integer query" of §3.2), its ±1 sign vector S, and the
// packed binary form S^b.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hdc/hypervector.hpp"

namespace reghd::hdc {

/// One encoded data point in all three coupled representations.
struct EncodedSample {
  RealHV real;        ///< Pre-binarization encoder output.
  BipolarHV bipolar;  ///< S = sign(real) ∈ {−1,+1}^D.
  BinaryHV binary;    ///< S^b — packed form of S.
  double real_norm = 0.0;   ///< ‖real‖, cached for cosine similarity.
  double real_norm2 = 0.0;  ///< ‖real‖², cached for incremental norm updates.
};

/// Non-owning view of one encoded data point, with the same member names as
/// EncodedSample. It can view either an owning EncodedSample (implicit
/// conversion) or one row of the SoA arena in core/encoded, so train_step /
/// predict / checkpoint code is written once against this type.
struct EncodedSampleView {
  RealHVView real;
  BipolarHVView bipolar;
  BinaryHVView binary;
  double real_norm = 0.0;
  double real_norm2 = 0.0;

  EncodedSampleView() = default;
  EncodedSampleView(RealHVView r, BipolarHVView s, BinaryHVView b, double norm,
                    double norm2)
      : real(r), bipolar(s), binary(b), real_norm(norm), real_norm2(norm2) {}
  EncodedSampleView(const EncodedSample& s)  // NOLINT(google-explicit-constructor)
      : real(s.real),
        bipolar(s.bipolar),
        binary(s.binary),
        real_norm(s.real_norm),
        real_norm2(s.real_norm2) {}

  /// Deep-copies the viewed row into an owning sample (fault-injection tests
  /// and other callers that mutate a sample start from this).
  [[nodiscard]] EncodedSample materialize() const {
    return {real.to_owning(), bipolar.to_owning(), binary.to_owning(), real_norm,
            real_norm2};
  }
};

/// Destination planes for arena batch encoding (all non-owning; the arena in
/// core/encoded owns the storage). Row r of the batch occupies real
/// components [r·dim, (r+1)·dim), packed words [r·words_per_row,
/// (r+1)·words_per_row), and norm/norm² slot r. The real plane must be
/// zero-initialized: encoders accumulate into it.
struct EncodedArenaRef {
  double* real = nullptr;
  std::int8_t* bipolar = nullptr;
  std::uint64_t* binary = nullptr;
  double* norm = nullptr;
  double* norm2 = nullptr;
  std::size_t dim = 0;
  std::size_t words_per_row = 0;
};

/// Which encoder implementation to construct.
enum class EncoderKind : std::uint8_t {
  kNonlinearFeature = 0,  ///< Paper Eq. 1.
  kRffProjection = 1,     ///< Gaussian random-Fourier-feature encoder.
  kIdLevel = 2,           ///< Classic ID–level record encoding.
  kTemporal = 3,          ///< Permutation-bound sequence (sliding-window) encoding.
};

/// Returns a stable lowercase name ("nonlinear", "rff", "idlevel",
/// "temporal").
[[nodiscard]] std::string to_string(EncoderKind kind);

/// Parses the names accepted by to_string(); throws on anything else.
[[nodiscard]] EncoderKind encoder_kind_from_string(const std::string& name);

/// Where the RFF projection weights live. Both modes derive every weight
/// from the same counter-based kernel (KernelBackend::rff_rematerialize), so
/// the encoded output is bit-identical either way — the choice only trades
/// resident bytes against regeneration compute.
enum class ProjectionStorage : std::uint8_t {
  kResident = 0,        ///< Materialized F×D matrix: O(F·D) resident bytes,
                        ///< the GEMM streams it from memory every batch.
  kRematerialized = 1,  ///< No resident matrix: 16-row tiles are regenerated
                        ///< into an O(F·tile) L1/L2 scratch inside the GEMM.
};

/// Returns a stable lowercase name ("resident", "rematerialized").
[[nodiscard]] std::string to_string(ProjectionStorage storage);

/// Parses the names accepted by to_string(); throws on anything else.
[[nodiscard]] ProjectionStorage projection_storage_from_string(const std::string& name);

/// Encoder construction parameters. A config plus nothing else fully
/// determines the encoder (used for model serialization).
struct EncoderConfig {
  EncoderKind kind = EncoderKind::kRffProjection;
  std::size_t input_dim = 0;   ///< n — feature count; must be set.
  std::size_t dim = 4096;      ///< D — hyperspace dimensionality.
  std::uint64_t seed = 0x9D0C0FFEEULL;

  // RffProjection only: stddev of the Gaussian projection rows. Acts as an
  // inverse kernel bandwidth. 0 (the default) auto-scales to 1/√input_dim,
  // which keeps the projected phase z = w·F at unit variance for
  // standardized features regardless of the feature count — larger values
  // sharpen the kernel toward memorization, smaller ones flatten it toward
  // a linear fit.
  double projection_stddev = 0.0;

  // RffProjection only: resident weight matrix vs counter-based tile
  // regeneration. A runtime/footprint knob, not part of the model identity —
  // the encoded output is bit-identical in both modes, so (like thread
  // counts) it is not serialized with the encoder config.
  ProjectionStorage projection_storage = ProjectionStorage::kResident;

  // IdLevel only: number of quantization levels and the feature range the
  // levels span (features are clamped into [level_min, level_max]).
  std::size_t levels = 64;
  double level_min = -3.0;
  double level_max = 3.0;
};

/// Abstract encoder interface.
class Encoder {
 public:
  virtual ~Encoder() = default;

  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;

  /// Hyperspace dimensionality D.
  [[nodiscard]] std::size_t dim() const noexcept { return config_.dim; }

  /// Expected feature count n.
  [[nodiscard]] std::size_t input_dim() const noexcept { return config_.input_dim; }

  /// The construction parameters (sufficient to reconstruct this encoder).
  [[nodiscard]] const EncoderConfig& config() const noexcept { return config_; }

  /// Maps features to the real-valued hypervector. Throws if
  /// features.size() != input_dim().
  [[nodiscard]] RealHV encode_real(std::span<const double> features) const;

  /// Maps features to all three coupled representations.
  [[nodiscard]] EncodedSample encode(std::span<const double> features) const;

  /// Encodes `num_rows` feature vectors stored contiguously row-major in
  /// `rows_flat` (size num_rows · input_dim), parallelized over rows with up
  /// to `threads` workers (0 = REGHD_THREADS / hardware concurrency).
  /// Deterministic: result row i equals encode(row i) regardless of thread
  /// count.
  [[nodiscard]] std::vector<EncodedSample> encode_batch(
      std::span<const double> rows_flat, std::size_t num_rows,
      std::size_t threads = 0) const;

  /// Encodes `num_rows` rows directly into a SoA arena (see EncodedArenaRef):
  /// zero per-sample allocations, fused sign/pack, and — for encoders with a
  /// batched projection stage (RFF) — a cache-blocked GEMM that preserves the
  /// per-component accumulation order. Row r of the arena is bit-identical to
  /// encode(row r) for any thread count or kernel backend.
  virtual void encode_batch_into(std::span<const double> rows_flat,
                                 std::size_t num_rows, const EncodedArenaRef& out,
                                 std::size_t threads = 0) const;

  /// True when this encoder can produce an arbitrary component slice of the
  /// real encoding via encode_real_block() — the contract the fused
  /// single-query predict path (MultiModelRegressor::predict_one) needs to
  /// stream encode → bank-scan through one L1-resident block at a time.
  [[nodiscard]] virtual bool supports_block_encode() const noexcept { return false; }

  /// Writes components [j0, j0 + len) of encode_real(features) into
  /// out[0..len), bit-identical to that slice of the full encoding for any
  /// block split (component j depends only on features and j, never on other
  /// components). Throws std::logic_error unless supports_block_encode().
  virtual void encode_real_block(std::span<const double> features, std::size_t j0,
                                 std::size_t len, double* out) const;

 protected:
  explicit Encoder(EncoderConfig config);

  void check_features(std::span<const double> features) const;

  /// Validates buffer sizes/geometry for encode_batch_into.
  void check_arena(std::span<const double> rows_flat, std::size_t num_rows,
                   const EncodedArenaRef& out) const;

  /// Maps one validated feature row into out[0..dim), which is pre-zeroed.
  /// encode_real() is implemented on top of this, so overrides define both
  /// the per-row and the arena path at once.
  virtual void encode_real_into(std::span<const double> features, double* out) const = 0;

  /// Derives the bipolar/binary/norm row of the arena from its (already
  /// encoded) real row — the fused sign_encode kernel plus the same
  /// dot_real_real norm encode() computes.
  void finalize_encoded_row(const EncodedArenaRef& out, std::size_t row) const;

  EncoderConfig config_;
};

/// Paper Eq. 1. See file comment for the exact factorization used.
class NonlinearFeatureEncoder final : public Encoder {
 public:
  explicit NonlinearFeatureEncoder(EncoderConfig config);

  /// Direct, unfactored evaluation of Eq. 1 — O(n·D) trig calls. Exposed for
  /// the equivalence test and as executable documentation of the formula.
  [[nodiscard]] RealHV encode_reference(std::span<const double> features) const;

 protected:
  void encode_real_into(std::span<const double> features, double* out) const override;

 private:
  std::vector<BipolarHV> bases_;    ///< B_k, one per feature.
  std::vector<double> phase_;      ///< b_j.
  std::vector<double> cos_phase_;  ///< cos(b_j), precomputed.
  std::vector<double> sin_phase_;  ///< sin(b_j), precomputed.
};

/// Random-Fourier-feature encoder: H_j = cos(w_j·F + b_j)·sin(w_j·F).
class RffProjectionEncoder final : public Encoder {
 public:
  explicit RffProjectionEncoder(EncoderConfig config);

  /// GEMM batch path: projects a whole block of rows per cache tile of the
  /// transposed weights instead of re-streaming all F·D weights per row.
  void encode_batch_into(std::span<const double> rows_flat, std::size_t num_rows,
                         const EncodedArenaRef& out,
                         std::size_t threads = 0) const override;

  /// RFF components are independent per j (axpy chain + trig map), so any
  /// slice can be produced in isolation: resident mode runs the axpy chain
  /// over the slice of each weight row, rematerialized mode replays rows
  /// [j0, j0+len) of the projection through the fused rff_remat_dot kernel —
  /// weights consumed in registers, no scratch tile (the B = 1 latency
  /// kernel; bit-identical to rematerialize + gemm by its contract). Both
  /// are bit-identical to the same slice of encode_real().
  [[nodiscard]] bool supports_block_encode() const noexcept override { return true; }
  void encode_real_block(std::span<const double> features, std::size_t j0,
                         std::size_t len, double* out) const override;

 protected:
  void encode_real_into(std::span<const double> features, double* out) const override;

 private:
  /// Fills `out` (leading dimension ld, feature-major) with hyperspace rows
  /// [row0, row0 + rows) of the projection via the rematerialization kernel.
  void materialize_rows(std::size_t row0, std::size_t rows, double* out,
                        std::size_t ld) const;

  // Projection stored transposed (feature-major): projection_t_[k*d + j] =
  // w_{j,k}. Each feature then contributes one contiguous axpy over the full
  // hyperspace row — unit-stride for the SIMD add_scaled_real kernel —
  // instead of d strided short dots. Empty when projection_storage is
  // kRematerialized: the weights then only ever exist as O(F×tile) scratch
  // tiles regenerated by KernelBackend::rff_rematerialize (from proj_seed_),
  // which is also exactly how this matrix is filled in resident mode — the
  // two storage modes are bit-identical by construction.
  std::vector<double> projection_t_;
  std::uint64_t proj_seed_ = 0;  ///< Master seed of the weight streams.
  double stddev_ = 0.0;          ///< Resolved projection stddev.
  std::vector<double> phase_;
  std::vector<double> sin_phase_;  ///< sin(b_j), precomputed for the
                                   ///< product-to-sum form of cos(z+b)·sin(z).
};

/// ID–level record encoding: each feature k has a random ID hypervector and
/// each quantization level a level hypervector; level vectors are generated
/// by progressive bit flips so nearby levels stay similar. The record is the
/// accumulation over features of bind(ID_k, Level(f_k)).
class IdLevelEncoder final : public Encoder {
 public:
  explicit IdLevelEncoder(EncoderConfig config);

  /// Index of the quantization level for a (possibly out-of-range) value.
  [[nodiscard]] std::size_t level_index(double value) const noexcept;

 protected:
  void encode_real_into(std::span<const double> features, double* out) const override;

 private:
  std::vector<BinaryHV> feature_ids_;
  std::vector<BinaryHV> level_hvs_;
};

/// Permutation-bound temporal encoding for sliding windows (classic HDC
/// sequence encoding, e.g. language/biosignal work the paper cites in §5):
/// each window element is quantized to a level hypervector and rotated by
/// its position — ρᵗ(L(x_t)) — then all positions are bundled. Rotation
/// makes the encoding order-sensitive (the same values in a different order
/// land elsewhere in hyperspace) while nearby levels stay similar.
/// input_dim is the window length; `levels`/`level_min`/`level_max`
/// quantize the elements.
class TemporalEncoder final : public Encoder {
 public:
  explicit TemporalEncoder(EncoderConfig config);

  /// Index of the quantization level for a (possibly out-of-range) value.
  [[nodiscard]] std::size_t level_index(double value) const noexcept;

 protected:
  void encode_real_into(std::span<const double> features, double* out) const override;

 private:
  std::vector<BinaryHV> level_hvs_;
};

/// Factory: constructs the encoder named by config.kind.
[[nodiscard]] std::unique_ptr<Encoder> make_encoder(const EncoderConfig& config);

}  // namespace reghd::hdc
