// aarch64 NEON implementations of the kernel backend. NEON (Advanced SIMD)
// is baseline on aarch64, so unlike the x86 tables this TU needs no special
// ISA flags and no runtime CPU check — it is simply compiled in (and the
// x86 TUs compiled out) when CMAKE_SYSTEM_PROCESSOR is aarch64/arm64.
//
// Contract discipline mirrors the AVX2 table:
//  * Reduction kernels (dot_real_real / dot_rows / dot_rows_block) use four
//    2-lane accumulators with a fixed combine order — self-consistent (the
//    dot_rows contract) but free to differ from scalar by summation order,
//    so vfmaq_f64 is allowed there.
//  * Per-component kernels (add_scaled_real, merge_accumulate, scale_real,
//    gemm_accumulate) must round every slot exactly like scalar: separate
//    vmulq/vaddq — never vfmaq — and this TU plus the scalar TU are compiled
//    with -ffp-contract=off, because on aarch64 (where FMA is baseline) the
//    compiler would otherwise contract scalar `a += c*b` into fmadd and the
//    two tables would diverge by 1 ulp.
//  * Integer kernels reuse the scalar operation sequences (std::popcount
//    lowers to the NEON CNT pipeline on aarch64); the RFF generators
//    delegate to the shared scalar cores, which are branch-free and
//    bit-identical by construction.
#include "hdc/kernel_backend.hpp"

#ifdef REGHD_HAVE_NEON
#ifdef __aarch64__

#include <arm_neon.h>

#include <algorithm>
#include <bit>
#include <cmath>

#include "hdc/rff_remat.hpp"
#include "util/fast_trig.hpp"

namespace reghd::hdc {

namespace {

/// +v when the low bit of `keep` is 1, −v when it is 0 (IEEE sign-bit XOR —
/// the scalar backend's branchless sign application).
inline double apply_sign(double v, std::uint64_t keep) {
  const std::uint64_t flip = (~keep & 1ULL) << 63;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^ flip);
}

double neon_dot_real_real(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc2 = vfmaq_f64(acc2, vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    acc3 = vfmaq_f64(acc3, vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
  }
  const float64x2_t sum =
      vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3));
  double acc = vgetq_lane_f64(sum, 0) + vgetq_lane_f64(sum, 1);
  for (; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double neon_dot_real_bipolar(const double* a, const std::int8_t* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t flip =
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i]) >> 7) << 63;
    acc += std::bit_cast<double>(std::bit_cast<std::uint64_t>(a[i]) ^ flip);
  }
  return acc;
}

double neon_dot_real_binary(const double* a, const std::uint64_t* bits, std::size_t n) {
  double acc = 0.0;
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t word = bits[w];
    for (std::size_t j = 0; j < 64; ++j) {
      acc += apply_sign(a[i + j], word >> j);
    }
  }
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      acc += apply_sign(a[i + j], word >> j);
    }
  }
  return acc;
}

double neon_masked_dot(const double* a, const std::uint64_t* signs,
                       const std::uint64_t* mask, std::size_t n) {
  double acc = 0.0;
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t active = mask[w];
    const std::uint64_t sign_bits = signs[w];
    const std::size_t base = w << 6;
    while (active != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(active));
      active &= active - 1;
      acc += apply_sign(a[base + j], sign_bits >> j);
    }
  }
  return acc;
}

std::int64_t neon_hamming(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  // std::popcount lowers to CNT+ADDV on aarch64; four independent counters
  // hide the reduction latency like the x86 POPCNT loop.
  std::int64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    c0 += std::popcount(a[i] ^ b[i]);
    c1 += std::popcount(a[i + 1] ^ b[i + 1]);
    c2 += std::popcount(a[i + 2] ^ b[i + 2]);
    c3 += std::popcount(a[i + 3] ^ b[i + 3]);
  }
  for (; i < words; ++i) {
    c0 += std::popcount(a[i] ^ b[i]);
  }
  return c0 + c1 + c2 + c3;
}

std::int64_t neon_masked_bipolar_dot(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* mask, std::size_t words) {
  std::int64_t agree = 0;
  std::int64_t active = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t m = mask[i];
    agree += std::popcount(~(a[i] ^ b[i]) & m);
    active += std::popcount(m);
  }
  return 2 * agree - active;
}

std::int64_t neon_bipolar_dot_dense(const std::int8_t* a, const std::int8_t* b,
                                    std::size_t n) {
  // 16 ±1 bytes per step: widening multiply-accumulate into 16-bit lanes is
  // safe (|Σ| ≤ 16 per lane per step ≪ 2¹⁵ would overflow after 2048 steps,
  // so drain into 64-bit every 1024 steps).
  std::int64_t total = 0;
  std::size_t i = 0;
  while (i + 16 <= n) {
    const std::size_t chunk_end = std::min(n - (n - i) % 16, i + 16 * 1024);
    int16x8_t acc_lo = vdupq_n_s16(0);
    int16x8_t acc_hi = vdupq_n_s16(0);
    for (; i + 16 <= chunk_end; i += 16) {
      const int8x16_t pa = vld1q_s8(a + i);
      const int8x16_t pb = vld1q_s8(b + i);
      acc_lo = vmlal_s8(acc_lo, vget_low_s8(pa), vget_low_s8(pb));
      acc_hi = vmlal_s8(acc_hi, vget_high_s8(pa), vget_high_s8(pb));
    }
    total += vaddlvq_s16(acc_lo) + vaddlvq_s16(acc_hi);
  }
  for (; i < n; ++i) {
    total += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return total;
}

void neon_add_scaled_real(double* a, const double* b, double c, std::size_t n) {
  // mul + add (no vfmaq): each slot must round exactly like the scalar
  // backend's `a[i] += c * b[i]`.
  const float64x2_t cv = vdupq_n_f64(c);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_f64(a + i, vaddq_f64(vld1q_f64(a + i), vmulq_f64(cv, vld1q_f64(b + i))));
    vst1q_f64(a + i + 2,
              vaddq_f64(vld1q_f64(a + i + 2), vmulq_f64(cv, vld1q_f64(b + i + 2))));
    vst1q_f64(a + i + 4,
              vaddq_f64(vld1q_f64(a + i + 4), vmulq_f64(cv, vld1q_f64(b + i + 4))));
    vst1q_f64(a + i + 6,
              vaddq_f64(vld1q_f64(a + i + 6), vmulq_f64(cv, vld1q_f64(b + i + 6))));
  }
  for (; i < n; ++i) {
    a[i] += c * b[i];
  }
}

void neon_add_scaled_bipolar(double* a, const std::int8_t* b, double c, std::size_t n) {
  const std::uint64_t c_bits = std::bit_cast<std::uint64_t>(c);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t flip =
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i]) >> 7) << 63;
    a[i] += std::bit_cast<double>(c_bits ^ flip);
  }
}

void neon_add_scaled_binary(double* a, const std::uint64_t* bits, double c,
                            std::size_t n) {
  const std::uint64_t c_bits = std::bit_cast<std::uint64_t>(c);
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t word = bits[w];
    for (std::size_t j = 0; j < 64; ++j) {
      const std::uint64_t flip = (~(word >> j) & 1ULL) << 63;
      a[i + j] += std::bit_cast<double>(c_bits ^ flip);
    }
  }
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      const std::uint64_t flip = (~(word >> j) & 1ULL) << 63;
      a[i + j] += std::bit_cast<double>(c_bits ^ flip);
    }
  }
}

void neon_merge_accumulate(double* acc, const double* rep, const double* base,
                           std::size_t n) {
  // sub then add per lane (no fused ops): bit-identical to scalar, which the
  // shard-merge order-invariance proofs rely on.
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i),
                                 vsubq_f64(vld1q_f64(rep + i), vld1q_f64(base + i))));
  }
  for (; i < n; ++i) {
    acc[i] += rep[i] - base[i];
  }
}

void neon_scale_real(double* a, double c, std::size_t n) {
  const float64x2_t cv = vdupq_n_f64(c);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(a + i, vmulq_f64(cv, vld1q_f64(a + i)));
  }
  for (; i < n; ++i) {
    a[i] *= c;
  }
}

void neon_rff_trig_map(double* z, const double* phase, const double* sin_phase,
                       std::size_t n) {
  // The exact scalar expression — util::fast_sin is branch-free with a fixed
  // operation order, and this TU is compiled with -ffp-contract=off, so the
  // result is bit-identical to the scalar kernel.
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = 0.5 * (util::fast_sin(2.0 * z[i] + phase[i]) - sin_phase[i]);
  }
}

void neon_rff_rematerialize(std::uint64_t seed, double stddev, std::size_t row0,
                            std::size_t rows, std::size_t n_features, double* out,
                            std::size_t ld) {
  // The shared scalar core is the contract's reference operation sequence.
  detail::rff_rematerialize_rows(seed, stddev, row0, rows, n_features, out, ld);
}

void neon_rff_remat_dot(std::uint64_t seed, double stddev, std::size_t row0,
                        std::size_t rows, const double* x, std::size_t n_features,
                        double* out) {
  // Same reference sequence, fused with the ascending-k accumulation chain —
  // still skips the weight-tile stores the unfused pair would pay, which is
  // the part an in-order embedded core feels most.
  detail::rff_remat_dot_rows(seed, stddev, row0, rows, x, n_features, out);
}

void neon_gemm_accumulate(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                          std::size_t k, std::size_t n) {
  // Same traversal as the scalar kernel (column tile = 512 doubles), C
  // register-blocked 8 wide; mul + add (no vfmaq) and ascending k keep every
  // element's rounding sequence identical to scalar.
  constexpr std::size_t kColTile = 512;
  for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
    const std::size_t jn = std::min(n, j0 + kColTile);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * lda;
      double* crow = c + r * ldc;
      std::size_t j = j0;
      for (; j + 8 <= jn; j += 8) {
        float64x2_t c0 = vld1q_f64(crow + j);
        float64x2_t c1 = vld1q_f64(crow + j + 2);
        float64x2_t c2 = vld1q_f64(crow + j + 4);
        float64x2_t c3 = vld1q_f64(crow + j + 6);
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float64x2_t av = vdupq_n_f64(arow[kk]);
          const double* bp = b + kk * ldb + j;
          c0 = vaddq_f64(c0, vmulq_f64(av, vld1q_f64(bp)));
          c1 = vaddq_f64(c1, vmulq_f64(av, vld1q_f64(bp + 2)));
          c2 = vaddq_f64(c2, vmulq_f64(av, vld1q_f64(bp + 4)));
          c3 = vaddq_f64(c3, vmulq_f64(av, vld1q_f64(bp + 6)));
        }
        vst1q_f64(crow + j, c0);
        vst1q_f64(crow + j + 2, c1);
        vst1q_f64(crow + j + 4, c2);
        vst1q_f64(crow + j + 6, c3);
      }
      for (; j < jn; ++j) {
        double acc = crow[j];
        for (std::size_t kk = 0; kk < k; ++kk) {
          acc += arow[kk] * b[kk * ldb + j];
        }
        crow[j] = acc;
      }
    }
  }
}

void neon_dot_rows(const double* q, const double* rows, std::size_t ld,
                   std::size_t num_rows, std::size_t n, double* out) {
  // Per row exactly neon_dot_real_real — the dot_rows contract.
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = neon_dot_real_real(rows + r * ld, q, n);
  }
}

void neon_dot_rows_block(const double* q, const double* const* rows,
                         std::size_t num_rows, std::size_t len, bool last,
                         double* state, double* out) {
  // Carries neon_dot_real_real's four 2-lane accumulators per row (the first
  // 8 doubles of each row's kDotRowsBlockState slot). Non-final block
  // lengths are multiples of 64, so the 8-wide main loop consumes them
  // exactly; the 2-wide spill, lane sum and scalar tail run only on the
  // final call.
  for (std::size_t r = 0; r < num_rows; ++r) {
    double* st = state + r * kDotRowsBlockState;
    float64x2_t acc0 = vld1q_f64(st);
    float64x2_t acc1 = vld1q_f64(st + 2);
    float64x2_t acc2 = vld1q_f64(st + 4);
    float64x2_t acc3 = vld1q_f64(st + 6);
    const double* a = rows[r];
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(q + i));
      acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(q + i + 2));
      acc2 = vfmaq_f64(acc2, vld1q_f64(a + i + 4), vld1q_f64(q + i + 4));
      acc3 = vfmaq_f64(acc3, vld1q_f64(a + i + 6), vld1q_f64(q + i + 6));
    }
    if (!last) {
      vst1q_f64(st, acc0);
      vst1q_f64(st + 2, acc1);
      vst1q_f64(st + 4, acc2);
      vst1q_f64(st + 6, acc3);
      continue;
    }
    for (; i + 2 <= len; i += 2) {
      acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(q + i));
    }
    const float64x2_t sum = vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3));
    double acc = vgetq_lane_f64(sum, 0) + vgetq_lane_f64(sum, 1);
    for (; i < len; ++i) {
      acc += a[i] * q[i];
    }
    out[r] = acc;
  }
}

void neon_dot_rows_binary(const std::uint64_t* q, const std::uint64_t* rows,
                          std::size_t ld, std::size_t num_rows, std::size_t n,
                          std::int64_t* out) {
  const std::size_t words = (n + 63) / 64;
  const auto nn = static_cast<std::int64_t>(n);
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = nn - 2 * neon_hamming(rows + r * ld, q, words);
  }
}

void neon_dot_rows_ternary(const std::uint64_t* q, const std::uint64_t* signs,
                           const std::uint64_t* masks, std::size_t ld,
                           std::size_t num_rows, std::size_t n, std::int64_t* out) {
  const std::size_t words = (n + 63) / 64;
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = neon_masked_bipolar_dot(signs + r * ld, q, masks + r * ld, words);
  }
}

void neon_sign_encode(const double* v, std::int8_t* bipolar, std::uint64_t* bits,
                      std::size_t n) {
  // Scalar operation sequence (`v < 0.0` is false for NaN, so NaN maps to
  // +1 / bit set; padding bits of the final word are written zero).
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w << 6;
    const std::size_t limit = std::min<std::size_t>(64, n - base);
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < limit; ++j) {
      const bool neg = v[base + j] < 0.0;
      bipolar[base + j] = static_cast<std::int8_t>(1 - 2 * static_cast<int>(neg));
      word |= static_cast<std::uint64_t>(!neg) << j;
    }
    bits[w] = word;
  }
}

constexpr KernelBackend kNeonBackend{
    "neon",
    kNeonF64Lanes,
    neon_dot_real_real,
    neon_dot_real_bipolar,
    neon_dot_real_binary,
    neon_masked_dot,
    neon_hamming,
    neon_masked_bipolar_dot,
    neon_bipolar_dot_dense,
    neon_add_scaled_real,
    neon_add_scaled_bipolar,
    neon_add_scaled_binary,
    neon_merge_accumulate,
    neon_scale_real,
    neon_rff_trig_map,
    neon_rff_rematerialize,
    neon_rff_remat_dot,
    neon_gemm_accumulate,
    neon_dot_rows,
    neon_dot_rows_block,
    neon_dot_rows_binary,
    neon_dot_rows_ternary,
    neon_sign_encode,
};

}  // namespace

const KernelBackend* neon_backend_table() noexcept { return &kNeonBackend; }

}  // namespace reghd::hdc

#endif  // __aarch64__
#endif  // REGHD_HAVE_NEON
