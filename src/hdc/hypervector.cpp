#include "hdc/hypervector.hpp"

#include <algorithm>
#include <bit>

namespace reghd::hdc {

BipolarHV RealHV::sign() const {
  BipolarHV out;
  out.data_.resize(data_.size());
  // Branchless select vectorizes; the by-construction ±1 invariant makes the
  // validating BipolarHV(vector) constructor pass (and its cost) unnecessary.
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = static_cast<std::int8_t>(1 - 2 * static_cast<int>(data_[i] < 0.0));
  }
  return out;
}

BinaryHV RealHV::sign_packed() const {
  BinaryHV out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (data_[i] >= 0.0) {
      out.words_[i >> 6] |= 1ULL << (i & 63);
    }
  }
  return out;
}

BipolarHV::BipolarHV(std::vector<std::int8_t> values) : data_(std::move(values)) {
  for (const std::int8_t v : data_) {
    REGHD_CHECK(v == 1 || v == -1,
                "bipolar component must be ±1, got " << static_cast<int>(v));
  }
}

BinaryHV BipolarHV::pack() const {
  BinaryHV out(data_.size());
  // Word-at-a-time: accumulate 64 sign bits in a register before one store,
  // rather than a read-modify-write of the output word per component.
  const std::size_t full_words = data_.size() / 64;
  for (std::size_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = 0;
    for (std::size_t b = 0; b < 64; ++b) {
      bits |= static_cast<std::uint64_t>(data_[w * 64 + b] > 0) << b;
    }
    out.words_[w] = bits;
  }
  for (std::size_t i = full_words * 64; i < data_.size(); ++i) {
    if (data_[i] > 0) {
      out.words_[i >> 6] |= 1ULL << (i & 63);
    }
  }
  return out;
}

RealHV BipolarHV::to_real() const {
  std::vector<double> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out[i] = static_cast<double>(data_[i]);
  }
  return RealHV(std::move(out));
}

RealHV BipolarHVView::to_real() const {
  std::vector<double> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out[i] = static_cast<double>(data_[i]);
  }
  return RealHV(std::move(out));
}

BinaryHV::BinaryHV(std::size_t dim) : dim_(dim), words_((dim + 63) / 64, 0ULL) {}

std::size_t BinaryHV::popcount() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

BipolarHV BinaryHV::unpack() const {
  std::vector<std::int8_t> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = bit(i) ? std::int8_t{1} : std::int8_t{-1};
  }
  return BipolarHV(std::move(out));
}

RealHV BinaryHV::to_real() const {
  std::vector<double> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = bit(i) ? 1.0 : -1.0;
  }
  return RealHV(std::move(out));
}

BinaryHV BinaryHVView::to_owning() const {
  BinaryHV out(dim_);
  std::copy(words_.begin(), words_.end(), out.words().begin());
  return out;
}

}  // namespace reghd::hdc
