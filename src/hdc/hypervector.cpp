#include "hdc/hypervector.hpp"

#include <algorithm>
#include <bit>

namespace reghd::hdc {

BipolarHV RealHV::sign() const {
  std::vector<std::int8_t> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out[i] = data_[i] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
  }
  return BipolarHV(std::move(out));
}

BinaryHV RealHV::sign_packed() const {
  BinaryHV out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (data_[i] >= 0.0) {
      out.words_[i >> 6] |= 1ULL << (i & 63);
    }
  }
  return out;
}

BipolarHV::BipolarHV(std::vector<std::int8_t> values) : data_(std::move(values)) {
  for (const std::int8_t v : data_) {
    REGHD_CHECK(v == 1 || v == -1,
                "bipolar component must be ±1, got " << static_cast<int>(v));
  }
}

BinaryHV BipolarHV::pack() const {
  BinaryHV out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (data_[i] > 0) {
      out.words_[i >> 6] |= 1ULL << (i & 63);
    }
  }
  return out;
}

RealHV BipolarHV::to_real() const {
  std::vector<double> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out[i] = static_cast<double>(data_[i]);
  }
  return RealHV(std::move(out));
}

BinaryHV::BinaryHV(std::size_t dim) : dim_(dim), words_((dim + 63) / 64, 0ULL) {}

std::size_t BinaryHV::popcount() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

BipolarHV BinaryHV::unpack() const {
  std::vector<std::int8_t> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = bit(i) ? std::int8_t{1} : std::int8_t{-1};
  }
  return BipolarHV(std::move(out));
}

RealHV BinaryHV::to_real() const {
  std::vector<double> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = bit(i) ? 1.0 : -1.0;
  }
  return RealHV(std::move(out));
}

}  // namespace reghd::hdc
