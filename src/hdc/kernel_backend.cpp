#include "hdc/kernel_backend.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#endif

#include "hdc/rff_remat.hpp"
#include "util/fast_trig.hpp"

namespace reghd::hdc {

namespace {

// ---------------------------------------------------------------------------
// Portable scalar kernels.
//
// Sign application is branchless: for b ∈ {0,1}, (b ? +v : −v) equals
// v with its IEEE-754 sign bit XOR-flipped when b = 0. This adds exactly the
// same values in exactly the same order as a compare-per-component loop, so
// the scalar backend is bit-identical to the seed reference implementations
// — minus the per-bit branch mispredictions that dominated them.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;

/// +v when the low bit of `keep` is 1, −v when it is 0.
inline double apply_sign(double v, std::uint64_t keep) {
  const std::uint64_t flip = (~keep & 1ULL) << 63;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^ flip);
}

double scalar_dot_real_real(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double scalar_dot_real_bipolar(const double* a, const std::int8_t* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // b[i] ∈ {−1,+1}: flip the sign of a[i] when b[i] is negative.
    const std::uint64_t flip =
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i]) >> 7) << 63;
    acc += std::bit_cast<double>(std::bit_cast<std::uint64_t>(a[i]) ^ flip);
  }
  return acc;
}

double scalar_dot_real_binary(const double* a, const std::uint64_t* bits, std::size_t n) {
  double acc = 0.0;
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t word = bits[w];
    for (std::size_t j = 0; j < 64; ++j) {
      acc += apply_sign(a[i + j], word >> j);
    }
  }
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      acc += apply_sign(a[i + j], word >> j);
    }
  }
  return acc;
}

double scalar_masked_dot(const double* a, const std::uint64_t* signs,
                         const std::uint64_t* mask, std::size_t n) {
  // Iterate set mask bits only — ternary masks are often sparse, and this
  // preserves the exact accumulation order of the reference loop.
  double acc = 0.0;
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t active = mask[w];
    const std::uint64_t sign_bits = signs[w];
    const std::size_t base = w << 6;
    while (active != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(active));
      active &= active - 1;  // clear lowest set bit
      acc += apply_sign(a[base + j], sign_bits >> j);
    }
  }
  return acc;
}

std::int64_t scalar_hamming(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += std::popcount(a[i] ^ b[i]);
  }
  return total;
}

std::int64_t scalar_masked_bipolar_dot(const std::uint64_t* a, const std::uint64_t* b,
                                       const std::uint64_t* mask, std::size_t words) {
  std::int64_t agree = 0;
  std::int64_t active = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t m = mask[i];
    agree += std::popcount(~(a[i] ^ b[i]) & m);
    active += std::popcount(m);
  }
  return 2 * agree - active;
}

std::int64_t scalar_bipolar_dot_dense(const std::int8_t* a, const std::int8_t* b,
                                      std::size_t n) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return acc;
}

void scalar_add_scaled_real(double* a, const double* b, double c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] += c * b[i];
  }
}

void scalar_add_scaled_bipolar(double* a, const std::int8_t* b, double c, std::size_t n) {
  const std::uint64_t c_bits = std::bit_cast<std::uint64_t>(c);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t flip =
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i]) >> 7) << 63;
    a[i] += std::bit_cast<double>(c_bits ^ flip);
  }
}

void scalar_add_scaled_binary(double* a, const std::uint64_t* bits, double c,
                              std::size_t n) {
  const std::uint64_t c_bits = std::bit_cast<std::uint64_t>(c);
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t word = bits[w];
    for (std::size_t j = 0; j < 64; ++j) {
      const std::uint64_t flip = (~(word >> j) & 1ULL) << 63;
      a[i + j] += std::bit_cast<double>(c_bits ^ flip);
    }
  }
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      const std::uint64_t flip = (~(word >> j) & 1ULL) << 63;
      a[i + j] += std::bit_cast<double>(c_bits ^ flip);
    }
  }
}

void scalar_merge_accumulate(double* acc, const double* rep, const double* base,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += rep[i] - base[i];
  }
}

void scalar_scale_real(double* a, double c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] *= c;
  }
}

void scalar_rff_trig_map(double* z, const double* phase, const double* sin_phase,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = 0.5 * (util::fast_sin(2.0 * z[i] + phase[i]) - sin_phase[i]);
  }
}

void scalar_rff_rematerialize(std::uint64_t seed, double stddev, std::size_t row0,
                              std::size_t rows, std::size_t n_features, double* out,
                              std::size_t ld) {
  // The reference operation sequence of the rematerialization contract lives
  // in rff_remat.hpp (shared with the AVX2 TU, which replays it four rows
  // per lane group and reuses it verbatim for row tails).
  detail::rff_rematerialize_rows(seed, stddev, row0, rows, n_features, out, ld);
}

void scalar_rff_remat_dot(std::uint64_t seed, double stddev, std::size_t row0,
                          std::size_t rows, const double* x, std::size_t n_features,
                          double* out) {
  detail::rff_remat_dot_rows(seed, stddev, row0, rows, x, n_features, out);
}

// Column tile of the blocked GEMM: 512 doubles (4 KB) per B-panel row keeps a
// typical feature-count panel resident in L1 while a block of output rows
// streams over it. Shared by both backends so the traversal (not the
// arithmetic order, which is fixed per element) is the only tunable.
constexpr std::size_t kGemmColTile = 512;

void scalar_gemm_accumulate(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                            std::size_t k, std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kGemmColTile) {
    const std::size_t jn = std::min(n, j0 + kGemmColTile);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * lda;
      double* crow = c + r * ldc;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double aik = arow[kk];
        const double* brow = b + kk * ldb;
        for (std::size_t j = j0; j < jn; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void scalar_dot_rows(const double* q, const double* rows, std::size_t ld,
                     std::size_t num_rows, std::size_t n, double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = scalar_dot_real_real(rows + r * ld, q, n);
  }
}

void scalar_dot_rows_block(const double* q, const double* const* rows,
                           std::size_t num_rows, std::size_t len, bool last,
                           double* state, double* out) {
  // The scalar reduction is one running sum, so the carried state per row is
  // just that sum in slot 0 of its kDotRowsBlockState stride. Accumulating
  // block by block adds the same values in the same order as
  // scalar_dot_real_real over the concatenated query — bit-identical.
  for (std::size_t r = 0; r < num_rows; ++r) {
    double acc = state[r * kDotRowsBlockState];
    const double* a = rows[r];
    for (std::size_t i = 0; i < len; ++i) {
      acc += a[i] * q[i];
    }
    if (last) {
      out[r] = acc;
    } else {
      state[r * kDotRowsBlockState] = acc;
    }
  }
}

void scalar_dot_rows_binary(const std::uint64_t* q, const std::uint64_t* rows,
                            std::size_t ld, std::size_t num_rows, std::size_t n,
                            std::int64_t* out) {
  const std::size_t words = (n + 63) / 64;
  const auto nn = static_cast<std::int64_t>(n);
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = nn - 2 * scalar_hamming(rows + r * ld, q, words);
  }
}

void scalar_dot_rows_ternary(const std::uint64_t* q, const std::uint64_t* signs,
                             const std::uint64_t* masks, std::size_t ld,
                             std::size_t num_rows, std::size_t n, std::int64_t* out) {
  // Per row this is exactly scalar_masked_bipolar_dot — the scalar backend
  // keeps a single copy of each popcount inner loop (hamming for the binary
  // bank, masked_bipolar_dot here) and the bank kernels only change the
  // traversal, mirroring the shared xor/masked popcount helpers on the AVX2
  // side.
  const std::size_t words = (n + 63) / 64;
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = scalar_masked_bipolar_dot(signs + r * ld, q, masks + r * ld, words);
  }
}

void scalar_sign_encode(const double* v, std::int8_t* bipolar, std::uint64_t* bits,
                        std::size_t n) {
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w << 6;
    const std::size_t limit = std::min<std::size_t>(64, n - base);
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < limit; ++j) {
      const bool neg = v[base + j] < 0.0;
      bipolar[base + j] = static_cast<std::int8_t>(1 - 2 * static_cast<int>(neg));
      word |= static_cast<std::uint64_t>(!neg) << j;
    }
    bits[w] = word;
  }
}

constexpr KernelBackend kScalarBackend{
    "scalar",
    1,
    scalar_dot_real_real,
    scalar_dot_real_bipolar,
    scalar_dot_real_binary,
    scalar_masked_dot,
    scalar_hamming,
    scalar_masked_bipolar_dot,
    scalar_bipolar_dot_dense,
    scalar_add_scaled_real,
    scalar_add_scaled_bipolar,
    scalar_add_scaled_binary,
    scalar_merge_accumulate,
    scalar_scale_real,
    scalar_rff_trig_map,
    scalar_rff_rematerialize,
    scalar_rff_remat_dot,
    scalar_gemm_accumulate,
    scalar_dot_rows,
    scalar_dot_rows_block,
    scalar_dot_rows_binary,
    scalar_dot_rows_ternary,
    scalar_sign_encode,
};

}  // namespace

const KernelBackend& scalar_backend() noexcept { return kScalarBackend; }

bool cpu_supports_avx2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#define REGHD_X86_CPUID 1
#endif

namespace {

#ifdef REGHD_X86_CPUID
/// Leaf-7 subleaf-0 feature words, or all-zero when the leaf (or the OS
/// XSAVE state AVX-512 needs) is unsupported. AVX-512 requires both the CPU
/// feature bits and the OS to have enabled the ZMM/opmask register state:
/// CPUID alone lies on kernels that mask XCR0, so xgetbv is checked first.
struct Leaf7 {
  unsigned ebx = 0;
  unsigned ecx = 0;
};

Leaf7 avx512_leaf7() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    return {};
  }
  if ((ecx & (1U << 27)) == 0) {  // OSXSAVE: xgetbv is executable
    return {};
  }
  std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
  __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  // XMM (bit 1), YMM (bit 2), opmask/ZMM_hi256/hi16_ZMM (bits 5–7).
  constexpr std::uint32_t kAvx512State = 0xE6;
  if ((xcr0_lo & kAvx512State) != kAvx512State) {
    return {};
  }
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    return {};
  }
  return {ebx, ecx};
}
#endif  // REGHD_X86_CPUID

}  // namespace

bool cpu_supports_avx512() noexcept {
#ifdef REGHD_X86_CPUID
  const Leaf7 leaf = avx512_leaf7();
  // AVX512F (EBX bit 16) + AVX512BW (EBX bit 30) — the table's baseline ISA.
  return (leaf.ebx & (1U << 16)) != 0 && (leaf.ebx & (1U << 30)) != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512_vpopcntdq() noexcept {
#ifdef REGHD_X86_CPUID
  // VPOPCNTDQ is ECX bit 14 of leaf 7.0.
  return cpu_supports_avx512() && (avx512_leaf7().ecx & (1U << 14)) != 0;
#else
  return false;
#endif
}

#ifdef REGHD_HAVE_AVX2
// Defined in kernel_backend_avx2.cpp (compiled with -mavx2 -mfma).
const KernelBackend* avx2_backend_table() noexcept;
#endif
#ifdef REGHD_HAVE_AVX512
// Defined in kernel_backend_avx512.cpp (compiled with -mavx512f -mavx512bw).
const KernelBackend* avx512_backend_table(bool vpopcntdq) noexcept;
#endif
#ifdef REGHD_HAVE_NEON
// Defined in kernel_backend_neon.cpp (aarch64 only).
const KernelBackend* neon_backend_table() noexcept;
#endif

const KernelBackend* avx2_backend() noexcept {
#ifdef REGHD_HAVE_AVX2
  if (cpu_supports_avx2()) {
    return avx2_backend_table();
  }
#endif
  return nullptr;
}

const KernelBackend* avx512_backend() noexcept {
#ifdef REGHD_HAVE_AVX512
  if (cpu_supports_avx512()) {
    return avx512_backend_table(cpu_supports_avx512_vpopcntdq());
  }
#endif
  return nullptr;
}

const KernelBackend* neon_backend() noexcept {
#ifdef REGHD_HAVE_NEON
  return neon_backend_table();
#else
  return nullptr;
#endif
}

const KernelBackend* backend_by_name(const char* name) noexcept {
  if (name == nullptr) {
    return nullptr;
  }
  if (std::strcmp(name, "scalar") == 0) {
    return &kScalarBackend;
  }
  if (std::strcmp(name, "avx2") == 0) {
    return avx2_backend();
  }
  if (std::strcmp(name, "avx512") == 0) {
    return avx512_backend();
  }
  if (std::strcmp(name, "neon") == 0) {
    return neon_backend();
  }
  return nullptr;
}

BackendList available_backends() noexcept {
  BackendList list;
  list.tables[list.count++] = &kScalarBackend;
  if (const KernelBackend* avx2 = avx2_backend()) {
    list.tables[list.count++] = avx2;
  }
  if (const KernelBackend* avx512 = avx512_backend()) {
    list.tables[list.count++] = avx512;
  }
  if (const KernelBackend* neon = neon_backend()) {
    list.tables[list.count++] = neon;
  }
  return list;
}

const KernelBackend* resolve_backend_request(const char* request,
                                             std::string* message) {
  if (const KernelBackend* chosen = backend_by_name(request)) {
    return chosen;
  }
  if (message != nullptr) {
    std::string names;
    const BackendList list = available_backends();
    for (std::size_t i = 0; i < list.count; ++i) {
      if (i != 0) {
        names += ", ";
      }
      names += list.tables[i]->name;
    }
    *message = "reghd: REGHD_KERNEL=";
    *message += request != nullptr ? request : "";
    *message += " is unknown or unavailable on this host (available: ";
    *message += names;
    *message += "); falling back to the scalar backend";
  }
  return nullptr;
}

namespace {

const KernelBackend& resolve_active_backend() noexcept {
  if (const char* request = std::getenv("REGHD_KERNEL")) {
    std::string message;
    if (const KernelBackend* chosen = resolve_backend_request(request, &message)) {
      return *chosen;
    }
    std::fprintf(stderr, "%s\n", message.c_str());
    return kScalarBackend;
  }
  if (const KernelBackend* avx512 = avx512_backend()) {
    return *avx512;
  }
  if (const KernelBackend* avx2 = avx2_backend()) {
    return *avx2;
  }
  if (const KernelBackend* neon = neon_backend()) {
    return *neon;
  }
  return kScalarBackend;
}

}  // namespace

const KernelBackend& active_backend() noexcept {
  static const KernelBackend& backend = resolve_active_backend();
  return backend;
}

}  // namespace reghd::hdc
