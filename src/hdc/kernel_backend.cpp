#include "hdc/kernel_backend.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hdc/rff_remat.hpp"
#include "util/fast_trig.hpp"

namespace reghd::hdc {

namespace {

// ---------------------------------------------------------------------------
// Portable scalar kernels.
//
// Sign application is branchless: for b ∈ {0,1}, (b ? +v : −v) equals
// v with its IEEE-754 sign bit XOR-flipped when b = 0. This adds exactly the
// same values in exactly the same order as a compare-per-component loop, so
// the scalar backend is bit-identical to the seed reference implementations
// — minus the per-bit branch mispredictions that dominated them.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;

/// +v when the low bit of `keep` is 1, −v when it is 0.
inline double apply_sign(double v, std::uint64_t keep) {
  const std::uint64_t flip = (~keep & 1ULL) << 63;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^ flip);
}

double scalar_dot_real_real(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double scalar_dot_real_bipolar(const double* a, const std::int8_t* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // b[i] ∈ {−1,+1}: flip the sign of a[i] when b[i] is negative.
    const std::uint64_t flip =
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i]) >> 7) << 63;
    acc += std::bit_cast<double>(std::bit_cast<std::uint64_t>(a[i]) ^ flip);
  }
  return acc;
}

double scalar_dot_real_binary(const double* a, const std::uint64_t* bits, std::size_t n) {
  double acc = 0.0;
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t word = bits[w];
    for (std::size_t j = 0; j < 64; ++j) {
      acc += apply_sign(a[i + j], word >> j);
    }
  }
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      acc += apply_sign(a[i + j], word >> j);
    }
  }
  return acc;
}

double scalar_masked_dot(const double* a, const std::uint64_t* signs,
                         const std::uint64_t* mask, std::size_t n) {
  // Iterate set mask bits only — ternary masks are often sparse, and this
  // preserves the exact accumulation order of the reference loop.
  double acc = 0.0;
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t active = mask[w];
    const std::uint64_t sign_bits = signs[w];
    const std::size_t base = w << 6;
    while (active != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(active));
      active &= active - 1;  // clear lowest set bit
      acc += apply_sign(a[base + j], sign_bits >> j);
    }
  }
  return acc;
}

std::int64_t scalar_hamming(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += std::popcount(a[i] ^ b[i]);
  }
  return total;
}

std::int64_t scalar_masked_bipolar_dot(const std::uint64_t* a, const std::uint64_t* b,
                                       const std::uint64_t* mask, std::size_t words) {
  std::int64_t agree = 0;
  std::int64_t active = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t m = mask[i];
    agree += std::popcount(~(a[i] ^ b[i]) & m);
    active += std::popcount(m);
  }
  return 2 * agree - active;
}

std::int64_t scalar_bipolar_dot_dense(const std::int8_t* a, const std::int8_t* b,
                                      std::size_t n) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return acc;
}

void scalar_add_scaled_real(double* a, const double* b, double c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] += c * b[i];
  }
}

void scalar_add_scaled_bipolar(double* a, const std::int8_t* b, double c, std::size_t n) {
  const std::uint64_t c_bits = std::bit_cast<std::uint64_t>(c);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t flip =
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i]) >> 7) << 63;
    a[i] += std::bit_cast<double>(c_bits ^ flip);
  }
}

void scalar_add_scaled_binary(double* a, const std::uint64_t* bits, double c,
                              std::size_t n) {
  const std::uint64_t c_bits = std::bit_cast<std::uint64_t>(c);
  std::size_t i = 0;
  for (std::size_t w = 0; i + 64 <= n; ++w, i += 64) {
    const std::uint64_t word = bits[w];
    for (std::size_t j = 0; j < 64; ++j) {
      const std::uint64_t flip = (~(word >> j) & 1ULL) << 63;
      a[i + j] += std::bit_cast<double>(c_bits ^ flip);
    }
  }
  if (i < n) {
    const std::uint64_t word = bits[i >> 6];
    for (std::size_t j = 0; i + j < n; ++j) {
      const std::uint64_t flip = (~(word >> j) & 1ULL) << 63;
      a[i + j] += std::bit_cast<double>(c_bits ^ flip);
    }
  }
}

void scalar_merge_accumulate(double* acc, const double* rep, const double* base,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += rep[i] - base[i];
  }
}

void scalar_scale_real(double* a, double c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] *= c;
  }
}

void scalar_rff_trig_map(double* z, const double* phase, const double* sin_phase,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = 0.5 * (util::fast_sin(2.0 * z[i] + phase[i]) - sin_phase[i]);
  }
}

void scalar_rff_rematerialize(std::uint64_t seed, double stddev, std::size_t row0,
                              std::size_t rows, std::size_t n_features, double* out,
                              std::size_t ld) {
  // The reference operation sequence of the rematerialization contract lives
  // in rff_remat.hpp (shared with the AVX2 TU, which replays it four rows
  // per lane group and reuses it verbatim for row tails).
  detail::rff_rematerialize_rows(seed, stddev, row0, rows, n_features, out, ld);
}

// Column tile of the blocked GEMM: 512 doubles (4 KB) per B-panel row keeps a
// typical feature-count panel resident in L1 while a block of output rows
// streams over it. Shared by both backends so the traversal (not the
// arithmetic order, which is fixed per element) is the only tunable.
constexpr std::size_t kGemmColTile = 512;

void scalar_gemm_accumulate(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                            std::size_t k, std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kGemmColTile) {
    const std::size_t jn = std::min(n, j0 + kGemmColTile);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * lda;
      double* crow = c + r * ldc;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double aik = arow[kk];
        const double* brow = b + kk * ldb;
        for (std::size_t j = j0; j < jn; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void scalar_dot_rows(const double* q, const double* rows, std::size_t ld,
                     std::size_t num_rows, std::size_t n, double* out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = scalar_dot_real_real(rows + r * ld, q, n);
  }
}

void scalar_dot_rows_binary(const std::uint64_t* q, const std::uint64_t* rows,
                            std::size_t ld, std::size_t num_rows, std::size_t n,
                            std::int64_t* out) {
  const std::size_t words = (n + 63) / 64;
  const auto nn = static_cast<std::int64_t>(n);
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = nn - 2 * scalar_hamming(rows + r * ld, q, words);
  }
}

void scalar_dot_rows_ternary(const std::uint64_t* q, const std::uint64_t* signs,
                             const std::uint64_t* masks, std::size_t ld,
                             std::size_t num_rows, std::size_t n, std::int64_t* out) {
  // Per row this is exactly scalar_masked_bipolar_dot — the scalar backend
  // keeps a single copy of each popcount inner loop (hamming for the binary
  // bank, masked_bipolar_dot here) and the bank kernels only change the
  // traversal, mirroring the shared xor/masked popcount helpers on the AVX2
  // side.
  const std::size_t words = (n + 63) / 64;
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = scalar_masked_bipolar_dot(signs + r * ld, q, masks + r * ld, words);
  }
}

void scalar_sign_encode(const double* v, std::int8_t* bipolar, std::uint64_t* bits,
                        std::size_t n) {
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w << 6;
    const std::size_t limit = std::min<std::size_t>(64, n - base);
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < limit; ++j) {
      const bool neg = v[base + j] < 0.0;
      bipolar[base + j] = static_cast<std::int8_t>(1 - 2 * static_cast<int>(neg));
      word |= static_cast<std::uint64_t>(!neg) << j;
    }
    bits[w] = word;
  }
}

constexpr KernelBackend kScalarBackend{
    "scalar",
    scalar_dot_real_real,
    scalar_dot_real_bipolar,
    scalar_dot_real_binary,
    scalar_masked_dot,
    scalar_hamming,
    scalar_masked_bipolar_dot,
    scalar_bipolar_dot_dense,
    scalar_add_scaled_real,
    scalar_add_scaled_bipolar,
    scalar_add_scaled_binary,
    scalar_merge_accumulate,
    scalar_scale_real,
    scalar_rff_trig_map,
    scalar_rff_rematerialize,
    scalar_gemm_accumulate,
    scalar_dot_rows,
    scalar_dot_rows_binary,
    scalar_dot_rows_ternary,
    scalar_sign_encode,
};

}  // namespace

const KernelBackend& scalar_backend() noexcept { return kScalarBackend; }

bool cpu_supports_avx2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#ifdef REGHD_HAVE_AVX2
// Defined in kernel_backend_avx2.cpp (compiled with -mavx2 -mfma).
const KernelBackend* avx2_backend_table() noexcept;
#endif

const KernelBackend* avx2_backend() noexcept {
#ifdef REGHD_HAVE_AVX2
  if (cpu_supports_avx2()) {
    return avx2_backend_table();
  }
#endif
  return nullptr;
}

const KernelBackend* backend_by_name(const char* name) noexcept {
  if (name == nullptr) {
    return nullptr;
  }
  if (std::strcmp(name, "scalar") == 0) {
    return &kScalarBackend;
  }
  if (std::strcmp(name, "avx2") == 0) {
    return avx2_backend();
  }
  return nullptr;
}

namespace {

const KernelBackend& resolve_active_backend() noexcept {
  if (const char* request = std::getenv("REGHD_KERNEL")) {
    if (const KernelBackend* chosen = backend_by_name(request)) {
      return *chosen;
    }
    std::fprintf(stderr,
                 "reghd: REGHD_KERNEL=%s is unknown or unavailable on this host; "
                 "falling back to the scalar backend\n",
                 request);
    return kScalarBackend;
  }
  if (const KernelBackend* avx2 = avx2_backend()) {
    return *avx2;
  }
  return kScalarBackend;
}

}  // namespace

const KernelBackend& active_backend() noexcept {
  static const KernelBackend& backend = resolve_active_backend();
  return backend;
}

}  // namespace reghd::hdc
