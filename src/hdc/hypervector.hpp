// Hypervector value types.
//
// RegHD manipulates three representations of a D-dimensional hypervector:
//
//  * RealHV    — dense double components. Used for the pre-binarization
//                encoder output, the integer/accumulator models M, and the
//                integer cluster centers C (the paper's "integer" vectors —
//                high-precision accumulators as opposed to binary ones).
//  * BipolarHV — dense ±1 components (int8). The paper's encoded sample
//                S ∈ {−1,+1}^D; the cheap form for model updates M += c·S.
//  * BinaryHV  — bit-packed {0,1}^D (64 dims per machine word, bit 1 ⇔ +1).
//                The quantized form of §3: Hamming-distance similarity and
//                multiply-free dot products via XOR + popcount.
//
// Conversions preserve the bipolar interpretation: bit b encodes component
// 2b − 1, so Hamming distance h between two BinaryHVs and the bipolar dot
// product d of the corresponding BipolarHVs obey d = D − 2h exactly. The
// test suite pins this identity.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace reghd::hdc {

class BipolarHV;
class BinaryHV;

/// Dense real-valued hypervector.
class RealHV {
 public:
  RealHV() = default;

  /// Zero-initialized hypervector of the given dimensionality.
  explicit RealHV(std::size_t dim) : data_(dim, 0.0) {}

  /// Adopts existing component values.
  explicit RealHV(std::vector<double> values) : data_(std::move(values)) {}

  [[nodiscard]] std::size_t dim() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] double& operator[](std::size_t i) noexcept { return data_[i]; }

  [[nodiscard]] std::span<const double> values() const noexcept { return data_; }
  [[nodiscard]] std::span<double> values() noexcept { return data_; }

  /// Resets every component to zero without changing the dimensionality.
  void clear() noexcept { std::fill(data_.begin(), data_.end(), 0.0); }

  /// Component-wise sign binarization to ±1; zero maps to +1 so the result
  /// is always a valid bipolar vector.
  [[nodiscard]] BipolarHV sign() const;

  /// Sign binarization straight to the packed form.
  [[nodiscard]] BinaryHV sign_packed() const;

  bool operator==(const RealHV&) const = default;

 private:
  std::vector<double> data_;
};

/// Dense ±1 hypervector stored as int8 components.
class BipolarHV {
 public:
  BipolarHV() = default;

  /// All-(+1) hypervector of the given dimensionality.
  explicit BipolarHV(std::size_t dim) : data_(dim, +1) {}

  /// Adopts component values; every element must be +1 or −1.
  explicit BipolarHV(std::vector<std::int8_t> values);

  [[nodiscard]] std::size_t dim() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::int8_t operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Sets component i to +1 or −1.
  void set(std::size_t i, std::int8_t value) {
    REGHD_CHECK(value == 1 || value == -1, "bipolar component must be ±1, got "
                                               << static_cast<int>(value));
    data_[i] = value;
  }

  [[nodiscard]] std::span<const std::int8_t> values() const noexcept { return data_; }

  /// Packs into the bit representation (bit 1 ⇔ +1).
  [[nodiscard]] BinaryHV pack() const;

  /// Widens to a real hypervector.
  [[nodiscard]] RealHV to_real() const;

  bool operator==(const BipolarHV&) const = default;

 private:
  friend class RealHV;  // sign() writes ±1 directly, skipping re-validation.
  std::vector<std::int8_t> data_;
};

/// Bit-packed binary hypervector; bit 1 encodes bipolar +1, bit 0 encodes −1.
/// Unused bits in the final word are kept at zero so whole-word popcount
/// operations need no masking.
class BinaryHV {
 public:
  BinaryHV() = default;

  /// All-zero-bit (all −1 bipolar) hypervector of the given dimensionality.
  explicit BinaryHV(std::size_t dim);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return dim_ == 0; }

  /// Number of 64-bit storage words.
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Mutable word storage for word-at-a-time kernels (ops.cpp). Callers must
  /// keep the padding bits of the final word zero — whole-word popcount
  /// kernels rely on it.
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  [[nodiscard]] bool bit(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set_bit(std::size_t i, bool value) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Bipolar value of component i: +1 for a set bit, −1 otherwise.
  [[nodiscard]] int bipolar(std::size_t i) const noexcept { return bit(i) ? +1 : -1; }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Unpacks to the dense ±1 representation.
  [[nodiscard]] BipolarHV unpack() const;

  /// Widens to a real ±1 hypervector.
  [[nodiscard]] RealHV to_real() const;

  bool operator==(const BinaryHV&) const = default;

 private:
  friend class RealHV;
  friend class BipolarHV;

  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

// ---------------------------------------------------------------------------
// Non-owning views.
//
// The SoA encoded arena (core/encoded) stores hypervector components in flat
// contiguous planes instead of per-sample vectors; these views give that
// storage the same read interface as the owning types. Owning hypervectors
// convert implicitly, so every read-only kernel signature that takes a view
// still accepts a RealHV / BipolarHV / BinaryHV at the call site.
// ---------------------------------------------------------------------------

/// Read-only view of a dense real hypervector.
class RealHVView {
 public:
  RealHVView() = default;
  explicit RealHVView(std::span<const double> values) : data_(values) {}
  RealHVView(const RealHV& hv) : data_(hv.values()) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t dim() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] double operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] std::span<const double> values() const noexcept { return data_; }

  /// Copies the viewed components into an owning hypervector.
  [[nodiscard]] RealHV to_owning() const { return RealHV({data_.begin(), data_.end()}); }

  friend bool operator==(const RealHVView& a, const RealHVView& b) noexcept {
    return a.data_.size() == b.data_.size() &&
           std::equal(a.data_.begin(), a.data_.end(), b.data_.begin());
  }

 private:
  std::span<const double> data_;
};

/// Read-only view of a dense ±1 hypervector.
class BipolarHVView {
 public:
  BipolarHVView() = default;
  explicit BipolarHVView(std::span<const std::int8_t> values) : data_(values) {}
  BipolarHVView(const BipolarHV& hv) : data_(hv.values()) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t dim() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::int8_t operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] std::span<const std::int8_t> values() const noexcept { return data_; }

  /// Widens to an owning real hypervector.
  [[nodiscard]] RealHV to_real() const;

  /// Copies the viewed components into an owning hypervector.
  [[nodiscard]] BipolarHV to_owning() const {
    return BipolarHV(std::vector<std::int8_t>{data_.begin(), data_.end()});
  }

  friend bool operator==(const BipolarHVView& a, const BipolarHVView& b) noexcept {
    return a.data_.size() == b.data_.size() &&
           std::equal(a.data_.begin(), a.data_.end(), b.data_.begin());
  }

 private:
  std::span<const std::int8_t> data_;
};

/// Read-only view of a bit-packed binary hypervector. The viewed words obey
/// the same invariant as BinaryHV: padding bits of the final word are zero.
class BinaryHVView {
 public:
  BinaryHVView() = default;
  BinaryHVView(std::size_t dim, std::span<const std::uint64_t> words)
      : dim_(dim), words_(words) {}
  BinaryHVView(const BinaryHV& hv)  // NOLINT(google-explicit-constructor)
      : dim_(hv.dim()), words_(hv.words()) {}

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return dim_ == 0; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  [[nodiscard]] bool bit(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Bipolar value of component i: +1 for a set bit, −1 otherwise.
  [[nodiscard]] int bipolar(std::size_t i) const noexcept { return bit(i) ? +1 : -1; }

  /// Copies the viewed words into an owning hypervector.
  [[nodiscard]] BinaryHV to_owning() const;

  friend bool operator==(const BinaryHVView& a, const BinaryHVView& b) noexcept {
    return a.dim_ == b.dim_ &&
           std::equal(a.words_.begin(), a.words_.end(), b.words_.begin());
  }

 private:
  std::size_t dim_ = 0;
  std::span<const std::uint64_t> words_;
};

}  // namespace reghd::hdc
