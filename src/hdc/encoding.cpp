#include "hdc/encoding.hpp"

#include <algorithm>
#include <cmath>

#include "hdc/kernel_backend.hpp"
#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "obs/telemetry.hpp"
#include "util/fast_trig.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace reghd::hdc {

std::string to_string(EncoderKind kind) {
  switch (kind) {
    case EncoderKind::kNonlinearFeature:
      return "nonlinear";
    case EncoderKind::kRffProjection:
      return "rff";
    case EncoderKind::kIdLevel:
      return "idlevel";
    case EncoderKind::kTemporal:
      return "temporal";
  }
  REGHD_INTERNAL_CHECK(false, "unhandled EncoderKind " << static_cast<int>(kind));
}

EncoderKind encoder_kind_from_string(const std::string& name) {
  if (name == "nonlinear") {
    return EncoderKind::kNonlinearFeature;
  }
  if (name == "rff") {
    return EncoderKind::kRffProjection;
  }
  if (name == "idlevel") {
    return EncoderKind::kIdLevel;
  }
  if (name == "temporal") {
    return EncoderKind::kTemporal;
  }
  throw std::invalid_argument("unknown encoder kind '" + name +
                              "' (expected nonlinear, rff, idlevel, or temporal)");
}

std::string to_string(ProjectionStorage storage) {
  switch (storage) {
    case ProjectionStorage::kResident:
      return "resident";
    case ProjectionStorage::kRematerialized:
      return "rematerialized";
  }
  REGHD_INTERNAL_CHECK(false,
                       "unhandled ProjectionStorage " << static_cast<int>(storage));
}

ProjectionStorage projection_storage_from_string(const std::string& name) {
  if (name == "resident") {
    return ProjectionStorage::kResident;
  }
  if (name == "rematerialized") {
    return ProjectionStorage::kRematerialized;
  }
  throw std::invalid_argument("unknown projection storage '" + name +
                              "' (expected resident or rematerialized)");
}

Encoder::Encoder(EncoderConfig config) : config_(config) {
  REGHD_CHECK(config_.input_dim > 0, "encoder requires input_dim > 0");
  REGHD_CHECK(config_.dim > 0, "encoder requires dim > 0");
}

void Encoder::check_features(std::span<const double> features) const {
  REGHD_CHECK(features.size() == config_.input_dim,
              "feature count " << features.size() << " does not match encoder input_dim "
                               << config_.input_dim);
}

RealHV Encoder::encode_real(std::span<const double> features) const {
  check_features(features);
  RealHV out(config_.dim);
  encode_real_into(features, out.values().data());
  return out;
}

void Encoder::encode_real_block(std::span<const double> features, std::size_t j0,
                                std::size_t len, double* out) const {
  (void)features;
  (void)j0;
  (void)len;
  (void)out;
  REGHD_INTERNAL_CHECK(false, "encode_real_block called on an encoder without block "
                              "support (check supports_block_encode() first)");
}

EncodedSample Encoder::encode(std::span<const double> features) const {
  const obs::StageTimer timer(obs::Histo::kEncodeRowNs);
  obs::count(obs::Counter::kEncodeRows);
  EncodedSample out;
  out.real = encode_real(features);
  out.bipolar = out.real.sign();
  out.binary = out.bipolar.pack();
  const auto v = out.real.values();
  const double norm2 = active_backend().dot_real_real(v.data(), v.data(), v.size());
  out.real_norm2 = norm2;
  out.real_norm = std::sqrt(norm2);
  return out;
}

void Encoder::check_arena(std::span<const double> rows_flat, std::size_t num_rows,
                          const EncodedArenaRef& out) const {
  REGHD_CHECK(rows_flat.size() == num_rows * config_.input_dim,
              "encode_batch_into: flat buffer of "
                  << rows_flat.size() << " doubles does not hold " << num_rows
                  << " rows of " << config_.input_dim << " features");
  REGHD_CHECK(out.dim == config_.dim, "encode_batch_into: arena dim "
                                          << out.dim << " does not match encoder dim "
                                          << config_.dim);
  REGHD_CHECK(out.words_per_row == (config_.dim + 63) / 64,
              "encode_batch_into: arena words_per_row " << out.words_per_row
                                                        << " is wrong for dim "
                                                        << config_.dim);
  REGHD_CHECK(num_rows == 0 || (out.real != nullptr && out.bipolar != nullptr &&
                                out.binary != nullptr && out.norm != nullptr &&
                                out.norm2 != nullptr),
              "encode_batch_into: arena planes must be non-null");
}

void Encoder::finalize_encoded_row(const EncodedArenaRef& out, std::size_t row) const {
  const KernelBackend& kb = active_backend();
  const std::size_t d = config_.dim;
  const double* z = out.real + row * d;
  kb.sign_encode(z, out.bipolar + row * d, out.binary + row * out.words_per_row, d);
  const double norm2 = kb.dot_real_real(z, z, d);
  out.norm2[row] = norm2;
  out.norm[row] = std::sqrt(norm2);
}

void Encoder::encode_batch_into(std::span<const double> rows_flat, std::size_t num_rows,
                                const EncodedArenaRef& out, std::size_t threads) const {
  check_arena(rows_flat, num_rows, out);
  const obs::StageTimer timer(obs::Histo::kEncodeBatchNs);
  obs::count(obs::Counter::kEncodeBatches);
  obs::count(obs::Counter::kEncodeRows, num_rows);
  const std::size_t n = config_.input_dim;
  util::parallel_for(
      num_rows,
      [&](std::size_t i) {
        encode_real_into(rows_flat.subspan(i * n, n), out.real + i * config_.dim);
        finalize_encoded_row(out, i);
      },
      threads);
}

std::vector<EncodedSample> Encoder::encode_batch(std::span<const double> rows_flat,
                                                 std::size_t num_rows,
                                                 std::size_t threads) const {
  const std::size_t n = config_.input_dim;
  REGHD_CHECK(rows_flat.size() == num_rows * n,
              "encode_batch: flat buffer of " << rows_flat.size()
                                              << " doubles does not hold " << num_rows
                                              << " rows of " << n << " features");
  std::vector<EncodedSample> out(num_rows);
  util::parallel_for(
      num_rows,
      [&](std::size_t i) { out[i] = encode(rows_flat.subspan(i * n, n)); },
      threads);
  return out;
}

// ---------------------------------------------------------------------------
// NonlinearFeatureEncoder (Eq. 1)
// ---------------------------------------------------------------------------

NonlinearFeatureEncoder::NonlinearFeatureEncoder(EncoderConfig config)
    : Encoder(config) {
  util::Rng rng(config_.seed);
  util::Rng base_rng = rng.split();
  util::Rng phase_rng = rng.split();
  bases_ = random_bipolar_set(config_.input_dim, config_.dim, base_rng);
  phase_.resize(config_.dim);
  cos_phase_.resize(config_.dim);
  sin_phase_.resize(config_.dim);
  for (std::size_t j = 0; j < config_.dim; ++j) {
    phase_[j] = phase_rng.phase();
    cos_phase_[j] = std::cos(phase_[j]);
    sin_phase_[j] = std::sin(phase_[j]);
  }
}

void NonlinearFeatureEncoder::encode_real_into(std::span<const double> features,
                                               double* out) const {
  const std::size_t d = config_.dim;
  const std::size_t n = config_.input_dim;

  // Factored Eq. 1:
  //   H_j = cos(b_j)·g_j − sin(b_j)·s,
  //   g_j = Σ_k B_{k,j} · (sin 2f_k)/2,   s = Σ_k sin²f_k.
  std::vector<double> g(d, 0.0);
  double s = 0.0;
  const KernelBackend& kb = active_backend();
  for (std::size_t k = 0; k < n; ++k) {
    const double half_sin2 = 0.5 * std::sin(2.0 * features[k]);
    const double sinf = std::sin(features[k]);
    s += sinf * sinf;
    // g += half_sin2 · B_k — the ±1 axpy kernel (multiplying by ±1.0 is
    // exact, so this matches the branchy form bit-for-bit).
    kb.add_scaled_bipolar(g.data(), bases_[k].values().data(), half_sin2, d);
  }

  for (std::size_t j = 0; j < d; ++j) {
    out[j] = cos_phase_[j] * g[j] - sin_phase_[j] * s;
  }
}

RealHV NonlinearFeatureEncoder::encode_reference(std::span<const double> features) const {
  check_features(features);
  RealHV out(config_.dim);
  for (std::size_t k = 0; k < config_.input_dim; ++k) {
    const auto base = bases_[k].values();
    for (std::size_t j = 0; j < config_.dim; ++j) {
      const double arg = features[k] * static_cast<double>(base[j]);
      out[j] += std::cos(arg + phase_[j]) * std::sin(arg);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// RffProjectionEncoder
// ---------------------------------------------------------------------------

RffProjectionEncoder::RffProjectionEncoder(EncoderConfig config) : Encoder(config) {
  REGHD_CHECK(config_.projection_stddev >= 0.0,
              "projection stddev must be non-negative, got " << config_.projection_stddev);
  const double stddev =
      config_.projection_stddev > 0.0
          ? config_.projection_stddev
          : 1.0 / std::sqrt(static_cast<double>(config_.input_dim));  // auto bandwidth
  util::Rng rng(config_.seed);
  util::Rng proj_rng = rng.split();
  util::Rng phase_rng = rng.split();
  stddev_ = stddev;
  // The weights are a pure function of (proj_seed_, row, feature) through
  // the counter-based rff_rematerialize kernel — never of a sequential
  // generator — so any row tile can be regenerated independently. Resident
  // mode materializes all D rows once, here; rematerialized mode stores
  // nothing and regenerates tiles inside the encode loops. Either way the
  // phase stream below is untouched (phase_rng stays the second split).
  proj_seed_ = proj_rng.bits();
  if (config_.projection_storage == ProjectionStorage::kResident) {
    projection_t_.resize(config_.dim * config_.input_dim);
    materialize_rows(0, config_.dim, projection_t_.data(), config_.dim);
  }
  phase_.resize(config_.dim);
  sin_phase_.resize(config_.dim);
  for (std::size_t j = 0; j < config_.dim; ++j) {
    phase_[j] = phase_rng.phase();
    // fast_sin here too, so z = 0 gives sin(b_j) − sin_phase_[j] == 0 exactly.
    sin_phase_[j] = util::fast_sin(phase_[j]);
  }
}

void RffProjectionEncoder::materialize_rows(std::size_t row0, std::size_t rows,
                                            double* out, std::size_t ld) const {
  active_backend().rff_rematerialize(proj_seed_, stddev_, row0, rows,
                                     config_.input_dim, out, ld);
}

void RffProjectionEncoder::encode_real_into(std::span<const double> features,
                                            double* out) const {
  const std::size_t d = config_.dim;
  const std::size_t n = config_.input_dim;
  const KernelBackend& kb = active_backend();
  if (config_.projection_storage == ProjectionStorage::kRematerialized) {
    // Single-row rematerialized projection: regenerate 16-hyperspace-row
    // tiles of the weights and multiply each in place (a 1×n × n×tile GEMM).
    // gemm_accumulate adds each output component's contributions with the
    // feature index ascending, mul-then-add — exactly the rounding sequence
    // of the resident axpy chain below, so the two storage modes are
    // bit-identical.
    constexpr std::size_t kTile = 16;
    // Reused across calls (resize never shrinks capacity): the serving
    // runtime's steady-state predict path must not touch the allocator.
    thread_local std::vector<double> scratch;
    scratch.resize(n * kTile);
    for (std::size_t j0 = 0; j0 < d; j0 += kTile) {
      const std::size_t tile = std::min(kTile, d - j0);
      kb.rff_rematerialize(proj_seed_, stddev_, j0, tile, n, scratch.data(), tile);
      kb.gemm_accumulate(features.data(), n, scratch.data(), tile, out + j0, d, 1, n,
                         tile);
    }
    kb.rff_trig_map(out, phase_.data(), sin_phase_.data(), d);
    return;
  }
  // Projection as n unit-stride axpys over the transposed weights:
  //   z_j = Σ_k x_k · w_{j,k}  ⇔  z += x_k · W_t[k, ·] for each feature k.
  // Each component still accumulates in feature order, so the result is
  // bit-identical to the naive per-row dot, and add_scaled_real rounds the
  // same under every kernel backend. Then the trig map: product-to-sum turns
  // the paper's cos(z+b)·sin(z) into ½·(sin(2z+b) − sin(b)) — one sine per
  // component, evaluated with util::fast_sin (see fast_trig.hpp; identical
  // values under every kernel backend).
  for (std::size_t k = 0; k < n; ++k) {
    kb.add_scaled_real(out, projection_t_.data() + k * d, features[k], d);
  }
  kb.rff_trig_map(out, phase_.data(), sin_phase_.data(), d);
}

void RffProjectionEncoder::encode_real_block(std::span<const double> features,
                                             std::size_t j0, std::size_t len,
                                             double* out) const {
  check_features(features);
  const std::size_t d = config_.dim;
  REGHD_CHECK(j0 <= d && len <= d - j0, "encode_real_block: slice ["
                                            << j0 << ", " << j0 + len
                                            << ") exceeds dim " << d);
  if (len == 0) {
    return;
  }
  const std::size_t n = config_.input_dim;
  const KernelBackend& kb = active_backend();
  if (config_.projection_storage == ProjectionStorage::kRematerialized) {
    // Fused regenerate-and-project: a single query gets nothing back for
    // storing a weight tile (the batch arena amortizes the tile over its
    // rows; B = 1 cannot), so the block's pre-activation values come out of
    // rff_remat_dot with the weights consumed in registers. The kernel's
    // contract pins each component to the exact rematerialize + gemm chain,
    // and each row's draw stream is keyed on its absolute index, so this
    // block equals the same slice of the full encoding bit-for-bit.
    kb.rff_remat_dot(proj_seed_, stddev_, j0, len, features.data(), n, out);
  } else {
    // The axpy chain over the [j0, j0+len) slice of each transposed weight
    // row — identical per-component accumulation order to the full encode.
    std::fill(out, out + len, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      kb.add_scaled_real(out, projection_t_.data() + k * d + j0, features[k], len);
    }
  }
  kb.rff_trig_map(out, phase_.data() + j0, sin_phase_.data() + j0, len);
}

void RffProjectionEncoder::encode_batch_into(std::span<const double> rows_flat,
                                             std::size_t num_rows,
                                             const EncodedArenaRef& out,
                                             std::size_t threads) const {
  check_arena(rows_flat, num_rows, out);
  const obs::StageTimer timer(obs::Histo::kEncodeBatchNs);
  obs::count(obs::Counter::kEncodeBatches);
  obs::count(obs::Counter::kEncodeRows, num_rows);
  const std::size_t d = config_.dim;
  const std::size_t n = config_.input_dim;
  // Resident mode: row blocks share each cache tile of the F×D transposed
  // weight matrix — the GEMM streams W_t once per block of 16 rows instead
  // of once per row, cutting projection memory traffic ~16×.
  const bool remat = config_.projection_storage == ProjectionStorage::kRematerialized;
  // Rematerialized mode regenerates all F×D weights once per sample block,
  // so it uses a 4× taller block to amortize that fixed cost — legal because
  // gemm_accumulate's per-element rounding sequence (feature index
  // ascending, mul then add) is invariant to both the sample blocking and
  // the hyperspace tiling; every row stays bit-identical to the per-row
  // path, and to the resident path, for any thread count.
  constexpr std::size_t kResidentRowBlock = 16;
  constexpr std::size_t kRematRowBlock = 64;
  constexpr std::size_t kRematTile = 16;  // hyperspace rows per scratch tile
  const std::size_t row_block = remat ? kRematRowBlock : kResidentRowBlock;
  const std::size_t blocks = (num_rows + row_block - 1) / row_block;
  const KernelBackend& kb = active_backend();
  util::parallel_for(
      blocks,
      [&](std::size_t block) {
        const std::size_t r0 = block * row_block;
        const std::size_t rn = std::min(num_rows, r0 + row_block);
        if (remat) {
          // F×16 weight tiles live in a worker-local scratch (L1/L2-resident;
          // e.g. 100 KB at F = 784) that the GEMM consumes in place — the
          // projection matrix never exists in memory all at once. The scratch
          // persists per thread so steady-state batches (the serving
          // runtime's admission path) never touch the allocator.
          thread_local std::vector<double> scratch;
          scratch.resize(n * kRematTile);
          for (std::size_t j0 = 0; j0 < d; j0 += kRematTile) {
            const std::size_t tile = std::min(kRematTile, d - j0);
            kb.rff_rematerialize(proj_seed_, stddev_, j0, tile, n, scratch.data(),
                                 tile);
            kb.gemm_accumulate(rows_flat.data() + r0 * n, n, scratch.data(), tile,
                               out.real + r0 * d + j0, d, rn - r0, n, tile);
          }
        } else {
          kb.gemm_accumulate(rows_flat.data() + r0 * n, n, projection_t_.data(), d,
                             out.real + r0 * d, d, rn - r0, n, d);
        }
        for (std::size_t r = r0; r < rn; ++r) {
          kb.rff_trig_map(out.real + r * d, phase_.data(), sin_phase_.data(), d);
          finalize_encoded_row(out, r);
        }
      },
      threads);
}

// ---------------------------------------------------------------------------
// IdLevelEncoder
// ---------------------------------------------------------------------------

IdLevelEncoder::IdLevelEncoder(EncoderConfig config) : Encoder(config) {
  REGHD_CHECK(config_.levels >= 2, "ID-level encoding requires at least two levels");
  REGHD_CHECK(config_.level_min < config_.level_max,
              "level range must be non-empty: [" << config_.level_min << ", "
                                                 << config_.level_max << ")");
  util::Rng rng(config_.seed);
  util::Rng id_rng = rng.split();
  util::Rng level_rng = rng.split();

  feature_ids_.reserve(config_.input_dim);
  for (std::size_t k = 0; k < config_.input_dim; ++k) {
    feature_ids_.push_back(random_binary(config_.dim, id_rng));
  }

  // Progressive level vectors: L_0 is random; L_{i+1} flips dim/(levels−1)
  // fresh positions of L_i, so Hamming(L_a, L_b) grows linearly with |a−b|.
  level_hvs_.reserve(config_.levels);
  level_hvs_.push_back(random_binary(config_.dim, level_rng));
  const std::size_t flips_per_step =
      std::max<std::size_t>(1, config_.dim / (config_.levels - 1));
  std::vector<std::size_t> positions(config_.dim);
  for (std::size_t i = 0; i < config_.dim; ++i) {
    positions[i] = i;
  }
  level_rng.shuffle(positions);
  std::size_t cursor = 0;
  for (std::size_t lvl = 1; lvl < config_.levels; ++lvl) {
    BinaryHV next = level_hvs_.back();
    for (std::size_t f = 0; f < flips_per_step && cursor < positions.size(); ++f, ++cursor) {
      next.set_bit(positions[cursor], !next.bit(positions[cursor]));
    }
    level_hvs_.push_back(std::move(next));
  }
}

std::size_t IdLevelEncoder::level_index(double value) const noexcept {
  const double clamped = std::clamp(value, config_.level_min, config_.level_max);
  const double t = (clamped - config_.level_min) / (config_.level_max - config_.level_min);
  const auto idx = static_cast<std::size_t>(t * static_cast<double>(config_.levels - 1) + 0.5);
  return std::min(idx, config_.levels - 1);
}

void IdLevelEncoder::encode_real_into(std::span<const double> features,
                                      double* out) const {
  BinaryHV bound(config_.dim);  // scratch reused across features — no
                                // per-feature allocation
  const KernelBackend& kb = active_backend();
  for (std::size_t k = 0; k < config_.input_dim; ++k) {
    xor_bind_into(bound, feature_ids_[k], level_hvs_[level_index(features[k])]);
    kb.add_scaled_binary(out, bound.words().data(), 1.0, config_.dim);
  }
}

// ---------------------------------------------------------------------------
// TemporalEncoder
// ---------------------------------------------------------------------------

TemporalEncoder::TemporalEncoder(EncoderConfig config) : Encoder(config) {
  REGHD_CHECK(config_.levels >= 2, "temporal encoding requires at least two levels");
  REGHD_CHECK(config_.level_min < config_.level_max,
              "level range must be non-empty: [" << config_.level_min << ", "
                                                 << config_.level_max << ")");
  util::Rng rng(config_.seed);
  util::Rng level_rng = rng.split();

  // Progressive level ladder (same construction as IdLevelEncoder): nearby
  // levels share most bits.
  level_hvs_.reserve(config_.levels);
  level_hvs_.push_back(random_binary(config_.dim, level_rng));
  const std::size_t flips_per_step =
      std::max<std::size_t>(1, config_.dim / (config_.levels - 1));
  std::vector<std::size_t> positions(config_.dim);
  for (std::size_t i = 0; i < config_.dim; ++i) {
    positions[i] = i;
  }
  level_rng.shuffle(positions);
  std::size_t cursor = 0;
  for (std::size_t lvl = 1; lvl < config_.levels; ++lvl) {
    BinaryHV next = level_hvs_.back();
    for (std::size_t f = 0; f < flips_per_step && cursor < positions.size(); ++f, ++cursor) {
      next.set_bit(positions[cursor], !next.bit(positions[cursor]));
    }
    level_hvs_.push_back(std::move(next));
  }
}

std::size_t TemporalEncoder::level_index(double value) const noexcept {
  const double clamped = std::clamp(value, config_.level_min, config_.level_max);
  const double t = (clamped - config_.level_min) / (config_.level_max - config_.level_min);
  const auto idx = static_cast<std::size_t>(t * static_cast<double>(config_.levels - 1) + 0.5);
  return std::min(idx, config_.levels - 1);
}

void TemporalEncoder::encode_real_into(std::span<const double> features,
                                       double* out) const {
  BinaryHV rotated(config_.dim);  // scratch reused across window positions
  const KernelBackend& kb = active_backend();
  for (std::size_t t = 0; t < features.size(); ++t) {
    // ρᵗ binds the element to its window position.
    permute_into(rotated, level_hvs_[level_index(features[t])], t);
    kb.add_scaled_binary(out, rotated.words().data(), 1.0, config_.dim);
  }
}

std::unique_ptr<Encoder> make_encoder(const EncoderConfig& config) {
  switch (config.kind) {
    case EncoderKind::kNonlinearFeature:
      return std::make_unique<NonlinearFeatureEncoder>(config);
    case EncoderKind::kRffProjection:
      return std::make_unique<RffProjectionEncoder>(config);
    case EncoderKind::kIdLevel:
      return std::make_unique<IdLevelEncoder>(config);
    case EncoderKind::kTemporal:
      return std::make_unique<TemporalEncoder>(config);
  }
  throw std::invalid_argument("unknown EncoderKind value " +
                              std::to_string(static_cast<int>(config.kind)));
}

}  // namespace reghd::hdc
