// Hypervector capacity model (paper §2.3, Eqs. 3–4).
//
// When a model hypervector M is the superposition of P near-orthogonal
// patterns, querying M with one stored pattern Q yields signal δ(S_λ, Q) = D
// plus a noise term: the sum of P−1 independent bipolar dot products, each a
// shifted binomial with variance D. The decision rule δ(M, Q)/D > T then has
// a false-positive probability for an *unstored* query of
//
//     Pr(Z > T·√(D/P)) = (1/√2π) ∫_{T√(D/P)}^∞ e^{−t²/2} dt
//
// (Eq. 4). This module evaluates that model and inverts it, quantifying when
// a single model hypervector saturates — the motivation for multi-model
// regression. A Monte-Carlo validator cross-checks the closed form in tests.
#pragma once

#include <cstddef>

#include "util/random.hpp"

namespace reghd::hdc {

/// Parameters of the capacity question: dimension D, number of superposed
/// patterns P, and the normalized decision threshold T ∈ (0, 1).
struct CapacityQuery {
  std::size_t dimension = 10'000;
  std::size_t patterns = 1'000;
  double threshold = 0.5;
};

/// Eq. 4: false-positive probability that a random (unstored) query appears
/// stored in a P-pattern superposition.
[[nodiscard]] double false_positive_probability(const CapacityQuery& query);

/// Largest pattern count P such that the false-positive probability stays at
/// or below `max_error`. Returns 0 if even P = 1 exceeds it.
[[nodiscard]] std::size_t max_patterns(std::size_t dimension, double threshold,
                                       double max_error);

/// Smallest dimension D that stores `patterns` patterns with false-positive
/// probability at most `max_error` at the given threshold.
[[nodiscard]] std::size_t min_dimension(std::size_t patterns, double threshold,
                                        double max_error);

/// Monte-Carlo estimate of the same probability: superposes `patterns`
/// random bipolar vectors and measures how often a fresh random query clears
/// the threshold. Used to validate the closed form.
[[nodiscard]] double simulate_false_positive_rate(const CapacityQuery& query,
                                                  std::size_t trials, util::Rng& rng);

}  // namespace reghd::hdc
