// Random hypervector generation.
//
// Random bipolar hypervectors of dimension D ≈ 10k are near-orthogonal with
// overwhelming probability (their cosine similarity concentrates as
// N(0, 1/√D)); this quasi-orthogonality is the foundation of both the
// encoder's base vectors (Eq. 1) and the random cluster initialization
// (§2.4). All draws are deterministic given the Rng state.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/hypervector.hpp"
#include "util/random.hpp"

namespace reghd::hdc {

/// Random dense ±1 hypervector (Rademacher components).
[[nodiscard]] BipolarHV random_bipolar(std::size_t dim, util::Rng& rng);

/// Random packed binary hypervector (i.i.d. fair bits).
[[nodiscard]] BinaryHV random_binary(std::size_t dim, util::Rng& rng);

/// Random real hypervector with i.i.d. N(mean, stddev²) components.
[[nodiscard]] RealHV random_gaussian(std::size_t dim, util::Rng& rng, double mean = 0.0,
                                     double stddev = 1.0);

/// A set of mutually independent random bipolar base hypervectors, one per
/// input feature (the B_k of Eq. 1).
[[nodiscard]] std::vector<BipolarHV> random_bipolar_set(std::size_t count, std::size_t dim,
                                                        util::Rng& rng);

/// Flips each component of a packed vector independently with probability p.
/// Used by the robustness tests and the noise-injection experiments.
[[nodiscard]] BinaryHV flip_noise(const BinaryHV& v, double p, util::Rng& rng);

/// Adds i.i.d. N(0, stddev²) noise to each component of a real vector.
[[nodiscard]] RealHV gaussian_noise(const RealHV& v, double stddev, util::Rng& rng);

}  // namespace reghd::hdc
