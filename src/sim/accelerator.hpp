// Cycle-approximate model of the RegHD FPGA datapath (§4.1: Verilog on a
// Kintex-7 KC705).
//
// Where perf/kernel_costs counts primitive operations and prices them
// per-op, this model reflects how the paper's accelerator actually executes
// them: fixed hardware resources (MAC units on DSP slices, wide LUT adder
// trees, a popcount reduction tree, a few CORDIC units for
// transcendentals), with each pipeline *stage* consuming ⌈work/lanes⌉
// cycles. A sample flows through five stages —
//
//   encode → similarity search → confidence → predict → update (training)
//
// — and the accelerator pipelines consecutive samples, so sustained
// throughput is set by the slowest stage (the initiation interval) while
// single-sample latency is the sum. This exposes the design trade-offs the
// paper exploits: quantized clustering turns the DSP-bound search stage
// into a popcount-tree pass, and binary queries empty the MAC array out of
// the predict/update stages.
//
// The model is deliberately stage-granular rather than RTL-exact: it
// answers "which stage is the bottleneck, and by what factor do the §3
// optimizations relieve it", which is what the paper's Figs. 8–9 measure.
#pragma once

#include <cstddef>
#include <string>

#include "perf/kernel_costs.hpp"  // RegHDKernelShape, Precision

namespace reghd::sim {

/// Hardware resource budget of the accelerator instance.
struct AccelResources {
  double clock_mhz = 200.0;

  std::size_t mac_units = 128;        ///< DSP multiply-accumulates per cycle.
  std::size_t add_lanes = 512;        ///< Narrow adds/compares per cycle (LUT fabric).
  std::size_t popcount_bits = 2048;   ///< Bits reduced by the popcount tree per cycle.
  std::size_t xor_word_lanes = 32;    ///< 64-bit XOR words per cycle.
  std::size_t cordic_units = 4;       ///< Transcendental (sin/cos/exp) units.
  std::size_t cordic_latency = 16;    ///< Cycles per CORDIC evaluation (pipelined II = 1).
  std::size_t divider_latency = 24;   ///< Cycles for one division (II = 1 thereafter).

  /// Validates the budget; throws std::invalid_argument on nonsense.
  void validate() const;
};

/// Cycle counts of one sample's pass, per pipeline stage.
struct StageCycles {
  std::size_t encode = 0;
  std::size_t search = 0;
  std::size_t confidence = 0;
  std::size_t predict = 0;
  std::size_t update = 0;  ///< Zero during inference.

  /// Single-sample latency (stages are sequential for one sample).
  [[nodiscard]] std::size_t total() const noexcept {
    return encode + search + confidence + predict + update;
  }

  /// Initiation interval of the pipelined datapath: the slowest stage.
  [[nodiscard]] std::size_t initiation_interval() const noexcept;

  /// Name of the bottleneck stage.
  [[nodiscard]] std::string bottleneck() const;
};

/// The datapath model: shape × resources → cycles/throughput/latency.
class AcceleratorModel {
 public:
  AcceleratorModel(perf::RegHDKernelShape shape, AccelResources resources);

  [[nodiscard]] StageCycles train_sample_cycles() const;
  [[nodiscard]] StageCycles infer_sample_cycles() const;

  /// Sustained pipelined throughput in samples/second.
  [[nodiscard]] double throughput_samples_per_sec(bool training) const;

  /// Single-sample latency in microseconds.
  [[nodiscard]] double latency_us(bool training) const;

  /// End-to-end training time for `samples`·`epochs` pipelined passes, ms.
  [[nodiscard]] double training_time_ms(std::size_t samples, std::size_t epochs) const;

  [[nodiscard]] const perf::RegHDKernelShape& shape() const noexcept { return shape_; }
  [[nodiscard]] const AccelResources& resources() const noexcept { return resources_; }

 private:
  [[nodiscard]] StageCycles sample_cycles(bool training) const;

  perf::RegHDKernelShape shape_;
  AccelResources resources_;
};

}  // namespace reghd::sim
