#include "sim/accelerator.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace reghd::sim {

namespace {

/// ⌈a/b⌉ for cycle math.
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

void AccelResources::validate() const {
  REGHD_CHECK(clock_mhz > 0.0, "clock must be positive");
  REGHD_CHECK(mac_units >= 1, "need at least one MAC unit");
  REGHD_CHECK(add_lanes >= 1, "need at least one add lane");
  REGHD_CHECK(popcount_bits >= 64, "popcount tree must cover at least one word");
  REGHD_CHECK(xor_word_lanes >= 1, "need at least one XOR lane");
  REGHD_CHECK(cordic_units >= 1, "need at least one CORDIC unit");
  REGHD_CHECK(cordic_latency >= 1 && divider_latency >= 1, "latencies must be positive");
}

std::size_t StageCycles::initiation_interval() const noexcept {
  return std::max({encode, search, confidence, predict, update, std::size_t{1}});
}

std::string StageCycles::bottleneck() const {
  const std::size_t ii = initiation_interval();
  if (encode == ii) {
    return "encode";
  }
  if (search == ii) {
    return "search";
  }
  if (confidence == ii) {
    return "confidence";
  }
  if (predict == ii) {
    return "predict";
  }
  return "update";
}

AcceleratorModel::AcceleratorModel(perf::RegHDKernelShape shape, AccelResources resources)
    : shape_(shape), resources_(resources) {
  resources_.validate();
  REGHD_CHECK(shape_.dim >= 64, "accelerator model requires dim >= 64");
  REGHD_CHECK(shape_.models >= 1, "accelerator model requires at least one model");
  REGHD_CHECK(shape_.features >= 1, "accelerator model requires at least one feature");
}

StageCycles AcceleratorModel::sample_cycles(bool training) const {
  const std::size_t d = shape_.dim;
  const std::size_t k = shape_.models;
  const std::size_t n = shape_.features;
  const std::size_t words = ceil_div(d, 64);
  const AccelResources& r = resources_;

  StageCycles c;

  // --- Encode ---------------------------------------------------------
  if (shape_.rff_encoder) {
    // D rows of an n-wide MAC each, on the DSP array, plus 2 CORDIC
    // evaluations per dimension (cos & sin, pipelined II = 1 per unit).
    c.encode = ceil_div(d * n, r.mac_units) +
               r.cordic_latency + ceil_div(2 * d, r.cordic_units);
  } else {
    // Factored Eq. 1: 2n CORDIC calls, one ±1 broadcast-add pass per
    // feature over the LUT adders, and a 2-MAC combine per dimension.
    c.encode = r.cordic_latency + ceil_div(2 * n, r.cordic_units) +
               ceil_div(n * d, r.add_lanes) + ceil_div(2 * d, r.mac_units);
  }

  // --- Similarity search ------------------------------------------------
  if (shape_.quantized_cluster) {
    // k Hamming searches: XOR word streams + the popcount reduction tree.
    c.search = ceil_div(k * words, r.xor_word_lanes) + ceil_div(k * d, r.popcount_bits);
  } else {
    // k cosine similarities: k·D MACs + one division per cluster.
    c.search = ceil_div(k * d, r.mac_units) + r.divider_latency + k;
  }

  // --- Confidence (softmax over k) --------------------------------------
  c.confidence = r.cordic_latency + ceil_div(k, r.cordic_units) + r.divider_latency + k;

  // --- Predict -----------------------------------------------------------
  if (shape_.query == perf::Precision::kBinary && shape_.model == perf::Precision::kBinary) {
    c.predict = ceil_div(k * words, r.xor_word_lanes) + ceil_div(k * d, r.popcount_bits);
  } else if (shape_.query == perf::Precision::kReal &&
             shape_.model == perf::Precision::kReal) {
    c.predict = ceil_div(k * d, r.mac_units);
  } else {
    // Multiply-free signed accumulation on the LUT adders.
    c.predict = ceil_div(k * d, r.add_lanes);
  }

  // --- Update (training only) -------------------------------------------
  if (training) {
    const std::size_t model_updates =
        shape_.query == perf::Precision::kReal
            ? ceil_div(k * d, r.mac_units)   // α·err·Q_j fused MACs
            : ceil_div(k * d, r.add_lanes);  // ±α·err adds
    const std::size_t cluster_update =
        shape_.query == perf::Precision::kReal ? ceil_div(d, r.mac_units)
                                               : ceil_div(d, r.add_lanes);
    c.update = model_updates + cluster_update;
  }
  return c;
}

StageCycles AcceleratorModel::train_sample_cycles() const { return sample_cycles(true); }

StageCycles AcceleratorModel::infer_sample_cycles() const { return sample_cycles(false); }

double AcceleratorModel::throughput_samples_per_sec(bool training) const {
  const StageCycles c = sample_cycles(training);
  const double cycles_per_sample = static_cast<double>(c.initiation_interval());
  return resources_.clock_mhz * 1e6 / cycles_per_sample;
}

double AcceleratorModel::latency_us(bool training) const {
  const StageCycles c = sample_cycles(training);
  return static_cast<double>(c.total()) / resources_.clock_mhz;
}

double AcceleratorModel::training_time_ms(std::size_t samples, std::size_t epochs) const {
  const StageCycles c = train_sample_cycles();
  // Pipelined: II per sample plus one pipeline fill per epoch.
  const double cycles =
      static_cast<double>(epochs) *
      (static_cast<double>(samples) * static_cast<double>(c.initiation_interval()) +
       static_cast<double>(c.total()));
  return cycles / (resources_.clock_mhz * 1e3);
}

}  // namespace reghd::sim
