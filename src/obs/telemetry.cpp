#include "obs/telemetry.hpp"

#include <cmath>
#include <deque>
#include <mutex>

namespace reghd::obs {

namespace {

constexpr std::array<std::string_view, kNumCounters> kCounterNames = {
    "encode_rows",
    "encode_batches",
    "train_steps",
    "train_batches",
    "train_batch_samples",
    "predicts",
    "predict_batch_rows",
    "predict_fused",
    "predict_fused_fallbacks",
    "requantizes",
    "cluster_updates",
    "online_updates",
    "online_warmup_skips",
    "online_cold_predicts",
    "online_decays",
    "pool_jobs",
    "pool_inline_jobs",
    "pool_blocks",
    "pool_worker_busy_ns",
    "ckpt_saves",
    "ckpt_save_failures",
    "ckpt_recover_scans",
    "ckpt_corruptions",
    "ckpt_recoveries",
    "shard_fits",
    "shard_merges",
    "shard_refine_epochs",
    "serve_requests",
    "serve_batches",
    "serve_batch_rows",
    "serve_single_rows",
    "serve_queue_rejects",
    "serve_train_applied",
    "serve_train_rejects",
    "serve_snapshot_publishes",
    "serve_snapshot_swaps",
    "tenant_hits",
    "tenant_misses",
    "tenant_activations",
    "tenant_reactivations",
    "tenant_evictions",
    "tenant_promotions",
    "tenant_spill_discards",
};

constexpr std::array<std::string_view, kNumHistos> kHistoNames = {
    "encode_row_ns",
    "encode_batch_ns",
    "train_step_ns",
    "train_batch_ns",
    "predict_ns",
    "predict_batch_ns",
    "predict_one_ns",
    "online_update_ns",
    "online_batch_ns",
    "pool_job_ns",
    "ckpt_write_ns",
    "ckpt_fsync_ns",
    "ckpt_recover_ns",
    "shard_fit_ns",
    "shard_merge_ns",
    "shard_refine_ns",
    "serve_queue_wait_ns",
    "serve_assemble_ns",
    "serve_encode_ns",
    "serve_scan_ns",
    "serve_predict_ns",
    "serve_batch_fill",
    "serve_publish_ns",
    "serve_staleness_ns",
    "tenant_evict_ns",
    "tenant_activate_ns",
    "tenant_resident_bytes",
};

}  // namespace

std::string_view counter_name(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

std::string_view histo_name(Histo h) noexcept {
  return kHistoNames[static_cast<std::size_t>(h)];
}

double HistogramSnapshot::quantile_ns(double q) const noexcept {
  if (count == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Rank of the requested quantile (1-based, ceil convention).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t target = rank > 0 ? rank : 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistoBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) {
      continue;
    }
    if (seen + in_bucket >= target) {
      if (b == 0) {
        return 0.0;  // bucket 0 holds exact zeros
      }
      // Bucket b covers [2^(b−1), 2^b); interpolate geometrically by the
      // fraction of the bucket's population below the target rank.
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double frac =
          static_cast<double>(target - seen) / static_cast<double>(in_bucket);
      return lo * std::pow(2.0, frac);
    }
    seen += in_bucket;
  }
  return std::ldexp(1.0, static_cast<int>(kHistoBuckets) - 1);
}

#ifndef REGHD_NO_TELEMETRY

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/// Shard registry. A deque gives stable addresses, so thread_local pointers
/// stay valid as other threads register; shards are never destroyed before
/// process exit, so counts from finished threads survive into snapshots.
struct Registry {
  std::mutex mutex;
  std::deque<Shard> shards;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: shards must outlive all threads
  return *r;
}

}  // namespace

Shard& local_shard() {
  thread_local Shard* shard = [] {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.shards.emplace_back();
    return &r.shards.back();
  }();
  return *shard;
}

}  // namespace detail

TelemetrySnapshot snapshot() {
  TelemetrySnapshot out;
  detail::Registry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const detail::Shard& shard : r.shards) {
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      out.counters[c] += shard.counters[c].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kNumHistos; ++h) {
      HistogramSnapshot& hs = out.histograms[h];
      for (std::size_t b = 0; b < kHistoBuckets; ++b) {
        const std::uint64_t n = shard.buckets[h][b].load(std::memory_order_relaxed);
        hs.buckets[b] += n;
        hs.count += n;
      }
      hs.sum_ns += shard.histo_sum_ns[h].load(std::memory_order_relaxed);
    }
    for (std::size_t s = 0; s < kClusterHitSlots; ++s) {
      out.cluster_hits[s] += shard.cluster_hits[s].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset() {
  detail::Registry& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (detail::Shard& shard : r.shards) {
    for (auto& c : shard.counters) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& hist : shard.buckets) {
      for (auto& b : hist) {
        b.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& s : shard.histo_sum_ns) {
      s.store(0, std::memory_order_relaxed);
    }
    for (auto& s : shard.cluster_hits) {
      s.store(0, std::memory_order_relaxed);
    }
  }
}

#else  // REGHD_NO_TELEMETRY

TelemetrySnapshot snapshot() { return {}; }
void reset() {}

#endif  // REGHD_NO_TELEMETRY

}  // namespace reghd::obs
