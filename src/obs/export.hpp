// Snapshot exporters: JSON (machine-readable dumps for the CLI's
// --telemetry-json and the benches) and Prometheus text exposition
// (version 0.0.4 — ready to serve from a /metrics endpoint or push through
// the node-exporter textfile collector), plus a human-readable table for
// the CLI `--stats` view.
#pragma once

#include <string>

#include "obs/telemetry.hpp"

namespace reghd::obs {

/// JSON object: {"counters": {...}, "histograms": {name: {count, sum_ns,
/// mean_ns, p50_ns, p95_ns, p99_ns, buckets: [...]}}, "cluster_hits": [...]}.
/// Deterministic key order (enum order); no external dependencies.
[[nodiscard]] std::string to_json(const TelemetrySnapshot& snap);

/// Prometheus text exposition. Counters become `reghd_<name>_total`
/// counters, histograms become native `reghd_<name>` histograms with
/// power-of-two `le` edges in seconds, cluster hits a labelled counter
/// family.
[[nodiscard]] std::string to_prometheus(const TelemetrySnapshot& snap);

/// Aligned human-readable summary (the CLI `--stats` view): non-zero
/// counters, then per-stage latency rows (count / mean / p50 / p95 / p99).
[[nodiscard]] std::string to_table(const TelemetrySnapshot& snap);

}  // namespace reghd::obs
