#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace reghd::obs {

namespace {

/// Shortest round-trip-safe formatting for the JSON numbers we emit
/// (quantiles are doubles; everything else is integral).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Upper edge of histogram bucket b in nanoseconds (+inf for the last).
double bucket_upper_ns(std::size_t b) {
  if (b + 1 >= kHistoBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(b));  // 2^b
}

/// Human-scaled duration: picks ns/µs/ms/s.
std::string fmt_duration_ns(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

}  // namespace

std::string to_json(const TelemetrySnapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    out << (c == 0 ? "\n" : ",\n") << "    \""
        << counter_name(static_cast<Counter>(c)) << "\": " << snap.counters[c];
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t h = 0; h < kNumHistos; ++h) {
    const HistogramSnapshot& hs = snap.histograms[h];
    out << (h == 0 ? "\n" : ",\n") << "    \"" << histo_name(static_cast<Histo>(h))
        << "\": {\"count\": " << hs.count << ", \"sum_ns\": " << hs.sum_ns
        << ", \"mean_ns\": " << fmt_double(hs.mean_ns())
        << ", \"p50_ns\": " << fmt_double(hs.p50_ns())
        << ", \"p95_ns\": " << fmt_double(hs.p95_ns())
        << ", \"p99_ns\": " << fmt_double(hs.p99_ns()) << ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistoBuckets; ++b) {
      out << (b == 0 ? "" : ", ") << hs.buckets[b];
    }
    out << "]}";
  }
  out << "\n  },\n  \"cluster_hits\": [";
  for (std::size_t s = 0; s < kClusterHitSlots; ++s) {
    out << (s == 0 ? "" : ", ") << snap.cluster_hits[s];
  }
  out << "]\n}\n";
  return out.str();
}

std::string to_prometheus(const TelemetrySnapshot& snap) {
  std::ostringstream out;
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    const std::string_view name = counter_name(static_cast<Counter>(c));
    out << "# TYPE reghd_" << name << "_total counter\n"
        << "reghd_" << name << "_total " << snap.counters[c] << "\n";
  }
  for (std::size_t h = 0; h < kNumHistos; ++h) {
    const HistogramSnapshot& hs = snap.histograms[h];
    // Nanosecond histograms convert to the Prometheus base unit (strip _ns,
    // append _seconds, divide edges/sum by 1e9). Unitless histograms (e.g.
    // serve_batch_fill, whose observations are batch sizes) export verbatim —
    // forcing a _seconds suffix on them would mislabel the unit.
    std::string name(histo_name(static_cast<Histo>(h)));
    const bool ns_unit =
        name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
    if (ns_unit) {
      name.resize(name.size() - 3);
      name += "_seconds";
    }
    out << "# TYPE reghd_" << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistoBuckets; ++b) {
      cumulative += hs.buckets[b];
      if (hs.buckets[b] == 0 && b + 1 < kHistoBuckets) {
        continue;  // keep the exposition compact; cumulative still correct
      }
      const double upper = bucket_upper_ns(b);
      out << "reghd_" << name << "_bucket{le=\"";
      if (std::isinf(upper)) {
        out << "+Inf";
      } else {
        out << fmt_double(ns_unit ? upper / 1e9 : upper);
      }
      out << "\"} " << cumulative << "\n";
    }
    out << "reghd_" << name << "_sum "
        << fmt_double(ns_unit ? static_cast<double>(hs.sum_ns) / 1e9
                              : static_cast<double>(hs.sum_ns))
        << "\n"
        << "reghd_" << name << "_count " << hs.count << "\n";
  }
  out << "# TYPE reghd_cluster_hits_total counter\n";
  for (std::size_t s = 0; s < kClusterHitSlots; ++s) {
    if (snap.cluster_hits[s] == 0) {
      continue;
    }
    out << "reghd_cluster_hits_total{cluster=\"" << s << "\"} " << snap.cluster_hits[s]
        << "\n";
  }
  return out.str();
}

std::string to_table(const TelemetrySnapshot& snap) {
  std::ostringstream out;
  out << "counters:\n";
  bool any = false;
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    if (snap.counters[c] == 0) {
      continue;
    }
    any = true;
    char line[96];
    std::snprintf(line, sizeof(line), "  %-22s %12" PRIu64 "\n",
                  std::string(counter_name(static_cast<Counter>(c))).c_str(),
                  snap.counters[c]);
    out << line;
  }
  if (!any) {
    out << "  (none recorded — is telemetry enabled?)\n";
  }
  out << "stage latencies:\n";
  any = false;
  for (std::size_t h = 0; h < kNumHistos; ++h) {
    const HistogramSnapshot& hs = snap.histograms[h];
    if (hs.count == 0) {
      continue;
    }
    any = true;
    const std::string hname(histo_name(static_cast<Histo>(h)));
    const bool ns_unit = hname.size() > 3 &&
                         hname.compare(hname.size() - 3, 3, "_ns") == 0;
    const auto fmt = [&](double v) -> std::string {
      if (ns_unit) {
        return fmt_duration_ns(v);
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", v);
      return buf;
    };
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-18s n=%-10" PRIu64 " mean=%-10s p50=%-10s p95=%-10s p99=%s\n",
                  hname.c_str(), hs.count, fmt(hs.mean_ns()).c_str(),
                  fmt(hs.p50_ns()).c_str(), fmt(hs.p95_ns()).c_str(),
                  fmt(hs.p99_ns()).c_str());
    out << line;
  }
  if (!any) {
    out << "  (none recorded)\n";
  }
  std::uint64_t total_hits = 0;
  for (const std::uint64_t h : snap.cluster_hits) {
    total_hits += h;
  }
  if (total_hits > 0) {
    out << "cluster hits:";
    for (std::size_t s = 0; s < kClusterHitSlots; ++s) {
      if (snap.cluster_hits[s] > 0) {
        out << "  [" << s << "]=" << snap.cluster_hits[s];
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace reghd::obs
