// Runtime telemetry: monotonic counters, log-bucketed latency histograms,
// and RAII stage timers for the encode / train / predict / checkpoint hot
// paths.
//
// The paper positions RegHD for real-time learning on embedded and IoT
// streams (§1, §3) and reports efficiency as a first-class result
// (Figs. 8–9); a production deployment of those hot paths needs the
// MLPerf-style per-stage accounting this module provides. Design goals, in
// order:
//
//  1. **Never perturb model math.** Telemetry only ever observes — counts
//     and wall-clock durations around calls. Every bit-identity and
//     equivalence suite passes with telemetry enabled.
//  2. **Contention-free hot path.** Each thread writes to its own shard
//     (resolved once through a thread_local pointer); shards are merged
//     only when a snapshot is taken. Shard slots are relaxed atomics so the
//     merge is race-free (TSan-clean) without any hot-path synchronization.
//  3. **Predictable disabled cost.** Telemetry is off by default. When
//     disabled, every record call is one well-predicted branch on a global
//     atomic flag — no clock reads, no shard lookup (the e2e microbench row
//     `telemetry_overhead` pins the cost; see DESIGN.md §9). Compiling with
//     -DREGHD_NO_TELEMETRY removes the calls entirely.
//  4. **No allocation while recording.** Histograms use fixed power-of-two
//     bucket edges (bucket = bit_width of the nanosecond value), so an
//     observation is two relaxed fetch_adds. Quantiles (p50/p95/p99) are
//     estimated from the bucket counts at snapshot time.
//
// Metric identity is a compile-time enum rather than registered strings:
// the instrumented surface is fixed (encoder, regressors, online stream,
// thread pool, checkpoints), and an enum keeps the record path a bare array
// index. Snapshots export to JSON and Prometheus text exposition via
// obs/export.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace reghd::obs {

/// Monotonic event counters. Keep kCounterNames in telemetry.cpp in sync.
enum class Counter : std::size_t {
  kEncodeRows = 0,        ///< Rows encoded (per-row and batch paths).
  kEncodeBatches,         ///< encode_batch_into calls.
  kTrainSteps,            ///< Regressor train_step calls.
  kTrainBatches,          ///< Regressor train_batch calls.
  kTrainBatchSamples,     ///< Samples applied through train_batch.
  kPredicts,              ///< Per-sample predict calls (incl. batch fallback rows).
  kPredictBatchRows,      ///< Rows predicted through predict_batch.
  kPredictFused,          ///< predict_one calls served by the fused fast path.
  kPredictFusedFallbacks, ///< predict_one calls that fell back to encode+predict.
  kRequantizes,           ///< Binary-snapshot refreshes (requantize()).
  kClusterUpdates,        ///< Eq. 8 winning-cluster updates applied.
  kOnlineUpdates,         ///< OnlineRegHD readings consumed (update/update_batch).
  kOnlineWarmupSkips,     ///< Readings consumed during warmup (no model update).
  kOnlineColdPredicts,    ///< predict() calls answered by the cold-start mean.
  kOnlineDecays,          ///< Exponential-forgetting applications.
  kPoolJobs,              ///< ThreadPool jobs dispatched to workers.
  kPoolInlineJobs,        ///< run_blocks calls executed serially inline.
  kPoolBlocks,            ///< Blocks executed across all jobs.
  kPoolWorkerBusyNs,      ///< Nanoseconds participants spent executing blocks
                          ///< (occupancy = busy_ns / (job_ns · thread_count)).
                          ///< Only a thread's outermost participation frame
                          ///< records, so nested run_blocks never double-count
                          ///< and busy_ns ≤ wall · thread_count always holds.
  kCkptSaves,             ///< Checkpoints written successfully.
  kCkptSaveFailures,      ///< Checkpoint writes that threw (incl. injected faults).
  kCkptRecoverScans,      ///< Candidate files examined during recovery.
  kCkptCorruptions,       ///< Candidates rejected as corrupt/torn (CRC or parse).
  kCkptRecoveries,        ///< Successful recoveries.
  kShardFits,             ///< Shard replica fits completed (sharded training).
  kShardMerges,           ///< Shard-merge reductions applied (one per merged model).
  kShardRefineEpochs,     ///< Sequential refine epochs run after a shard merge.
  kServeRequests,         ///< Predict requests admitted by the serving runtime.
  kServeBatches,          ///< Admission batches scored through the bank scan.
  kServeBatchRows,        ///< Requests served through the batched bank-scan path.
  kServeSingleRows,       ///< Requests served through the fused single-query path.
  kServeQueueRejects,     ///< Predict submissions rejected (ingest ring full).
  kServeTrainApplied,     ///< Online updates applied by shard trainers.
  kServeTrainRejects,     ///< Train submissions rejected (train ring full).
  kServeSnapshotPublishes,///< Immutable model snapshots published by trainers.
  kServeSnapshotSwaps,    ///< Predict-worker hot-swaps to a newer snapshot.
  kTenantHits,            ///< Tenant lookups answered by a resident learner.
  kTenantMisses,          ///< Tenant lookups that had to activate state.
  kTenantActivations,     ///< Fresh tenant learners created (first contact).
  kTenantReactivations,   ///< Evicted tenants restored from their checkpoint.
  kTenantEvictions,       ///< Resident tenants serialized out under budget pressure.
  kTenantPromotions,      ///< Tenants re-sized to a larger-D tier.
  kTenantSpillDiscards,   ///< Evicted checkpoints dropped by the spill budget.
  kCount
};

/// Latency histograms (nanosecond observations). Keep kHistoNames in
/// telemetry.cpp in sync.
enum class Histo : std::size_t {
  kEncodeRowNs = 0,   ///< One encode() call.
  kEncodeBatchNs,     ///< One encode_batch_into call (whole block).
  kTrainStepNs,       ///< One train_step.
  kTrainBatchNs,      ///< One train_batch (whole mini-batch).
  kPredictNs,         ///< One predict.
  kPredictBatchNs,    ///< One predict_batch (whole block).
  kPredictOneNs,      ///< One predict_one (fused or fallback, encode included).
  kOnlineUpdateNs,    ///< One prequential update (predict + consume label).
  kOnlineBatchNs,     ///< One update_batch block.
  kPoolJobNs,         ///< One dispatched pool job, dispatch to last block done.
  kCkptWriteNs,       ///< One checkpoint serialization + atomic write.
  kCkptFsyncNs,       ///< One fsync barrier inside an atomic write.
  kCkptRecoverNs,     ///< One recover() walk.
  kShardFitNs,        ///< One shard replica fit (train + re-derived base).
  kShardMergeNs,      ///< One full merge reduction (deltas + requantize).
  kShardRefineNs,     ///< One refine pass (all refine epochs).
  kServeQueueWaitNs,  ///< Per request: ingest-ring enqueue → worker drain.
  kServeAssembleNs,   ///< Per admission batch: drain + staging assembly.
  kServeEncodeNs,     ///< Per admission batch: standardize + arena encode.
  kServeScanNs,       ///< Per admission batch: bank scan + unscale.
  kServePredictNs,    ///< Per request: enqueue → completion store (e2e).
  kServeBatchFill,    ///< Admission batch sizes (a count, not nanoseconds).
  kServePublishNs,    ///< One snapshot publish (checkpoint round-trip + flip).
  kServeStalenessNs,  ///< Snapshot publish instant → worker swap instant.
  kTenantEvictNs,     ///< One eviction (serialize + spill store).
  kTenantActivateNs,  ///< One activation (fresh construct or checkpoint load).
  kTenantResidentBytes, ///< Resident-model footprint, observed at each eviction
                        ///< (a byte count, not nanoseconds).
  kCount
};

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
constexpr std::size_t kNumHistos = static_cast<std::size_t>(Histo::kCount);

/// Histogram buckets: bucket b counts observations with bit_width(ns) == b,
/// i.e. value in [2^(b−1), 2^b). Bucket 0 holds exact zeros. 42 buckets
/// cover ~73 minutes in one nanosecond resolution — beyond any stage this
/// library times; larger values clamp into the last bucket.
constexpr std::size_t kHistoBuckets = 42;

/// Cluster-hit counters are a small fixed family indexed by winning cluster;
/// models beyond the cap aggregate into the last slot (k rarely exceeds 16
/// in the paper's configurations).
constexpr std::size_t kClusterHitSlots = 32;

/// Stable lowercase snake_case metric names (export keys).
[[nodiscard]] std::string_view counter_name(Counter c) noexcept;
[[nodiscard]] std::string_view histo_name(Histo h) noexcept;

#ifndef REGHD_NO_TELEMETRY

namespace detail {

/// Per-thread metric storage. Slots are relaxed atomics: the owning thread
/// is the only writer, snapshot readers only load — no read-modify-write
/// races, no false-sharing-prone global cachelines on the hot path.
struct alignas(64) Shard {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistoBuckets>, kNumHistos> buckets{};
  std::array<std::atomic<std::uint64_t>, kNumHistos> histo_sum_ns{};
  std::array<std::atomic<std::uint64_t>, kClusterHitSlots> cluster_hits{};
};

/// Global runtime switch. Off by default; the disabled fast path of every
/// record function is a single load + branch on this flag.
extern std::atomic<bool> g_enabled;

/// This thread's shard, registered with the global registry on first use.
/// Shards outlive their threads (they are owned by the registry and never
/// freed) so counts from exited workers stay in the totals.
[[nodiscard]] Shard& local_shard();

[[nodiscard]] inline std::size_t bucket_of(std::uint64_t ns) noexcept {
  const auto w = static_cast<std::size_t>(std::bit_width(ns));
  return w < kHistoBuckets ? w : kHistoBuckets - 1;
}

}  // namespace detail

/// Runtime switch. Enabling is cheap (one atomic store); counts recorded
/// while disabled are simply not taken.
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Adds `n` to a counter.
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (!enabled()) {
    return;
  }
  detail::local_shard().counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

/// Records one latency observation (nanoseconds).
inline void observe_ns(Histo h, std::uint64_t ns) noexcept {
  if (!enabled()) {
    return;
  }
  detail::Shard& shard = detail::local_shard();
  const auto i = static_cast<std::size_t>(h);
  shard.buckets[i][detail::bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  shard.histo_sum_ns[i].fetch_add(ns, std::memory_order_relaxed);
}

/// Records a winning-cluster hit (indexes ≥ kClusterHitSlots aggregate into
/// the last slot).
inline void count_cluster_hit(std::size_t cluster) noexcept {
  if (!enabled()) {
    return;
  }
  const std::size_t slot = cluster < kClusterHitSlots ? cluster : kClusterHitSlots - 1;
  detail::local_shard().cluster_hits[slot].fetch_add(1, std::memory_order_relaxed);
}

/// RAII stage timer: reads the clock only when telemetry is enabled at
/// construction, and records the elapsed nanoseconds into `h` on
/// destruction. Disabled cost: one branch, no clock access.
class StageTimer {
 public:
  explicit StageTimer(Histo h) noexcept : histo_(h), armed_(enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      observe_ns(histo_, ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }
  }

 private:
  Histo histo_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

#else  // REGHD_NO_TELEMETRY: everything compiles to nothing.

inline void set_enabled(bool) noexcept {}
[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void count(Counter, std::uint64_t = 1) noexcept {}
inline void observe_ns(Histo, std::uint64_t) noexcept {}
inline void count_cluster_hit(std::size_t) noexcept {}

class StageTimer {
 public:
  explicit StageTimer(Histo) noexcept {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
};

#endif  // REGHD_NO_TELEMETRY

/// One histogram, merged across shards at snapshot time.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistoBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  [[nodiscard]] double mean_ns() const noexcept {
    return count > 0 ? static_cast<double>(sum_ns) / static_cast<double>(count) : 0.0;
  }
  /// Quantile estimate (q in [0,1]) by geometric interpolation inside the
  /// covering power-of-two bucket. Exact for the bucket, approximate within.
  [[nodiscard]] double quantile_ns(double q) const noexcept;
  [[nodiscard]] double p50_ns() const noexcept { return quantile_ns(0.50); }
  [[nodiscard]] double p95_ns() const noexcept { return quantile_ns(0.95); }
  [[nodiscard]] double p99_ns() const noexcept { return quantile_ns(0.99); }
};

/// A consistent-enough point-in-time merge of all shards. Taken under the
/// registry lock; concurrent recording proceeds (relaxed loads may miss
/// in-flight increments, never tear or double-count a slot).
struct TelemetrySnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistogramSnapshot, kNumHistos> histograms{};
  std::array<std::uint64_t, kClusterHitSlots> cluster_hits{};

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const HistogramSnapshot& histogram(Histo h) const noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }
};

/// Merges every live and retired shard. Safe to call concurrently with
/// recording from any thread.
[[nodiscard]] TelemetrySnapshot snapshot();

/// Zeroes all shards (tests, per-run CLI accounting). Not atomic with
/// respect to concurrent recorders: call from quiescent points.
void reset();

}  // namespace reghd::obs
