#include "data/scaler.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/statistics.hpp"

namespace reghd::data {

void StandardScaler::fit(const Dataset& dataset) {
  REGHD_CHECK(!dataset.empty(), "cannot fit scaler on an empty dataset");
  const std::size_t n = dataset.num_features();
  std::vector<util::RunningStats> stats(n);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto r = dataset.row(i);
    for (std::size_t k = 0; k < n; ++k) {
      stats[k].add(r[k]);
    }
  }
  mean_.resize(n);
  stddev_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    mean_[k] = stats[k].mean();
    const double sd = stats[k].stddev();
    stddev_[k] = sd > 0.0 ? sd : 1.0;  // constant feature → map to zero
  }
}

void StandardScaler::transform(Dataset& dataset) const {
  REGHD_CHECK(fitted(), "scaler must be fitted before transform");
  REGHD_CHECK(dataset.num_features() == mean_.size(),
              "dataset has " << dataset.num_features() << " features, scaler was fit on "
                             << mean_.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    auto r = dataset.mutable_row(i);
    for (std::size_t k = 0; k < r.size(); ++k) {
      r[k] = (r[k] - mean_[k]) / stddev_[k];
    }
  }
}

std::vector<double> StandardScaler::transform_row(std::span<const double> features) const {
  REGHD_CHECK(fitted(), "scaler must be fitted before transform");
  REGHD_CHECK(features.size() == mean_.size(),
              "row has " << features.size() << " features, scaler was fit on " << mean_.size());
  std::vector<double> out(features.size());
  for (std::size_t k = 0; k < features.size(); ++k) {
    out[k] = (features[k] - mean_[k]) / stddev_[k];
  }
  return out;
}

void StandardScaler::transform_row_inplace(std::span<double> features) const {
  REGHD_CHECK(fitted(), "scaler must be fitted before transform");
  REGHD_CHECK(features.size() == mean_.size(),
              "row has " << features.size() << " features, scaler was fit on " << mean_.size());
  for (std::size_t k = 0; k < features.size(); ++k) {
    features[k] = (features[k] - mean_[k]) / stddev_[k];
  }
}

void StandardScaler::set_params(std::vector<double> means, std::vector<double> stddevs) {
  REGHD_CHECK(means.size() == stddevs.size(),
              "scaler parameter length mismatch: " << means.size() << " vs " << stddevs.size());
  REGHD_CHECK(!means.empty(), "scaler parameters must be non-empty");
  for (const double sd : stddevs) {
    REGHD_CHECK(sd > 0.0, "scaler stddev must be positive, got " << sd);
  }
  mean_ = std::move(means);
  stddev_ = std::move(stddevs);
}

void TargetScaler::set_params(double mean, double stddev) {
  REGHD_CHECK(stddev > 0.0, "target scaler stddev must be positive, got " << stddev);
  mean_ = mean;
  stddev_ = stddev;
  fitted_ = true;
}

void TargetScaler::fit(const Dataset& dataset) {
  REGHD_CHECK(!dataset.empty(), "cannot fit target scaler on an empty dataset");
  util::RunningStats stats;
  for (const double y : dataset.targets()) {
    stats.add(y);
  }
  mean_ = stats.mean();
  const double sd = stats.stddev();
  stddev_ = sd > 0.0 ? sd : 1.0;
  fitted_ = true;
}

void TargetScaler::transform(Dataset& dataset) const {
  REGHD_CHECK(fitted_, "target scaler must be fitted before transform");
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dataset.mutable_target(i) = transform_value(dataset.target(i));
  }
}

double TargetScaler::transform_value(double y) const {
  REGHD_CHECK(fitted_, "target scaler must be fitted before transform");
  return (y - mean_) / stddev_;
}

double TargetScaler::inverse_value(double y_scaled) const {
  REGHD_CHECK(fitted_, "target scaler must be fitted before inverse");
  return y_scaled * stddev_ + mean_;
}

std::vector<double> TargetScaler::inverse(std::span<const double> scaled) const {
  std::vector<double> out(scaled.size());
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    out[i] = inverse_value(scaled[i]);
  }
  return out;
}

}  // namespace reghd::data
