// Synthetic regression workload generators.
//
// The paper evaluates on seven public datasets (diabetes, Boston housing,
// airfoil self-noise, wine quality, Facebook metrics, CCPP, forest fires).
// This repository cannot ship those files, so each is substituted by a
// deterministic generator matched to the original's published shape: sample
// count, feature count, target location/scale, noise floor (which sets the
// best achievable MSE), nonlinearity (RBF teacher complexity), feature
// correlation, and — for forest fires — the zero-inflated heavy tail.
//
// The generator draws correlated standard-normal features, evaluates a
// random "teacher" (linear part + RBF mixture), standardizes the teacher
// output over the drawn sample, adds Gaussian label noise, optionally
// applies the skew transform, and maps to the target's original units. The
// noise floor calibration means a well-fit learner lands near the paper's
// best reported MSE for that dataset, and the ordering experiments (Table 1,
// Figs. 3/6/7) exercise exactly the capacity-vs-noise trade-offs the paper
// discusses. See DESIGN.md §3 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace reghd::data {

/// Parameters of the teacher-based generator.
struct SyntheticSpec {
  std::string name;
  std::size_t samples = 1000;
  std::size_t features = 10;

  double target_offset = 0.0;  ///< Mean of the target in original units.
  double target_scale = 1.0;   ///< Stddev of the noise-free target in original units.
  double noise_stddev = 0.3;   ///< Label noise in standardized target units.

  std::size_t rbf_units = 8;      ///< Number of RBF bumps in the teacher.
  double linear_weight = 0.6;     ///< Strength of the linear teacher part.
  double rbf_weight = 0.6;        ///< Strength of the RBF teacher part.
  double rbf_bandwidth = 1.6;     ///< RBF kernel width (in feature stddevs).
  double feature_correlation = 0.2;  ///< Pairwise feature correlation in [0, 1).

  /// Zero-inflation: fraction of targets clamped to the minimum (forest
  /// fires' "no burned area" mass). 0 disables.
  double zero_inflation = 0.0;
  /// Heavy-tail exponent applied to the positive part (1 = none).
  double tail_power = 1.0;

  /// Regime structure: the number of latent sub-populations. Real tabular
  /// datasets (housing sub-markets, wine varieties, plant operating points)
  /// mix heterogeneous regimes; each regime here shifts the feature
  /// distribution and adds its own offset + local linear response. This is
  /// exactly the structure RegHD's run-time clustering (§2.4) exploits.
  /// 1 disables.
  std::size_t regimes = 1;
  double regime_weight = 1.0;        ///< Strength of the per-regime response.
  double regime_separation = 3.0;    ///< Center spread, in feature stddevs.
};

/// Draws a dataset from the teacher model described above. Deterministic in
/// (spec, seed).
[[nodiscard]] Dataset make_teacher_dataset(const SyntheticSpec& spec, std::uint64_t seed);

/// The calibrated spec for one of the paper's seven evaluation datasets.
/// Accepted names: "diabetes", "boston", "airfoil", "wine", "facebook",
/// "ccpp", "forest". Throws on anything else.
[[nodiscard]] SyntheticSpec paper_dataset_spec(const std::string& name);

/// Convenience: make_teacher_dataset(paper_dataset_spec(name), seed).
[[nodiscard]] Dataset make_paper_dataset(const std::string& name, std::uint64_t seed);

/// The seven dataset names in the paper's Table 1 column order.
[[nodiscard]] const std::vector<std::string>& paper_dataset_names();

// ---------------------------------------------------------------------------
// Toy tasks for the learning-curve and capacity figures
// ---------------------------------------------------------------------------

/// Fig. 3a task: one feature, y = sin(4x) + 0.5·x + ε over x ∈ [−π, π].
[[nodiscard]] Dataset make_sine_task(std::size_t samples, std::uint64_t seed,
                                     double noise_stddev = 0.05);

/// Fig. 3b "complex" task: `regimes` well-separated regions of feature space,
/// each with its own local linear function — a single hypervector saturates
/// (paper §2.3) while multi-model regression fits each regime.
[[nodiscard]] Dataset make_multimodal_task(std::size_t samples, std::size_t features,
                                           std::size_t regimes, std::uint64_t seed,
                                           double noise_stddev = 0.05);

/// Friedman #1 benchmark: 10 i.i.d. U(0,1) features, 5 informative:
/// y = 10·sin(π·x₁x₂) + 20(x₃−0.5)² + 10x₄ + 5x₅ + ε.
[[nodiscard]] Dataset make_friedman1(std::size_t samples, std::uint64_t seed,
                                     double noise_stddev = 1.0);

/// Concept-drift stream for the online-learning extension: samples arrive in
/// order; at each change point (sample index) the underlying teacher is
/// redrawn, so a static model's error jumps while an adaptive one recovers.
/// Segments share the feature distribution; only the feature→target mapping
/// drifts.
[[nodiscard]] Dataset make_drift_stream(std::size_t samples, std::size_t features,
                                        std::vector<std::size_t> change_points,
                                        std::uint64_t seed, double noise_stddev = 0.05);

}  // namespace reghd::data
