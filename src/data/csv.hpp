// CSV loading for user-supplied datasets.
//
// The paper evaluates on seven public datasets; this repository synthesizes
// equivalents (see synthetic.hpp) but accepts the real CSVs through this
// loader so results can be regenerated on the original data when available.
#pragma once

#include <istream>
#include <string>

#include "data/dataset.hpp"

namespace reghd::data {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Column index of the regression target; negative counts from the end
  /// (−1 = last column, the common convention for these datasets).
  int target_column = -1;
};

/// Parses numeric CSV content from a stream. Non-numeric cells raise
/// std::runtime_error with row/column context. Empty lines are skipped.
[[nodiscard]] Dataset load_csv(std::istream& in, const std::string& name,
                               const CsvOptions& options = {});

/// Opens and parses a CSV file; throws std::runtime_error if unreadable.
[[nodiscard]] Dataset load_csv_file(const std::string& path,
                                    const CsvOptions& options = {});

/// Writes a dataset as CSV (features then target, with a header).
void save_csv(std::ostream& out, const Dataset& dataset);

}  // namespace reghd::data
