#include "data/csv.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace reghd::data {

namespace {

std::vector<std::string> split_line(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, delimiter)) {
    cells.push_back(cell);
  }
  // Trailing delimiter produces a final empty cell that getline drops; that
  // is acceptable for the numeric tables this loader targets.
  return cells;
}

double parse_cell(const std::string& cell, std::size_t line_no, std::size_t col) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(cell, &pos);
    // Allow trailing whitespace only.
    for (std::size_t i = pos; i < cell.size(); ++i) {
      if (!std::isspace(static_cast<unsigned char>(cell[i]))) {
        throw std::invalid_argument("trailing garbage");
      }
    }
    return v;
  } catch (const std::logic_error&) {
    throw std::runtime_error("csv: non-numeric cell '" + cell + "' at line " +
                             std::to_string(line_no) + ", column " + std::to_string(col + 1));
  }
}

}  // namespace

Dataset load_csv(std::istream& in, const std::string& name, const CsvOptions& options) {
  Dataset dataset;
  dataset.set_name(name);

  std::string line;
  std::size_t line_no = 0;
  bool header_skipped = !options.has_header;
  std::vector<double> features;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") {
      continue;
    }
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!header_skipped) {
      header_skipped = true;
      continue;
    }
    const auto cells = split_line(line, options.delimiter);
    if (cells.empty()) {
      continue;
    }
    REGHD_CHECK(cells.size() >= 2,
                "csv line " << line_no << " has " << cells.size()
                            << " columns; need at least one feature plus the target");

    const auto width = static_cast<int>(cells.size());
    int target_col = options.target_column;
    if (target_col < 0) {
      target_col += width;
    }
    if (target_col < 0 || target_col >= width) {
      throw std::runtime_error("csv: target column out of range at line " +
                               std::to_string(line_no));
    }

    features.clear();
    double target = 0.0;
    for (int c = 0; c < width; ++c) {
      const double v = parse_cell(cells[static_cast<std::size_t>(c)], line_no,
                                  static_cast<std::size_t>(c));
      if (c == target_col) {
        target = v;
      } else {
        features.push_back(v);
      }
    }
    dataset.add_sample(features, target);
  }

  if (dataset.empty()) {
    throw std::runtime_error("csv: no data rows in input for dataset '" + name + "'");
  }
  return dataset;
}

Dataset load_csv_file(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("csv: cannot open file '" + path + "'");
  }
  // Derive the dataset name from the file stem.
  std::string name = path;
  if (const auto slash = name.find_last_of("/\\"); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return load_csv(in, name, options);
}

void save_csv(std::ostream& out, const Dataset& dataset) {
  for (std::size_t k = 0; k < dataset.num_features(); ++k) {
    out << 'f' << k << ',';
  }
  out << "target\n";
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (const double v : dataset.row(i)) {
      out << v << ',';
    }
    out << dataset.target(i) << '\n';
  }
}

}  // namespace reghd::data
