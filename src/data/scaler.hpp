// Feature and target scaling.
//
// The HD encoders expect standardized inputs (the RFF bandwidth and the
// ID-level range both assume roughly unit-scale features), and RegHD's
// learning rate is calibrated for standardized targets. Scalers are fit on
// the training split only and applied to both splits — the test suite pins
// that no test-split statistics leak into the fit.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace reghd::data {

/// Per-feature standardization to zero mean / unit variance. Constant
/// features map to zero.
class StandardScaler {
 public:
  /// Learns per-feature mean and standard deviation from `dataset`.
  void fit(const Dataset& dataset);

  /// Applies the learned transform in place. Throws if not fitted or the
  /// feature count differs.
  void transform(Dataset& dataset) const;

  /// Transforms one feature row out of place.
  [[nodiscard]] std::vector<double> transform_row(std::span<const double> features) const;

  /// Transforms one feature row in place (the allocation-free form for
  /// batched prediction paths).
  void transform_row_inplace(std::span<double> features) const;

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] std::span<const double> means() const noexcept { return mean_; }
  [[nodiscard]] std::span<const double> stddevs() const noexcept { return stddev_; }

  /// Restores previously-fitted parameters (deserialization).
  void set_params(std::vector<double> means, std::vector<double> stddevs);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

/// Target standardization: y → (y − mean)/stddev, with exact inversion for
/// reporting predictions in original units.
class TargetScaler {
 public:
  void fit(const Dataset& dataset);

  void transform(Dataset& dataset) const;

  [[nodiscard]] double transform_value(double y) const;
  [[nodiscard]] double inverse_value(double y_scaled) const;

  /// Inverse-transforms a whole prediction vector.
  [[nodiscard]] std::vector<double> inverse(std::span<const double> scaled) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

  /// Restores previously-fitted parameters (deserialization).
  void set_params(double mean, double stddev);

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace reghd::data
