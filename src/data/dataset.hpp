// Dataset container and split/shuffle utilities.
//
// A Dataset is a row-major feature matrix plus a target vector; all loaders
// (CSV, synthetic generators) produce this shape and all learners consume
// it. Rows are exposed as spans — no per-sample allocation on hot paths.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/random.hpp"

namespace reghd::data {

class Dataset {
 public:
  Dataset() = default;

  /// Creates a named dataset; `features` is row-major with
  /// `targets.size() * num_features` entries.
  Dataset(std::string name, std::size_t num_features, std::vector<double> features,
          std::vector<double> targets);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return targets_.empty(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return num_features_; }

  /// Feature row of sample i.
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return std::span<const double>(features_.data() + i * num_features_, num_features_);
  }

  [[nodiscard]] std::span<double> mutable_row(std::size_t i) {
    return std::span<double>(features_.data() + i * num_features_, num_features_);
  }

  [[nodiscard]] double target(std::size_t i) const noexcept { return targets_[i]; }
  [[nodiscard]] double& mutable_target(std::size_t i) noexcept { return targets_[i]; }

  [[nodiscard]] std::span<const double> targets() const noexcept { return targets_; }
  [[nodiscard]] std::span<const double> features_flat() const noexcept { return features_; }

  /// Appends one sample.
  void add_sample(std::span<const double> features, double target);

  /// Returns a dataset containing the given rows (indices may repeat).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// In-place deterministic shuffle of sample order.
  void shuffle(util::Rng& rng);

  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
  std::size_t num_features_ = 0;
  std::vector<double> features_;  // row-major size() × num_features_
  std::vector<double> targets_;
};

/// A train/test partition of one dataset.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Splits a dataset with a deterministic shuffle; `test_fraction` in (0, 1).
[[nodiscard]] TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                              util::Rng& rng);

/// K-fold partition: returns the (train, validation) datasets of fold
/// `fold_index` out of `folds` after a deterministic shuffle.
[[nodiscard]] TrainTestSplit k_fold_split(const Dataset& dataset, std::size_t folds,
                                          std::size_t fold_index, util::Rng& rng);

}  // namespace reghd::data
