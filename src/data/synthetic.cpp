#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"

namespace reghd::data {

namespace {

/// Random teacher: linear part plus an RBF mixture, evaluated on
/// standardized features.
struct Teacher {
  std::vector<double> linear;                 // w
  std::vector<std::vector<double>> centers;   // c_m
  std::vector<double> amplitudes;             // a_m
  double linear_weight = 0.0;
  double rbf_weight = 0.0;
  double inv_two_bw2 = 0.0;

  [[nodiscard]] double operator()(std::span<const double> x) const {
    double y = 0.0;
    if (linear_weight != 0.0) {
      double lin = 0.0;
      for (std::size_t k = 0; k < x.size(); ++k) {
        lin += linear[k] * x[k];
      }
      y += linear_weight * lin;
    }
    if (rbf_weight != 0.0) {
      double rbf = 0.0;
      for (std::size_t m = 0; m < centers.size(); ++m) {
        double d2 = 0.0;
        const auto& c = centers[m];
        for (std::size_t k = 0; k < x.size(); ++k) {
          const double d = x[k] - c[k];
          d2 += d * d;
        }
        rbf += amplitudes[m] * std::exp(-d2 * inv_two_bw2);
      }
      y += rbf_weight * rbf;
    }
    return y;
  }
};

Teacher make_teacher(const SyntheticSpec& spec, util::Rng& rng) {
  Teacher t;
  t.linear_weight = spec.linear_weight;
  t.rbf_weight = spec.rbf_weight;
  t.inv_two_bw2 = 1.0 / (2.0 * spec.rbf_bandwidth * spec.rbf_bandwidth);
  t.linear.resize(spec.features);
  for (double& w : t.linear) {
    w = rng.normal();
  }
  // Normalize the linear part so its output variance is ~1 on N(0,1) inputs.
  double norm2 = 0.0;
  for (const double w : t.linear) {
    norm2 += w * w;
  }
  if (norm2 > 0.0) {
    const double inv = 1.0 / std::sqrt(norm2);
    for (double& w : t.linear) {
      w *= inv;
    }
  }
  t.centers.resize(spec.rbf_units);
  t.amplitudes.resize(spec.rbf_units);
  for (std::size_t m = 0; m < spec.rbf_units; ++m) {
    t.centers[m].resize(spec.features);
    for (double& c : t.centers[m]) {
      c = rng.normal(0.0, 1.2);
    }
    t.amplitudes[m] = rng.normal(0.0, 1.0);
  }
  return t;
}

}  // namespace

Dataset make_teacher_dataset(const SyntheticSpec& spec, std::uint64_t seed) {
  REGHD_CHECK(spec.samples >= 4, "synthetic dataset needs at least four samples");
  REGHD_CHECK(spec.features >= 1, "synthetic dataset needs at least one feature");
  REGHD_CHECK(spec.feature_correlation >= 0.0 && spec.feature_correlation < 1.0,
              "feature_correlation must lie in [0,1), got " << spec.feature_correlation);
  REGHD_CHECK(spec.noise_stddev >= 0.0, "noise_stddev must be non-negative");
  REGHD_CHECK(spec.target_scale > 0.0, "target_scale must be positive");
  REGHD_CHECK(spec.zero_inflation >= 0.0 && spec.zero_inflation < 1.0,
              "zero_inflation must lie in [0,1)");
  REGHD_CHECK(spec.tail_power >= 1.0, "tail_power must be >= 1");

  REGHD_CHECK(spec.regimes >= 1, "regimes must be at least 1");

  util::Rng rng(seed);
  util::Rng teacher_rng = rng.split();
  util::Rng feature_rng = rng.split();
  util::Rng noise_rng = rng.split();
  util::Rng regime_rng = rng.split();

  const Teacher teacher = make_teacher(spec, teacher_rng);

  // Latent regimes: feature-space centers plus a local offset and linear
  // response per regime (disabled when regimes == 1).
  std::vector<std::vector<double>> regime_centers(spec.regimes,
                                                  std::vector<double>(spec.features, 0.0));
  std::vector<std::vector<double>> regime_slopes(spec.regimes,
                                                 std::vector<double>(spec.features, 0.0));
  std::vector<double> regime_offsets(spec.regimes, 0.0);
  if (spec.regimes > 1) {
    for (std::size_t r = 0; r < spec.regimes; ++r) {
      for (std::size_t k = 0; k < spec.features; ++k) {
        regime_centers[r][k] = regime_rng.normal(0.0, spec.regime_separation);
        regime_slopes[r][k] = regime_rng.normal(0.0, 1.0 / std::sqrt(double(spec.features)));
      }
      regime_offsets[r] = regime_rng.normal(0.0, 1.0);
    }
  }

  // Draw correlated features: x_k = √(1−ρ)·z_k + √ρ·shared, shifted by the
  // sample's regime center.
  const double rho = spec.feature_correlation;
  const double own = std::sqrt(1.0 - rho);
  const double common = std::sqrt(rho);

  std::vector<double> features(spec.samples * spec.features);
  std::vector<double> raw_targets(spec.samples);
  std::vector<double> x(spec.features);
  for (std::size_t i = 0; i < spec.samples; ++i) {
    const std::size_t r =
        spec.regimes > 1 ? static_cast<std::size_t>(feature_rng.uniform_index(spec.regimes))
                         : 0;
    const double shared = feature_rng.normal();
    for (std::size_t k = 0; k < spec.features; ++k) {
      x[k] = regime_centers[r][k] + own * feature_rng.normal() + common * shared;
      features[i * spec.features + k] = x[k];
    }
    double y = teacher(x);
    if (spec.regimes > 1) {
      double local = regime_offsets[r];
      for (std::size_t k = 0; k < spec.features; ++k) {
        local += regime_slopes[r][k] * (x[k] - regime_centers[r][k]);
      }
      y += spec.regime_weight * local;
    }
    raw_targets[i] = y;
  }

  // Standardize the noise-free teacher output over this draw so the noise
  // level is exactly in "fraction of signal stddev" units.
  const double t_mean = util::mean(raw_targets);
  double t_sd = util::stddev(raw_targets);
  if (t_sd <= 0.0) {
    t_sd = 1.0;
  }

  std::vector<double> targets(spec.samples);
  for (std::size_t i = 0; i < spec.samples; ++i) {
    double y = (raw_targets[i] - t_mean) / t_sd;
    y += noise_rng.normal(0.0, spec.noise_stddev);

    if (spec.tail_power > 1.0) {
      // Heavy right tail: expand positive deviations.
      y = y >= 0.0 ? std::pow(y, spec.tail_power) : y;
    }
    y = spec.target_offset + spec.target_scale * y;
    if (spec.zero_inflation > 0.0) {
      // Zero-inflated mass at the minimum (e.g. "no burned area").
      if (noise_rng.bernoulli(spec.zero_inflation)) {
        y = spec.target_offset - spec.target_scale;
      }
      y = std::max(y, spec.target_offset - spec.target_scale);
    }
    targets[i] = y;
  }

  return Dataset(spec.name, spec.features, std::move(features), std::move(targets));
}

SyntheticSpec paper_dataset_spec(const std::string& name) {
  // Shapes follow the published datasets; noise floors are calibrated so a
  // well-fit learner's test MSE ≈ (noise_stddev·target_scale)² lands near
  // the paper's best reported MSE per dataset (Table 1).
  SyntheticSpec s;
  s.name = name;
  if (name == "diabetes") {           // 442 × 10, target ~[25, 346], best MSE ≈ 3385
    s.samples = 442;
    s.features = 10;
    s.target_offset = 152.0;
    s.target_scale = 77.0;
    s.noise_stddev = 0.72;
    s.rbf_units = 5;
    s.linear_weight = 0.8;
    s.rbf_weight = 0.4;
    s.feature_correlation = 0.3;
    s.regimes = 4;  // patient sub-populations
  } else if (name == "boston") {      // 506 × 13, target ~[5, 50], best MSE ≈ 13.5
    s.samples = 506;
    s.features = 13;
    s.target_offset = 22.5;
    s.target_scale = 9.2;
    s.noise_stddev = 0.38;
    s.rbf_units = 10;
    s.linear_weight = 0.6;
    s.rbf_weight = 0.7;
    s.feature_correlation = 0.35;
    s.regimes = 6;  // housing sub-markets
    s.regime_weight = 1.1;
  } else if (name == "airfoil") {     // 1503 × 5, target ~[103, 141] dB, best MSE ≈ 16
    s.samples = 1503;
    s.features = 5;
    s.target_offset = 124.8;
    s.target_scale = 6.9;
    s.noise_stddev = 0.52;
    s.rbf_units = 14;
    s.linear_weight = 0.4;
    s.rbf_weight = 0.9;
    s.rbf_bandwidth = 1.2;
    s.feature_correlation = 0.1;
    s.regimes = 5;  // airfoil geometry families
    s.regime_weight = 1.2;
  } else if (name == "wine") {        // 4898 × 11, quality 3–9, best MSE ≈ 0.51
    s.samples = 4898;
    s.features = 11;
    s.target_offset = 5.88;
    s.target_scale = 0.89;
    s.noise_stddev = 0.76;
    s.rbf_units = 8;
    s.linear_weight = 0.6;
    s.rbf_weight = 0.5;
    s.feature_correlation = 0.25;
    s.regimes = 6;  // grape variety clusters
    s.regime_weight = 0.9;
  } else if (name == "facebook") {    // 500 × 18, interactions, best MSE ≈ 11345
    s.samples = 500;
    s.features = 18;
    s.target_offset = 180.0;
    s.target_scale = 113.0;
    s.noise_stddev = 0.9;
    s.rbf_units = 6;
    s.linear_weight = 0.7;
    s.rbf_weight = 0.4;
    s.feature_correlation = 0.4;
    s.tail_power = 1.3;
    s.regimes = 4;  // post-type categories
    s.regime_weight = 0.9;
  } else if (name == "ccpp") {        // 9568 × 4, MW output, best MSE ≈ 19.9
    s.samples = 9568;
    s.features = 4;
    s.target_offset = 454.0;
    s.target_scale = 17.0;
    s.noise_stddev = 0.26;
    s.rbf_units = 10;
    s.linear_weight = 0.7;
    s.rbf_weight = 0.6;
    s.feature_correlation = 0.5;
    s.regimes = 4;  // plant operating points
  } else if (name == "forest") {      // 517 × 12, burned area, best MSE ≈ 701
    s.samples = 517;
    s.features = 12;
    s.target_offset = 13.0;
    s.target_scale = 26.5;
    s.noise_stddev = 0.62;
    s.rbf_units = 8;
    s.linear_weight = 0.5;
    s.rbf_weight = 0.6;
    s.feature_correlation = 0.2;
    s.zero_inflation = 0.45;
    s.tail_power = 1.6;
    s.regimes = 4;  // seasonal/weather regimes
    s.regime_weight = 0.8;
  } else {
    throw std::invalid_argument("unknown paper dataset '" + name +
                                "' (see paper_dataset_names())");
  }
  return s;
}

Dataset make_paper_dataset(const std::string& name, std::uint64_t seed) {
  return make_teacher_dataset(paper_dataset_spec(name), seed);
}

const std::vector<std::string>& paper_dataset_names() {
  static const std::vector<std::string> names = {"diabetes", "boston", "airfoil", "wine",
                                                 "facebook", "ccpp",   "forest"};
  return names;
}

Dataset make_sine_task(std::size_t samples, std::uint64_t seed, double noise_stddev) {
  REGHD_CHECK(samples >= 4, "sine task needs at least four samples");
  util::Rng rng(seed);
  Dataset out;
  out.set_name("sine");
  for (std::size_t i = 0; i < samples; ++i) {
    const double x = rng.uniform(-std::numbers::pi, std::numbers::pi);
    const double y = std::sin(4.0 * x) + 0.5 * x + rng.normal(0.0, noise_stddev);
    const double fx[] = {x};
    out.add_sample(fx, y);
  }
  return out;
}

Dataset make_multimodal_task(std::size_t samples, std::size_t features,
                             std::size_t regimes, std::uint64_t seed,
                             double noise_stddev) {
  REGHD_CHECK(samples >= regimes, "need at least one sample per regime");
  REGHD_CHECK(regimes >= 2, "multimodal task needs at least two regimes");
  REGHD_CHECK(features >= 1, "multimodal task needs at least one feature");

  util::Rng rng(seed);
  util::Rng regime_rng = rng.split();
  util::Rng sample_rng = rng.split();

  // Each regime: a well-separated center, its own linear map and offset.
  std::vector<std::vector<double>> centers(regimes, std::vector<double>(features));
  std::vector<std::vector<double>> weights(regimes, std::vector<double>(features));
  std::vector<double> offsets(regimes);
  for (std::size_t r = 0; r < regimes; ++r) {
    for (std::size_t k = 0; k < features; ++k) {
      centers[r][k] = regime_rng.normal(0.0, 3.0);
      weights[r][k] = regime_rng.normal(0.0, 1.0);
    }
    offsets[r] = regime_rng.normal(0.0, 4.0);
  }

  Dataset out;
  out.set_name("multimodal");
  std::vector<double> x(features);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t r = static_cast<std::size_t>(sample_rng.uniform_index(regimes));
    double y = offsets[r];
    for (std::size_t k = 0; k < features; ++k) {
      x[k] = centers[r][k] + sample_rng.normal(0.0, 0.6);
      y += weights[r][k] * (x[k] - centers[r][k]);
    }
    y += sample_rng.normal(0.0, noise_stddev);
    out.add_sample(x, y);
  }
  return out;
}

Dataset make_drift_stream(std::size_t samples, std::size_t features,
                          std::vector<std::size_t> change_points, std::uint64_t seed,
                          double noise_stddev) {
  REGHD_CHECK(samples >= 4, "drift stream needs at least four samples");
  REGHD_CHECK(features >= 1, "drift stream needs at least one feature");
  for (std::size_t i = 1; i < change_points.size(); ++i) {
    REGHD_CHECK(change_points[i] > change_points[i - 1],
                "change points must be strictly increasing");
  }

  util::Rng rng(seed);
  util::Rng teacher_rng = rng.split();
  util::Rng sample_rng = rng.split();

  // One random linear+RBF teacher per segment.
  SyntheticSpec seg_spec;
  seg_spec.features = features;
  seg_spec.rbf_units = 4;
  seg_spec.linear_weight = 0.8;
  seg_spec.rbf_weight = 0.5;
  std::vector<Teacher> teachers;
  for (std::size_t s = 0; s <= change_points.size(); ++s) {
    teachers.push_back(make_teacher(seg_spec, teacher_rng));
  }

  Dataset out;
  out.set_name("drift-stream");
  std::vector<double> x(features);
  std::size_t segment = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    while (segment < change_points.size() && i >= change_points[segment]) {
      ++segment;
    }
    for (double& v : x) {
      v = sample_rng.normal();
    }
    const double y = teachers[segment](x) + sample_rng.normal(0.0, noise_stddev);
    out.add_sample(x, y);
  }
  return out;
}

Dataset make_friedman1(std::size_t samples, std::uint64_t seed, double noise_stddev) {
  REGHD_CHECK(samples >= 4, "friedman1 needs at least four samples");
  util::Rng rng(seed);
  Dataset out;
  out.set_name("friedman1");
  std::vector<double> x(10);
  for (std::size_t i = 0; i < samples; ++i) {
    for (double& v : x) {
      v = rng.uniform();
    }
    const double y = 10.0 * std::sin(std::numbers::pi * x[0] * x[1]) +
                     20.0 * (x[2] - 0.5) * (x[2] - 0.5) + 10.0 * x[3] + 5.0 * x[4] +
                     rng.normal(0.0, noise_stddev);
    out.add_sample(x, y);
  }
  return out;
}

}  // namespace reghd::data
