#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace reghd::data {

Dataset::Dataset(std::string name, std::size_t num_features, std::vector<double> features,
                 std::vector<double> targets)
    : name_(std::move(name)),
      num_features_(num_features),
      features_(std::move(features)),
      targets_(std::move(targets)) {
  REGHD_CHECK(num_features_ > 0, "dataset requires at least one feature");
  REGHD_CHECK(features_.size() == targets_.size() * num_features_,
              "feature matrix size " << features_.size() << " does not equal samples×features = "
                                     << targets_.size() * num_features_);
}

void Dataset::add_sample(std::span<const double> features, double target) {
  if (num_features_ == 0) {
    REGHD_CHECK(!features.empty(), "first sample must define the feature count");
    num_features_ = features.size();
  }
  REGHD_CHECK(features.size() == num_features_,
              "sample has " << features.size() << " features, dataset expects "
                            << num_features_);
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.name_ = name_;
  out.num_features_ = num_features_;
  out.features_.reserve(indices.size() * num_features_);
  out.targets_.reserve(indices.size());
  for (const std::size_t i : indices) {
    REGHD_CHECK(i < size(), "subset index " << i << " out of range (size " << size() << ")");
    const auto r = row(i);
    out.features_.insert(out.features_.end(), r.begin(), r.end());
    out.targets_.push_back(targets_[i]);
  }
  return out;
}

void Dataset::shuffle(util::Rng& rng) {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  *this = subset(order);
}

TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                util::Rng& rng) {
  REGHD_CHECK(test_fraction > 0.0 && test_fraction < 1.0,
              "test_fraction must lie in (0,1), got " << test_fraction);
  REGHD_CHECK(dataset.size() >= 2, "cannot split a dataset with fewer than two samples");

  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  auto test_count = static_cast<std::size_t>(test_fraction * static_cast<double>(order.size()));
  test_count = std::clamp<std::size_t>(test_count, 1, order.size() - 1);

  const std::span<const std::size_t> all(order);
  TrainTestSplit split{dataset.subset(all.subspan(test_count)),
                       dataset.subset(all.subspan(0, test_count))};
  return split;
}

TrainTestSplit k_fold_split(const Dataset& dataset, std::size_t folds,
                            std::size_t fold_index, util::Rng& rng) {
  REGHD_CHECK(folds >= 2, "k-fold requires at least two folds");
  REGHD_CHECK(fold_index < folds, "fold index " << fold_index << " out of range for " << folds
                                                << " folds");
  REGHD_CHECK(dataset.size() >= folds, "dataset smaller than fold count");

  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i % folds == fold_index) {
      test_idx.push_back(order[i]);
    } else {
      train_idx.push_back(order[i]);
    }
  }
  return TrainTestSplit{dataset.subset(train_idx), dataset.subset(test_idx)};
}

}  // namespace reghd::data
