// Lightweight precondition checking for the RegHD library.
//
// Library entry points validate their arguments with REGHD_CHECK and throw
// std::invalid_argument on violation; internal invariants use
// REGHD_INTERNAL_CHECK and throw std::logic_error. Both carry the failing
// expression and source location so that a violation is diagnosable from the
// exception message alone.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace reghd::util {

/// Builds the exception message for a failed check.
[[nodiscard]] inline std::string check_message(const char* expr, const char* file, int line,
                                               const std::string& detail) {
  std::ostringstream oss;
  oss << "check failed: (" << expr << ") at " << file << ':' << line;
  if (!detail.empty()) {
    oss << " — " << detail;
  }
  return oss.str();
}

[[noreturn]] inline void throw_invalid_argument(const char* expr, const char* file, int line,
                                                const std::string& detail) {
  throw std::invalid_argument(check_message(expr, file, line, detail));
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file, int line,
                                           const std::string& detail) {
  throw std::logic_error(check_message(expr, file, line, detail));
}

}  // namespace reghd::util

/// Validates a user-facing precondition; throws std::invalid_argument on failure.
#define REGHD_CHECK(expr, detail)                                                      \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::reghd::util::throw_invalid_argument(#expr, __FILE__, __LINE__,                 \
                                            [&] {                                      \
                                              std::ostringstream reghd_oss_;           \
                                              reghd_oss_ << detail;                    \
                                              return reghd_oss_.str();                 \
                                            }());                                      \
    }                                                                                  \
  } while (false)

/// Validates an internal invariant; throws std::logic_error on failure.
#define REGHD_INTERNAL_CHECK(expr, detail)                                             \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::reghd::util::throw_logic_error(#expr, __FILE__, __LINE__,                      \
                                       [&] {                                           \
                                         std::ostringstream reghd_oss_;                \
                                         reghd_oss_ << detail;                         \
                                         return reghd_oss_.str();                      \
                                       }());                                           \
    }                                                                                  \
  } while (false)
