// Crash-safe file replacement: write to a temp file in the same directory,
// fsync it, rename() over the final name, fsync the directory. A reader can
// then only ever observe the old complete file or the new complete file —
// never a torn mixture — and after atomic_write_file returns, the data
// survives power loss.
//
// Fault injection threads through here (util/fault_injection): a FaultPlan
// damages the byte stream on its way to disk, letting the checkpoint tests
// and tools/checkpoint_torture manufacture torn, flipped, and short-written
// files through the exact production write path.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/fault_injection.hpp"

namespace reghd::util {

/// Thrown on any filesystem-level failure (open, write, fsync, rename).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct AtomicWriteOptions {
  /// fsync file + directory. Tests disable it for speed; production keeps it.
  bool fsync = true;

  /// Injected fault (tests only). kFailAt aborts before the rename — the
  /// final name never appears, only a stray ".tmp" file, and IoError is
  /// thrown. The silent modes (kTruncateAt, kBitFlipAt, kShortWrite) damage
  /// the bytes but complete the rename, because the simulated writer
  /// believed the write succeeded.
  FaultPlan fault;
};

/// Atomically replaces `path` with `bytes`. Throws IoError on failure; on
/// failure the previous contents of `path` (if any) are untouched.
void atomic_write_file(const std::string& path, std::string_view bytes,
                       const AtomicWriteOptions& options = {});

/// Reads a whole file. Throws IoError if it cannot be opened or exceeds
/// `max_bytes` (damaged metadata must not drive an unbounded read).
[[nodiscard]] std::string read_file_bytes(const std::string& path,
                                          std::size_t max_bytes = (1ULL << 30));

}  // namespace reghd::util
