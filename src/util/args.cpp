#include "util/args.hpp"

#include <charconv>
#include <stdexcept>

#include "util/check.hpp"

namespace reghd::util {

Args::Args(int argc, const char* const* argv) {
  REGHD_CHECK(argc >= 1 && argv != nullptr, "argv must contain at least the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    REGHD_CHECK(!body.empty(), "bare '--' is not a valid option");
    if (const auto eq = body.find('='); eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option; otherwise a
    // boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = std::string(argv[i + 1]);
      ++i;
    } else {
      options_[body] = std::nullopt;
    }
  }
}

bool Args::has(const std::string& key) const { return options_.contains(key); }

const std::optional<std::string>* Args::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) {
    return nullptr;
  }
  return &it->second;
}

std::string Args::get_string(const std::string& key, std::string fallback) const {
  const auto v = get(key);
  if (!v || !v->has_value()) {
    return fallback;
  }
  return **v;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || !v->has_value()) {
    return fallback;
  }
  const std::string& s = **v;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  REGHD_CHECK(ec == std::errc() && ptr == s.data() + s.size(),
              "option --" << key << " expects an integer, got '" << s << "'");
  return out;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || !v->has_value()) {
    return fallback;
  }
  const std::string& s = **v;
  try {
    std::size_t pos = 0;
    const double out = std::stod(s, &pos);
    REGHD_CHECK(pos == s.size(), "option --" << key << " expects a number, got '" << s << "'");
    return out;
  } catch (const std::logic_error&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" + s + "'");
  }
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) {
    return fallback;
  }
  if (!v->has_value()) {
    return true;  // bare flag
  }
  const std::string& s = **v;
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    return false;
  }
  throw std::invalid_argument("option --" + key + " expects a boolean, got '" + s + "'");
}

}  // namespace reghd::util
