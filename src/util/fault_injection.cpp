#include "util/fault_injection.hpp"

#include <algorithm>
#include <sstream>

namespace reghd::util {

std::string to_string(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone:
      return "none";
    case FaultMode::kFailAt:
      return "fail-at-byte";
    case FaultMode::kTruncateAt:
      return "truncate-at-byte";
    case FaultMode::kBitFlipAt:
      return "bit-flip-at-byte";
    case FaultMode::kShortWrite:
      return "short-write";
  }
  return "unknown";
}

FaultInjectingStreambuf::FaultInjectingStreambuf(std::streambuf* target, FaultPlan plan)
    : target_(target), plan_(plan) {}

std::streamsize FaultInjectingStreambuf::forward(const char* s, std::streamsize n) {
  return target_->sputn(s, n);
}

std::streamsize FaultInjectingStreambuf::xsputn(const char* s, std::streamsize n) {
  if (n <= 0) {
    return 0;
  }
  const std::size_t begin = count_;
  const auto un = static_cast<std::size_t>(n);

  switch (plan_.mode) {
    case FaultMode::kNone:
      count_ += un;
      return forward(s, n);

    case FaultMode::kFailAt: {
      if (failed_) {
        return 0;  // stream stays broken
      }
      if (begin + un <= plan_.at_byte) {
        count_ += un;
        return forward(s, n);
      }
      // Pass the prefix up to the trigger byte, then refuse the rest.
      const auto pass = static_cast<std::streamsize>(plan_.at_byte - begin);
      if (pass > 0) {
        forward(s, pass);
      }
      count_ += un;
      fired_ = true;
      failed_ = true;
      return pass;  // < n → the caller's ostream goes bad
    }

    case FaultMode::kTruncateAt: {
      count_ += un;
      if (begin >= plan_.at_byte) {
        fired_ = true;
        return n;  // silently dropped
      }
      const auto pass =
          static_cast<std::streamsize>(std::min<std::size_t>(un, plan_.at_byte - begin));
      forward(s, pass);
      if (pass < n) {
        fired_ = true;
      }
      return n;  // claim full success regardless
    }

    case FaultMode::kBitFlipAt: {
      count_ += un;
      if (plan_.at_byte < begin || plan_.at_byte >= begin + un) {
        return forward(s, n);
      }
      std::string chunk(s, un);
      chunk[plan_.at_byte - begin] =
          static_cast<char>(chunk[plan_.at_byte - begin] ^
                            static_cast<char>(1U << (plan_.seed % 8)));
      fired_ = true;
      return forward(chunk.data(), n);
    }

    case FaultMode::kShortWrite: {
      count_ += un;
      if (begin + un <= plan_.at_byte) {
        return forward(s, n);
      }
      // Persist only the first half of the chunk from the trigger on, but
      // report full success — the classic unchecked short write.
      const std::size_t intact = plan_.at_byte > begin ? plan_.at_byte - begin : 0;
      const std::size_t damaged = un - intact;
      const std::size_t kept = intact + damaged / 2;
      if (kept > 0) {
        forward(s, static_cast<std::streamsize>(kept));
      }
      fired_ = true;
      return n;
    }
  }
  return 0;
}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return sync() == 0 ? traits_type::not_eof(ch) : traits_type::eof();
  }
  const char c = traits_type::to_char_type(ch);
  return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
}

int FaultInjectingStreambuf::sync() {
  if (failed_) {
    return -1;
  }
  return target_->pubsync();
}

FaultResult apply_fault(std::string_view bytes, const FaultPlan& plan) {
  std::stringstream sink(std::ios::out | std::ios::binary);
  FaultInjectingStreambuf shim(sink.rdbuf(), plan);
  std::ostream out(&shim);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return FaultResult{sink.str(), !out.good()};
}

}  // namespace reghd::util
