// Small dense linear algebra: the closed-form ridge regression baseline
// (normal equations via Cholesky), the binary-model calibration fits, and a
// portable cache-blocked matmul used by the batched MLP baseline forward
// pass. This layer cannot depend on hdc/, so the matmuls here are scalar
// code; the SIMD GEMM lives in hdc/kernel_backend.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace reghd::util {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> mutable_data() noexcept { return data_; }

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A·x. Dimension mismatches throw.
[[nodiscard]] std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// C = A·B with cache blocking over the output columns. Each C(i,j) is
/// reduced in ascending-k order with separate multiply and add, so the
/// result is bit-identical to the naive triple loop (blocking only reorders
/// independent output elements, never a single reduction).
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C += A·Bᵀ on flat row-major buffers: for r < m, o < p,
///   c[r·p + o] += Σ_{k<n} a[r·n + k] · b[o·n + k]
/// i.e. every row of `b` is dotted (ascending k, mul-then-add) against every
/// row of `a`, accumulating onto the existing C — so initializing C with a
/// bias row makes this bit-identical to the per-row "z = bias; z += w·x"
/// loop. Blocked over rows of `b` so a weight tile stays cached across the
/// whole batch.
void matmul_nt_accumulate(const double* a, const double* b, double* c, std::size_t m,
                          std::size_t n, std::size_t p);

/// C = Aᵀ·A (Gram matrix), the normal-equations left side.
[[nodiscard]] Matrix gram(const Matrix& a);

/// v = Aᵀ·b, the normal-equations right side.
[[nodiscard]] std::vector<double> at_b(const Matrix& a, std::span<const double> b);

/// Solves S·x = b for symmetric positive-definite S via Cholesky
/// factorization. Throws std::runtime_error if S is not positive definite.
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& s, std::span<const double> b);

/// Ordinary least squares with L2 (ridge) regularization:
/// argmin ‖A·x − b‖² + λ‖x‖². λ = 0 gives plain OLS (A must then have full
/// column rank).
[[nodiscard]] std::vector<double> ridge_solve(const Matrix& a, std::span<const double> b,
                                              double lambda);

/// Simple 1-D least squares fit y ≈ slope·x + intercept; returns
/// {slope, intercept}. Degenerate x (constant) yields slope 0.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
};
[[nodiscard]] LinearFit fit_line(std::span<const double> x, std::span<const double> y);

}  // namespace reghd::util
