#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace reghd::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  REGHD_CHECK(!header_.empty(), "table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  REGHD_CHECK(row.size() == header_.size(), "row width " << row.size()
                                                         << " does not match header width "
                                                         << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream oss;
  if (std::abs(value) >= 1e6 || (value != 0.0 && std::abs(value) < 1e-3)) {
    oss << std::scientific << std::setprecision(precision) << value;
  } else {
    oss << std::fixed << std::setprecision(precision) << value;
  }
  return oss.str();
}

std::string Table::cell_ratio(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value << 'x';
  return oss.str();
}

std::string Table::cell_percent(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value << '%';
  return oss.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    oss << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    oss << '\n';
  };

  emit_row(header_);
  oss << '|';
  for (const std::size_t w : widths) {
    oss << std::string(w + 2, '-') << '|';
  }
  oss << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_string();
}

SeriesChart::SeriesChart(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void SeriesChart::add_series(std::string name,
                             std::vector<std::pair<std::string, double>> points) {
  REGHD_CHECK(!points.empty(), "series '" << name << "' has no points");
  series_.push_back({std::move(name), std::move(points)});
}

std::string SeriesChart::to_string() const {
  std::ostringstream oss;
  oss << title_ << "  [x: " << x_label_ << ", y: " << y_label_ << "]\n";

  double max_abs = 0.0;
  std::size_t label_width = 0;
  std::size_t name_width = 0;
  for (const auto& s : series_) {
    name_width = std::max(name_width, s.name.size());
    for (const auto& [label, value] : s.points) {
      max_abs = std::max(max_abs, std::abs(value));
      label_width = std::max(label_width, label.size());
    }
  }
  constexpr int kBarWidth = 40;

  for (const auto& s : series_) {
    oss << "  series: " << s.name << '\n';
    for (const auto& [label, value] : s.points) {
      const int bar =
          max_abs > 0.0
              ? static_cast<int>(std::lround(std::abs(value) / max_abs * kBarWidth))
              : 0;
      oss << "    " << std::left << std::setw(static_cast<int>(label_width)) << label << "  "
          << std::right << std::setw(12) << Table::cell(value) << "  "
          << std::string(static_cast<std::size_t>(bar), '#') << '\n';
    }
  }
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const SeriesChart& chart) {
  return os << chart.to_string();
}

std::string section_banner(const std::string& title) {
  const std::string bar(std::max<std::size_t>(title.size() + 8, 60), '=');
  std::ostringstream oss;
  oss << '\n' << bar << '\n' << "==  " << title << '\n' << bar << '\n';
  return oss.str();
}

}  // namespace reghd::util
