// Minimal binary serialization for model persistence.
//
// Format: little-endian fixed-width scalars, length-prefixed containers, and
// a magic/version header written by the model classes. Only trivially
// copyable scalar types go through the raw paths; everything else composes
// from them. Readers validate stream state and fail with std::runtime_error
// rather than silently truncating.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace reghd::util {

namespace detail {

inline void require_good(std::istream& in, const char* what) {
  if (!in.good()) {
    throw std::runtime_error(std::string("serialization: truncated or corrupt stream while reading ") +
                             what);
  }
}

/// Bytes between the current position and the end of a seekable stream;
/// nullopt when the stream cannot seek (sockets, filters). Length prefixes
/// are clamped against this so a hostile prefix fails before any allocation.
inline std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  if (!in.good()) {
    return std::nullopt;
  }
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) {
    in.clear(in.rdstate() & ~std::ios::failbit);
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - pos);
}

}  // namespace detail

/// Writes one scalar value.
template <typename T>
  requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
void write_scalar(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Reads one scalar value.
template <typename T>
  requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
[[nodiscard]] T read_scalar(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  detail::require_good(in, "scalar");
  return value;
}

/// Writes a vector of scalars with a 64-bit length prefix.
template <typename T>
  requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
void write_vector(std::ostream& out, std::span<const T> values) {
  write_scalar<std::uint64_t>(out, values.size());
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
  }
}

/// Reads a length-prefixed vector of scalars. A corrupted prefix must fail
/// cleanly before any allocation: lengths are checked overflow-free against
/// the 256 MiB sanity bound AND against the bytes actually remaining in a
/// seekable stream (a hostile prefix otherwise drives a multi-GB allocation
/// that only fails on the subsequent truncated read).
template <typename T>
  requires std::is_trivially_copyable_v<T> && std::is_arithmetic_v<T>
[[nodiscard]] std::vector<T> read_vector(std::istream& in) {
  const auto n = read_scalar<std::uint64_t>(in);
  constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 28;  // 256 MiB
  if (n > kMaxPayloadBytes / sizeof(T)) {
    throw std::runtime_error("serialization: vector length " + std::to_string(n) +
                             " exceeds the sanity bound — corrupt stream");
  }
  if (const auto remaining = detail::remaining_bytes(in);
      remaining && n * sizeof(T) > *remaining) {
    throw std::runtime_error("serialization: vector length " + std::to_string(n) +
                             " exceeds the remaining stream size — corrupt stream");
  }
  std::vector<T> values(n);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    detail::require_good(in, "vector payload");
  }
  return values;
}

/// Writes a length-prefixed UTF-8 string.
inline void write_string(std::ostream& out, const std::string& s) {
  write_scalar<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Reads a length-prefixed string, with the same pre-allocation length
/// validation as read_vector.
[[nodiscard]] inline std::string read_string(std::istream& in) {
  const auto n = read_scalar<std::uint64_t>(in);
  constexpr std::uint64_t kMaxStringBytes = 1ULL << 28;  // 256 MiB
  if (n > kMaxStringBytes) {
    throw std::runtime_error("serialization: string length " + std::to_string(n) +
                             " exceeds the sanity bound — corrupt stream");
  }
  if (const auto remaining = detail::remaining_bytes(in); remaining && n > *remaining) {
    throw std::runtime_error("serialization: string length " + std::to_string(n) +
                             " exceeds the remaining stream size — corrupt stream");
  }
  std::string s(n, '\0');
  if (n > 0) {
    in.read(s.data(), static_cast<std::streamsize>(n));
    detail::require_good(in, "string payload");
  }
  return s;
}

/// Writes a 4-byte magic tag + version; read side validates both.
inline void write_header(std::ostream& out, std::uint32_t magic, std::uint32_t version) {
  write_scalar(out, magic);
  write_scalar(out, version);
}

/// Validates magic and returns the stored version if it is ≤ max_version.
inline std::uint32_t read_header(std::istream& in, std::uint32_t magic,
                                 std::uint32_t max_version) {
  const auto got_magic = read_scalar<std::uint32_t>(in);
  if (got_magic != magic) {
    throw std::runtime_error("serialization: bad magic tag — not a RegHD model file");
  }
  const auto version = read_scalar<std::uint32_t>(in);
  if (version == 0 || version > max_version) {
    throw std::runtime_error("serialization: unsupported format version " +
                             std::to_string(version));
  }
  return version;
}

}  // namespace reghd::util
