#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/telemetry.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace reghd::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

#ifndef _WIN32

/// Writes `bytes` to a fresh file descriptor, optionally fsyncing. Throws on
/// any short or failed write.
void write_fd(int fd, std::string_view bytes, bool do_fsync, const std::string& path) {
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("atomic_write_file: write to", path);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (do_fsync) {
    const obs::StageTimer timer(obs::Histo::kCkptFsyncNs);
    if (::fsync(fd) != 0) {
      throw_errno("atomic_write_file: fsync of", path);
    }
  }
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return;  // best effort — some filesystems refuse directory fds
  }
  ::fsync(fd);
  ::close(fd);
}

#endif  // !_WIN32

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes,
                       const AtomicWriteOptions& options) {
  // Damage the payload through the fault shim first; the write below then
  // behaves exactly like a real writer that never noticed.
  FaultResult effective{std::string(bytes), false};
  if (options.fault.armed()) {
    effective = apply_fault(bytes, options.fault);
  }

  const std::string tmp = path + ".tmp";
#ifndef _WIN32
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_errno("atomic_write_file: cannot create", tmp);
  }
  try {
    write_fd(fd, effective.bytes, options.fsync && !effective.write_failed, tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  if (effective.write_failed) {
    // Detected mid-write failure: the temp debris stays behind (as after a
    // real crash) but the final name is never touched.
    throw IoError("atomic_write_file: injected write failure after " +
                  std::to_string(effective.bytes.size()) + " bytes for '" + path + "'");
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("atomic_write_file: rename to", path);
  }
  if (options.fsync) {
    fsync_directory(std::filesystem::path(path).parent_path().string());
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("atomic_write_file: cannot create '" + tmp + "'");
    }
    out.write(effective.bytes.data(), static_cast<std::streamsize>(effective.bytes.size()));
    if (!out.good()) {
      throw IoError("atomic_write_file: write to '" + tmp + "' failed");
    }
  }
  if (effective.write_failed) {
    throw IoError("atomic_write_file: injected write failure for '" + path + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw IoError("atomic_write_file: rename to '" + path + "': " + ec.message());
  }
#endif
}

std::string read_file_bytes(const std::string& path, std::size_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("read_file_bytes: cannot open '" + path + "'");
  }
  std::string bytes;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    bytes.append(buffer, static_cast<std::size_t>(in.gcount()));
    if (bytes.size() > max_bytes) {
      throw IoError("read_file_bytes: '" + path + "' exceeds the " +
                    std::to_string(max_bytes) + "-byte bound");
    }
  }
  return bytes;
}

}  // namespace reghd::util
