#include "util/metrics.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace reghd::util {

namespace {

void check_shapes(std::span<const double> predictions, std::span<const double> targets) {
  REGHD_CHECK(predictions.size() == targets.size(),
              "prediction/target length mismatch: " << predictions.size() << " vs "
                                                    << targets.size());
  REGHD_CHECK(!predictions.empty(), "metrics require at least one sample");
}

}  // namespace

double mse(std::span<const double> predictions, std::span<const double> targets) {
  check_shapes(predictions, targets);
  double acc = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double e = predictions[i] - targets[i];
    acc += e * e;
  }
  return acc / static_cast<double>(predictions.size());
}

double rmse(std::span<const double> predictions, std::span<const double> targets) {
  return std::sqrt(mse(predictions, targets));
}

double mae(std::span<const double> predictions, std::span<const double> targets) {
  check_shapes(predictions, targets);
  double acc = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    acc += std::abs(predictions[i] - targets[i]);
  }
  return acc / static_cast<double>(predictions.size());
}

double r2(std::span<const double> predictions, std::span<const double> targets) {
  check_shapes(predictions, targets);
  double target_mean = 0.0;
  for (const double t : targets) {
    target_mean += t;
  }
  target_mean /= static_cast<double>(targets.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double e = targets[i] - predictions[i];
    const double d = targets[i] - target_mean;
    ss_res += e * e;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

double quality_loss_percent(double mse_value, double reference_mse) {
  REGHD_CHECK(reference_mse > 0.0, "reference MSE must be positive, got " << reference_mse);
  return 100.0 * (mse_value - reference_mse) / reference_mse;
}

std::string RegressionMetrics::to_string() const {
  std::ostringstream oss;
  oss << "mse=" << mse << " rmse=" << rmse << " mae=" << mae << " r2=" << r2;
  return oss.str();
}

RegressionMetrics evaluate_regression(std::span<const double> predictions,
                                      std::span<const double> targets) {
  RegressionMetrics m;
  m.mse = mse(predictions, targets);
  m.rmse = std::sqrt(m.mse);
  m.mae = mae(predictions, targets);
  m.r2 = r2(predictions, targets);
  return m;
}

}  // namespace reghd::util
