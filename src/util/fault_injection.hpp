// Deterministic I/O fault injection for crash-safety tests.
//
// A FaultInjectingStreambuf wraps any std::streambuf and damages the byte
// stream flowing through it according to a seeded FaultPlan. The modes model
// the failure classes an embedded deployment actually sees:
//
//  * kFailAt      — bytes [0, at_byte) pass through, then every further write
//                   reports failure (the caller's stream goes bad). Models
//                   ENOSPC or power loss *detected* by the writer.
//  * kTruncateAt  — bytes [0, at_byte) pass through, the rest are silently
//                   discarded while the sink keeps reporting success. Models
//                   a torn write the writer cannot see (lying fsync, power
//                   loss after the write call returned).
//  * kBitFlipAt   — exactly one seeded bit of the byte at offset at_byte is
//                   inverted; everything else passes through. Models media
//                   corruption / bit rot.
//  * kShortWrite  — once at_byte is reached, every write call silently
//                   persists only the first half of its chunk. Models an
//                   unchecked short write() loop.
//
// All behaviour is a pure function of (plan, byte offsets), so every failing
// run replays exactly. Used by the recovery-path unit tests and by
// tools/checkpoint_torture.
#pragma once

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string>
#include <string_view>

namespace reghd::util {

enum class FaultMode : std::uint8_t {
  kNone = 0,
  kFailAt,
  kTruncateAt,
  kBitFlipAt,
  kShortWrite,
};

[[nodiscard]] std::string to_string(FaultMode mode);

struct FaultPlan {
  FaultMode mode = FaultMode::kNone;
  std::size_t at_byte = 0;   ///< Trigger offset in the output byte stream.
  std::uint64_t seed = 1;    ///< Selects the flipped bit for kBitFlipAt.

  [[nodiscard]] bool armed() const noexcept { return mode != FaultMode::kNone; }
};

/// Write-side streambuf filter applying one FaultPlan. Not seekable.
class FaultInjectingStreambuf final : public std::streambuf {
 public:
  /// `target` must outlive this object.
  FaultInjectingStreambuf(std::streambuf* target, FaultPlan plan);

  /// Bytes the caller attempted to write (pre-fault).
  [[nodiscard]] std::size_t bytes_seen() const noexcept { return count_; }

  /// True once the plan has damaged (or refused) at least one byte.
  [[nodiscard]] bool fault_fired() const noexcept { return fired_; }

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int sync() override;

 private:
  /// Forwards `n` bytes to the target; returns bytes accepted by it.
  std::streamsize forward(const char* s, std::streamsize n);

  std::streambuf* target_;
  FaultPlan plan_;
  std::size_t count_ = 0;
  bool fired_ = false;
  bool failed_ = false;
};

/// Routed-through-the-shim damage of an in-memory byte string: what would
/// the sink contain, and would the writer have seen a failure?
struct FaultResult {
  std::string bytes;
  bool write_failed = false;
};

[[nodiscard]] FaultResult apply_fault(std::string_view bytes, const FaultPlan& plan);

}  // namespace reghd::util
