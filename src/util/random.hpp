// Deterministic random number generation for RegHD.
//
// All randomness in the library flows through these generators so that every
// experiment is bit-reproducible from an explicit 64-bit seed. Two engines
// are provided:
//
//  * SplitMix64 — a tiny, fast, statistically solid stream generator used for
//    seeding and for simple draws.
//  * Xoshiro256ss — the workhorse generator (xoshiro256**), used wherever a
//    long period and good equidistribution matter (base hypervectors,
//    dataset synthesis).
//
// On top of the engines, Rng offers the distributions RegHD needs: uniform
// reals/integers, standard normals (Box–Muller with caching), Bernoulli,
// Rademacher (±1), and random phase draws.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/check.hpp"

namespace reghd::util {

/// SplitMix64: Steele, Lea & Flood's 64-bit mix generator. Primarily used to
/// expand one user seed into independent stream seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: Blackman & Vigna's all-purpose 64-bit generator.
/// Period 2^256 − 1; passes BigCrush.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from one seed via SplitMix64, as
  /// the xoshiro authors recommend.
  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.next();
    }
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Distribution front-end over Xoshiro256ss. Cheap to copy; copies diverge
/// independently from the copied state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Raw 64 random bits.
  std::uint64_t bits() noexcept { return engine_.next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 high-quality mantissa bits → [0,1) with full double resolution.
    return static_cast<double>(engine_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    REGHD_CHECK(n > 0, "uniform_index requires a non-empty range");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = engine_.next();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    REGHD_CHECK(lo <= hi, "uniform_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  /// Standard normal via Box–Muller; caches the second variate.
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    // Guard against log(0); uniform() can return exactly 0.
    while (u1 <= 0.0) {
      u1 = uniform();
    }
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_ = radius * std::sin(angle);
    has_cached_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Rademacher draw: ±1 with equal probability.
  int rademacher() noexcept { return (engine_.next() & 1ULL) ? 1 : -1; }

  /// Uniform phase in [0, 2π).
  double phase() noexcept { return uniform(0.0, 2.0 * std::numbers::pi); }

  /// Derives an independent child generator; successive calls yield distinct
  /// streams. Used to give each subsystem (encoder, clusters, dataset) its
  /// own stream from one experiment seed.
  Rng split() noexcept { return Rng(engine_.next() ^ 0x5851f42d4c957f2dULL); }

  /// Fisher–Yates shuffle of an indexable container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) {
      return;
    }
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  Xoshiro256ss engine_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace reghd::util
