// Minimal data-parallel helper.
//
// Batch encoding dominates the wall-clock of training on a host CPU (one
// RFF projection per sample); parallel_for spreads an index range across a
// fixed thread count with deterministic work assignment — thread t handles
// the contiguous block [t·⌈n/T⌉, (t+1)·⌈n/T⌉) — so results are independent
// of scheduling and bit-identical to the serial run.
//
// Work executes on the persistent ThreadPool (see thread_pool.hpp) instead
// of freshly spawned std::threads, so a dispatch costs one condition-variable
// notify rather than thread creation + join. Block boundaries are unchanged
// from the seed implementation; which pool thread runs a block does not
// affect results because blocks touch disjoint state.
//
// The callable must be safe to invoke concurrently on distinct indices
// (no shared mutable state beyond disjoint output slots).
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <vector>

#include "util/thread_pool.hpp"

namespace reghd::util {

/// Invokes fn(i) for every i in [0, count), using up to `threads` logical
/// workers (0 = default_thread_count(), i.e. REGHD_THREADS or hardware
/// concurrency). Exceptions from workers are rethrown (the first one
/// encountered, by block order) after all blocks complete.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, std::size_t threads = 0) {
  if (count == 0) {
    return;
  }
  std::size_t worker_count = threads != 0 ? threads : default_thread_count();
  worker_count = std::min(worker_count, count);

  if (worker_count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }

  const std::size_t block = (count + worker_count - 1) / worker_count;
  const std::size_t num_blocks = (count + block - 1) / block;
  std::vector<std::exception_ptr> errors(num_blocks);
  ThreadPool::global().run_blocks(num_blocks, [&](std::size_t b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(begin + block, count);
    try {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    } catch (...) {
      errors[b] = std::current_exception();
    }
  });
  for (const auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

}  // namespace reghd::util
