// Minimal data-parallel helper.
//
// Batch encoding dominates the wall-clock of training on a host CPU (one
// RFF projection per sample); parallel_for spreads an index range across a
// fixed thread count with deterministic work assignment — thread t handles
// the contiguous block [t·⌈n/T⌉, (t+1)·⌈n/T⌉) — so results are independent
// of scheduling and bit-identical to the serial run.
//
// The callable must be safe to invoke concurrently on distinct indices
// (no shared mutable state beyond disjoint output slots).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace reghd::util {

/// Invokes fn(i) for every i in [0, count), using up to `threads` workers
/// (0 = hardware concurrency). Exceptions from workers are rethrown (the
/// first one encountered, by block order) after all workers join.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, std::size_t threads = 0) {
  if (count == 0) {
    return;
  }
  std::size_t worker_count = threads != 0
                                 ? threads
                                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  worker_count = std::min(worker_count, count);

  if (worker_count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }

  const std::size_t block = (count + worker_count - 1) / worker_count;
  std::vector<std::exception_ptr> errors(worker_count);
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t t = 0; t < worker_count; ++t) {
    workers.emplace_back([&, t] {
      const std::size_t begin = t * block;
      const std::size_t end = std::min(begin + block, count);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          fn(i);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  for (const auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

}  // namespace reghd::util
