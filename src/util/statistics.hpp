// Scalar statistics used across RegHD: moments, quantiles, correlation,
// softmax, and the standard normal distribution functions that back the
// hypervector capacity model (paper Eq. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace reghd::util {

/// Arithmetic mean. Empty input is a precondition violation.
[[nodiscard]] double mean(std::span<const double> values);

/// Unbiased sample variance (n−1 denominator). Requires at least two values.
[[nodiscard]] double variance(std::span<const double> values);

/// Unbiased sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> values);

/// Median (average of middle pair for even n).
[[nodiscard]] double median(std::span<const double> values);

/// Linear-interpolated quantile, q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Pearson correlation coefficient. Returns 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> a, std::span<const double> b);

/// Minimum / maximum of a non-empty range.
[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);

/// Numerically-stable softmax: exponentials are shifted by the maximum
/// logit. `temperature` divides the logits; smaller values sharpen the
/// distribution (temperature → 0 approaches argmax one-hot).
[[nodiscard]] std::vector<double> softmax(std::span<const double> logits,
                                          double temperature = 1.0);

/// In-place softmax variant to avoid allocation on hot paths.
void softmax_inplace(std::span<double> logits, double temperature = 1.0);

/// Standard normal probability density function.
[[nodiscard]] double normal_pdf(double x);

/// Standard normal cumulative distribution function Φ(x).
[[nodiscard]] double normal_cdf(double x);

/// Upper tail Q(x) = 1 − Φ(x) = (1/√2π) ∫ₓ^∞ e^(−t²/2) dt — the integral in
/// the paper's Eq. 4 false-positive model.
[[nodiscard]] double normal_tail(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-9 over (0, 1)).
[[nodiscard]] double normal_quantile(double p);

/// Streaming mean/variance accumulator (Welford). Suitable for one-pass
/// dataset standardization and convergence tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Raw second central moment Σ(x−mean)² — exposed so checkpoints can
  /// capture the accumulator exactly (stddev() alone loses bits).
  [[nodiscard]] double m2() const noexcept { return m2_; }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept;

  /// Reconstructs an accumulator from serialized state, bit-exactly
  /// (core/checkpoint). The fields must come from count()/mean()/m2()/
  /// min()/max() of a previous instance.
  [[nodiscard]] static RunningStats restore(std::size_t count, double mean, double m2,
                                            double min, double max) noexcept {
    RunningStats s;
    s.count_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace reghd::util
