#include "util/matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace reghd::util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  REGHD_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  REGHD_CHECK(a.cols() == x.size(),
              "matvec: matrix has " << a.cols() << " columns, vector has " << x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      acc += a(r, c) * x[c];
    }
    y[r] = acc;
  }
  return y;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) {
        acc += a(r, i) * a(r, j);
      }
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

std::vector<double> at_b(const Matrix& a, std::span<const double> b) {
  REGHD_CHECK(a.rows() == b.size(),
              "at_b: matrix has " << a.rows() << " rows, vector has " << b.size());
  std::vector<double> v(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      v[c] += a(r, c) * b[r];
    }
  }
  return v;
}

std::vector<double> cholesky_solve(const Matrix& s, std::span<const double> b) {
  REGHD_CHECK(s.rows() == s.cols(), "cholesky_solve requires a square matrix");
  REGHD_CHECK(s.rows() == b.size(), "cholesky_solve: dimension mismatch");
  const std::size_t n = s.rows();

  // Lower-triangular factor L with S = L·Lᵀ.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = s(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        acc -= l(i, k) * l(j, k);
      }
      if (i == j) {
        if (acc <= 0.0) {
          throw std::runtime_error("cholesky_solve: matrix is not positive definite");
        }
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }

  // Forward substitution: L·y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= l(i, k) * y[k];
    }
    y[i] = acc / l(i, i);
  }

  // Back substitution: Lᵀ·x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= l(k, ii) * x[k];
    }
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

std::vector<double> ridge_solve(const Matrix& a, std::span<const double> b, double lambda) {
  REGHD_CHECK(lambda >= 0.0, "ridge lambda must be non-negative, got " << lambda);
  Matrix g = gram(a);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    g(i, i) += lambda;
  }
  const std::vector<double> rhs = at_b(a, b);
  return cholesky_solve(g, rhs);
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  REGHD_CHECK(x.size() == y.size(), "fit_line requires equal-length ranges");
  REGHD_CHECK(!x.empty(), "fit_line of empty ranges");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom <= 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  return fit;
}

}  // namespace reghd::util
