#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace reghd::util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  REGHD_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  REGHD_CHECK(a.cols() == x.size(),
              "matvec: matrix has " << a.cols() << " columns, vector has " << x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      acc += a(r, c) * x[c];
    }
    y[r] = acc;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  REGHD_CHECK(a.cols() == b.rows(), "matmul: inner dimensions disagree (" << a.cols()
                                        << " vs " << b.rows() << ")");
  Matrix c(a.rows(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t p = b.cols();
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = c.mutable_data().data();
  // i–k–j with j tiled: the C and B row segments of one tile stay resident
  // while k streams, and each C(i,j) still accumulates in ascending-k order.
  constexpr std::size_t kColTile = 256;
  for (std::size_t j0 = 0; j0 < p; j0 += kColTile) {
    const std::size_t jn = std::min(p, j0 + kColTile);
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = ad + i * k;
      double* crow = cd + i * p;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double aik = arow[kk];
        const double* brow = bd + kk * p;
        for (std::size_t j = j0; j < jn; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
  return c;
}

void matmul_nt_accumulate(const double* a, const double* b, double* c, std::size_t m,
                          std::size_t n, std::size_t p) {
  constexpr std::size_t kRowTile = 64;  // rows of b per tile (~64·n doubles)
  for (std::size_t o0 = 0; o0 < p; o0 += kRowTile) {
    const std::size_t on = std::min(p, o0 + kRowTile);
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * n;
      double* crow = c + r * p;
      for (std::size_t o = o0; o < on; ++o) {
        const double* brow = b + o * n;
        double acc = crow[o];
        for (std::size_t k = 0; k < n; ++k) {
          acc += arow[k] * brow[k];
        }
        crow[o] = acc;
      }
    }
  }
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) {
        acc += a(r, i) * a(r, j);
      }
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

std::vector<double> at_b(const Matrix& a, std::span<const double> b) {
  REGHD_CHECK(a.rows() == b.size(),
              "at_b: matrix has " << a.rows() << " rows, vector has " << b.size());
  std::vector<double> v(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      v[c] += a(r, c) * b[r];
    }
  }
  return v;
}

std::vector<double> cholesky_solve(const Matrix& s, std::span<const double> b) {
  REGHD_CHECK(s.rows() == s.cols(), "cholesky_solve requires a square matrix");
  REGHD_CHECK(s.rows() == b.size(), "cholesky_solve: dimension mismatch");
  const std::size_t n = s.rows();

  // Lower-triangular factor L with S = L·Lᵀ.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = s(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        acc -= l(i, k) * l(j, k);
      }
      if (i == j) {
        if (acc <= 0.0) {
          throw std::runtime_error("cholesky_solve: matrix is not positive definite");
        }
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }

  // Forward substitution: L·y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= l(i, k) * y[k];
    }
    y[i] = acc / l(i, i);
  }

  // Back substitution: Lᵀ·x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= l(k, ii) * x[k];
    }
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

std::vector<double> ridge_solve(const Matrix& a, std::span<const double> b, double lambda) {
  REGHD_CHECK(lambda >= 0.0, "ridge lambda must be non-negative, got " << lambda);
  Matrix g = gram(a);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    g(i, i) += lambda;
  }
  const std::vector<double> rhs = at_b(a, b);
  return cholesky_solve(g, rhs);
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  REGHD_CHECK(x.size() == y.size(), "fit_line requires equal-length ranges");
  REGHD_CHECK(!x.empty(), "fit_line of empty ranges");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom <= 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  return fit;
}

}  // namespace reghd::util
