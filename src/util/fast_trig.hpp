// Fast, deterministic sine for encoder hot loops.
//
// The RFF encoder evaluates one sine per hyperspace component per sample —
// D = 4096 calls per encoded row — and libm's sin() dominates the whole
// encode+predict path. fast_sin() replaces it in that loop with a classic
// Cody–Waite argument reduction (π/2 split into exact high and residual
// parts) followed by the fdlibm minimax polynomials for sin/cos on
// [−π/4, π/4], with a branchless quadrant select. Maximum observed error is
// ~2 ulp (≈4e-16 absolute) against libm across the reduction range — far
// below the encoder's quantization granularity and any test tolerance.
//
// Determinism: this is plain scalar code shared by every kernel backend, so
// an encoded hypervector is bit-identical whether REGHD_KERNEL selects the
// scalar or the AVX2 table — the SIMD dispatch never changes which sine is
// evaluated. (Different *libm versions* are no longer a reproducibility
// hazard for the encoder either, since fast_sin is self-contained.)
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace reghd::util {

/// sin(x) accurate to ~2 ulp for |x| < 2^30; falls back to std::sin beyond
/// that (and for NaN/Inf), where two-term reduction would lose precision.
[[nodiscard]] inline double fast_sin(double x) {
  // Quadrant index k = round(x·2/π) via the 1.5·2^52 shift trick: after the
  // add, the low mantissa bits of the double hold k in two's complement.
  constexpr double kTwoOverPi = 6.36619772367581382433e-01;
  constexpr double kShift = 6755399441055744.0;  // 1.5 · 2^52
  // π/2 = kPio2Hi + kPio2Lo; kPio2Hi has its low 33 mantissa bits zero, so
  // k·kPio2Hi is exact for |k| < 2^33 and the subtraction cancels exactly.
  constexpr double kPio2Hi = 1.57079632673412561417e+00;
  constexpr double kPio2Lo = 6.07710050650619224932e-11;

  if (!(std::fabs(x) < 1073741824.0)) {  // 2^30; also catches NaN/Inf
    return std::sin(x);
  }

  const double shifted = x * kTwoOverPi + kShift;
  const std::uint64_t q = std::bit_cast<std::uint64_t>(shifted);
  const double k = shifted - kShift;
  const double r = (x - k * kPio2Hi) - k * kPio2Lo;
  const double r2 = r * r;

  // fdlibm __kernel_sin / __kernel_cos minimax coefficients on [−π/4, π/4].
  const double ps =
      r + r * r2 *
              (-1.66666666666666324348e-01 +
               r2 * (8.33333333332248946124e-03 +
                     r2 * (-1.98412698298579493134e-04 +
                           r2 * (2.75573137070700676789e-06 +
                                 r2 * (-2.50507602534068634195e-08 +
                                       r2 * 1.58969099521155010221e-10)))));
  const double pc =
      1.0 - 0.5 * r2 +
      r2 * r2 *
          (4.16666666666666019037e-02 +
           r2 * (-1.38888888888741095749e-03 +
                 r2 * (2.48015872894767294178e-05 +
                       r2 * (-2.75573143513906633035e-07 +
                             r2 * (2.08757232129817482790e-09 +
                                   r2 * -1.13596475577881948265e-11)))));

  // Quadrant select: even → ±sin(r), odd → ±cos(r); bit 1 of q flips sign.
  const double v = (q & 1) != 0 ? pc : ps;
  const std::uint64_t sign = (q & 2) << 62;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^ sign);
}

}  // namespace reghd::util
