// Fast, deterministic transcendentals for encoder hot loops.
//
// The RFF encoder evaluates one sine per hyperspace component per sample —
// D = 4096 calls per encoded row — and libm's sin() dominates the whole
// encode+predict path. fast_sin() replaces it in that loop with a classic
// Cody–Waite argument reduction (π/2 split into exact high and residual
// parts) followed by the fdlibm minimax polynomials for sin/cos on
// [−π/4, π/4], with a branchless quadrant select. Maximum observed error is
// ~2 ulp (≈4e-16 absolute) against libm across the reduction range — far
// below the encoder's quantization granularity and any test tolerance.
// fast_cos() is the same reduction with the quadrant roles swapped, and
// fast_log() is the fdlibm natural-log kernel for positive normal inputs —
// together they supply the Box–Muller pieces (√(−2·ln u), cos/sin(2πu)) the
// counter-based projection rematerialization kernel evaluates per weight.
//
// Determinism: this is plain scalar code shared by every kernel backend, so
// an encoded hypervector is bit-identical whether REGHD_KERNEL selects the
// scalar or the AVX2 table — the SIMD dispatch never changes which sine is
// evaluated. (Different *libm versions* are no longer a reproducibility
// hazard for the encoder either, since fast_sin is self-contained.) The
// AVX2 rematerialization kernel replays fast_cos/fast_sin/fast_log four
// lanes at a time with the exact per-element operation sequence, so every
// function here must stay branch-free on its documented domain — a
// data-dependent branch would force the SIMD replay to diverge.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace reghd::util {

/// sin(x) accurate to ~2 ulp for |x| < 2^30; falls back to std::sin beyond
/// that (and for NaN/Inf), where two-term reduction would lose precision.
[[nodiscard]] inline double fast_sin(double x) {
  // Quadrant index k = round(x·2/π) via the 1.5·2^52 shift trick: after the
  // add, the low mantissa bits of the double hold k in two's complement.
  constexpr double kTwoOverPi = 6.36619772367581382433e-01;
  constexpr double kShift = 6755399441055744.0;  // 1.5 · 2^52
  // π/2 = kPio2Hi + kPio2Lo; kPio2Hi has its low 33 mantissa bits zero, so
  // k·kPio2Hi is exact for |k| < 2^33 and the subtraction cancels exactly.
  constexpr double kPio2Hi = 1.57079632673412561417e+00;
  constexpr double kPio2Lo = 6.07710050650619224932e-11;

  if (!(std::fabs(x) < 1073741824.0)) {  // 2^30; also catches NaN/Inf
    return std::sin(x);
  }

  const double shifted = x * kTwoOverPi + kShift;
  const std::uint64_t q = std::bit_cast<std::uint64_t>(shifted);
  const double k = shifted - kShift;
  const double r = (x - k * kPio2Hi) - k * kPio2Lo;
  const double r2 = r * r;

  // fdlibm __kernel_sin / __kernel_cos minimax coefficients on [−π/4, π/4].
  const double ps =
      r + r * r2 *
              (-1.66666666666666324348e-01 +
               r2 * (8.33333333332248946124e-03 +
                     r2 * (-1.98412698298579493134e-04 +
                           r2 * (2.75573137070700676789e-06 +
                                 r2 * (-2.50507602534068634195e-08 +
                                       r2 * 1.58969099521155010221e-10)))));
  const double pc =
      1.0 - 0.5 * r2 +
      r2 * r2 *
          (4.16666666666666019037e-02 +
           r2 * (-1.38888888888741095749e-03 +
                 r2 * (2.48015872894767294178e-05 +
                       r2 * (-2.75573143513906633035e-07 +
                             r2 * (2.08757232129817482790e-09 +
                                   r2 * -1.13596475577881948265e-11)))));

  // Quadrant select: even → ±sin(r), odd → ±cos(r); bit 1 of q flips sign.
  const double v = (q & 1) != 0 ? pc : ps;
  const std::uint64_t sign = (q & 2) << 62;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^ sign);
}

/// cos(x) accurate to ~2 ulp for |x| < 2^30; falls back to std::cos beyond
/// that (and for NaN/Inf). Identical Cody–Waite reduction and polynomials as
/// fast_sin with the quadrant roles swapped: cos(k·π/2 + r) cycles through
/// cos(r), −sin(r), −cos(r), sin(r), so the select keys on the same bit 0 of
/// q with the sign taken from bit 1 of q + 1.
[[nodiscard]] inline double fast_cos(double x) {
  constexpr double kTwoOverPi = 6.36619772367581382433e-01;
  constexpr double kShift = 6755399441055744.0;  // 1.5 · 2^52
  constexpr double kPio2Hi = 1.57079632673412561417e+00;
  constexpr double kPio2Lo = 6.07710050650619224932e-11;

  if (!(std::fabs(x) < 1073741824.0)) {  // 2^30; also catches NaN/Inf
    return std::cos(x);
  }

  const double shifted = x * kTwoOverPi + kShift;
  const std::uint64_t q = std::bit_cast<std::uint64_t>(shifted);
  const double k = shifted - kShift;
  const double r = (x - k * kPio2Hi) - k * kPio2Lo;
  const double r2 = r * r;

  const double ps =
      r + r * r2 *
              (-1.66666666666666324348e-01 +
               r2 * (8.33333333332248946124e-03 +
                     r2 * (-1.98412698298579493134e-04 +
                           r2 * (2.75573137070700676789e-06 +
                                 r2 * (-2.50507602534068634195e-08 +
                                       r2 * 1.58969099521155010221e-10)))));
  const double pc =
      1.0 - 0.5 * r2 +
      r2 * r2 *
          (4.16666666666666019037e-02 +
           r2 * (-1.38888888888741095749e-03 +
                 r2 * (2.48015872894767294178e-05 +
                       r2 * (-2.75573143513906633035e-07 +
                             r2 * (2.08757232129817482790e-09 +
                                   r2 * -1.13596475577881948265e-11)))));

  // Quadrant select: even → ±cos(r), odd → ±sin(r); bit 1 of q+1 flips sign.
  const double v = (q & 1) != 0 ? ps : pc;
  const std::uint64_t sign = ((q + 1) & 2) << 62;
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^ sign);
}

/// ln(x) accurate to ~1 ulp for positive *normal* finite x — the fdlibm
/// __ieee754_log kernel (mantissa reduced into [√½, √2), atanh-series
/// remainder, two-part ln 2). The domain deliberately excludes 0, subnormals,
/// Inf and NaN: the only caller domain is the Box–Muller uniform
/// u ∈ [2⁻⁵³, 1], and keeping the code branch-free on that domain is what
/// lets the AVX2 rematerialization kernel replay it lane-parallel
/// bit-identically (the [√½ scaling "branch" below is an exact ×2 select,
/// mirrored by a BLENDV in the SIMD replay).
[[nodiscard]] inline double fast_log(double x) {
  constexpr double kSqrtHalf = 7.07106781186547524401e-01;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  // fdlibm minimax coefficients for R(z) on the reduced interval.
  constexpr double kLg1 = 6.666666666666735130e-01;
  constexpr double kLg2 = 3.999999999940941908e-01;
  constexpr double kLg3 = 2.857142874366239149e-01;
  constexpr double kLg4 = 2.222219843214978396e-01;
  constexpr double kLg5 = 1.818357216161805012e-01;
  constexpr double kLg6 = 1.531383769920937332e-01;
  constexpr double kLg7 = 1.479819860511658591e-01;

  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  // Mantissa rescaled into [0.5, 1); unbiased exponent as an exact small
  // integer-valued double (|e| ≤ 1074 ≪ 2^52, so the subtraction is exact).
  const double m_half =
      std::bit_cast<double>((bits & 0x000FFFFFFFFFFFFFULL) | 0x3FE0000000000000ULL);
  double e = static_cast<double>(bits >> 52) - 1022.0;
  // Fold into m ∈ [√½, √2): doubling the mantissa is exact, so the select
  // only chooses between two exactly-computed candidates (SIMD: one compare
  // mask feeding a blend and a masked subtract).
  const bool low = m_half < kSqrtHalf;
  const double m = low ? m_half + m_half : m_half;
  e = low ? e - 1.0 : e;

  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  return e * kLn2Hi - ((hfsq - (s * (hfsq + r) + e * kLn2Lo)) - f);
}

}  // namespace reghd::util
