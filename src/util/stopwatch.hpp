// Wall-clock timing helpers for the benchmark harness and trainer telemetry.
#pragma once

#include <chrono>

namespace reghd::util {

/// Monotonic stopwatch. Starts on construction; restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_milliseconds() const noexcept {
    return elapsed_seconds() * 1e3;
  }

  [[nodiscard]] double elapsed_microseconds() const noexcept {
    return elapsed_seconds() * 1e6;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace reghd::util
