// Small command-line argument parser shared by the examples and bench
// binaries. Supports `--key value`, `--key=value`, and boolean `--flag`
// forms, with typed accessors and defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace reghd::util {

class Args {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (e.g. a value token with no preceding option).
  Args(int argc, const char* const* argv);

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  /// True if the option was given at all (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  /// Pointer to the option's value slot, or nullptr if the option was not
  /// given. The pointee is empty for a bare boolean flag.
  [[nodiscard]] const std::optional<std::string>* get(const std::string& key) const;

  /// Typed accessors with defaults. Throw std::invalid_argument on parse
  /// failure so misspelled numeric flags are loud.
  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-option) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::string program_;
  std::map<std::string, std::optional<std::string>> options_;
  std::vector<std::string> positional_;
};

}  // namespace reghd::util
