// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum used
// by the v2 model/checkpoint format (iSCSI/ext4's polynomial, chosen over
// CRC32 for its better error-detection properties on short messages).
//
// Software table implementation; the table is computed at compile time.
// Incremental use goes through the Crc32c accumulator, one-shot use through
// crc32c(). crc32c("123456789") == 0xE3069283 (the RFC 3720 test vector,
// pinned by the test suite).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace reghd::util {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) ? 0x82F63B78U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

/// Streaming CRC32C accumulator.
class Crc32c {
 public:
  void update(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t crc = state_;
    for (std::size_t i = 0; i < size; ++i) {
      crc = (crc >> 8) ^ detail::kCrc32cTable[(crc ^ bytes[i]) & 0xFFU];
    }
    state_ = crc;
  }

  void update(std::string_view bytes) noexcept { update(bytes.data(), bytes.size()); }

  /// Final checksum of everything fed so far (does not reset the state).
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = ~0U; }

 private:
  std::uint32_t state_ = ~0U;
};

/// One-shot CRC32C of a byte range.
[[nodiscard]] inline std::uint32_t crc32c(std::string_view bytes) noexcept {
  Crc32c crc;
  crc.update(bytes);
  return crc.value();
}

}  // namespace reghd::util
