// Length-prefixed, CRC32C-checksummed section framing — the container layer
// of the v2 model/checkpoint format (core/model_io, core/checkpoint).
//
// File layout (all integers little-endian):
//
//   [u32 magic][u32 version]                       — written by the caller
//   [u32 kind]                                     — file kind FourCC
//   repeated sections:
//     [u32 tag][u64 payload_len][payload][u32 crc32c(payload)]
//   trailer (always last):
//     [u32 'END!'][u64 8][u32 file_crc][u32 section_count][u32 crc32c(payload)]
//
// file_crc is the CRC32C of every body byte before the trailer section (the
// kind field plus all ordinary sections, headers included), so corruption of
// a section *tag* — which the per-section CRC does not cover — is still
// detected. Readers parse fully before exposing any payload: every length is
// clamped against the bytes actually remaining, every checksum is verified,
// and any violation raises a FormatError carrying a typed kind. Unknown tags
// are preserved (forward compatibility); consumers require the tags they
// need and get kMissingSection otherwise.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32c.hpp"

namespace reghd::util {

enum class FormatErrorKind : std::uint8_t {
  kBadMagic = 0,
  kBadVersion,
  kBadKind,
  kTruncated,
  kBadSectionLength,
  kChecksumMismatch,
  kMissingSection,
  kBadValue,
  kIo,
};

[[nodiscard]] std::string to_string(FormatErrorKind kind);

/// The typed error every v2 reader throws. Derives from std::runtime_error so
/// legacy catch sites keep working; new code switches on kind().
class FormatError : public std::runtime_error {
 public:
  FormatError(FormatErrorKind kind, const std::string& message);
  [[nodiscard]] FormatErrorKind kind() const noexcept { return kind_; }

 private:
  FormatErrorKind kind_;
};

/// FourCC tag helper: fourcc("CONF") etc.
[[nodiscard]] constexpr std::uint32_t fourcc(const char (&s)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24);
}

inline constexpr std::uint32_t kEndTag = fourcc("END!");

struct Section {
  std::uint32_t tag = 0;
  std::string payload;
};

/// Writes the framed body of a v2 file: kind, sections, CRC trailer. The
/// caller writes magic/version first; add() every section, then finish()
/// exactly once.
class SectionWriter {
 public:
  SectionWriter(std::ostream& out, std::uint32_t kind);
  ~SectionWriter() = default;

  SectionWriter(const SectionWriter&) = delete;
  SectionWriter& operator=(const SectionWriter&) = delete;

  void add(std::uint32_t tag, std::string_view payload);

  /// Emits the trailer. No add() may follow.
  void finish();

 private:
  void write_raw(const void* data, std::size_t size, bool fold_into_file_crc);

  std::ostream& out_;
  Crc32c file_crc_;
  std::uint32_t section_count_ = 0;
  bool finished_ = false;
};

/// A fully parsed and checksum-verified v2 body.
struct ParsedFile {
  std::uint32_t kind = 0;
  std::vector<Section> sections;

  [[nodiscard]] const Section* find(std::uint32_t tag) const noexcept;

  /// Returns the section or throws FormatError{kMissingSection}.
  [[nodiscard]] const Section& require(std::uint32_t tag) const;
};

/// Parses everything after magic/version. Throws FormatError on any
/// violation; on return every section checksum and the file checksum have
/// been verified. `max_section_bytes` bounds a single payload (a corrupted
/// length must fail fast, not drive a giant allocation).
[[nodiscard]] ParsedFile parse_sections(std::string_view body,
                                        std::size_t max_section_bytes = (1ULL << 28));

}  // namespace reghd::util
