// Plain-text report rendering for the benchmark harness.
//
// Every paper table is printed as an aligned ASCII table and every figure as
// a labelled series block (optionally with a unicode bar/line sketch), so
// that `bench_output.txt` is directly comparable with the paper.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace reghd::util {

/// Column-aligned ASCII table. Cells are strings; use cell(double) for
/// consistent numeric formatting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; its width must match the header.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` significant decimal digits.
  [[nodiscard]] static std::string cell(double value, int precision = 4);

  /// Formats as a multiplier, e.g. "5.60x".
  [[nodiscard]] static std::string cell_ratio(double value, int precision = 2);

  /// Formats as a percentage, e.g. "0.3%".
  [[nodiscard]] static std::string cell_percent(double value, int precision = 1);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A named data series for "figure" reproduction: prints values and a
/// proportional unicode bar per point so trends are visible in a terminal.
class SeriesChart {
 public:
  SeriesChart(std::string title, std::string x_label, std::string y_label);

  /// Adds a series of (x label, y value) points.
  void add_series(std::string name, std::vector<std::pair<std::string, double>> points);

  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const SeriesChart& chart);

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<std::string, double>> points;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

/// Prints a section banner used between experiments in bench output.
[[nodiscard]] std::string section_banner(const std::string& title);

}  // namespace reghd::util
