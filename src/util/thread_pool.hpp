// Persistent worker pool behind util::parallel_for.
//
// The seed implementation spawned and joined fresh std::threads on every
// parallel_for call — tens of microseconds of overhead per batch, paid once
// per epoch per dataset. This pool starts its workers lazily on first use
// and keeps them parked on a condition variable between jobs, so a batch
// dispatch costs one notify + one atomic counter.
//
// Work is dispatched as an indexed set of blocks. Block boundaries are fixed
// by the caller (parallel_for keeps the seed's deterministic contiguous
// ranges), and blocks are claimed dynamically via an atomic cursor — which
// OS thread executes a block never affects results because blocks write
// disjoint state.
//
// Thread count: REGHD_THREADS environment variable when set (≥ 1), else
// std::thread::hardware_concurrency. The pool serializes concurrent
// run_blocks() callers; a call from inside a worker (nested parallelism)
// runs serially inline rather than deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reghd::util {

/// Target logical thread count for data-parallel work: REGHD_THREADS when
/// set to a positive integer, else hardware concurrency (min 1). Resolved
/// once and cached.
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  /// Starts `threads − 1` workers (the calling thread participates in every
  /// job, so `threads` is the total parallelism).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total parallelism: workers + the calling thread.
  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Executes block(0) … block(num_blocks−1), distributing blocks over the
  /// workers and the calling thread; returns when every block has finished.
  /// `block` must not throw (parallel_for wraps exceptions upstream). More
  /// blocks than threads is fine — blocks are claimed from an atomic cursor.
  /// Reentrant calls from a pool worker run serially inline.
  void run_blocks(std::size_t num_blocks, const std::function<void(std::size_t)>& block);

  /// The process-wide pool, lazily constructed with default_thread_count().
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  // Serializes concurrent run_blocks callers so one job is in flight at a time.
  std::mutex job_mutex_;

  // Protects the job slot + generation; workers park on cv_work_.
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_blocks_ = 0;
  std::size_t active_ = 0;  // workers that have not finished the current generation
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  // Block cursor, claimed lock-free while a job runs.
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace reghd::util
