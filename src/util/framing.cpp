#include "util/framing.hpp"

#include <cstring>
#include <type_traits>

namespace reghd::util {

namespace {

/// Little-endian fixed-width reads over a bounded view. Each helper advances
/// `cursor` and throws kTruncated when the bytes are not there.
template <typename T>
T read_le(std::string_view body, std::size_t& cursor, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (body.size() - cursor < sizeof(T)) {
    throw FormatError(FormatErrorKind::kTruncated,
                      std::string("framing: stream ends inside ") + what);
  }
  T value{};
  std::memcpy(&value, body.data() + cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

std::string tag_name(std::uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const auto c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    name[static_cast<std::size_t>(i)] = (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return name;
}

}  // namespace

std::string to_string(FormatErrorKind kind) {
  switch (kind) {
    case FormatErrorKind::kBadMagic:
      return "bad-magic";
    case FormatErrorKind::kBadVersion:
      return "bad-version";
    case FormatErrorKind::kBadKind:
      return "bad-kind";
    case FormatErrorKind::kTruncated:
      return "truncated";
    case FormatErrorKind::kBadSectionLength:
      return "bad-section-length";
    case FormatErrorKind::kChecksumMismatch:
      return "checksum-mismatch";
    case FormatErrorKind::kMissingSection:
      return "missing-section";
    case FormatErrorKind::kBadValue:
      return "bad-value";
    case FormatErrorKind::kIo:
      return "io";
  }
  return "unknown";
}

FormatError::FormatError(FormatErrorKind kind, const std::string& message)
    : std::runtime_error("[" + to_string(kind) + "] " + message), kind_(kind) {}

SectionWriter::SectionWriter(std::ostream& out, std::uint32_t kind) : out_(out) {
  write_raw(&kind, sizeof(kind), true);
}

void SectionWriter::write_raw(const void* data, std::size_t size, bool fold_into_file_crc) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (fold_into_file_crc) {
    file_crc_.update(data, size);
  }
}

void SectionWriter::add(std::uint32_t tag, std::string_view payload) {
  if (finished_) {
    throw FormatError(FormatErrorKind::kIo, "framing: add() after finish()");
  }
  const auto len = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = crc32c(payload);
  write_raw(&tag, sizeof(tag), true);
  write_raw(&len, sizeof(len), true);
  write_raw(payload.data(), payload.size(), true);
  write_raw(&crc, sizeof(crc), true);
  ++section_count_;
}

void SectionWriter::finish() {
  if (finished_) {
    throw FormatError(FormatErrorKind::kIo, "framing: finish() called twice");
  }
  finished_ = true;
  const std::uint32_t file_crc = file_crc_.value();
  char payload[8];
  std::memcpy(payload, &file_crc, 4);
  std::memcpy(payload + 4, &section_count_, 4);
  const std::string_view payload_view(payload, sizeof(payload));
  const std::uint64_t len = sizeof(payload);
  const std::uint32_t crc = crc32c(payload_view);
  write_raw(&kEndTag, sizeof(kEndTag), false);
  write_raw(&len, sizeof(len), false);
  write_raw(payload, sizeof(payload), false);
  write_raw(&crc, sizeof(crc), false);
}

const Section* ParsedFile::find(std::uint32_t tag) const noexcept {
  for (const Section& s : sections) {
    if (s.tag == tag) {
      return &s;
    }
  }
  return nullptr;
}

const Section& ParsedFile::require(std::uint32_t tag) const {
  const Section* s = find(tag);
  if (s == nullptr) {
    throw FormatError(FormatErrorKind::kMissingSection,
                      "framing: required section '" + tag_name(tag) + "' is absent");
  }
  return *s;
}

ParsedFile parse_sections(std::string_view body, std::size_t max_section_bytes) {
  ParsedFile file;
  std::size_t cursor = 0;
  file.kind = read_le<std::uint32_t>(body, cursor, "file kind");

  while (true) {
    const std::size_t section_start = cursor;
    const auto tag = read_le<std::uint32_t>(body, cursor, "section tag");
    const auto len = read_le<std::uint64_t>(body, cursor, "section length");
    // Clamp against the bytes actually remaining (payload + its CRC) before
    // touching memory — a hostile length must fail here.
    const std::size_t remaining = body.size() - cursor;
    if (len > max_section_bytes || len + sizeof(std::uint32_t) > remaining) {
      throw FormatError(FormatErrorKind::kBadSectionLength,
                        "framing: section '" + tag_name(tag) + "' claims " +
                            std::to_string(len) + " bytes but only " +
                            std::to_string(remaining) + " remain");
    }
    const std::string_view payload = body.substr(cursor, static_cast<std::size_t>(len));
    cursor += static_cast<std::size_t>(len);
    const auto stored_crc = read_le<std::uint32_t>(body, cursor, "section checksum");
    if (crc32c(payload) != stored_crc) {
      throw FormatError(FormatErrorKind::kChecksumMismatch,
                        "framing: section '" + tag_name(tag) + "' fails its CRC32C check");
    }

    if (tag == kEndTag) {
      if (payload.size() != 8) {
        throw FormatError(FormatErrorKind::kBadValue, "framing: malformed trailer payload");
      }
      std::uint32_t stored_file_crc = 0;
      std::uint32_t stored_count = 0;
      std::memcpy(&stored_file_crc, payload.data(), 4);
      std::memcpy(&stored_count, payload.data() + 4, 4);
      if (crc32c(body.substr(0, section_start)) != stored_file_crc) {
        throw FormatError(FormatErrorKind::kChecksumMismatch,
                          "framing: file-level CRC32C mismatch — corrupt or torn file");
      }
      if (stored_count != file.sections.size()) {
        throw FormatError(FormatErrorKind::kBadValue,
                          "framing: trailer records " + std::to_string(stored_count) +
                              " sections, found " + std::to_string(file.sections.size()));
      }
      if (cursor != body.size()) {
        throw FormatError(FormatErrorKind::kBadValue,
                          "framing: " + std::to_string(body.size() - cursor) +
                              " trailing bytes after the trailer");
      }
      return file;
    }

    if (file.find(tag) != nullptr) {
      throw FormatError(FormatErrorKind::kBadValue,
                        "framing: duplicate section '" + tag_name(tag) + "'");
    }
    file.sections.push_back(Section{tag, std::string(payload)});
  }
}

}  // namespace reghd::util
