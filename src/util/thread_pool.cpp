#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "obs/telemetry.hpp"

namespace reghd::util {

namespace {

// Set while a thread is executing pool work; nested run_blocks calls from
// inside a block run serially instead of deadlocking on job_mutex_.
thread_local bool tls_in_pool_job = false;

// Participation frames currently on this thread's stack (worker claim loop,
// caller claim loop, or inline execution). Busy-ns occupancy must count each
// thread's wall time at most once, so only the outermost frame records —
// a nested run_blocks (e.g. the inline-nested loops of the sharded trainer)
// is already inside its enclosing frame's clock window, and recording it
// again would double-count the nanoseconds and push occupancy past 100%.
thread_local std::uint32_t tls_busy_frames = 0;

// RAII busy-ns frame: times the enclosed block execution and records it into
// kPoolWorkerBusyNs iff this is the thread's outermost frame. The depth
// counter makes single-counting a structural invariant rather than a
// property of which call paths happen to be instrumented.
class BusyFrame {
 public:
  BusyFrame() noexcept
      : outermost_(tls_busy_frames++ == 0), armed_(outermost_ && obs::enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  BusyFrame(const BusyFrame&) = delete;
  BusyFrame& operator=(const BusyFrame&) = delete;
  ~BusyFrame() {
    --tls_busy_frames;
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      obs::count(obs::Counter::kPoolWorkerBusyNs,
                 ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }
  }

 private:
  bool outermost_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

std::size_t resolve_default_thread_count() {
  if (const char* env = std::getenv("REGHD_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

std::size_t default_thread_count() {
  static const std::size_t count = resolve_default_thread_count();
  return count;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t blocks = 0;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
      blocks = job_blocks_;
    }
    // Busy-time accounting (worker occupancy) only reads the clock when
    // telemetry is enabled; the model math inside the blocks is untouched.
    {
      const BusyFrame busy;
      tls_in_pool_job = true;
      for (;;) {
        const std::size_t b = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) {
          break;
        }
        (*job)(b);
      }
      tls_in_pool_job = false;
    }
    {
      const std::lock_guard<std::mutex> lk(m_);
      if (--active_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::run_blocks(std::size_t num_blocks,
                            const std::function<void(std::size_t)>& block) {
  if (num_blocks == 0) {
    return;
  }
  if (num_blocks == 1 || workers_.empty() || tls_in_pool_job) {
    obs::count(obs::Counter::kPoolInlineJobs);
    obs::count(obs::Counter::kPoolBlocks, num_blocks);
    // The inline frame participates in occupancy too, but only at the root:
    // when this call is nested inside a worker or caller frame (the sharded
    // trainer's inline-nested path), the depth guard keeps it silent — the
    // enclosing frame's window already covers this time.
    const BusyFrame busy;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      block(b);
    }
    return;
  }

  obs::count(obs::Counter::kPoolJobs);
  obs::count(obs::Counter::kPoolBlocks, num_blocks);
  // Job latency spans queueing behind other run_blocks callers through the
  // last finished block.
  const obs::StageTimer job_timer(obs::Histo::kPoolJobNs);
  const std::lock_guard<std::mutex> job_lk(job_mutex_);
  {
    const std::lock_guard<std::mutex> lk(m_);
    job_ = &block;
    job_blocks_ = num_blocks;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  cv_work_.notify_all();

  // The caller participates instead of idling on the done latch. The TLS
  // guard also covers the caller: a nested parallel_for inside a block runs
  // serially rather than re-entering job_mutex_.
  {
    const BusyFrame busy;
    tls_in_pool_job = true;
    for (;;) {
      const std::size_t b = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks) {
        break;
      }
      block(b);
    }
    tls_in_pool_job = false;
  }

  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  job_ = nullptr;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace reghd::util
