// 64-byte-aligned storage for SoA numeric planes.
//
// std::vector<double>'s default allocator only guarantees 16-byte alignment,
// which makes every other 32-byte SIMD access split a cache line. The SoA
// arenas (core/encoded) and kernel scratch buffers allocate through this
// allocator instead so full-width vector loads of plane data are aligned and
// rows never straddle a destination cache line unnecessarily.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace reghd::util {

inline constexpr std::size_t kCacheLineAlignment = 64;

template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLineAlignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector with cache-line-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace reghd::util
