// Regression quality metrics.
//
// The paper reports quality as test-set mean squared error (Table 1) and as
// relative "quality loss" percentages (Table 2, Figs. 6–7). This module
// provides both, plus the usual companions (RMSE, MAE, R²) used by the test
// suite to sanity-check the learners.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace reghd::util {

/// Mean squared error between predictions and targets.
[[nodiscard]] double mse(std::span<const double> predictions, std::span<const double> targets);

/// Root mean squared error.
[[nodiscard]] double rmse(std::span<const double> predictions, std::span<const double> targets);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> predictions, std::span<const double> targets);

/// Coefficient of determination R². 1 is perfect; 0 matches predicting the
/// mean; negative is worse than the mean predictor. Constant targets make
/// the usual ratio degenerate (ss_tot = 0), so this never divides by zero:
/// it returns 1 when the predictions match the constant targets exactly
/// (a perfect fit) and 0 otherwise (no better than the mean predictor).
[[nodiscard]] double r2(std::span<const double> predictions, std::span<const double> targets);

/// Relative quality loss in percent: 100 · (mse − reference_mse) / reference_mse.
/// This is the paper's Table 2 / Fig. 7 "quality loss" measure.
[[nodiscard]] double quality_loss_percent(double mse_value, double reference_mse);

/// Bundle of all metrics for one evaluation, plus a formatted summary.
struct RegressionMetrics {
  double mse = 0.0;
  double rmse = 0.0;
  double mae = 0.0;
  double r2 = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Computes all metrics in one pass over the data.
[[nodiscard]] RegressionMetrics evaluate_regression(std::span<const double> predictions,
                                                    std::span<const double> targets);

}  // namespace reghd::util
