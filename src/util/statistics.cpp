#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/check.hpp"

namespace reghd::util {

double mean(std::span<const double> values) {
  REGHD_CHECK(!values.empty(), "mean of empty range");
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  REGHD_CHECK(values.size() >= 2, "variance requires at least two values");
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double median(std::span<const double> values) { return quantile(values, 0.5); }

double quantile(std::span<const double> values, double q) {
  REGHD_CHECK(!values.empty(), "quantile of empty range");
  REGHD_CHECK(q >= 0.0 && q <= 1.0, "quantile fraction must lie in [0,1], got " << q);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double pearson(std::span<const double> a, std::span<const double> b) {
  REGHD_CHECK(a.size() == b.size(), "pearson requires equal-length ranges, got "
                                        << a.size() << " vs " << b.size());
  REGHD_CHECK(a.size() >= 2, "pearson requires at least two samples");
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(va * vb);
}

double min_value(std::span<const double> values) {
  REGHD_CHECK(!values.empty(), "min of empty range");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  REGHD_CHECK(!values.empty(), "max of empty range");
  return *std::max_element(values.begin(), values.end());
}

std::vector<double> softmax(std::span<const double> logits, double temperature) {
  std::vector<double> out(logits.begin(), logits.end());
  softmax_inplace(out, temperature);
  return out;
}

void softmax_inplace(std::span<double> logits, double temperature) {
  REGHD_CHECK(!logits.empty(), "softmax of empty range");
  REGHD_CHECK(temperature > 0.0, "softmax temperature must be positive, got " << temperature);
  const double inv_t = 1.0 / temperature;
  double max_logit = logits[0];
  for (const double v : logits) {
    max_logit = std::max(max_logit, v);
  }
  double sum = 0.0;
  for (double& v : logits) {
    v = std::exp((v - max_logit) * inv_t);
    sum += v;
  }
  for (double& v : logits) {
    v /= sum;
  }
}

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

double normal_tail(double x) { return 0.5 * std::erfc(x / std::numbers::sqrt2); }

double normal_quantile(double p) {
  REGHD_CHECK(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got " << p);

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e / normal_pdf(x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace reghd::util
