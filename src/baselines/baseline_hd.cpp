#include "baselines/baseline_hd.hpp"

#include <algorithm>
#include <cmath>

#include "hdc/ops.hpp"
#include "util/check.hpp"

namespace reghd::baselines {

BaselineHd::BaselineHd(BaselineHdConfig config) : config_(config) {
  REGHD_CHECK(config_.dim >= 64, "dim must be at least 64");
  REGHD_CHECK(config_.bins >= 2, "Baseline-HD requires at least two output bins");
  REGHD_CHECK(config_.epochs >= 1, "epochs must be at least 1");
}

std::size_t BaselineHd::bin_of(double target) const {
  const double clamped = std::clamp(target, target_min_, target_max_);
  const double t = (clamped - target_min_) / (target_max_ - target_min_);
  const auto idx = static_cast<std::size_t>(t * static_cast<double>(config_.bins));
  return std::min(idx, config_.bins - 1);
}

double BaselineHd::bin_center(std::size_t bin) const {
  REGHD_CHECK(bin < config_.bins, "bin index out of range");
  const double width = (target_max_ - target_min_) / static_cast<double>(config_.bins);
  return target_min_ + (static_cast<double>(bin) + 0.5) * width;
}

std::size_t BaselineHd::classify(const hdc::EncodedSample& sample) const {
  std::size_t best = 0;
  double best_sim = -2.0;
  for (std::size_t b = 0; b < class_hvs_.size(); ++b) {
    const double sim = hdc::cosine(class_hvs_[b], sample.bipolar);
    if (sim > best_sim) {
      best_sim = sim;
      best = b;
    }
  }
  return best;
}

void BaselineHd::fit(const data::Dataset& train) {
  REGHD_CHECK(train.size() >= 2, "Baseline-HD requires at least two samples");

  data::Dataset scaled = train;
  feature_scaler_.fit(scaled);
  feature_scaler_.transform(scaled);

  target_min_ = scaled.target(0);
  target_max_ = scaled.target(0);
  for (const double y : scaled.targets()) {
    target_min_ = std::min(target_min_, y);
    target_max_ = std::max(target_max_, y);
  }
  if (target_min_ == target_max_) {
    target_max_ = target_min_ + 1.0;  // constant target: one wide bin suffices
  }

  hdc::EncoderConfig enc_cfg;
  enc_cfg.kind = config_.encoder;
  enc_cfg.input_dim = scaled.num_features();
  enc_cfg.dim = config_.dim;
  enc_cfg.seed = config_.seed;
  encoder_ = hdc::make_encoder(enc_cfg);

  // Encode once; reuse across refinement passes.
  std::vector<hdc::EncodedSample> encoded;
  std::vector<std::size_t> bins;
  encoded.reserve(scaled.size());
  bins.reserve(scaled.size());
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    encoded.push_back(encoder_->encode(scaled.row(i)));
    bins.push_back(bin_of(scaled.target(i)));
  }

  // Single-pass bundling.
  class_hvs_.assign(config_.bins, hdc::RealHV(config_.dim));
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    hdc::add_scaled(class_hvs_[bins[i]], encoded[i].bipolar, 1.0);
  }

  // Perceptron-style corrective refinement (standard iterative HD training):
  // misclassified samples are added to the right class and subtracted from
  // the predicted one.
  for (std::size_t epoch = 1; epoch < config_.epochs; ++epoch) {
    std::size_t mistakes = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      const std::size_t predicted = classify(encoded[i]);
      if (predicted != bins[i]) {
        hdc::add_scaled(class_hvs_[bins[i]], encoded[i].bipolar, 1.0);
        hdc::add_scaled(class_hvs_[predicted], encoded[i].bipolar, -1.0);
        ++mistakes;
      }
    }
    if (mistakes == 0) {
      break;
    }
  }
}

double BaselineHd::predict(std::span<const double> features) const {
  REGHD_CHECK(encoder_ != nullptr, "Baseline-HD must be fitted before prediction");
  const std::vector<double> x = feature_scaler_.transform_row(features);
  const hdc::EncodedSample sample = encoder_->encode(x);
  return bin_center(classify(sample));
}

}  // namespace reghd::baselines
