#include "baselines/linear.hpp"

#include <numeric>

#include "util/check.hpp"
#include "util/matrix.hpp"
#include "util/random.hpp"

namespace reghd::baselines {

LinearRegression::LinearRegression(LinearConfig config) : config_(config) {
  REGHD_CHECK(config_.l2 >= 0.0, "l2 must be non-negative");
  REGHD_CHECK(config_.learning_rate > 0.0, "learning_rate must be positive");
  REGHD_CHECK(config_.epochs >= 1, "epochs must be at least 1");
}

void LinearRegression::fit(const data::Dataset& train) {
  REGHD_CHECK(train.size() >= 2, "linear regression requires at least two samples");

  data::Dataset scaled = train;
  feature_scaler_.fit(scaled);
  feature_scaler_.transform(scaled);
  target_scaler_.fit(scaled);
  target_scaler_.transform(scaled);

  const std::size_t n = scaled.num_features();
  weights_.assign(n + 1, 0.0);

  if (!config_.use_sgd) {
    // Design matrix with a trailing 1s column for the bias.
    util::Matrix a(scaled.size(), n + 1);
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      const auto row = scaled.row(i);
      for (std::size_t k = 0; k < n; ++k) {
        a(i, k) = row[k];
      }
      a(i, n) = 1.0;
    }
    // Small positive floor on λ keeps the Gram matrix positive definite
    // even with collinear features.
    const double lambda = std::max(config_.l2, 1e-9);
    weights_ = util::ridge_solve(a, scaled.targets(), lambda);
    return;
  }

  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(scaled.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      const auto row = scaled.row(i);
      double pred = weights_[n];
      for (std::size_t k = 0; k < n; ++k) {
        pred += weights_[k] * row[k];
      }
      const double err = scaled.target(i) - pred;
      const double step = config_.learning_rate * err;
      for (std::size_t k = 0; k < n; ++k) {
        weights_[k] += step * row[k] - config_.learning_rate * config_.l2 * weights_[k];
      }
      weights_[n] += step;
    }
  }
}

double LinearRegression::predict(std::span<const double> features) const {
  REGHD_CHECK(!weights_.empty(), "linear regression must be fitted before prediction");
  const std::vector<double> x = feature_scaler_.transform_row(features);
  const std::size_t n = x.size();
  REGHD_CHECK(weights_.size() == n + 1, "feature count mismatch at prediction");
  double pred = weights_[n];
  for (std::size_t k = 0; k < n; ++k) {
    pred += weights_[k] * x[k];
  }
  return target_scaler_.inverse_value(pred);
}

}  // namespace reghd::baselines
