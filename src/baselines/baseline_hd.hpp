// Baseline-HD (paper ref. [18], Mitrokhin et al.): regression emulated with
// HD *classification*. The target range is discretized into bins, one class
// hypervector per bin; training bundles encoded samples into their bin's
// hypervector (with perceptron-style corrective refinement); prediction
// returns the center of the most similar bin.
//
// This is the paper's Table 1 "Baseline-HD" row. Its two structural
// handicaps — output quantization error (range²/12·bins² at best) and the
// need for hundreds of class hypervectors to get precision — are exactly
// what RegHD's native regression removes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/scaler.hpp"
#include "hdc/encoding.hpp"
#include "model/regressor.hpp"

namespace reghd::baselines {

struct BaselineHdConfig {
  std::size_t dim = 4096;
  std::size_t bins = 64;        ///< Output classes (the paper's approach needs hundreds).
  std::size_t epochs = 20;      ///< Corrective-refinement passes.
  std::uint64_t seed = 21;
  hdc::EncoderKind encoder = hdc::EncoderKind::kRffProjection;
};

class BaselineHd final : public model::Regressor {
 public:
  explicit BaselineHd(BaselineHdConfig config = {});

  [[nodiscard]] std::string name() const override { return "Baseline-HD"; }

  void fit(const data::Dataset& train) override;

  [[nodiscard]] double predict(std::span<const double> features) const override;

  /// Bin index a target value falls into (clamped to the training range).
  [[nodiscard]] std::size_t bin_of(double target) const;

  /// Representative output of one bin (its center).
  [[nodiscard]] double bin_center(std::size_t bin) const;

  [[nodiscard]] std::size_t num_bins() const noexcept { return config_.bins; }

 private:
  [[nodiscard]] std::size_t classify(const hdc::EncodedSample& sample) const;

  BaselineHdConfig config_;
  data::StandardScaler feature_scaler_;
  std::unique_ptr<hdc::Encoder> encoder_;
  std::vector<hdc::RealHV> class_hvs_;
  double target_min_ = 0.0;
  double target_max_ = 1.0;
};

}  // namespace reghd::baselines
