#include "baselines/grid_search.hpp"

#include <limits>

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace reghd::baselines {

GridSearchResult grid_search(
    const std::function<std::unique_ptr<model::Regressor>(std::size_t)>& factory,
    std::size_t candidates, const data::Dataset& train, double validation_fraction,
    std::uint64_t seed) {
  REGHD_CHECK(candidates >= 1, "grid search requires at least one candidate");
  REGHD_CHECK(factory != nullptr, "grid search requires a candidate factory");

  util::Rng rng(seed);
  const data::TrainTestSplit split = data::train_test_split(train, validation_fraction, rng);

  GridSearchResult result;
  result.val_mse.reserve(candidates);
  result.best_val_mse = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < candidates; ++c) {
    std::unique_ptr<model::Regressor> learner = factory(c);
    REGHD_CHECK(learner != nullptr, "grid search factory returned null for candidate " << c);
    learner->fit(split.train);
    const std::vector<double> predictions = learner->predict_batch(split.test);
    const double mse = util::mse(predictions, split.test.targets());
    result.val_mse.push_back(mse);
    if (mse < result.best_val_mse) {
      result.best_val_mse = mse;
      result.best_index = c;
    }
  }
  return result;
}

}  // namespace reghd::baselines
