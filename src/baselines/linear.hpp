// Linear regression baseline (the paper's Table 1 "Logistic Regression" row
// — for continuous targets the scikit-learn practice it references reduces
// to a regularized linear model).
//
// Two solvers: closed-form ridge via the normal equations (default; exact),
// and SGD (for the streaming comparison). Features and target are
// standardized internally.
#pragma once

#include <cstdint>
#include <vector>

#include "data/scaler.hpp"
#include "model/regressor.hpp"

namespace reghd::baselines {

struct LinearConfig {
  double l2 = 1e-3;          ///< Ridge strength (normal-equations solver).
  bool use_sgd = false;      ///< Use SGD instead of the closed form.
  double learning_rate = 0.01;
  std::size_t epochs = 50;
  std::uint64_t seed = 1;
};

class LinearRegression final : public model::Regressor {
 public:
  explicit LinearRegression(LinearConfig config = {});

  [[nodiscard]] std::string name() const override { return "LinearRegression"; }

  void fit(const data::Dataset& train) override;

  [[nodiscard]] double predict(std::span<const double> features) const override;

  /// Learned weights in standardized feature space (bias last).
  [[nodiscard]] std::span<const double> weights() const noexcept { return weights_; }

 private:
  LinearConfig config_;
  data::StandardScaler feature_scaler_;
  data::TargetScaler target_scaler_;
  std::vector<double> weights_;  ///< n feature weights + bias.
};

}  // namespace reghd::baselines
