// CART regression tree baseline (Table 1 "Decision Tree").
//
// Greedy binary splitting on variance reduction with exact best-split search
// over sorted feature values; leaves predict the mean of their samples.
// Depth, leaf size, and minimum-improvement knobs match the usual
// scikit-learn surface the paper's grid search tunes.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "model/regressor.hpp"

namespace reghd::baselines {

struct DecisionTreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 4;
  std::size_t min_samples_split = 8;
  double min_impurity_decrease = 0.0;  ///< Absolute SSE-reduction threshold.
};

class DecisionTree final : public model::Regressor {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {});

  [[nodiscard]] std::string name() const override { return "DecisionTree"; }

  void fit(const data::Dataset& train) override;

  [[nodiscard]] double predict(std::span<const double> features) const override;

  /// Number of nodes (internal + leaves) in the fitted tree.
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Depth of the fitted tree (root = 0; empty tree = 0).
  [[nodiscard]] std::size_t depth() const noexcept;

 private:
  struct Node {
    // Internal node when feature != npos; leaf otherwise.
    std::size_t feature = static_cast<std::size_t>(-1);
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    double value = 0.0;  ///< Leaf prediction.
    std::size_t depth = 0;

    [[nodiscard]] bool is_leaf() const noexcept {
      return feature == static_cast<std::size_t>(-1);
    }
  };

  std::size_t build(const data::Dataset& train, std::vector<std::size_t>& indices,
                    std::size_t begin, std::size_t end, std::size_t depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace reghd::baselines
