#include "baselines/svr.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "util/check.hpp"
#include "util/random.hpp"

namespace reghd::baselines {

Svr::Svr(SvrConfig config) : config_(config) {
  REGHD_CHECK(config_.epsilon >= 0.0, "epsilon must be non-negative");
  REGHD_CHECK(config_.c > 0.0, "C must be positive");
  REGHD_CHECK(config_.learning_rate > 0.0, "learning_rate must be positive");
  REGHD_CHECK(config_.epochs >= 1, "epochs must be at least 1");
  REGHD_CHECK(config_.rbf_features >= 1, "rbf_features must be positive");
  REGHD_CHECK(config_.gamma >= 0.0, "gamma must be non-negative (0 = auto)");
}

std::vector<double> Svr::lift(std::span<const double> x) const {
  if (config_.kernel == SvrKernel::kLinear) {
    return std::vector<double>(x.begin(), x.end());
  }
  // Random Fourier features: z_j = √(2/m)·cos(ω_j·x + b_j), with
  // ω ~ N(0, 2γ·I) approximating exp(−γ‖x−x'‖²).
  const std::size_t m = config_.rbf_features;
  const std::size_t n = x.size();
  std::vector<double> z(m);
  const double scale = std::sqrt(2.0 / static_cast<double>(m));
  for (std::size_t j = 0; j < m; ++j) {
    const double* row = omega_.data() + j * n;
    double dot = phase_[j];
    for (std::size_t k = 0; k < n; ++k) {
      dot += row[k] * x[k];
    }
    z[j] = scale * std::cos(dot);
  }
  return z;
}

void Svr::fit(const data::Dataset& train) {
  REGHD_CHECK(train.size() >= 2, "SVR requires at least two samples");

  data::Dataset scaled = train;
  feature_scaler_.fit(scaled);
  feature_scaler_.transform(scaled);
  target_scaler_.fit(scaled);
  target_scaler_.transform(scaled);

  const std::size_t n = scaled.num_features();
  util::Rng rng(config_.seed);

  if (config_.kernel == SvrKernel::kRbf) {
    const double gamma = config_.gamma > 0.0
                             ? config_.gamma
                             : 1.0 / (2.0 * static_cast<double>(n));  // auto bandwidth
    const double omega_std = std::sqrt(2.0 * gamma);
    omega_.resize(config_.rbf_features * n);
    for (double& w : omega_) {
      w = rng.normal(0.0, omega_std);
    }
    phase_.resize(config_.rbf_features);
    for (double& b : phase_) {
      b = rng.uniform(0.0, 2.0 * std::numbers::pi);
    }
  } else {
    omega_.clear();
    phase_.clear();
  }

  const std::size_t lifted_dim =
      config_.kernel == SvrKernel::kRbf ? config_.rbf_features : n;
  weights_.assign(lifted_dim, 0.0);
  bias_ = 0.0;

  // Pre-lift all rows once.
  std::vector<std::vector<double>> lifted(scaled.size());
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    lifted[i] = lift(scaled.row(i));
  }

  std::vector<std::size_t> order(scaled.size());
  std::iota(order.begin(), order.end(), 0);

  // Pegasos-style SGD on  λ/2‖w‖² + max(0, |y − f(x)| − ε), λ = 1/C.
  const double lambda = 1.0 / config_.c;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    // 1/√(1+epoch) decay keeps early progress fast and the tail stable.
    const double lr = config_.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (const std::size_t i : order) {
      const std::vector<double>& z = lifted[i];
      double pred = bias_;
      for (std::size_t k = 0; k < z.size(); ++k) {
        pred += weights_[k] * z[k];
      }
      const double residual = scaled.target(i) - pred;
      // Subgradient of the ε-insensitive loss.
      double g = 0.0;
      if (residual > config_.epsilon) {
        g = -1.0;
      } else if (residual < -config_.epsilon) {
        g = 1.0;
      }
      for (std::size_t k = 0; k < z.size(); ++k) {
        weights_[k] -= lr * (g * z[k] + lambda * weights_[k]);
      }
      bias_ -= lr * g;
    }
  }
}

double Svr::predict(std::span<const double> features) const {
  REGHD_CHECK(!weights_.empty(), "SVR must be fitted before prediction");
  const std::vector<double> x = feature_scaler_.transform_row(features);
  const std::vector<double> z = lift(x);
  double pred = bias_;
  for (std::size_t k = 0; k < z.size(); ++k) {
    pred += weights_[k] * z[k];
  }
  return target_scaler_.inverse_value(pred);
}

}  // namespace reghd::baselines
