#include "baselines/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/early_stopping.hpp"
#include "util/check.hpp"
#include "util/matrix.hpp"
#include "util/random.hpp"

namespace reghd::baselines {

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  REGHD_CHECK(!config_.hidden.empty(), "MLP requires at least one hidden layer");
  for (const std::size_t h : config_.hidden) {
    REGHD_CHECK(h >= 1, "hidden layer width must be positive");
  }
  REGHD_CHECK(config_.learning_rate > 0.0, "learning_rate must be positive");
  REGHD_CHECK(config_.momentum >= 0.0 && config_.momentum < 1.0,
              "momentum must lie in [0,1)");
  REGHD_CHECK(config_.max_epochs >= 1, "max_epochs must be at least 1");
  REGHD_CHECK(config_.patience >= 1, "patience must be at least 1");
  REGHD_CHECK(config_.validation_fraction > 0.0 && config_.validation_fraction < 0.5,
              "validation_fraction must lie in (0, 0.5)");
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.w.size() + layer.b.size();
  }
  return total;
}

double Mlp::forward(std::span<const double> x,
                    std::vector<std::vector<double>>* activations) const {
  std::vector<double> current(x.begin(), x.end());
  if (activations != nullptr) {
    activations->clear();
  }
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const bool is_output = li + 1 == layers_.size();
    std::vector<double> next(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const double* row = layer.w.data() + o * layer.in;
      double z = layer.b[o];
      for (std::size_t i = 0; i < layer.in; ++i) {
        z += row[i] * current[i];
      }
      next[o] = is_output ? z : std::max(z, 0.0);  // ReLU on hidden layers
    }
    current = std::move(next);
    if (activations != nullptr) {
      activations->push_back(current);
    }
  }
  return current[0];
}

std::vector<double> Mlp::forward_batch(std::span<const double> rows_flat,
                                       std::size_t num_rows) const {
  REGHD_CHECK(!layers_.empty(), "MLP must be initialized before forward_batch");
  REGHD_CHECK(rows_flat.size() == num_rows * layers_.front().in,
              "forward_batch: flat block size " << rows_flat.size() << " != "
                                                << num_rows << " rows of width "
                                                << layers_.front().in);
  std::vector<double> current(rows_flat.begin(), rows_flat.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const bool is_output = li + 1 == layers_.size();
    // Bias-initialize, then accumulate the whole batch against the layer's
    // weight rows. Each output element reduces in the same ascending order
    // as forward()'s "z = b[o]; z += row[i]·x[i]" loop, so the batch pass is
    // bit-identical per row.
    std::vector<double> next(num_rows * layer.out);
    for (std::size_t r = 0; r < num_rows; ++r) {
      std::copy(layer.b.begin(), layer.b.end(), next.begin() + static_cast<std::ptrdiff_t>(r * layer.out));
    }
    util::matmul_nt_accumulate(current.data(), layer.w.data(), next.data(), num_rows,
                               layer.in, layer.out);
    if (!is_output) {
      for (double& z : next) {
        z = std::max(z, 0.0);  // ReLU
      }
    }
    current = std::move(next);
  }
  return current;  // output layer has width 1 → one prediction per row
}

void Mlp::backward_and_update(std::span<const double> x,
                              const std::vector<std::vector<double>>& activations,
                              double error) {
  // delta of the output layer for L = ½(y − ŷ)²: dL/dz_out = −error.
  std::vector<double> delta = {-error};

  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const std::span<const double> input =
        li == 0 ? x : std::span<const double>(activations[li - 1]);

    // Propagate delta to the previous layer before mutating weights.
    std::vector<double> prev_delta;
    if (li > 0) {
      prev_delta.assign(layer.in, 0.0);
      for (std::size_t o = 0; o < layer.out; ++o) {
        const double* row = layer.w.data() + o * layer.in;
        for (std::size_t i = 0; i < layer.in; ++i) {
          prev_delta[i] += row[i] * delta[o];
        }
      }
      // ReLU derivative of the previous layer's activation.
      const std::vector<double>& prev_act = activations[li - 1];
      for (std::size_t i = 0; i < layer.in; ++i) {
        if (prev_act[i] <= 0.0) {
          prev_delta[i] = 0.0;
        }
      }
    }

    // SGD with momentum + L2 on this layer.
    const double lr = config_.learning_rate;
    for (std::size_t o = 0; o < layer.out; ++o) {
      double* row = layer.w.data() + o * layer.in;
      double* vrow = layer.vw.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) {
        const double grad = delta[o] * input[i] + config_.l2 * row[i];
        vrow[i] = config_.momentum * vrow[i] - lr * grad;
        row[i] += vrow[i];
      }
      layer.vb[o] = config_.momentum * layer.vb[o] - lr * delta[o];
      layer.b[o] += layer.vb[o];
    }

    delta = std::move(prev_delta);
  }
}

void Mlp::fit(const data::Dataset& train) {
  REGHD_CHECK(train.size() >= 8, "MLP fit requires at least 8 samples");

  data::Dataset scaled = train;
  feature_scaler_.fit(scaled);
  feature_scaler_.transform(scaled);
  target_scaler_.fit(scaled);
  target_scaler_.transform(scaled);

  util::Rng rng(config_.seed);
  util::Rng split_rng = rng.split();
  util::Rng init_rng = rng.split();
  util::Rng order_rng = rng.split();

  const data::TrainTestSplit split =
      data::train_test_split(scaled, config_.validation_fraction, split_rng);

  // He initialization.
  layers_.clear();
  std::size_t in = scaled.num_features();
  std::vector<std::size_t> widths = config_.hidden;
  widths.push_back(1);
  for (const std::size_t out : widths) {
    Layer layer;
    layer.in = in;
    layer.out = out;
    layer.w.resize(in * out);
    layer.b.assign(out, 0.0);
    layer.vw.assign(in * out, 0.0);
    layer.vb.assign(out, 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (double& w : layer.w) {
      w = init_rng.normal(0.0, scale);
    }
    layers_.push_back(std::move(layer));
    in = out;
  }

  std::vector<std::size_t> order(split.train.size());
  std::iota(order.begin(), order.end(), 0);

  core::EarlyStopper stopper(1e-3, config_.patience);
  std::vector<std::vector<double>> activations;

  // Keep the best weights seen on validation.
  std::vector<Layer> best_layers = layers_;
  double best_val = std::numeric_limits<double>::infinity();

  epochs_run_ = 0;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    order_rng.shuffle(order);
    for (const std::size_t i : order) {
      const auto x = split.train.row(i);
      const double pred = forward(x, &activations);
      const double error = split.train.target(i) - pred;
      backward_and_update(x, activations, error);
    }
    ++epochs_run_;

    const std::vector<double> val_pred =
        forward_batch(split.test.features_flat(), split.test.size());
    double val_sq = 0.0;
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      const double e = val_pred[i] - split.test.target(i);
      val_sq += e * e;
    }
    const double val_mse = val_sq / static_cast<double>(split.test.size());
    if (val_mse < best_val) {
      best_val = val_mse;
      best_layers = layers_;
    }
    if (stopper.update(val_mse)) {
      break;
    }
  }
  layers_ = std::move(best_layers);
}

double Mlp::predict(std::span<const double> features) const {
  REGHD_CHECK(!layers_.empty(), "MLP must be fitted before prediction");
  const std::vector<double> x = feature_scaler_.transform_row(features);
  return target_scaler_.inverse_value(forward(x, nullptr));
}

}  // namespace reghd::baselines
