// Support vector regression baseline (Table 1 "SVR").
//
// Primal ε-insensitive SVR trained by SGD. Two kernels:
//  * linear — weights directly on standardized features;
//  * rbf    — approximated with random Fourier features (Rahimi–Recht),
//             which turns kernel SVR into a linear problem in a randomized
//             feature space. This mirrors the encoder theme of the paper:
//             RegHD's nonlinear encoding is itself an RFF-style map.
#pragma once

#include <cstdint>
#include <vector>

#include "data/scaler.hpp"
#include "model/regressor.hpp"

namespace reghd::baselines {

enum class SvrKernel : std::uint8_t { kLinear = 0, kRbf = 1 };

struct SvrConfig {
  SvrKernel kernel = SvrKernel::kRbf;
  double epsilon = 0.05;      ///< ε-insensitive tube half-width (standardized units).
  double c = 100.0;           ///< Inverse regularization strength.
  double learning_rate = 0.02;
  std::size_t epochs = 60;
  // RBF approximation.
  std::size_t rbf_features = 256;
  /// RBF kernel exp(−γ‖x−x'‖²). 0 (default) auto-scales to 1/(2·n_features)
  /// — pairwise distances² between standardized samples grow linearly in the
  /// feature count, so a fixed γ over-sharpens high-dimensional data.
  double gamma = 0.0;
  std::uint64_t seed = 11;
};

class Svr final : public model::Regressor {
 public:
  explicit Svr(SvrConfig config = {});

  [[nodiscard]] std::string name() const override { return "SVR"; }

  void fit(const data::Dataset& train) override;

  [[nodiscard]] double predict(std::span<const double> features) const override;

 private:
  /// Maps a standardized row into the (possibly randomized) feature space.
  [[nodiscard]] std::vector<double> lift(std::span<const double> x) const;

  SvrConfig config_;
  data::StandardScaler feature_scaler_;
  data::TargetScaler target_scaler_;
  // RFF parameters (rbf kernel only).
  std::vector<double> omega_;  // rbf_features × n, row-major
  std::vector<double> phase_;  // rbf_features
  // Linear model in the lifted space (+ bias).
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace reghd::baselines
