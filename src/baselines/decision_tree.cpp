#include "baselines/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace reghd::baselines {

DecisionTree::DecisionTree(DecisionTreeConfig config) : config_(config) {
  REGHD_CHECK(config_.max_depth >= 1, "max_depth must be at least 1");
  REGHD_CHECK(config_.min_samples_leaf >= 1, "min_samples_leaf must be at least 1");
  REGHD_CHECK(config_.min_samples_split >= 2, "min_samples_split must be at least 2");
  REGHD_CHECK(config_.min_impurity_decrease >= 0.0,
              "min_impurity_decrease must be non-negative");
}

namespace {

/// Mean of targets over indices[begin, end).
double subset_mean(const data::Dataset& d, const std::vector<std::size_t>& idx,
                   std::size_t begin, std::size_t end) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    acc += d.target(idx[i]);
  }
  return acc / static_cast<double>(end - begin);
}

/// Sum of squared errors about the subset mean.
double subset_sse(const data::Dataset& d, const std::vector<std::size_t>& idx,
                  std::size_t begin, std::size_t end) {
  const double mean = subset_mean(d, idx, begin, end);
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double e = d.target(idx[i]) - mean;
    acc += e * e;
  }
  return acc;
}

}  // namespace

std::size_t DecisionTree::build(const data::Dataset& train, std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end, std::size_t depth) {
  const std::size_t count = end - begin;
  const std::size_t node_index = nodes_.size();
  nodes_.emplace_back();
  nodes_[node_index].depth = depth;
  nodes_[node_index].value = subset_mean(train, indices, begin, end);

  if (depth >= config_.max_depth || count < config_.min_samples_split) {
    return node_index;
  }

  const double parent_sse = subset_sse(train, indices, begin, end);
  if (parent_sse <= 0.0) {
    return node_index;  // pure node
  }

  // Best split: minimize left SSE + right SSE using the incremental
  // left/right sum decomposition over each sorted feature.
  double best_gain = config_.min_impurity_decrease;
  std::size_t best_feature = static_cast<std::size_t>(-1);
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> column(count);  // (feature value, target)
  for (std::size_t f = 0; f < train.num_features(); ++f) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t sample = indices[begin + i];
      column[i] = {train.row(sample)[f], train.target(sample)};
    }
    std::sort(column.begin(), column.end());

    double total_sum = 0.0;
    double total_sq = 0.0;
    for (const auto& [_, y] : column) {
      total_sum += y;
      total_sq += y * y;
    }

    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const double y = column[i].second;
      left_sum += y;
      left_sq += y * y;
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) {
        continue;
      }
      if (column[i].first == column[i + 1].first) {
        continue;  // cannot split between equal values
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double left_sse = left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature == static_cast<std::size_t>(-1)) {
    return node_index;  // no admissible split
  }

  // Partition indices[begin, end) by the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t s) { return train.row(s)[best_feature] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(std::distance(indices.begin(), mid_it));
  REGHD_INTERNAL_CHECK(mid > begin && mid < end, "degenerate partition in tree build");

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const std::size_t left_child = build(train, indices, begin, mid, depth + 1);
  nodes_[node_index].left = left_child;
  const std::size_t right_child = build(train, indices, mid, end, depth + 1);
  nodes_[node_index].right = right_child;
  return node_index;
}

void DecisionTree::fit(const data::Dataset& train) {
  REGHD_CHECK(!train.empty(), "decision tree requires a non-empty training set");
  nodes_.clear();
  std::vector<std::size_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(train, indices, 0, train.size(), 0);
}

double DecisionTree::predict(std::span<const double> features) const {
  REGHD_CHECK(!nodes_.empty(), "decision tree must be fitted before prediction");
  std::size_t node = 0;
  while (!nodes_[node].is_leaf()) {
    const Node& n = nodes_[node];
    REGHD_CHECK(n.feature < features.size(),
                "prediction row has too few features for this tree");
    node = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[node].value;
}

std::size_t DecisionTree::depth() const noexcept {
  std::size_t d = 0;
  for (const Node& n : nodes_) {
    d = std::max(d, n.depth);
  }
  return d;
}

}  // namespace reghd::baselines
