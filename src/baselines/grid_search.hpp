// Hyper-parameter grid search (§4.2: "the common practice of the grid
// search to identify the best hyper-parameters for each model").
//
// Candidates are produced by a factory function over an index; each is
// fitted on a held-out split of the training data and scored by validation
// MSE. The caller refits the winning candidate on the full training set.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "model/regressor.hpp"

namespace reghd::baselines {

struct GridSearchResult {
  std::size_t best_index = 0;
  double best_val_mse = 0.0;
  std::vector<double> val_mse;  ///< Per-candidate validation MSE.
};

/// Fits each of `candidates` learners from `factory` on an internal split of
/// `train` and returns their validation scores. Deterministic in `seed`.
[[nodiscard]] GridSearchResult grid_search(
    const std::function<std::unique_ptr<model::Regressor>(std::size_t)>& factory,
    std::size_t candidates, const data::Dataset& train, double validation_fraction,
    std::uint64_t seed);

/// Trivial mean predictor — the sanity floor every real learner must beat.
class MeanPredictor final : public model::Regressor {
 public:
  [[nodiscard]] std::string name() const override { return "Mean"; }

  void fit(const data::Dataset& train) override {
    double acc = 0.0;
    for (const double y : train.targets()) {
      acc += y;
    }
    mean_ = train.empty() ? 0.0 : acc / static_cast<double>(train.size());
    fitted_ = true;
  }

  [[nodiscard]] double predict(std::span<const double> /*features*/) const override {
    return mean_;
  }

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

 private:
  double mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace reghd::baselines
