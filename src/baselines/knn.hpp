// k-nearest-neighbours regression baseline.
//
// Not in the paper's Table 1, but the natural sanity comparator for a
// similarity-based learner: RegHD is, at heart, a compressed similarity
// search — kNN is the uncompressed one. Brute-force Euclidean search over
// standardized features with optional inverse-distance weighting.
#pragma once

#include <vector>

#include "data/scaler.hpp"
#include "model/regressor.hpp"

namespace reghd::baselines {

struct KnnConfig {
  std::size_t k = 5;
  /// Weight neighbours by 1/(distance + ε) instead of uniformly.
  bool distance_weighted = true;
};

class KnnRegressor final : public model::Regressor {
 public:
  explicit KnnRegressor(KnnConfig config = {});

  [[nodiscard]] std::string name() const override { return "kNN"; }

  /// Stores the (standardized) training set.
  void fit(const data::Dataset& train) override;

  [[nodiscard]] double predict(std::span<const double> features) const override;

  [[nodiscard]] std::size_t training_size() const noexcept { return targets_.size(); }

 private:
  KnnConfig config_;
  data::StandardScaler feature_scaler_;
  std::size_t num_features_ = 0;
  std::vector<double> features_;  // row-major standardized training features
  std::vector<double> targets_;
};

}  // namespace reghd::baselines
