// Feed-forward neural network baseline (the paper's Table 1 / Fig. 8 "DNN"):
// input → hidden layers (ReLU) → linear output, trained with mini-batch SGD
// with momentum on MSE loss and early stopping on a validation split.
// Implemented from scratch — no external ML dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "data/scaler.hpp"
#include "model/regressor.hpp"

namespace reghd::baselines {

struct MlpConfig {
  std::vector<std::size_t> hidden = {128, 64};
  // Per-sample SGD: high momentum compounds with correlated consecutive
  // samples and diverges; 0.5 with a modest rate is stable across the
  // evaluation datasets.
  double learning_rate = 0.005;
  double momentum = 0.5;
  double l2 = 1e-4;
  std::size_t max_epochs = 200;
  std::size_t patience = 10;
  double validation_fraction = 0.15;
  std::uint64_t seed = 7;
};

class Mlp final : public model::Regressor {
 public:
  explicit Mlp(MlpConfig config = {});

  [[nodiscard]] std::string name() const override { return "DNN"; }

  void fit(const data::Dataset& train) override;

  [[nodiscard]] double predict(std::span<const double> features) const override;

  /// Number of epochs the last fit actually ran (consumed by the Fig. 8
  /// efficiency bench, which feeds measured epoch counts into the cost
  /// model).
  [[nodiscard]] std::size_t epochs_run() const noexcept { return epochs_run_; }

  /// Total trainable parameters for the current topology.
  [[nodiscard]] std::size_t parameter_count() const noexcept;

  /// Forward pass over `num_rows` already-scaled feature rows stored
  /// contiguously row-major, via the blocked util::matmul_nt_accumulate —
  /// one weight-tile stream per layer instead of per sample. Bit-identical
  /// to calling forward() per row (used by the fit() validation loop).
  [[nodiscard]] std::vector<double> forward_batch(std::span<const double> rows_flat,
                                                  std::size_t num_rows) const;

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> w;   // out × in, row-major
    std::vector<double> b;   // out
    std::vector<double> vw;  // momentum buffers
    std::vector<double> vb;
  };

  [[nodiscard]] double forward(std::span<const double> x,
                               std::vector<std::vector<double>>* activations) const;
  void backward_and_update(std::span<const double> x,
                           const std::vector<std::vector<double>>& activations,
                           double error);

  MlpConfig config_;
  data::StandardScaler feature_scaler_;
  data::TargetScaler target_scaler_;
  std::vector<Layer> layers_;
  std::size_t epochs_run_ = 0;
};

}  // namespace reghd::baselines
