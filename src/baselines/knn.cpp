#include "baselines/knn.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace reghd::baselines {

KnnRegressor::KnnRegressor(KnnConfig config) : config_(config) {
  REGHD_CHECK(config_.k >= 1, "kNN requires k >= 1");
}

void KnnRegressor::fit(const data::Dataset& train) {
  REGHD_CHECK(!train.empty(), "kNN requires a non-empty training set");
  data::Dataset scaled = train;
  feature_scaler_.fit(scaled);
  feature_scaler_.transform(scaled);

  num_features_ = scaled.num_features();
  features_.assign(scaled.features_flat().begin(), scaled.features_flat().end());
  targets_.assign(scaled.targets().begin(), scaled.targets().end());
}

double KnnRegressor::predict(std::span<const double> features) const {
  REGHD_CHECK(!targets_.empty(), "kNN must be fitted before prediction");
  const std::vector<double> q = feature_scaler_.transform_row(features);

  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, double>> dist_target(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const double* row = features_.data() + i * num_features_;
    double d2 = 0.0;
    for (std::size_t j = 0; j < num_features_; ++j) {
      const double d = row[j] - q[j];
      d2 += d * d;
    }
    dist_target[i] = {d2, targets_[i]};
  }
  const std::size_t k = std::min(config_.k, targets_.size());
  std::partial_sort(dist_target.begin(),
                    dist_target.begin() + static_cast<std::ptrdiff_t>(k),
                    dist_target.end());

  if (!config_.distance_weighted) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      acc += dist_target[i].second;
    }
    return acc / static_cast<double>(k);
  }

  double weighted = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(dist_target[i].first) + 1e-9);
    weighted += w * dist_target[i].second;
    weight_sum += w;
  }
  return weighted / weight_sum;
}

}  // namespace reghd::baselines
