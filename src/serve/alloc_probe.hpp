// Predict-path instrumentation seam for the no-allocation assertion.
//
// The serving bench replaces global operator new in its own translation
// unit and installs a probe here; the shard worker calls the probe with
// entering=true/false around the drained-work section of every iteration.
// In production no probe is installed and the cost is one relaxed load per
// drain group. This keeps the assertion machinery out of the runtime while
// letting the bench prove "predict path allocates nothing" on the real
// code, not a copy of it.
#pragma once

namespace reghd::serve {

using PredictPathProbe = void (*)(bool entering);

/// Installs (or, with nullptr, removes) the process-wide probe.
void set_predict_path_probe(PredictPathProbe probe) noexcept;

/// The currently installed probe, or nullptr.
[[nodiscard]] PredictPathProbe predict_path_probe() noexcept;

}  // namespace reghd::serve
