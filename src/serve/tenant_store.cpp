#include "serve/tenant_store.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "core/checkpoint.hpp"
#include "hdc/capacity.hpp"
#include "obs/telemetry.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace reghd::serve {

namespace {

/// Spilled blobs are whole v2 checkpoint containers; anything past this is
/// damaged metadata, not a tenant model.
constexpr std::size_t kMaxSpillFileBytes = 1ull << 30;

[[nodiscard]] std::size_t round_up_64(std::size_t d) noexcept {
  return (d + 63) / 64 * 64;
}

}  // namespace

TenantStore::TenantStore(TenantStoreConfig config, core::OnlineConfig online,
                         std::size_t num_features)
    : config_(std::move(config)), online_(std::move(online)), nf_(num_features) {
  REGHD_CHECK(config_.resident_budget >= 1,
              "tenant store requires a resident budget of at least 1");
  REGHD_CHECK(num_features > 0, "tenant store requires at least one feature");
  online_.reghd.validate();

  // Tier table: tier t serves tenants with cumulative updates below
  // tier_updates[t]; its dimension is the capacity-model lower bound for
  // that many superposed patterns (Eqs. 3–4), rounded to a multiple of 64
  // and clamped into [64, base D]. The final tier is always the base
  // configuration. Boundaries must ascend; dims are made monotone so a
  // promotion never shrinks a model.
  const std::size_t base_dim = online_.reghd.dim;
  if (config_.tiered_dims) {
    REGHD_CHECK(config_.capacity_threshold > 0.0 && config_.capacity_threshold < 1.0,
                "capacity threshold must lie in (0,1)");
    REGHD_CHECK(config_.capacity_max_error > 0.0 && config_.capacity_max_error < 0.5,
                "capacity max error must lie in (0,0.5)");
    std::size_t prev_bound = 0;
    std::size_t prev_dim = 64;
    for (const std::size_t bound : config_.tier_updates) {
      REGHD_CHECK(bound > prev_bound, "tier update boundaries must strictly ascend");
      prev_bound = bound;
      std::size_t d = round_up_64(hdc::min_dimension(bound, config_.capacity_threshold,
                                                     config_.capacity_max_error));
      d = std::clamp<std::size_t>(d, prev_dim, base_dim);
      tier_dims_.push_back(d);
      prev_dim = d;
    }
  }
  tier_dims_.push_back(base_dim);

  if (!config_.spill_dir.empty()) {
    std::filesystem::create_directories(config_.spill_dir);
  }
  entries_.resize(config_.resident_budget);
  free_.reserve(config_.resident_budget);
  for (std::size_t i = config_.resident_budget; i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
  resident_index_.reserve(config_.resident_budget * 2);
  predict_scratch_.resize(nf_);
}

std::size_t TenantStore::tier_of(std::uint64_t updates) const noexcept {
  if (!config_.tiered_dims) {
    return tier_dims_.size() - 1;
  }
  for (std::size_t t = 0; t < config_.tier_updates.size(); ++t) {
    if (updates < config_.tier_updates[t]) {
      return t;
    }
  }
  return tier_dims_.size() - 1;
}

std::unique_ptr<core::OnlineRegHD> TenantStore::make_learner(std::size_t tier) const {
  core::OnlineConfig cfg = online_;
  cfg.reghd.dim = tier_dims_[tier];  // the ctor re-derives encoder.dim from this
  return std::make_unique<core::OnlineRegHD>(cfg, nf_);
}

std::string TenantStore::spill_path(std::uint64_t key) const {
  return config_.spill_dir + "/tenant_" + std::to_string(key) + ".reghd";
}

std::size_t TenantStore::approx_learner_bytes(std::size_t tier) const {
  // Dominant planes per model: real accumulator + cluster center (8 B/dim
  // each), bipolar snapshot + ternary byte plane (1 B/dim each), packed
  // 2-bit bank (¼ B/dim), plus the Welford statistics and fixed overhead.
  // With rematerialized projections nothing else scales with D.
  const std::size_t d = tier_dims_[tier];
  const std::size_t per_model = d * (8 + 8 + 1 + 1) + d / 4;
  return online_.reghd.models * per_model + nf_ * 24 + 512;
}

void TenantStore::lru_unlink(std::uint32_t slot) {
  Entry& e = entries_[slot];
  if (e.prev != kNil) {
    entries_[e.prev].next = e.next;
  } else {
    lru_head_ = e.next;
  }
  if (e.next != kNil) {
    entries_[e.next].prev = e.prev;
  } else {
    lru_tail_ = e.prev;
  }
  e.prev = kNil;
  e.next = kNil;
}

void TenantStore::lru_push_front(std::uint32_t slot) {
  Entry& e = entries_[slot];
  e.prev = kNil;
  e.next = lru_head_;
  if (lru_head_ != kNil) {
    entries_[lru_head_].prev = slot;
  }
  lru_head_ = slot;
  if (lru_tail_ == kNil) {
    lru_tail_ = slot;
  }
}

void TenantStore::evict_lru_tail() {
  REGHD_CHECK(lru_tail_ != kNil, "tenant eviction requested on an empty store");
  const obs::StageTimer timer(obs::Histo::kTenantEvictNs);
  const std::uint32_t slot = lru_tail_;
  Entry& e = entries_[slot];

  // Serialize the complete online state through the v2 container — the
  // bit-identical-resume guarantee is exactly the checkpoint suite's.
  std::ostringstream buf(std::ios::binary);
  core::save_online_checkpoint(buf, *e.learner);
  std::string blob = std::move(buf).str();

  Spilled sp;
  sp.updates = e.updates;
  sp.tier = e.tier;
  sp.bytes = blob.size();
  sp.seq = ++spill_seq_;
  if (config_.spill_dir.empty()) {
    sp.blob = std::move(blob);
  } else {
    util::atomic_write_file(spill_path(e.key), blob);
  }
  spill_bytes_ += sp.bytes;
  spill_fifo_.emplace_back(sp.seq, e.key);
  spilled_[e.key] = std::move(sp);

  resident_bytes_.fetch_sub(approx_learner_bytes(e.tier), std::memory_order_relaxed);
  obs::observe_ns(obs::Histo::kTenantResidentBytes,
                  resident_bytes_.load(std::memory_order_relaxed));
  lru_unlink(slot);
  resident_index_.erase(e.key);
  e.learner.reset();
  e.updates = 0;
  free_.push_back(slot);

  evictions_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::Counter::kTenantEvictions);
  enforce_spill_budget();
}

void TenantStore::enforce_spill_budget() {
  if (config_.spill_budget_bytes == 0) {
    return;
  }
  // The fifo uses lazy deletion: reactivation erases the map entry but
  // leaves its (seq, key) pair behind, so a pair only names a discardable
  // blob when the map still holds that exact eviction generation.
  while (spill_bytes_ > config_.spill_budget_bytes && !spill_fifo_.empty()) {
    const auto [seq, key] = spill_fifo_.front();
    spill_fifo_.pop_front();
    const auto it = spilled_.find(key);
    if (it == spilled_.end() || it->second.seq != seq) {
      continue;  // stale pair: the tenant came back (and maybe left again)
    }
    spill_bytes_ -= it->second.bytes;
    if (!config_.spill_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove(spill_path(key), ec);  // best effort
    }
    spilled_.erase(it);
    spill_discards_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::kTenantSpillDiscards);
  }
}

TenantStore::Entry& TenantStore::entry_of(std::uint64_t key) {
  if (const auto it = resident_index_.find(key); it != resident_index_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::kTenantHits);
    const std::uint32_t slot = it->second;
    if (lru_head_ != slot) {
      lru_unlink(slot);
      lru_push_front(slot);
    }
    return entries_[slot];
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::Counter::kTenantMisses);
  const obs::StageTimer timer(obs::Histo::kTenantActivateNs);
  if (free_.empty()) {
    evict_lru_tail();
  }
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  Entry& e = entries_[slot];
  e.key = key;

  if (const auto sp = spilled_.find(key); sp != spilled_.end()) {
    // Reactivation: load the exact serialized state back — the tenant
    // resumes bit-identically to one that was never evicted.
    std::istringstream in(
        config_.spill_dir.empty() ? std::move(sp->second.blob)
                                  : util::read_file_bytes(spill_path(key),
                                                          kMaxSpillFileBytes),
        std::ios::binary);
    e.learner = std::make_unique<core::OnlineRegHD>(
        core::load_online_checkpoint(in, online_.encoder.projection_storage));
    e.updates = sp->second.updates;
    e.tier = sp->second.tier;
    spill_bytes_ -= sp->second.bytes;
    if (!config_.spill_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove(spill_path(key), ec);
    }
    spilled_.erase(sp);
    reactivations_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::kTenantReactivations);
  } else if (!config_.spill_dir.empty() &&
             std::filesystem::exists(spill_path(key))) {
    // Cold-index reactivation: a previous store instance (typically before a
    // process restart) flushed this tenant to disk, so the blob exists but
    // this instance's spill index has never seen it. The sidecar metadata is
    // recoverable from the checkpoint itself: samples_seen counts exactly
    // this tenant's updates, and the serialized dimension names its tier.
    std::istringstream in(
        util::read_file_bytes(spill_path(key), kMaxSpillFileBytes),
        std::ios::binary);
    e.learner = std::make_unique<core::OnlineRegHD>(
        core::load_online_checkpoint(in, online_.encoder.projection_storage));
    e.updates = e.learner->samples_seen();
    e.tier = tier_of(e.updates);
    // The clamp can collapse neighbouring tiers to one dimension; trust the
    // serialized D over the update count when they disagree.
    const std::size_t loaded_dim = e.learner->config().reghd.dim;
    if (tier_dims_[e.tier] != loaded_dim) {
      for (std::size_t t = 0; t < tier_dims_.size(); ++t) {
        if (tier_dims_[t] == loaded_dim) {
          e.tier = t;
          break;
        }
      }
    }
    std::error_code ec;
    std::filesystem::remove(spill_path(key), ec);
    reactivations_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::kTenantReactivations);
  } else {
    // First contact (or a budget-discarded tenant returning): fresh cold
    // learner in the lowest tier its (zero) history warrants.
    e.tier = tier_of(0);
    e.learner = make_learner(e.tier);
    e.updates = 0;
    activations_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::kTenantActivations);
  }
  resident_bytes_.fetch_add(approx_learner_bytes(e.tier), std::memory_order_relaxed);
  resident_index_.emplace(key, slot);
  lru_push_front(slot);
  return e;
}

core::OnlineRegHD& TenantStore::activate(std::uint64_t key) {
  return *entry_of(key).learner;
}

double TenantStore::predict(std::uint64_t key, std::span<const double> features) {
  return predict_activated(activate(key), features);
}

void TenantStore::maybe_promote(Entry& entry) {
  if (!config_.tiered_dims) {
    return;
  }
  const std::size_t t = tier_of(entry.updates);
  if (t <= entry.tier) {
    return;
  }
  if (tier_dims_[t] == tier_dims_[entry.tier]) {
    entry.tier = t;  // boundary crossed but the clamp collapsed the dims
    return;
  }
  // Rebuild at the larger D: the running statistics and sample count carry
  // verbatim (restore_state), the HD accumulators restart — hypervectors of
  // different D are not convertible (see the header's tier note).
  std::unique_ptr<core::OnlineRegHD> bigger = make_learner(t);
  bigger->restore_state(entry.learner->feature_stats(), entry.learner->target_stats(),
                        entry.learner->samples_seen(), 0);
  resident_bytes_.fetch_add(
      approx_learner_bytes(t) - approx_learner_bytes(entry.tier),
      std::memory_order_relaxed);
  entry.learner = std::move(bigger);
  entry.tier = t;
  promotions_.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::Counter::kTenantPromotions);
}

double TenantStore::update(std::uint64_t key, std::span<const double> features,
                           double target) {
  Entry& e = entry_of(key);
  const double prediction = e.learner->update(features, target);
  ++e.updates;
  maybe_promote(e);
  return prediction;
}

void TenantStore::flush() {
  while (lru_tail_ != kNil) {
    evict_lru_tail();
  }
}

TenantStoreStats TenantStore::stats() const {
  TenantStoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.activations = activations_.load(std::memory_order_relaxed);
  s.reactivations = reactivations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.promotions = promotions_.load(std::memory_order_relaxed);
  s.spill_discards = spill_discards_.load(std::memory_order_relaxed);
  s.resident = resident_index_.size();
  s.spilled = spilled_.size();
  s.resident_bytes =
      static_cast<std::size_t>(resident_bytes_.load(std::memory_order_relaxed));
  s.spill_bytes = spill_bytes_;
  return s;
}

}  // namespace reghd::serve
