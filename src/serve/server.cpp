#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "core/checkpoint.hpp"
#include "obs/telemetry.hpp"
#include "serve/alloc_probe.hpp"
#include "serve/cadence.hpp"
#include "util/check.hpp"

namespace reghd::serve {

namespace {

[[nodiscard]] std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 finalizer: full-avalanche key → shard mixing, so sequential
/// tenant/key ids spread evenly instead of striping.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Server::Shard::Shard(const ServeConfig& cfg, const core::OnlineConfig& online,
                     std::size_t num_features)
    : predict_ring(cfg.queue_capacity, num_features),
      train_ring(cfg.queue_capacity, num_features),
      learner(std::make_unique<core::OnlineRegHD>(online, num_features)) {}

Server::Server(ServeConfig config, core::OnlineConfig online, std::size_t num_features)
    : config_(std::move(config)), online_config_(std::move(online)), nf_(num_features) {
  REGHD_CHECK(config_.shards > 0, "server requires at least one shard");
  REGHD_CHECK(config_.max_batch > 0, "max_batch must be at least 1");
  REGHD_CHECK(config_.batch_threshold > 0, "batch_threshold must be at least 1");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_, online_config_, nf_));
    if (config_.tenant) {
      TenantStoreConfig tc = *config_.tenant;
      if (!tc.spill_dir.empty()) {
        // Spill state is per shard: one tenant only ever hashes to one
        // shard, so per-shard directories keep the stores fully disjoint.
        tc.spill_dir += "/shard_" + std::to_string(i);
      }
      shards_.back()->tenants =
          std::make_unique<TenantStore>(std::move(tc), online_config_, nf_);
    }
  }
}

Server::~Server() { stop(); }

std::string Server::shard_checkpoint_dir(std::size_t shard) const {
  return config_.checkpoint_dir + "/shard_" + std::to_string(shard);
}

void Server::bootstrap(std::size_t shard, const core::OnlineRegHD& learner) {
  REGHD_CHECK(!started_, "bootstrap must happen before start()");
  REGHD_CHECK(shard < shards_.size(), "bootstrap shard " << shard << " out of range");
  REGHD_CHECK(learner.num_features() == nf_,
              "bootstrap learner has " << learner.num_features()
                                       << " features, server expects " << nf_);
  // Checkpoint roundtrip = the snapshot copy mechanism: the shard adopts a
  // bit-identical copy without sharing any mutable state with the caller.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  core::save_online_checkpoint(buf, learner);
  // Projection storage is a deployment knob the container deliberately does
  // not carry; the load applies the server's configured mode at construction.
  shards_[shard]->learner = std::make_unique<core::OnlineRegHD>(
      core::load_online_checkpoint(buf, online_config_.encoder.projection_storage));
}

void Server::start() {
  REGHD_CHECK(!started_, "server already started");
  if (tenant_mode()) {
    // Tenant mode: no per-shard learner, no snapshots to publish — one
    // combined thread per shard owns its TenantStore and both rings.
    draining_.store(false, std::memory_order_seq_cst);
    accepting_.store(true, std::memory_order_seq_cst);
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->worker = std::thread([this, s] { tenant_loop(*s); });
    }
    started_ = true;
    return;
  }
  if (!config_.checkpoint_dir.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      core::CheckpointConfig ck;
      ck.dir = shard_checkpoint_dir(i);
      ck.keep_last = config_.checkpoint_keep_last;
      const core::CheckpointManager mgr(ck);
      if (std::optional<core::OnlineRegHD> recovered = mgr.recover()) {
        REGHD_CHECK(recovered->num_features() == nf_,
                    "recovered checkpoint has " << recovered->num_features()
                                                << " features, server expects " << nf_);
        shards_[i]->learner =
            std::make_unique<core::OnlineRegHD>(std::move(*recovered));
        shards_[i]->learner->set_projection_storage(
            online_config_.encoder.projection_storage);
      }
    }
  }
  draining_.store(false, std::memory_order_seq_cst);
  // Initial publication happens on this thread, before any worker exists:
  // every worker observes a snapshot from its very first query.
  for (auto& shard : shards_) {
    publish_snapshot(*shard);
  }
  accepting_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { worker_loop(*s); });
    s->trainer = std::thread([this, s] { trainer_loop(*s); });
  }
  started_ = true;
}

void Server::stop() {
  if (!started_) {
    return;
  }
  // 1) Close admission and wait out every submitter that had already passed
  //    the accepting_ gate — after this, ring contents are final.
  accepting_.store(false, std::memory_order_seq_cst);
  while (in_flight_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  // 2) Raise draining and wake sleepers; consumers drain to empty and exit.
  draining_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    ring_doorbell(*shard);
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
    if (shard->trainer.joinable()) {
      shard->trainer.join();
    }
  }
  started_ = false;
  // Final persistence. stop() also runs from ~Server(), so nothing below may
  // throw — a full disk or a bad directory during the last save would
  // otherwise fly out of a destructor straight into std::terminate. Each
  // catch counts ckpt_save_failures (write-layer failures also count
  // themselves inside write_checkpoint, so one failed save may register
  // twice — acceptable for a failure signal) and teardown continues: losing
  // the final checkpoint falls back to the previous one, exactly the
  // recovery model.
  const util::FaultPlan fault = persist_fault_;
  persist_fault_ = {};
  if (tenant_mode()) {
    for (auto& shard : shards_) {
      if (shard->tenants->config().spill_dir.empty()) {
        continue;  // in-memory spill: nothing outlives the store
      }
      try {
        shard->tenants->flush();  // every tenant lands on disk, atomically
      } catch (...) {
        obs::count(obs::Counter::kCkptSaveFailures);
      }
    }
    return;
  }
  if (!config_.checkpoint_dir.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      core::CheckpointConfig ck;
      ck.dir = shard_checkpoint_dir(i);
      ck.keep_last = config_.checkpoint_keep_last;
      try {
        core::CheckpointManager mgr(ck);
        if (fault.mode != util::FaultMode::kNone) {
          mgr.set_fault_plan(fault);
        }
        mgr.save(*shards_[i]->learner);
      } catch (...) {
        obs::count(obs::Counter::kCkptSaveFailures);
      }
    }
  }
}

std::size_t Server::shard_of(std::uint64_t key) const noexcept {
  return static_cast<std::size_t>(mix64(key) % shards_.size());
}

void Server::ring_doorbell(Shard& shard) {
  // Release so a sleeper that reads the new ticket count (acquire) also sees
  // the pushed entry; seq_cst load pairs with the sleeper's seq_cst announce
  // to close the lost-wakeup window.
  shard.tickets.fetch_add(1, std::memory_order_release);
  if (shard.sleeping.load(std::memory_order_seq_cst)) {
    shard.tickets.notify_all();
  }
}

bool Server::try_predict(std::uint64_t key, std::span<const double> features,
                         RequestSlot* slot) {
  REGHD_CHECK(slot != nullptr, "try_predict requires a completion slot");
  REGHD_CHECK(features.size() == nf_,
              "query has " << features.size() << " features, server expects " << nf_);
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  bool ok = false;
  if (accepting_.load(std::memory_order_seq_cst)) {
    Shard& shard = *shards_[shard_of(key)];
    slot->reset();
    const PredictHeader header{steady_ns(), key, slot};
    ok = shard.predict_ring.try_push(header, features);
    if (ok) {
      obs::count(obs::Counter::kServeRequests);
      ring_doorbell(shard);
    } else {
      obs::count(obs::Counter::kServeQueueRejects);
    }
  }
  in_flight_.fetch_sub(1, std::memory_order_release);
  return ok;
}

double Server::predict(std::uint64_t key, std::span<const double> features) {
  RequestSlot slot;
  while (!try_predict(key, features, &slot)) {
    REGHD_CHECK(running(), "server is not accepting requests");
    std::this_thread::yield();  // ring full: wait for the worker to drain
  }
  slot.wait();
  REGHD_CHECK(slot.error == 0, "serve predict failed (worker error " << slot.error << ")");
  return slot.result;
}

bool Server::try_train(std::uint64_t key, std::span<const double> features,
                       double target) {
  REGHD_CHECK(features.size() == nf_,
              "sample has " << features.size() << " features, server expects " << nf_);
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  bool ok = false;
  if (accepting_.load(std::memory_order_seq_cst)) {
    Shard& shard = *shards_[shard_of(key)];
    const TrainHeader header{steady_ns(), key, target};
    ok = shard.train_ring.try_push(header, features);
    if (ok) {
      if (tenant_mode()) {
        // The combined tenant thread sleeps on the predict doorbell; train
        // arrivals must ring it too (the classic trainer polls instead).
        ring_doorbell(shard);
      }
    } else {
      obs::count(obs::Counter::kServeTrainRejects);
    }
  }
  in_flight_.fetch_sub(1, std::memory_order_release);
  return ok;
}

std::uint64_t Server::snapshot_epoch(std::size_t shard) const {
  REGHD_CHECK(shard < shards_.size(), "shard " << shard << " out of range");
  return shards_[shard]->cell.epoch_hint();
}

std::uint64_t Server::train_applied(std::size_t shard) const {
  REGHD_CHECK(shard < shards_.size(), "shard " << shard << " out of range");
  return shards_[shard]->train_applied.load(std::memory_order_acquire);
}

std::shared_ptr<const ModelSnapshot> Server::snapshot(std::size_t shard) const {
  REGHD_CHECK(shard < shards_.size(), "shard " << shard << " out of range");
  return shards_[shard]->cell.acquire();
}

TenantStoreStats Server::tenant_stats(std::size_t shard) const {
  REGHD_CHECK(shard < shards_.size(), "shard " << shard << " out of range");
  REGHD_CHECK(shards_[shard]->tenants != nullptr, "server is not in tenant mode");
  return shards_[shard]->tenants->stats();
}

TenantStore& Server::tenant_store(std::size_t shard) const {
  REGHD_CHECK(shard < shards_.size(), "shard " << shard << " out of range");
  REGHD_CHECK(shards_[shard]->tenants != nullptr, "server is not in tenant mode");
  return *shards_[shard]->tenants;
}

void Server::publish_snapshot(Shard& shard) {
  const obs::StageTimer timer(obs::Histo::kServePublishNs);
  // Serialize → deserialize through the checkpoint container: the snapshot
  // is bit-identical to the trainer's state (the checkpoint suite's
  // roundtrip guarantee) and shares nothing with it.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  core::save_online_checkpoint(buf, *shard.learner);
  // Load directly in the deployment's projection-storage mode: a plain load
  // comes back resident, which would both re-materialize the F×D matrix in
  // every published snapshot and burn milliseconds of trainer-thread time
  // regenerating a matrix the rematerialized deployment throws away.
  auto snap = std::make_shared<ModelSnapshot>(
      core::load_online_checkpoint(buf, online_config_.encoder.projection_storage));
  const std::uint64_t epoch = ++shard.epoch_counter;
  snap->epoch = epoch;
  snap->epoch_check = epoch;
  snap->published_ns = steady_ns();
  snap->trained_updates = shard.learner->samples_seen();
  shard.cell.publish(std::move(snap));
  obs::count(obs::Counter::kServeSnapshotPublishes);
}

void Server::worker_loop(Shard& shard) {
  const std::size_t nf = nf_;
  const std::size_t cap = config_.max_batch;

  // All worker state is preallocated here, before the first query (and
  // before any no-alloc probe can be armed around real traffic): admission
  // staging, the per-shard encode arena, the snapshot's prepared bank
  // scratch, and the single-path standardization buffer.
  std::vector<PredictHeader> headers(cap);
  util::AlignedVector<double> raw(cap * nf, 0.0);
  util::AlignedVector<double> scaled(cap * nf, 0.0);
  std::vector<double> out(cap, 0.0);
  std::vector<double> single_scratch(nf, 0.0);
  core::EncodedDataset arena;
  core::MultiModelRegressor::PredictScratch scratch;
  std::shared_ptr<const ModelSnapshot> snap;
  std::uint64_t seen_epoch = 0;

  const auto maybe_swap = [&] {
    if (snap && shard.cell.epoch_hint() == seen_epoch) {
      return;  // steady state: one relaxed load, nothing else
    }
    std::shared_ptr<const ModelSnapshot> fresh = shard.cell.acquire();
    if (!fresh || (snap && fresh->epoch == seen_epoch)) {
      return;
    }
    snap = std::move(fresh);
    seen_epoch = snap->epoch;
    // Bank copy / packed-bank build against the new state, off the per-query
    // path. Buffer capacities are retained across swaps, so steady-state
    // re-preparation allocates nothing either.
    snap->learner.model().prepare_predict_scratch(scratch);
    obs::count(obs::Counter::kServeSnapshotSwaps);
    const std::uint64_t now = steady_ns();
    obs::observe_ns(obs::Histo::kServeStalenessNs,
                    now > snap->published_ns ? now - snap->published_ns : 0);
  };

  const auto idle_wait = [&] {
    if (config_.idle_spin_us > 0) {
      const std::uint64_t deadline = steady_ns() + config_.idle_spin_us * 1000;
      while (steady_ns() < deadline) {
        if (shard.predict_ring.can_pop() ||
            draining_.load(std::memory_order_acquire)) {
          return;
        }
        std::this_thread::yield();
      }
    }
    // Eventcount sleep: announce, re-check the ring, then wait on the ticket
    // counter. A producer that missed the announcement raised the ticket
    // first, so wait(seen) returns immediately; one that saw it notifies.
    const std::uint64_t seen = shard.tickets.load(std::memory_order_acquire);
    shard.sleeping.store(true, std::memory_order_seq_cst);
    if (shard.predict_ring.can_pop() || draining_.load(std::memory_order_seq_cst)) {
      shard.sleeping.store(false, std::memory_order_relaxed);
      return;
    }
    shard.tickets.wait(seen, std::memory_order_acquire);
    shard.sleeping.store(false, std::memory_order_relaxed);
  };

  maybe_swap();  // the initial snapshot was published before this thread ran
  obs::count(obs::Counter::kServeRequests, 0);  // register this thread's shard
  if (config_.prewarm && snap) {
    // Grow every lazily-sized buffer to steady-state capacity: one full-size
    // batch through the encode + bank-scan path and one fused single query
    // (predict_one's thread_local scratch) on an all-zero reading.
    snap->learner.standardize_rows_into({raw.data(), cap * nf}, cap,
                                        {scaled.data(), cap * nf});
    arena.assign_rows(snap->learner.encoder(), {scaled.data(), cap * nf}, cap, 1);
    snap->learner.model().predict_batch_into(arena, {out.data(), cap}, scratch);
    (void)snap->learner.model().predict_one(snap->learner.encoder(),
                                            {scaled.data(), nf});
    (void)snap->learner.predict_reusing({raw.data(), nf}, single_scratch);
  }

  for (;;) {
    maybe_swap();
    const std::uint64_t drain_start = steady_ns();
    std::size_t n = 0;
    while (n < cap && shard.predict_ring.try_pop(headers[n], raw.data() + n * nf)) {
      ++n;
    }
    if (n == 0) {
      if (draining_.load(std::memory_order_acquire) && !shard.predict_ring.can_pop()) {
        return;  // admission closed, producers gone, ring verified empty
      }
      idle_wait();
      continue;
    }

    const std::uint64_t assembled = steady_ns();
    obs::observe_ns(obs::Histo::kServeAssembleNs, assembled - drain_start);
    for (std::size_t i = 0; i < n; ++i) {
      obs::observe_ns(obs::Histo::kServeQueueWaitNs,
                      assembled > headers[i].enqueue_ns
                          ? assembled - headers[i].enqueue_ns
                          : 0);
    }
    obs::observe_ns(obs::Histo::kServeBatchFill, n);  // admission occupancy

    const PredictPathProbe probe = predict_path_probe();
    if (probe != nullptr) {
      probe(true);
    }
    bool failed = false;
    try {
      if (n < config_.batch_threshold) {
        // Low load: fused single-query path per entry (identical semantics
        // to OnlineRegHD::predict, scratch reused).
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = snap->learner.predict_reusing(
              {raw.data() + i * nf, nf}, single_scratch);
        }
        obs::count(obs::Counter::kServeSingleRows, n);
      } else {
        obs::count(obs::Counter::kServeBatches);
        obs::count(obs::Counter::kServeBatchRows, n);
        if (snap->learner.cold()) {
          // Cold-start gate, batch form: same fallback predict() takes.
          const double y = snap->learner.cold_prediction();
          std::fill_n(out.begin(), n, y);
          obs::count(obs::Counter::kOnlineColdPredicts, n);
        } else {
          {
            const obs::StageTimer encode_timer(obs::Histo::kServeEncodeNs);
            snap->learner.standardize_rows_into({raw.data(), n * nf}, n,
                                                {scaled.data(), n * nf});
            arena.assign_rows(snap->learner.encoder(), {scaled.data(), n * nf}, n,
                              1);
          }
          {
            const obs::StageTimer scan_timer(obs::Histo::kServeScanNs);
            snap->learner.model().predict_batch_into(arena, {out.data(), n},
                                                     scratch);
            for (std::size_t i = 0; i < n; ++i) {
              out[i] = snap->learner.unscale(out[i]);
            }
          }
        }
      }
    } catch (...) {
      failed = true;  // complete the group with an error instead of dying
    }
    if (probe != nullptr) {
      probe(false);
    }

    const std::uint64_t done = steady_ns();
    for (std::size_t i = 0; i < n; ++i) {
      RequestSlot* slot = headers[i].slot;
      slot->result = failed ? 0.0 : out[i];
      slot->error = failed ? 1U : 0U;
      obs::observe_ns(obs::Histo::kServePredictNs,
                      done > headers[i].enqueue_ns ? done - headers[i].enqueue_ns
                                                   : 0);
      slot->done_ns.store(done, std::memory_order_seq_cst);
      if (slot->waited.load(std::memory_order_seq_cst)) {
        slot->done_ns.notify_all();  // someone is (or is about to be) parked
      }
    }
  }
}

void Server::trainer_loop(Shard& shard) {
  core::OnlineRegHD& learner = *shard.learner;
  std::vector<double> row(nf_, 0.0);
  TrainHeader header;
  PublishCadence cadence;
  cadence.every = config_.publish_every_updates;
  cadence.interval_ns = static_cast<std::uint64_t>(
      std::max(0.0, config_.publish_interval_ms) * 1e6);
  cadence.last_ns = steady_ns();
  constexpr std::size_t kDrainQuantum = 256;

  for (;;) {
    // The drain is bracketed by the no-alloc probe: update() runs once per
    // sample right here, so its steady state must stay off the allocator
    // just like the predict paths (publishes happen outside the brackets —
    // the checkpoint roundtrip allocates by design).
    const PredictPathProbe probe = predict_path_probe();
    if (probe != nullptr) {
      probe(true);
    }
    std::size_t applied = 0;
    while (applied < kDrainQuantum && shard.train_ring.try_pop(header, row.data())) {
      learner.update({row.data(), nf_}, header.target);
      ++applied;
    }
    if (probe != nullptr) {
      probe(false);
    }
    if (applied > 0) {
      obs::count(obs::Counter::kServeTrainApplied, applied);
      shard.train_applied.fetch_add(applied, std::memory_order_release);
      cadence.applied(applied);
    }
    if (cadence.due(steady_ns())) {
      publish_snapshot(shard);
      // Re-stamp from the clock AFTER the publish returned: a publish costs
      // milliseconds, and anchoring the interval at the pre-publish reading
      // made the timer fire systematically early under load (see cadence.hpp).
      cadence.published(steady_ns());
    }
    if (applied == 0) {
      if (draining_.load(std::memory_order_acquire) && !shard.train_ring.can_pop()) {
        break;
      }
      // The trainer needs timed wakeups for the publish interval anyway, so
      // it polls instead of sleeping on a doorbell.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  if (cadence.dirty > 0) {
    publish_snapshot(shard);  // final state visible to late readers
  }
}

void Server::tenant_loop(Shard& shard) {
  TenantStore& store = *shard.tenants;
  const std::size_t nf = nf_;
  const std::size_t cap = config_.max_batch;

  std::vector<PredictHeader> headers(cap);
  util::AlignedVector<double> raw(cap * nf, 0.0);
  std::vector<double> train_row(nf, 0.0);
  TrainHeader train_header;
  constexpr std::size_t kTrainQuantum = 256;

  obs::count(obs::Counter::kServeRequests, 0);  // register this thread's shard
  if (config_.prewarm) {
    // Grow the fused path's thread_local scratch to the *base* (largest)
    // dimension before any probe can arm: tiered tenants step D upward, and
    // the first full-D tenant on this thread would otherwise regrow it.
    (void)shard.learner->model().predict_one(shard.learner->encoder(),
                                             {train_row.data(), nf});
  }

  const auto idle_wait = [&] {
    if (config_.idle_spin_us > 0) {
      const std::uint64_t deadline = steady_ns() + config_.idle_spin_us * 1000;
      while (steady_ns() < deadline) {
        if (shard.predict_ring.can_pop() || shard.train_ring.can_pop() ||
            draining_.load(std::memory_order_acquire)) {
          return;
        }
        std::this_thread::yield();
      }
    }
    const std::uint64_t seen = shard.tickets.load(std::memory_order_acquire);
    shard.sleeping.store(true, std::memory_order_seq_cst);
    if (shard.predict_ring.can_pop() || shard.train_ring.can_pop() ||
        draining_.load(std::memory_order_seq_cst)) {
      shard.sleeping.store(false, std::memory_order_relaxed);
      return;
    }
    shard.tickets.wait(seen, std::memory_order_acquire);
    shard.sleeping.store(false, std::memory_order_relaxed);
  };

  for (;;) {
    // Predicts first — they are latency-sensitive; training is deferrable.
    const std::uint64_t drain_start = steady_ns();
    std::size_t n = 0;
    while (n < cap && shard.predict_ring.try_pop(headers[n], raw.data() + n * nf)) {
      ++n;
    }
    if (n > 0) {
      const std::uint64_t assembled = steady_ns();
      obs::observe_ns(obs::Histo::kServeAssembleNs, assembled - drain_start);
      obs::observe_ns(obs::Histo::kServeBatchFill, n);
      const PredictPathProbe probe = predict_path_probe();
      for (std::size_t i = 0; i < n; ++i) {
        obs::observe_ns(obs::Histo::kServeQueueWaitNs,
                        assembled > headers[i].enqueue_ns
                            ? assembled - headers[i].enqueue_ns
                            : 0);
        bool failed = false;
        double result = 0.0;
        try {
          // Activation (hash probe, LRU splice; construct/reactivate on a
          // miss) runs outside the probe bracket — the miss path allocates
          // by design. The resident predict inside the bracket must not.
          core::OnlineRegHD& learner = store.activate(headers[i].key);
          if (probe != nullptr) {
            probe(true);
          }
          result = store.predict_activated(learner, {raw.data() + i * nf, nf});
          if (probe != nullptr) {
            probe(false);
          }
        } catch (...) {
          if (probe != nullptr) {
            probe(false);  // idempotent: re-asserts the not-in-path state
          }
          failed = true;
        }
        RequestSlot* slot = headers[i].slot;
        const std::uint64_t done = steady_ns();
        slot->result = failed ? 0.0 : result;
        slot->error = failed ? 1U : 0U;
        obs::observe_ns(obs::Histo::kServePredictNs,
                        done > headers[i].enqueue_ns ? done - headers[i].enqueue_ns
                                                     : 0);
        slot->done_ns.store(done, std::memory_order_seq_cst);
        if (slot->waited.load(std::memory_order_seq_cst)) {
          slot->done_ns.notify_all();
        }
      }
      obs::count(obs::Counter::kServeSingleRows, n);
    }

    std::size_t applied = 0;
    while (applied < kTrainQuantum &&
           shard.train_ring.try_pop(train_header, train_row.data())) {
      (void)store.update(train_header.key, {train_row.data(), nf},
                         train_header.target);
      ++applied;
    }
    if (applied > 0) {
      obs::count(obs::Counter::kServeTrainApplied, applied);
      shard.train_applied.fetch_add(applied, std::memory_order_release);
    }

    if (n == 0 && applied == 0) {
      if (draining_.load(std::memory_order_acquire) && !shard.predict_ring.can_pop() &&
          !shard.train_ring.can_pop()) {
        return;  // admission closed, producers gone, both rings verified empty
      }
      idle_wait();
    }
  }
}

}  // namespace reghd::serve
