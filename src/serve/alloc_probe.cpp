#include "serve/alloc_probe.hpp"

#include <atomic>

namespace reghd::serve {

namespace {
std::atomic<PredictPathProbe> g_probe{nullptr};
}  // namespace

void set_predict_path_probe(PredictPathProbe probe) noexcept {
  g_probe.store(probe, std::memory_order_release);
}

PredictPathProbe predict_path_probe() noexcept {
  return g_probe.load(std::memory_order_acquire);
}

}  // namespace reghd::serve
