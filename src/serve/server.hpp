// Shard-per-core serving runtime for OnlineRegHD streams.
//
// Shared-nothing layout: each shard owns its ingest rings, its snapshot
// cell, its trainer-owned learner and two threads —
//
//   predict worker   drains the predict ring in admission groups. When the
//                    queued depth reaches batch_threshold the group runs
//                    through the contiguous bank scan (standardize →
//                    encode_batch_into arena → predict_batch_into), which
//                    amortizes the RFF projection GEMM and the (k_c+k_m)×D
//                    bank traffic across the whole group; below the
//                    threshold each query takes the fused single-query path
//                    (predict_reusing → predict_one). Both paths produce
//                    bit-identical results. Steady state the worker holds no
//                    lock and touches no allocator (see alloc_probe.hpp).
//
//   trainer          drains the train ring, applies OnlineRegHD::update on
//                    the shard's only mutable learner, and periodically
//                    publishes an immutable snapshot (checkpoint-container
//                    roundtrip) through the shard's SnapshotCell. Workers
//                    hot-swap by polling the cell's epoch hint — one relaxed
//                    load per drain group, an acquire only when it moved.
//
// Keys route to shards by a splitmix64 hash, so one tenant/key always lands
// on the same shard (its updates and reads are totally ordered by that
// shard's rings). Completion is per-request: the caller owns a RequestSlot
// and blocks (or polls) on its done_ns word; the worker never blocks on the
// caller.
//
// Tenant mode (ServeConfig::tenant engaged): instead of one learner per
// shard, each shard owns a TenantStore — a budgeted LRU table of per-tenant
// models keyed by the request key — and runs ONE combined thread that
// drains both rings. The single-thread-per-shard shape is what lets the
// store hold millions of lock-free tenant states: the key→shard hash
// already totally orders each tenant's traffic. Snapshot cells stay empty
// in this mode (there is no one model to publish); resident-tenant
// predictions remain allocation-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "serve/ring.hpp"
#include "serve/snapshot.hpp"
#include "serve/tenant_store.hpp"
#include "util/fault_injection.hpp"

namespace reghd::serve {

struct ServeConfig {
  std::size_t shards = 1;           ///< shard (≈ core) count.
  /// Per-ring entries. Rounded up to a power of two AND clamped to a
  /// minimum of 2 (a capacity of 0 or 1 silently becomes 2 — the ring's
  /// sequence protocol needs at least two cells).
  std::size_t queue_capacity = 4096;

  /// Admission batching: a drain group of at least this many queued queries
  /// runs the contiguous bank-scan batch path; smaller groups fall through
  /// to the fused single-query path. 1 forces always-batch, SIZE_MAX forces
  /// always-single (the bench uses both to isolate the batching win).
  std::size_t batch_threshold = 4;
  std::size_t max_batch = 64;  ///< drain-group cap (arena/staging size).

  /// Snapshot publication cadence: after this many applied updates…
  std::size_t publish_every_updates = 256;
  /// …or this many milliseconds with at least one update pending, whichever
  /// comes first. 0 disables the timer.
  double publish_interval_ms = 100.0;

  /// Worker idle policy: spin-yield this long before sleeping on the
  /// doorbell (0 = sleep immediately).
  std::size_t idle_spin_us = 50;

  /// Run one full-size batch + one fused query through the worker at
  /// startup, so every buffer reaches steady-state capacity before the
  /// first real query (and before the no-alloc probe arms).
  bool prewarm = true;

  /// When nonempty: recover each shard from `<dir>/shard_<i>` at start()
  /// and persist its final state there at stop() — the snapshot format and
  /// the persistence format are the same checkpoint container. (Ignored in
  /// tenant mode, whose persistence is the store's spill_dir.)
  std::string checkpoint_dir;
  std::size_t checkpoint_keep_last = 2;

  /// Engages per-tenant model-bank mode (see the header comment and
  /// tenant_store.hpp): every request key is a tenant id with its own
  /// budgeted, LRU-activated model.
  std::optional<TenantStoreConfig> tenant;
};

/// Caller-owned completion slot for one in-flight predict. Reusable after
/// each completion. done_ns doubles as the ready flag (0 = pending) and the
/// steady-clock completion timestamp — the coordinated-omission-safe
/// latency recorders subtract their own scheduled time from it.
struct RequestSlot {
  std::atomic<std::uint64_t> done_ns{0};
  /// Set by a client entering wait(); the worker only pays the futex-wake
  /// syscall for slots someone is actually blocked on. Clients that poll
  /// ready() (the common closed-loop harvest pattern) never set it, so
  /// their completions cost one relaxed load instead of a syscall each.
  std::atomic<bool> waited{false};
  double result = 0.0;
  std::uint32_t error = 0;  ///< 0 = ok; nonzero = worker-side failure.

  void reset() noexcept {
    result = 0.0;
    error = 0;
    waited.store(false, std::memory_order_relaxed);
    done_ns.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] bool ready() const noexcept {
    return done_ns.load(std::memory_order_acquire) != 0;
  }
  /// Blocks until completion (futex wait on done_ns).
  void wait() noexcept {
    if (ready()) {
      return;
    }
    // seq_cst on both sides closes the flag/completion race: after this
    // store, either the worker's done_ns store is visible to the re-check
    // below, or the worker sees waited == true and notifies.
    waited.store(true, std::memory_order_seq_cst);
    std::uint64_t v = done_ns.load(std::memory_order_seq_cst);
    while (v == 0) {
      done_ns.wait(0, std::memory_order_acquire);
      v = done_ns.load(std::memory_order_acquire);
    }
  }
};

class Server {
 public:
  /// Every shard starts with a fresh OnlineRegHD(online, num_features)
  /// (identical seeds — shards are partitions of one stream configuration).
  Server(ServeConfig config, core::OnlineConfig online, std::size_t num_features);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Replaces shard `shard`'s learner with a checkpoint-roundtrip copy of
  /// `learner` (e.g. one pre-trained offline). Only before start().
  void bootstrap(std::size_t shard, const core::OnlineRegHD& learner);

  /// Recovers checkpoints (if configured), publishes every shard's initial
  /// snapshot synchronously, then spawns the per-shard worker+trainer
  /// threads and opens admission.
  void start();

  /// Closes admission, waits out in-flight submitters, drains both rings of
  /// every shard, publishes/persists final state and joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return accepting_.load(std::memory_order_acquire);
  }

  /// Shard owning `key` (splitmix64 mix, stable for the server's lifetime).
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const noexcept;

  /// Enqueues one predict. Returns false (without touching `slot`'s
  /// pending state machinery beyond reset) when the ring is full or the
  /// server is not accepting — the caller retries or sheds. On true, the
  /// worker will complete `slot` exactly once; `slot` and `features` must
  /// stay valid until then (features are copied at enqueue, the slot is
  /// written at completion). Wait-free for producers, no allocation.
  bool try_predict(std::uint64_t key, std::span<const double> features,
                   RequestSlot* slot);

  /// Blocking convenience wrapper: submit (retrying on a full ring), wait,
  /// return the prediction. Throws if the server stops first or the worker
  /// reports an error.
  double predict(std::uint64_t key, std::span<const double> features);

  /// Fire-and-forget online training sample. False when the train ring is
  /// full (the sample is dropped and counted) or admission is closed.
  bool try_train(std::uint64_t key, std::span<const double> features, double target);

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return nf_; }

  /// Latest published epoch of a shard (0 before start(); always 0 in
  /// tenant mode, which publishes no snapshots).
  [[nodiscard]] std::uint64_t snapshot_epoch(std::size_t shard) const;
  /// Updates applied by a shard's trainer so far (tests poll this to await
  /// training quiescence).
  [[nodiscard]] std::uint64_t train_applied(std::size_t shard) const;
  /// The shard's current snapshot (what its worker is serving from; null in
  /// tenant mode).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot(std::size_t shard) const;

  [[nodiscard]] bool tenant_mode() const noexcept { return config_.tenant.has_value(); }
  /// Tenant-mode stats readout for a shard (see TenantStoreStats for which
  /// fields are safe to read while the shard thread runs).
  [[nodiscard]] TenantStoreStats tenant_stats(std::size_t shard) const;
  /// The shard's store, for post-stop inspection (tests, benches). Do not
  /// mutate while the server runs — the shard thread is the owner.
  [[nodiscard]] TenantStore& tenant_store(std::size_t shard) const;

  /// Fault-injection seam for the crash-safety tests: arms `plan` on every
  /// per-shard CheckpointManager the NEXT stop()-time persistence pass
  /// constructs, then disarms. A failed final save must never escape
  /// ~Server (stop() catches, counts ckpt_save_failures, finishes teardown).
  void set_persist_fault_plan(util::FaultPlan plan) noexcept { persist_fault_ = plan; }

 private:
  struct PredictHeader {
    std::uint64_t enqueue_ns = 0;
    std::uint64_t key = 0;  ///< tenant id in tenant mode.
    RequestSlot* slot = nullptr;
  };
  struct TrainHeader {
    std::uint64_t enqueue_ns = 0;
    std::uint64_t key = 0;  ///< tenant id in tenant mode.
    double target = 0.0;
  };

  struct Shard {
    Shard(const ServeConfig& cfg, const core::OnlineConfig& online,
          std::size_t num_features);

    IngestRing<PredictHeader> predict_ring;
    IngestRing<TrainHeader> train_ring;
    SnapshotCell cell;
    std::unique_ptr<core::OnlineRegHD> learner;  ///< trainer-owned after start.
    std::unique_ptr<TenantStore> tenants;        ///< tenant mode only; shard-thread-owned.
    std::uint64_t epoch_counter = 0;             ///< trainer-only.
    std::atomic<std::uint64_t> train_applied{0};

    // Predict-ring doorbell (eventcount): producers bump tickets and wake
    // the worker only when it announced it sleeps; the worker re-checks the
    // ring between announcing and waiting, closing the lost-wakeup race.
    std::atomic<std::uint64_t> tickets{0};
    std::atomic<bool> sleeping{false};

    std::thread worker;
    std::thread trainer;
  };

  void worker_loop(Shard& shard);
  void trainer_loop(Shard& shard);
  void tenant_loop(Shard& shard);  ///< combined drain loop, tenant mode.
  void publish_snapshot(Shard& shard);
  void ring_doorbell(Shard& shard);
  [[nodiscard]] std::string shard_checkpoint_dir(std::size_t shard) const;

  ServeConfig config_;
  core::OnlineConfig online_config_;
  std::size_t nf_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Admission / shutdown protocol: submitters increment in_flight_ before
  // checking accepting_ and decrement after the push; stop() clears
  // accepting_, spins until in_flight_ hits zero (no producer can still be
  // mid-push), then raises draining_ — from that point ring contents are
  // final and the consumers drain to empty and exit.
  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> in_flight_{0};
  bool started_ = false;
  util::FaultPlan persist_fault_{};  ///< armed for the next stop()-time persistence.
};

}  // namespace reghd::serve
