// Snapshot-publication cadence policy, extracted from the trainer loop so
// its clock arithmetic is testable with synthetic timestamps.
//
// Two triggers, whichever fires first:
//
//   * count: `every` applied updates since the last publication;
//   * time:  `interval_ns` elapsed since the last publication *returned*,
//            with at least one update pending.
//
// The time trigger is anchored at the instant the previous publish finished,
// not the instant it was decided: a publish costs milliseconds (checkpoint
// roundtrip), and stamping the pre-publish clock made the interval timer
// systematically fire early under load — each cycle's budget was silently
// shortened by the previous publish's cost. published() therefore takes the
// post-publish clock reading.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reghd::serve {

struct PublishCadence {
  std::uint64_t interval_ns = 0;  ///< time trigger; 0 disables.
  std::size_t every = 0;          ///< count trigger; 0 disables.

  std::size_t dirty = 0;          ///< updates applied since last publish.
  std::uint64_t last_ns = 0;      ///< when the last publish *returned*.

  /// Records `n` freshly applied updates.
  void applied(std::size_t n) noexcept { dirty += n; }

  /// True when either trigger fires at clock reading `now`.
  [[nodiscard]] bool due(std::uint64_t now) const noexcept {
    const bool count_due = every > 0 && dirty >= every;
    const bool time_due = interval_ns > 0 && dirty > 0 && now - last_ns >= interval_ns;
    return count_due || time_due;
  }

  /// Resets both triggers. `now_after_publish` must be read *after* the
  /// publish returned, so the next interval starts from the publish's end.
  void published(std::uint64_t now_after_publish) noexcept {
    dirty = 0;
    last_ns = now_after_publish;
  }
};

}  // namespace reghd::serve
