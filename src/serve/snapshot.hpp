// Immutable model snapshots and the lock-free publication cell.
//
// The serving split: the trainer owns the only mutable OnlineRegHD and
// periodically publishes an immutable copy; predict workers score every
// query against the snapshot they last acquired and pick up new epochs by
// polling a relaxed epoch hint — the steady-state predict path takes no
// lock and copies no model state. Publication is one release store of a
// shared_ptr (plus the hint bump); retirement is automatic when the last
// worker drops its reference.
//
// The copy itself rides the PR 2 checkpoint container: a snapshot is a
// save_online_checkpoint → load_online_checkpoint roundtrip, which is
// bit-identical to the trainer's state by the checkpoint suite's own
// guarantee and doubles as the on-disk persistence format (Server::stop
// writes the same bytes through CheckpointManager).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <version>

#include "core/online.hpp"

namespace reghd::serve {

/// One published model state. Immutable after publish; workers hold it via
/// shared_ptr<const ModelSnapshot> and the trainer never touches it again.
struct ModelSnapshot {
  std::uint64_t epoch = 0;
  /// Mirrors `epoch`. A reader that ever observes epoch != epoch_check got a
  /// torn snapshot — the TSan hot-swap suite asserts the pair on every
  /// acquire, turning "no torn reads" into a checkable property.
  std::uint64_t epoch_check = 0;
  std::uint64_t published_ns = 0;     ///< steady-clock ns at publish.
  std::uint64_t trained_updates = 0;  ///< learner.samples_seen() at publish.
  core::OnlineRegHD learner;

  explicit ModelSnapshot(core::OnlineRegHD l) : learner(std::move(l)) {}
};

/// Single-writer / multi-reader publication slot.
///
/// publish() stores the pointer (release) and then bumps the epoch hint
/// (release), so a reader that sees the new hint and acquires is guaranteed
/// the fully constructed snapshot. Readers poll epoch_hint() — one relaxed
/// load — per query and only pay the acquire (a reference-count bump) when
/// the hint moved. Epochs are published in increasing order by the single
/// trainer, so every reader observes a non-decreasing epoch sequence.
class SnapshotCell {
 public:
  void publish(std::shared_ptr<const ModelSnapshot> snap) {
    const std::uint64_t epoch = snap->epoch;
#if defined(__cpp_lib_atomic_shared_ptr)
    slot_.store(std::move(snap), std::memory_order_release);
#else
    std::atomic_store_explicit(&slot_, std::shared_ptr<const ModelSnapshot>(std::move(snap)),
                               std::memory_order_release);
#endif
    epoch_.store(epoch, std::memory_order_release);
  }

  [[nodiscard]] std::shared_ptr<const ModelSnapshot> acquire() const {
#if defined(__cpp_lib_atomic_shared_ptr)
    return slot_.load(std::memory_order_acquire);
#else
    return std::atomic_load_explicit(&slot_, std::memory_order_acquire);
#endif
  }

  /// Latest published epoch (0 before the first publish). Relaxed: the cheap
  /// per-query poll; acquire() synchronizes when the hint moved.
  [[nodiscard]] std::uint64_t epoch_hint() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
#if defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<std::shared_ptr<const ModelSnapshot>> slot_;
#else
  std::shared_ptr<const ModelSnapshot> slot_;  // std::atomic_load/store free functions
#endif
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace reghd::serve
