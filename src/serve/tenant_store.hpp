// Per-tenant model-bank store: a budgeted, LRU-activated table of compact
// OnlineRegHD states, one per tenant key.
//
// HD regression models are uniquely suited to a one-model-per-tenant shape:
// packed ternary they are ~1 KB (PR 6), they bundle additively, and the v2
// checkpoint container round-trips them bit-identically (PR 2). This store
// leans on all three:
//
//  * **Residency budget + LRU.** At most `resident_budget` tenants hold live
//    learners; activating one more serializes the least-recently-used tenant
//    through the checkpoint container into a spill entry (in-memory blob, or
//    an atomic file under `spill_dir`). Reactivation loads the blob back —
//    the tenant resumes bit-identically, as if it had never been evicted.
//
//  * **Tier-sized dimensionality.** The capacity model (paper §2.3,
//    Eqs. 3–4) lower-bounds the dimension D needed to superpose P patterns
//    at a given decision threshold and error; a tenant that has only ever
//    contributed P updates cannot need more capacity than P patterns'
//    worth. Tiers keyed on cumulative update counts therefore give cold
//    tenants small-D models (hdc::min_dimension, rounded to a multiple of
//    64 and clamped to [64, base D]) and promote them to larger D as their
//    traffic grows. Promotion carries the running feature/target statistics
//    and sample count verbatim and restarts the HD accumulators — the
//    statistics transfer exactly, the superposition does not (hypervectors
//    of different D are not convertible), so a promoted tenant relearns its
//    bundle at full statistical speed. Set `tiered_dims = false` for strict
//    lifetime bit-identity across any traffic pattern.
//
//  * **Spill budget.** Millions of cold tenants would otherwise accumulate
//    unbounded spill bytes; `spill_budget_bytes` discards the
//    oldest-evicted blobs (counted — a discarded tenant restarts cold on
//    its next appearance).
//
// Ownership: a TenantStore is single-owner — NOT thread-safe. The serving
// integration gives each shard its own store and drives it from that
// shard's one thread; key→shard hashing already totally orders a tenant's
// traffic, so per-tenant state needs no locks anywhere. The stats counters
// are relaxed atomics purely so other threads may *read* them live.
//
// Hot path: a resident hit is a hash lookup, an intrusive LRU splice and
// predict_reusing against the store-owned scratch — no allocation. Misses
// (activation, eviction, reactivation) allocate and are counted/timed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/online.hpp"

namespace reghd::serve {

struct TenantStoreConfig {
  /// Maximum tenants holding live learners at once (≥ 1).
  std::size_t resident_budget = 1024;

  /// Capacity-model tier sizing (Eqs. 3–4). When false every tenant gets the
  /// base configuration's D and residency is the only compaction.
  bool tiered_dims = true;
  /// Normalized decision threshold T ∈ (0,1) for the capacity query.
  double capacity_threshold = 0.8;
  /// Tolerated false-positive probability ε ∈ (0, 0.5).
  double capacity_max_error = 0.05;
  /// Ascending cumulative-update boundaries; tier t covers updates <
  /// tier_updates[t], the final tier (full base D) covers the rest.
  std::vector<std::size_t> tier_updates = {64, 512};

  /// When nonempty, evicted blobs persist as atomic files under this
  /// directory (surviving process restarts); otherwise they stay in memory.
  std::string spill_dir;
  /// Spill byte cap; oldest-evicted blobs are discarded beyond it
  /// (0 = unbounded).
  std::size_t spill_budget_bytes = 256ull << 20;
};

/// Point-in-time stats readout. The event counters (hits … spill_discards,
/// resident_bytes) are relaxed atomics and safe to read from any thread;
/// the structural fields (resident, spilled, spill_bytes) are exact only
/// when read by the owning thread or after it has quiesced.
struct TenantStoreStats {
  std::uint64_t hits = 0;           ///< resident lookups.
  std::uint64_t misses = 0;         ///< lookups that had to activate.
  std::uint64_t activations = 0;    ///< fresh learners constructed.
  std::uint64_t reactivations = 0;  ///< checkpoint-restored returns.
  std::uint64_t evictions = 0;      ///< LRU evictions serialized out.
  std::uint64_t promotions = 0;     ///< tier promotions (D grew).
  std::uint64_t spill_discards = 0; ///< spilled blobs dropped by the budget.
  std::size_t resident = 0;         ///< tenants currently resident.
  std::size_t spilled = 0;          ///< tenants currently spilled.
  std::size_t resident_bytes = 0;   ///< approx. live-learner footprint.
  std::size_t spill_bytes = 0;      ///< serialized blob bytes retained.
};

class TenantStore {
 public:
  /// `online` is the *base* (hot-tier) stream configuration; tiered stores
  /// derive smaller-D variants from it. `num_features` fixes every tenant's
  /// input width.
  TenantStore(TenantStoreConfig config, core::OnlineConfig online,
              std::size_t num_features);

  TenantStore(const TenantStore&) = delete;
  TenantStore& operator=(const TenantStore&) = delete;

  /// Ensures `key` is resident (constructing or reactivating as needed,
  /// evicting the LRU tail when over budget), moves it to the LRU front and
  /// returns its learner. The reference stays valid until the tenant is
  /// evicted — at most until the next activate() of a different key.
  core::OnlineRegHD& activate(std::uint64_t key);

  /// Allocation-free resident-path predict: pair with activate() so the
  /// serving worker can bracket exactly this call with its no-alloc probe.
  [[nodiscard]] double predict_activated(const core::OnlineRegHD& learner,
                                         std::span<const double> features) {
    return learner.predict_reusing(features, predict_scratch_);
  }

  /// activate() + predict_activated() in one call.
  double predict(std::uint64_t key, std::span<const double> features);

  /// Prequential update of `key`'s model (activating it first if needed);
  /// advances the tenant's cumulative update count and applies any due tier
  /// promotion. Returns the pre-label prediction.
  double update(std::uint64_t key, std::span<const double> features, double target);

  /// Evicts every resident tenant through the spill path (with `spill_dir`
  /// set this is the persistence flush: all state lands on disk).
  void flush();

  [[nodiscard]] bool is_resident(std::uint64_t key) const {
    return resident_index_.contains(key);
  }
  [[nodiscard]] std::size_t resident_count() const noexcept {
    return resident_index_.size();
  }
  [[nodiscard]] TenantStoreStats stats() const;

  /// Dimension assigned to tier `t` (ascending, last = base D).
  [[nodiscard]] const std::vector<std::size_t>& tier_dims() const noexcept {
    return tier_dims_;
  }
  /// Tier covering a cumulative update count.
  [[nodiscard]] std::size_t tier_of(std::uint64_t updates) const noexcept;

  [[nodiscard]] const TenantStoreConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return nf_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;

  struct Entry {
    std::uint64_t key = 0;
    std::unique_ptr<core::OnlineRegHD> learner;
    std::uint64_t updates = 0;  ///< cumulative across residencies.
    std::size_t tier = 0;
    std::uint32_t prev = kNil;  ///< LRU list toward the front (hotter).
    std::uint32_t next = kNil;  ///< LRU list toward the tail (colder).
  };

  /// One evicted tenant: its serialized checkpoint (empty when it lives on
  /// disk instead) plus the metadata needed to re-tier it without parsing.
  struct Spilled {
    std::string blob;
    std::uint64_t updates = 0;
    std::size_t tier = 0;
    std::size_t bytes = 0;
    std::uint64_t seq = 0;  ///< eviction order, for budget discards.
  };

  [[nodiscard]] std::unique_ptr<core::OnlineRegHD> make_learner(std::size_t tier) const;
  [[nodiscard]] std::string spill_path(std::uint64_t key) const;
  [[nodiscard]] std::size_t approx_learner_bytes(std::size_t tier) const;

  Entry& entry_of(std::uint64_t key);  ///< activate + LRU-front, the miss path.
  void lru_unlink(std::uint32_t slot);
  void lru_push_front(std::uint32_t slot);
  void evict_lru_tail();
  void enforce_spill_budget();
  void maybe_promote(Entry& entry);

  TenantStoreConfig config_;
  core::OnlineConfig online_;
  std::size_t nf_;
  std::vector<std::size_t> tier_dims_;

  std::vector<Entry> entries_;       ///< slot storage (stable learner addresses).
  std::vector<std::uint32_t> free_;  ///< unused slots.
  std::unordered_map<std::uint64_t, std::uint32_t> resident_index_;
  std::uint32_t lru_head_ = kNil;
  std::uint32_t lru_tail_ = kNil;

  std::unordered_map<std::uint64_t, Spilled> spilled_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> spill_fifo_;  ///< (seq, key).
  std::uint64_t spill_seq_ = 0;
  std::size_t spill_bytes_ = 0;

  std::vector<double> predict_scratch_;

  // Observable from other threads (bench/ops readers); written relaxed by
  // the owner only.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> activations_{0};
  std::atomic<std::uint64_t> reactivations_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> spill_discards_{0};
  std::atomic<std::uint64_t> resident_bytes_{0};
};

}  // namespace reghd::serve
