// Bounded MPSC ingest ring with an inline feature-row plane.
//
// Each serving shard owns two of these (predict and train ingest). The
// design is the classic bounded MPMC queue with per-cell sequence numbers
// (Vyukov), specialised to a single consumer: producers claim cells by CAS
// on the tail and hand off with one release store of the cell's sequence;
// the consumer owns the head without any atomics of its own beyond the
// per-cell acquire loads. Nothing blocks — a full ring rejects the push and
// the caller decides (the admission policy lives above the ring).
//
// The payload of every cell is a fixed-width feature row. Rows live in one
// flat capacity×width plane allocated at construction, so a push is a
// header write plus a row memcpy into preallocated storage and the
// steady-state queue never touches the allocator — part of the serving
// runtime's allocation-free predict-path invariant.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "util/aligned.hpp"
#include "util/check.hpp"

namespace reghd::serve {

template <typename Header>
class IngestRing {
 public:
  /// `capacity` rounds up to a power of two (≥ 2); `row_width` is the fixed
  /// doubles-per-entry payload width (the stream's feature count).
  IngestRing(std::size_t capacity, std::size_t row_width)
      : capacity_(std::bit_ceil(std::max<std::size_t>(capacity, 2))),
        mask_(capacity_ - 1),
        width_(checked_row_width(row_width)),
        cells_(std::make_unique<Cell[]>(capacity_)),
        rows_(capacity_ * row_width) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  IngestRing(const IngestRing&) = delete;
  IngestRing& operator=(const IngestRing&) = delete;

  /// Multi-producer push. Copies `row` (must be row_width doubles) and the
  /// header into the claimed cell. Returns false when the ring is full;
  /// never blocks, never allocates.
  bool try_push(const Header& header, std::span<const double> row) {
    Cell* cell = nullptr;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;  // cell claimed
        }
      } else if (dif < 0) {
        return false;  // cell still holds an unconsumed entry: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->header = header;
    std::memcpy(rows_.data() + (pos & mask_) * width_, row.data(),
                width_ * sizeof(double));
    cell->seq.store(pos + 1, std::memory_order_release);  // hand off
    return true;
  }

  /// Single-consumer pop into caller storage (`row_out` must hold row_width
  /// doubles). Returns false when empty.
  bool try_pop(Header& header, double* row_out) {
    Cell& cell = cells_[head_ & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(head_ + 1) < 0) {
      return false;  // producer has not finished (or not started) this cell
    }
    header = cell.header;
    std::memcpy(row_out, rows_.data() + (head_ & mask_) * width_,
                width_ * sizeof(double));
    cell.seq.store(head_ + capacity_, std::memory_order_release);  // recycle
    ++head_;
    return true;
  }

  /// Consumer-side emptiness probe (racy for producers by nature: a false
  /// return only means "empty at the probe instant").
  [[nodiscard]] bool can_pop() const {
    const Cell& cell = cells_[head_ & mask_];
    return static_cast<std::int64_t>(cell.seq.load(std::memory_order_acquire)) -
               static_cast<std::int64_t>(head_ + 1) >=
           0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t row_width() const noexcept { return width_; }

 private:
  /// Validates the row width *before* the member allocations run (width_
  /// precedes cells_/rows_ in declaration order), so a zero width rejects
  /// cleanly instead of first allocating an empty row plane.
  [[nodiscard]] static std::size_t checked_row_width(std::size_t row_width) {
    REGHD_CHECK(row_width > 0, "ingest ring requires a nonzero row width");
    return row_width;
  }

  struct alignas(util::kCacheLineAlignment) Cell {
    std::atomic<std::uint64_t> seq;
    Header header;
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::size_t width_;
  std::unique_ptr<Cell[]> cells_;
  util::AlignedVector<double> rows_;  ///< capacity × width inline row plane.

  alignas(util::kCacheLineAlignment) std::atomic<std::uint64_t> tail_{0};
  alignas(util::kCacheLineAlignment) std::uint64_t head_ = 0;  ///< consumer-owned.
};

}  // namespace reghd::serve
