// Training telemetry: per-epoch records and the final report returned by
// every fit() in the core library. The learning-curve figures (Fig. 3,
// Fig. 6) are rendered directly from these records.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace reghd::core {

/// One epoch of iterative training.
struct EpochRecord {
  std::size_t epoch = 0;
  double train_mse = 0.0;  ///< MSE of the online predictions made during the epoch.
  double val_mse = 0.0;    ///< End-of-epoch MSE on the held-out validation set.
};

/// Optional callbacks threaded through iterative training
/// (MultiModelRegressor::fit / RegHDPipeline::fit). The checkpoint hook
/// fires after each epoch where (epoch+1) is a multiple of checkpoint_every,
/// while the model holds exactly the state of the epoch just finished — the
/// CLI uses it for crash-safe periodic saves of long fits. Note fit() keeps
/// the best-validation epoch at the end, so the final model may differ from
/// the last checkpoint (by design: a checkpoint is a recovery point, not the
/// selected model).
struct TrainingHooks {
  std::size_t checkpoint_every = 0;  ///< In epochs; 0 disables.
  std::function<void(std::size_t epoch)> on_checkpoint;

  /// Fires after each applied mini-batch when fit() runs with
  /// config.batch_size ≥ 1 (never in the online batch_size = 0 mode):
  /// zero-based epoch and batch index, plus the number of samples applied so
  /// far this epoch. The model holds exactly the post-batch state during the
  /// call, so a checkpoint taken here resumes bit-identically.
  std::function<void(std::size_t epoch, std::size_t batch, std::size_t samples_done)> on_batch;

  /// Fires after every epoch (post-validation, before the checkpoint hook)
  /// with a merged snapshot of the process-wide obs/ telemetry — per-stage
  /// counters and latency histograms accumulated so far. The snapshot is
  /// cumulative, not per-epoch; diff consecutive snapshots for rates. Only
  /// taken when the hook is set, and all-zero unless obs::set_enabled(true)
  /// was called (or under REGHD_NO_TELEMETRY).
  std::function<void(std::size_t epoch, const obs::TelemetrySnapshot&)> on_telemetry;
};

/// Result of an iterative fit.
struct TrainingReport {
  std::vector<EpochRecord> history;
  std::size_t epochs_run = 0;
  bool converged = false;  ///< True if stopping was triggered by the patience rule.
  double best_val_mse = 0.0;
  std::string stop_reason;

  [[nodiscard]] std::string summary() const;
};

}  // namespace reghd::core
