#include "core/multi_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include <cstring>

#include "core/early_stopping.hpp"
#include "hdc/encoding.hpp"
#include "hdc/kernel_backend.hpp"
#include "hdc/random_hv.hpp"
#include "obs/telemetry.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/statistics.hpp"

namespace reghd::core {

MultiModelRegressor::MultiModelRegressor(const RegHDConfig& config) : config_(config) {
  config_.validate();
  reset();
}

void MultiModelRegressor::reset() {
  util::Rng rng(config_.seed);
  util::Rng cluster_rng = rng.split();

  models_.assign(config_.models, RegressionModel(config_.dim));
  clusters_.clear();
  clusters_.reserve(config_.models);
  for (std::size_t i = 0; i < config_.models; ++i) {
    ClusterCenter c;
    // Paper §2.4: cluster hypervectors initialized to random binary values.
    c.accumulator = hdc::random_bipolar(config_.dim, cluster_rng).to_real();
    c.norm2 = static_cast<double>(config_.dim);
    c.requantize();
    clusters_.push_back(std::move(c));
  }
  for (auto& m : models_) {
    m.requantize();
  }
  rebuild_packed_bank();
}

void MultiModelRegressor::build_packed_bank_into(PackedTernaryBank& bank) const {
  const PredictionMode mode = config_.prediction_mode();
  const std::size_t d = config_.dim;
  const std::size_t words = (d + 63) / 64;
  const std::size_t k_c = clusters_.size();
  // Model rows ride in the bank whenever the model term is a popcount shape
  // (binary or ternary snapshots); real-precision models stay out (their
  // term is a float dot, handled per sample by predict_batch).
  const bool bank_models = mode.model == ModelPrecision::kBinary ||
                           mode.model == ModelPrecision::kTernary;
  const std::size_t rows = k_c + (bank_models ? models_.size() : 0);
  bank.rows = rows;
  bank.words = words;
  bank.signs.resize(rows * words);
  bank.masks.resize(rows * words);
  bank.scale.assign(rows, 1.0);
  // Full-participation mask row: all d bits set, padding bits zero (the
  // dot_rows_ternary contract) — under it the masked bipolar dot degenerates
  // to the exact d − 2·Hamming of the binary scan.
  std::vector<std::uint64_t> full(words, ~0ULL);
  if (d % 64 != 0 && words > 0) {
    full[words - 1] = (1ULL << (d % 64)) - 1;
  }
  for (std::size_t c = 0; c < k_c; ++c) {
    std::memcpy(bank.signs.data() + c * words, clusters_[c].binary.words().data(),
                words * sizeof(std::uint64_t));
    std::memcpy(bank.masks.data() + c * words, full.data(),
                words * sizeof(std::uint64_t));
  }
  if (bank_models) {
    for (std::size_t m = 0; m < models_.size(); ++m) {
      const std::size_t r = k_c + m;
      std::memcpy(bank.signs.data() + r * words, models_[m].binary.words().data(),
                  words * sizeof(std::uint64_t));
      if (mode.model == ModelPrecision::kTernary) {
        std::memcpy(bank.masks.data() + r * words,
                    models_[m].ternary_mask.words().data(),
                    words * sizeof(std::uint64_t));
        bank.scale[r] = models_[m].gamma_ternary;
      } else {
        std::memcpy(bank.masks.data() + r * words, full.data(),
                    words * sizeof(std::uint64_t));
        bank.scale[r] = models_[m].gamma;
      }
    }
  }
  bank.valid = true;
}

void MultiModelRegressor::rebuild_packed_bank() {
  build_packed_bank_into(packed_bank_);
}

std::vector<double> MultiModelRegressor::similarities(
    const hdc::EncodedSampleView& sample) const {
  std::vector<double> sims(clusters_.size());
  similarities_into(sample, sims);
  return sims;
}

void MultiModelRegressor::similarities_into(const hdc::EncodedSampleView& sample,
                                            std::span<double> sims) const {
  REGHD_CHECK(sample.real.dim() == config_.dim,
              "sample dim " << sample.real.dim() << " != configured dim " << config_.dim);
  switch (config_.cluster_mode) {
    case ClusterMode::kFullPrecision: {
      // Eq. 5 cosine over the integer centers, query at its configured
      // precision. Query norm is cached; cluster norms are maintained
      // incrementally.
      const double qn2 = query_norm2(sample, config_.query_precision);
      const double qn = std::sqrt(qn2);
      for (std::size_t i = 0; i < clusters_.size(); ++i) {
        const double cn = std::sqrt(clusters_[i].norm2);
        if (cn == 0.0 || qn == 0.0) {
          sims[i] = 0.0;
          continue;
        }
        sims[i] =
            raw_query_dot(clusters_[i].accumulator, sample, config_.query_precision) / (cn * qn);
      }
      break;
    }
    case ClusterMode::kQuantized:
    case ClusterMode::kNaiveBinary: {
      // §3.1: Hamming similarity of binary snapshots against the binary
      // query; range [−1, 1] matches the cosine scale.
      for (std::size_t i = 0; i < clusters_.size(); ++i) {
        sims[i] = hdc::hamming_similarity(clusters_[i].binary, sample.binary);
      }
      break;
    }
  }
}

std::size_t MultiModelRegressor::assign_cluster(const hdc::EncodedSampleView& sample) const {
  const auto sims = similarities(sample);
  return static_cast<std::size_t>(
      std::distance(sims.begin(), std::max_element(sims.begin(), sims.end())));
}

std::vector<double> MultiModelRegressor::confidences_from(std::vector<double> sims) const {
  confidences_into(sims);
  return sims;
}

void MultiModelRegressor::confidences_into(std::span<double> sims) const {
  if (config_.normalize_similarities && sims.size() > 1) {
    double mean = 0.0;
    for (const double s : sims) {
      mean += s;
    }
    mean /= static_cast<double>(sims.size());
    double var = 0.0;
    for (const double s : sims) {
      var += (s - mean) * (s - mean);
    }
    var /= static_cast<double>(sims.size());
    const double inv_std = 1.0 / (std::sqrt(var) + 1e-12);
    for (double& s : sims) {
      s = (s - mean) * inv_std;
    }
  }
  util::softmax_inplace(sims, config_.softmax_temperature);
}

double MultiModelRegressor::predict(const hdc::EncodedSampleView& sample) const {
  const obs::StageTimer timer(obs::Histo::kPredictNs);
  obs::count(obs::Counter::kPredicts);
  const auto conf = confidences_from(similarities(sample));
  const PredictionMode mode = config_.prediction_mode();
  double y = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    y += conf[i] * predict_dot(models_[i], sample, mode);
  }
  return y;
}

PredictionDetail MultiModelRegressor::predict_detail(const hdc::EncodedSampleView& sample) const {
  PredictionDetail detail;
  detail.similarities = similarities(sample);
  detail.confidences = confidences_from(detail.similarities);
  detail.best_cluster = static_cast<std::size_t>(std::distance(
      detail.similarities.begin(),
      std::max_element(detail.similarities.begin(), detail.similarities.end())));
  const PredictionMode mode = config_.prediction_mode();
  detail.model_outputs.resize(models_.size());
  detail.prediction = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    detail.model_outputs[i] = predict_dot(models_[i], sample, mode);
    detail.prediction += detail.confidences[i] * detail.model_outputs[i];
  }
  return detail;
}

double MultiModelRegressor::predict_one(const hdc::Encoder& encoder,
                                        std::span<const double> features) const {
  const obs::StageTimer timer(obs::Histo::kPredictOneNs);
  REGHD_CHECK(encoder.dim() == config_.dim,
              "encoder dim " << encoder.dim() << " != configured dim " << config_.dim);
  const PredictionMode mode = config_.prediction_mode();
  const bool real_fusable = config_.cluster_mode == ClusterMode::kFullPrecision &&
                            mode.query == QueryPrecision::kReal &&
                            mode.model == ModelPrecision::kReal;
  const bool quantized_fusable =
      (config_.cluster_mode == ClusterMode::kQuantized ||
       config_.cluster_mode == ClusterMode::kNaiveBinary) &&
      mode.query == QueryPrecision::kBinary &&
      (mode.model == ModelPrecision::kBinary ||
       mode.model == ModelPrecision::kTernary);
  if (!config_.fused_predict || !encoder.supports_block_encode() ||
      !(real_fusable || quantized_fusable)) {
    // Materializing path: full encode, then the ordinary Eq. 5/6 predict.
    // Covers encoders without block support, fused_predict = false, and the
    // mode combinations whose model term is not fusable (e.g. ternary model
    // with a real query — a sparse masked float dot that wants the whole
    // query anyway).
    obs::count(obs::Counter::kPredictFusedFallbacks);
    return predict(encoder.encode(features));
  }

  // One L1-resident slice of the hyperspace per iteration: the 8 KB block
  // plus the bank rows' slices stay in cache from the encode stage through
  // the bank scan — the software mirror of sim/accelerator.hpp's
  // encode → similarity-search → confidence → predict stage pipeline, with
  // blocks in place of its streamed beats. 1024 is a multiple of 64 (the
  // dot_rows_block / word-packing granularity), so only the final block may
  // be ragged.
  constexpr std::size_t kFusedBlock = 1024;
  const hdc::KernelBackend& kb = hdc::active_backend();
  const std::size_t d = config_.dim;
  const double dd = static_cast<double>(d);
  const std::size_t k_c = clusters_.size();
  const std::size_t k_m = models_.size();
  obs::count(obs::Counter::kPredicts);
  obs::count(obs::Counter::kPredictFused);

  // thread_local scratch: predict_one is const and must stay safe to call
  // concurrently, without paying per-call allocations on the latency path.
  thread_local std::vector<double> block;
  thread_local std::vector<double> sims;
  block.resize(kFusedBlock);
  sims.resize(k_c);

  if (real_fusable) {
    // Replays predict_batch's full-precision bank scan, one block at a time:
    // dot_rows_block carries each row's lane-accumulator state across blocks
    // and finishes bit-identical to its backend's dot_real_real, so the
    // scores equal raw_query_dot / predict_dot exactly. The query's own
    // norm² rides as one extra bank row (q·q through the same kernel —
    // exactly how encode() computes real_norm2).
    const std::size_t rows = k_c + k_m + 1;
    thread_local std::vector<double> state;
    thread_local std::vector<const double*> row_ptrs;
    thread_local std::vector<double> scores;
    state.assign(rows * hdc::kDotRowsBlockState, 0.0);
    row_ptrs.resize(rows);
    scores.resize(rows);
    for (std::size_t j0 = 0; j0 < d; j0 += kFusedBlock) {
      const std::size_t len = std::min(kFusedBlock, d - j0);
      const bool last = j0 + len == d;
      encoder.encode_real_block(features, j0, len, block.data());
      for (std::size_t c = 0; c < k_c; ++c) {
        row_ptrs[c] = clusters_[c].accumulator.values().data() + j0;
      }
      for (std::size_t m = 0; m < k_m; ++m) {
        row_ptrs[k_c + m] = models_[m].accumulator.values().data() + j0;
      }
      row_ptrs[k_c + k_m] = block.data();
      kb.dot_rows_block(block.data(), row_ptrs.data(), rows, len, last,
                        state.data(), scores.data());
    }
    // Replay of similarities_into (full-precision branch) + confidences +
    // Eq. 6, operation for operation.
    const double qn = std::sqrt(scores[k_c + k_m]);
    for (std::size_t c = 0; c < k_c; ++c) {
      const double cn = std::sqrt(clusters_[c].norm2);
      sims[c] = (cn == 0.0 || qn == 0.0) ? 0.0 : scores[c] / (cn * qn);
    }
    confidences_into(sims);
    double y = 0.0;
    for (std::size_t m = 0; m < k_m; ++m) {
      y += sims[m] * (scores[k_c + m] / dd);
    }
    return y;
  }

  // Quantized bank scan (§3.1 + §3.2), blocked: each encoded block is
  // sign-packed (bit-identical to the slice of encode()'s sign/pack — word
  // boundaries align because non-final blocks are 64-multiples) and scored
  // against the word-offset slice of the packed 2-bit-plane bank; the
  // per-block masked popcount scores are integers, so summing them across
  // blocks is exact and the totals equal the unblocked dot_rows_ternary.
  const std::size_t words = (d + 63) / 64;
  PackedTernaryBank local;
  if (!packed_bank_.valid) {
    build_packed_bank_into(local);
  }
  const PackedTernaryBank& bank = packed_bank_.valid ? packed_bank_ : local;
  REGHD_INTERNAL_CHECK(bank.rows == k_c + k_m && bank.words == words,
                       "packed bank geometry " << bank.rows << "×" << bank.words
                                               << " does not match predict shape");
  thread_local std::vector<std::int8_t> bipolar;
  thread_local std::vector<std::uint64_t> qwords;
  thread_local std::vector<std::int64_t> block_scores;
  thread_local std::vector<std::int64_t> totals;
  bipolar.resize(kFusedBlock);
  qwords.resize(kFusedBlock / 64);
  block_scores.resize(bank.rows);
  totals.assign(bank.rows, 0);
  for (std::size_t j0 = 0; j0 < d; j0 += kFusedBlock) {
    const std::size_t len = std::min(kFusedBlock, d - j0);
    encoder.encode_real_block(features, j0, len, block.data());
    kb.sign_encode(block.data(), bipolar.data(), qwords.data(), len);
    const std::size_t w0 = j0 / 64;
    kb.dot_rows_ternary(qwords.data(), bank.signs.data() + w0,
                        bank.masks.data() + w0, bank.words, bank.rows, len,
                        block_scores.data());
    for (std::size_t r = 0; r < bank.rows; ++r) {
      totals[r] += block_scores[r];
    }
  }
  // Replay of predict_batch's quantized replay of hamming_similarity /
  // predict_dot / predict(): exact integer distance, then the same float
  // expressions.
  for (std::size_t c = 0; c < k_c; ++c) {
    const auto h =
        static_cast<double>((static_cast<std::int64_t>(d) - totals[c]) / 2);
    sims[c] = 1.0 - 2.0 * h / dd;
  }
  confidences_into(sims);
  double y = 0.0;
  for (std::size_t m = 0; m < k_m; ++m) {
    y += sims[m] *
         (bank.scale[k_c + m] * static_cast<double>(totals[k_c + m]) / dd);
  }
  return y;
}

std::vector<double> MultiModelRegressor::predict_batch(const EncodedDataset& dataset,
                                                       std::size_t threads) const {
  const obs::StageTimer timer(obs::Histo::kPredictBatchNs);
  obs::count(obs::Counter::kPredictBatchRows, dataset.size());
  std::vector<double> out(dataset.size());
  const std::size_t use_threads = threads != 0 ? threads : config_.threads;
  const PredictionMode mode = config_.prediction_mode();
  if (config_.cluster_mode == ClusterMode::kFullPrecision &&
      mode.query == QueryPrecision::kReal && mode.model == ModelPrecision::kReal &&
      !dataset.empty() && dataset.dim() == config_.dim) {
    // Full-precision fast path: pack all cluster and model accumulators into
    // one contiguous (k_c + k_m)×D bank so every query row is scored against
    // the whole bank with a single dot_rows sweep (the bank stays hot in
    // cache across rows). dot_rows reduces each bank row exactly like the
    // dot_real_real calls behind raw_query_dot / predict_dot, and the
    // sims → confidences → Eq. 6 arithmetic below replays predict()'s
    // operation sequence, so out[i] is bit-identical to predict(sample(i)).
    const hdc::KernelBackend& kb = hdc::active_backend();
    const std::size_t d = config_.dim;
    const double dd = static_cast<double>(d);
    const std::size_t k_c = clusters_.size();
    const std::size_t k_m = models_.size();
    util::AlignedVector<double> bank((k_c + k_m) * d);
    std::vector<double> cluster_norm(k_c);
    for (std::size_t c = 0; c < k_c; ++c) {
      std::memcpy(bank.data() + c * d, clusters_[c].accumulator.values().data(),
                  d * sizeof(double));
      cluster_norm[c] = std::sqrt(clusters_[c].norm2);
    }
    for (std::size_t m = 0; m < k_m; ++m) {
      std::memcpy(bank.data() + (k_c + m) * d, models_[m].accumulator.values().data(),
                  d * sizeof(double));
    }
    const double* rows = dataset.real_plane().data();
    constexpr std::size_t kChunk = 64;
    const std::size_t chunks = (dataset.size() + kChunk - 1) / kChunk;
    util::parallel_for(
        chunks,
        [&](std::size_t chunk) {
          const std::size_t r0 = chunk * kChunk;
          const std::size_t rn = std::min(dataset.size(), r0 + kChunk);
          std::vector<double> scores(k_c + k_m);
          std::vector<double> sims(k_c);
          for (std::size_t i = r0; i < rn; ++i) {
            kb.dot_rows(rows + i * d, bank.data(), d, k_c + k_m, d, scores.data());
            const double qn = std::sqrt(dataset.norms2()[i]);
            for (std::size_t c = 0; c < k_c; ++c) {
              sims[c] = (cluster_norm[c] == 0.0 || qn == 0.0)
                            ? 0.0
                            : scores[c] / (cluster_norm[c] * qn);
            }
            const std::vector<double> conf = confidences_from(sims);
            double y = 0.0;
            for (std::size_t m = 0; m < k_m; ++m) {
              y += conf[m] * (scores[k_c + m] / dd);
            }
            out[i] = y;
          }
        },
        use_threads);
    return out;
  }
  if ((config_.cluster_mode == ClusterMode::kQuantized ||
       config_.cluster_mode == ClusterMode::kNaiveBinary) &&
      mode.query == QueryPrecision::kBinary && !dataset.empty() &&
      dataset.dim() == config_.dim) {
    // Quantized bank scan (§3.1 + §3.2): the Hamming similarities of every
    // query against all cluster snapshots come from one dot_rows_ternary
    // popcount sweep over the packed 2-bit-plane bank; with a binary or
    // ternary model the k model snapshot rows ride in the same bank (full
    // mask + γ, or dead-zone mask + γ_ternary), making the whole Eq. 5/6
    // pipeline XNOR+popcount. The integer masked bipolar dots are exact —
    // full-mask rows reduce to the same d − 2·Hamming the binary scan
    // produced — and the float arithmetic below replays hamming_similarity /
    // predict_dot / predict() operation-for-operation, so out[i] is
    // bit-identical to predict(sample(i)).
    const hdc::KernelBackend& kb = hdc::active_backend();
    const std::size_t d = config_.dim;
    const double dd = static_cast<double>(d);
    const std::size_t words = dataset.words_per_row();
    const std::size_t k_c = clusters_.size();
    const std::size_t k_m = models_.size();
    const bool bank_models = mode.model == ModelPrecision::kBinary ||
                             mode.model == ModelPrecision::kTernary;
    // The persistent bank tracks the snapshots (rebuilt on requantize);
    // after raw mutable-state access it is stale, so score through a
    // per-call bank instead — same bytes, same results.
    PackedTernaryBank local;
    if (!packed_bank_.valid) {
      build_packed_bank_into(local);
    }
    const PackedTernaryBank& bank = packed_bank_.valid ? packed_bank_ : local;
    REGHD_INTERNAL_CHECK(bank.rows == k_c + (bank_models ? k_m : 0) &&
                             bank.words == words,
                         "packed bank geometry " << bank.rows << "×" << bank.words
                                                 << " does not match predict shape");
    const std::uint64_t* bits = dataset.binary_plane().data();
    constexpr std::size_t kChunk = 64;
    const std::size_t chunks = (dataset.size() + kChunk - 1) / kChunk;
    util::parallel_for(
        chunks,
        [&](std::size_t chunk) {
          const std::size_t r0 = chunk * kChunk;
          const std::size_t rn = std::min(dataset.size(), r0 + kChunk);
          std::vector<std::int64_t> scores(bank.rows);
          std::vector<double> sims(k_c);
          for (std::size_t i = r0; i < rn; ++i) {
            kb.dot_rows_ternary(bits + i * words, bank.signs.data(),
                                bank.masks.data(), words, bank.rows, d,
                                scores.data());
            for (std::size_t c = 0; c < k_c; ++c) {
              // hamming_similarity replayed from the exact integer distance
              // h = (d − dot) / 2.
              const auto h = static_cast<double>(
                  (static_cast<std::int64_t>(d) - scores[c]) / 2);
              sims[c] = 1.0 - 2.0 * h / dd;
            }
            const std::vector<double> conf = confidences_from(sims);
            double y = 0.0;
            if (bank_models) {
              // γ·score/D (binary) or γ_ternary·score/D (ternary) — the
              // bank's per-row scale is exactly that γ, so one expression
              // replays both predict_dot forms.
              for (std::size_t m = 0; m < k_m; ++m) {
                y += conf[m] * (bank.scale[k_c + m] *
                                static_cast<double>(scores[k_c + m]) / dd);
              }
            } else {
              // Integer (real-precision) model term: not a popcount shape;
              // reuse the per-sample kernel (still banked sims above).
              const hdc::EncodedSampleView s = dataset.sample(i);
              for (std::size_t m = 0; m < k_m; ++m) {
                y += conf[m] * predict_dot(models_[m], s, mode);
              }
            }
            out[i] = y;
          }
        },
        use_threads);
    return out;
  }
  util::parallel_for(
      dataset.size(), [&](std::size_t i) { out[i] = predict(dataset.sample(i)); },
      use_threads);
  return out;
}

void MultiModelRegressor::prepare_predict_scratch(PredictScratch& scratch) const {
  const PredictionMode mode = config_.prediction_mode();
  const std::size_t d = config_.dim;
  const std::size_t k_c = clusters_.size();
  const std::size_t k_m = models_.size();
  scratch.sims.assign(k_c, 0.0);
  if (config_.cluster_mode == ClusterMode::kFullPrecision &&
      mode.query == QueryPrecision::kReal && mode.model == ModelPrecision::kReal) {
    // Same bank layout predict_batch builds per call: clusters then models,
    // one contiguous (k_c + k_m)×D block, with the √‖C‖² cache alongside.
    scratch.bank.assign((k_c + k_m) * d, 0.0);
    scratch.cluster_norm.assign(k_c, 0.0);
    for (std::size_t c = 0; c < k_c; ++c) {
      std::memcpy(scratch.bank.data() + c * d,
                  clusters_[c].accumulator.values().data(), d * sizeof(double));
      scratch.cluster_norm[c] = std::sqrt(clusters_[c].norm2);
    }
    for (std::size_t m = 0; m < k_m; ++m) {
      std::memcpy(scratch.bank.data() + (k_c + m) * d,
                  models_[m].accumulator.values().data(), d * sizeof(double));
    }
    scratch.scores.assign(k_c + k_m, 0.0);
  } else if ((config_.cluster_mode == ClusterMode::kQuantized ||
              config_.cluster_mode == ClusterMode::kNaiveBinary) &&
             mode.query == QueryPrecision::kBinary) {
    // Build the fallback packed bank only when the persistent one is stale —
    // predict time picks whichever is current, exactly like predict_batch.
    if (!packed_bank_.valid) {
      build_packed_bank_into(scratch.packed);
    }
    const std::size_t bank_rows =
        packed_bank_.valid ? packed_bank_.rows : scratch.packed.rows;
    scratch.qscores.assign(bank_rows, 0);
  }
  scratch.prepared = true;
}

void MultiModelRegressor::predict_batch_into(const EncodedDataset& dataset,
                                             std::span<double> out,
                                             PredictScratch& scratch) const {
  REGHD_CHECK(out.size() >= dataset.size(),
              "predict_batch_into output span holds " << out.size()
                                                      << " slots for "
                                                      << dataset.size() << " rows");
  REGHD_CHECK(scratch.prepared, "predict scratch was never prepared");
  const obs::StageTimer timer(obs::Histo::kPredictBatchNs);
  obs::count(obs::Counter::kPredictBatchRows, dataset.size());
  if (dataset.empty()) {
    return;
  }
  const PredictionMode mode = config_.prediction_mode();
  const hdc::KernelBackend& kb = hdc::active_backend();
  const std::size_t d = config_.dim;
  const double dd = static_cast<double>(d);
  const std::size_t k_c = clusters_.size();
  const std::size_t k_m = models_.size();
  if (config_.cluster_mode == ClusterMode::kFullPrecision &&
      mode.query == QueryPrecision::kReal && mode.model == ModelPrecision::kReal &&
      dataset.dim() == config_.dim) {
    // Serial replay of predict_batch's full-precision bank sweep. The
    // parallel form is row-independent, so running rows in order through the
    // prepared bank produces the identical bit pattern — only the thread
    // fan-out and the per-call bank/score allocations are gone.
    const double* rows = dataset.real_plane().data();
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      kb.dot_rows(rows + i * d, scratch.bank.data(), d, k_c + k_m, d,
                  scratch.scores.data());
      const double qn = std::sqrt(dataset.norms2()[i]);
      for (std::size_t c = 0; c < k_c; ++c) {
        scratch.sims[c] = (scratch.cluster_norm[c] == 0.0 || qn == 0.0)
                              ? 0.0
                              : scratch.scores[c] / (scratch.cluster_norm[c] * qn);
      }
      confidences_into(scratch.sims);
      double y = 0.0;
      for (std::size_t m = 0; m < k_m; ++m) {
        y += scratch.sims[m] * (scratch.scores[k_c + m] / dd);
      }
      out[i] = y;
    }
    return;
  }
  if ((config_.cluster_mode == ClusterMode::kQuantized ||
       config_.cluster_mode == ClusterMode::kNaiveBinary) &&
      mode.query == QueryPrecision::kBinary && dataset.dim() == config_.dim) {
    // Serial replay of the quantized popcount sweep, scoring through the
    // persistent bank when current and the prepared fallback otherwise.
    const std::size_t words = dataset.words_per_row();
    const bool bank_models = mode.model == ModelPrecision::kBinary ||
                             mode.model == ModelPrecision::kTernary;
    const PackedTernaryBank& bank =
        packed_bank_.valid ? packed_bank_ : scratch.packed;
    REGHD_INTERNAL_CHECK(bank.rows == k_c + (bank_models ? k_m : 0) &&
                             bank.words == words &&
                             scratch.qscores.size() >= bank.rows,
                         "packed bank geometry " << bank.rows << "×" << bank.words
                                                 << " does not match predict shape");
    const std::uint64_t* bits = dataset.binary_plane().data();
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      kb.dot_rows_ternary(bits + i * words, bank.signs.data(), bank.masks.data(),
                          words, bank.rows, d, scratch.qscores.data());
      for (std::size_t c = 0; c < k_c; ++c) {
        const auto h = static_cast<double>(
            (static_cast<std::int64_t>(d) - scratch.qscores[c]) / 2);
        scratch.sims[c] = 1.0 - 2.0 * h / dd;
      }
      confidences_into(scratch.sims);
      double y = 0.0;
      if (bank_models) {
        for (std::size_t m = 0; m < k_m; ++m) {
          y += scratch.sims[m] * (bank.scale[k_c + m] *
                                  static_cast<double>(scratch.qscores[k_c + m]) / dd);
        }
      } else {
        const hdc::EncodedSampleView s = dataset.sample(i);
        for (std::size_t m = 0; m < k_m; ++m) {
          y += scratch.sims[m] * predict_dot(models_[m], s, mode);
        }
      }
      out[i] = y;
    }
    return;
  }
  // Generic modes: per-row predict(), same as predict_batch's last resort
  // (this path allocates; the serving no-alloc guarantee covers the two bank
  // fast paths above).
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out[i] = predict(dataset.sample(i));
  }
}

double MultiModelRegressor::evaluate_mse(const EncodedDataset& dataset) const {
  REGHD_CHECK(!dataset.empty(), "cannot evaluate on an empty dataset");
  const std::vector<double> pred = predict_batch(dataset);
  // Serial accumulation in index order keeps the MSE bit-identical for any
  // thread count.
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - dataset.target(i);
    acc += e * e;
  }
  return acc / static_cast<double>(dataset.size());
}

double MultiModelRegressor::train_step(const hdc::EncodedSampleView& sample, double target) {
  const obs::StageTimer timer(obs::Histo::kTrainStepNs);
  obs::count(obs::Counter::kTrainSteps);
  // Member scratch instead of per-call vectors: train_step runs once per
  // sample per epoch, and the two allocations dominated its fixed cost.
  step_sims_.resize(clusters_.size());
  similarities_into(sample, step_sims_);
  step_conf_.assign(step_sims_.begin(), step_sims_.end());
  confidences_into(step_conf_);
  const std::vector<double>& sims = step_sims_;
  const std::vector<double>& conf = step_conf_;
  // The training error is always measured against the integer models being
  // updated (paper §3.2: binary snapshots are regenerated from the integer
  // model per epoch/batch; computing the error from an epoch-frozen snapshot
  // would keep it constant and destabilize the accumulation). Binary kernels
  // apply at inference via predict().
  const PredictionMode mode{config_.query_precision, ModelPrecision::kReal};

  // Eq. 6: confidence-weighted prediction.
  double prediction = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    prediction += conf[i] * predict_dot(models_[i], sample, mode);
  }
  double error = target - prediction;
  if (config_.error_clip > 0.0) {
    error = std::clamp(error, -config_.error_clip, config_.error_clip);
  }

  // Eq. 7: model updates on the integer accumulators.
  const std::size_t winner = static_cast<std::size_t>(
      std::distance(sims.begin(), std::max_element(sims.begin(), sims.end())));
  const double normalizer = update_normalizer(sample, config_.query_precision);
  if (config_.update_rule == UpdateRule::kConfidenceWeighted) {
    // Mixture-normalized LMS: dividing by Σδ'² makes the joint update move
    // this sample's blended prediction by exactly α·err, independent of how
    // soft the confidences are (for one-hot confidence this is Eq. 7
    // verbatim).
    double conf_sq = 0.0;
    for (const double c : conf) {
      conf_sq += c * c;
    }
    const double mix_norm = conf_sq > 0.0 ? 1.0 / conf_sq : 0.0;
    for (std::size_t i = 0; i < models_.size(); ++i) {
      const double coeff = config_.learning_rate * error * conf[i] * normalizer * mix_norm;
      if (coeff != 0.0) {
        update_accumulator(models_[i].accumulator, sample, coeff, config_.query_precision);
      }
    }
  } else {
    update_accumulator(models_[winner].accumulator, sample,
                       config_.learning_rate * error * normalizer, config_.query_precision);
  }

  // Eq. 8 / Eq. 9: cluster update on the winning center's integer
  // accumulator. The paper's Eq. 9 updates the integer copy with the
  // integer-encoded input even when similarity search is binary; frozen in
  // the naive-binarization foil.
  obs::count_cluster_hit(winner);
  if (config_.cluster_mode != ClusterMode::kNaiveBinary) {
    ClusterCenter& c = clusters_[winner];
    const double weight = 1.0 - sims[winner];
    if (weight != 0.0) {
      obs::count(obs::Counter::kClusterUpdates);
      // Maintain ‖C‖² incrementally: ‖C + w·S‖² = ‖C‖² + 2w·(C·S) + w²·‖S‖².
      const double dot_cs = hdc::dot(c.accumulator, sample.real);
      hdc::add_scaled(c.accumulator, sample.real, weight);
      c.norm2 += 2.0 * weight * dot_cs + weight * weight * sample.real_norm2;
      c.norm2 = std::max(c.norm2, 0.0);
    }
  }
  return prediction;
}

void MultiModelRegressor::train_batch(const EncodedDataset& data,
                                      std::span<const std::size_t> indices,
                                      std::span<double> predictions, std::size_t threads) {
  REGHD_CHECK(predictions.size() == indices.size(),
              "train_batch needs one prediction slot per index, got "
                  << predictions.size() << " for " << indices.size());
  if (indices.empty()) {
    return;
  }
  REGHD_CHECK(data.dim() == config_.dim,
              "batch data dim " << data.dim() << " != configured dim " << config_.dim);
  const obs::StageTimer timer(obs::Histo::kTrainBatchNs);
  obs::count(obs::Counter::kTrainBatches);
  obs::count(obs::Counter::kTrainBatchSamples, indices.size());
  const std::size_t b = indices.size();
  const std::size_t k = models_.size();
  const std::size_t use_threads = threads != 0 ? threads : config_.threads;
  const double dd = static_cast<double>(config_.dim);
  const bool confidence_weighted = config_.update_rule == UpdateRule::kConfidenceWeighted;
  const PredictionMode train_mode{config_.query_precision, ModelPrecision::kReal};

  batch_sims_.resize(b * k);
  batch_conf_.resize(b * k);
  batch_weight_.resize(b);
  batch_winner_.resize(b);
  if (confidence_weighted) {
    batch_coeff_.resize(b * k);
  } else {
    batch_wcoeff_.resize(b);
  }

  // Finishes one sample's phase-1 work from its filled sims/conf rows and
  // Eq. 6 prediction: error, winner, Eq. 7 coefficients, Eq. 8 weight. Every
  // store lands in sample j's own scratch slots, so phase 1 is deterministic
  // for any thread count. The arithmetic replays train_step's operation
  // sequence exactly — a one-sample batch is bit-identical to train_step.
  const auto finish_sample = [&](std::size_t j, double prediction) {
    const std::size_t row = indices[j];
    predictions[j] = prediction;
    double error = data.target(row) - prediction;
    if (config_.error_clip > 0.0) {
      error = std::clamp(error, -config_.error_clip, config_.error_clip);
    }
    const double* sims = batch_sims_.data() + j * k;
    const double* conf = batch_conf_.data() + j * k;
    const auto winner =
        static_cast<std::size_t>(std::distance(sims, std::max_element(sims, sims + k)));
    batch_winner_[j] = winner;
    obs::count_cluster_hit(winner);
    const double normalizer = update_normalizer(data.sample(row), config_.query_precision);
    if (confidence_weighted) {
      double conf_sq = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        conf_sq += conf[i] * conf[i];
      }
      const double mix_norm = conf_sq > 0.0 ? 1.0 / conf_sq : 0.0;
      double* coeff = batch_coeff_.data() + j * k;
      for (std::size_t i = 0; i < k; ++i) {
        coeff[i] = config_.learning_rate * error * conf[i] * normalizer * mix_norm;
      }
    } else {
      batch_wcoeff_[j] = config_.learning_rate * error * normalizer;
    }
    batch_weight_[j] = 1.0 - sims[winner];
  };

  // Phase 1 — per-sample Eq. 5/6 quantities against the entry (batch-start)
  // state, parallel over samples. The bank fast path pays a 2k·D bank copy
  // per call, which only amortizes once a few samples share it; tiny batches
  // (B = 1 above all) take the per-sample kernels directly. Both branches
  // are bit-identical, so the constant threshold only moves cost around.
  constexpr std::size_t kBankMinBatch = 8;
  if (config_.cluster_mode == ClusterMode::kFullPrecision &&
      config_.query_precision == QueryPrecision::kReal && b >= kBankMinBatch) {
    // Bank fast path (the default training configuration): one dot_rows
    // sweep of each sample row against a contiguous batch-start bank of the
    // k cluster + k model accumulators. dot_rows reduces each bank row in
    // the operand order of raw_query_dot / predict_dot, so the sims and
    // model dots are bit-identical to the per-sample kernel calls.
    const hdc::KernelBackend& kb = hdc::active_backend();
    const std::size_t d = config_.dim;
    batch_bank_.resize(2 * k * d);
    batch_cnorm_.resize(k);
    std::vector<double>& cluster_norm = batch_cnorm_;
    for (std::size_t c = 0; c < k; ++c) {
      std::memcpy(batch_bank_.data() + c * d, clusters_[c].accumulator.values().data(),
                  d * sizeof(double));
      cluster_norm[c] = std::sqrt(clusters_[c].norm2);
    }
    for (std::size_t m = 0; m < k; ++m) {
      std::memcpy(batch_bank_.data() + (k + m) * d, models_[m].accumulator.values().data(),
                  d * sizeof(double));
    }
    batch_scores_.resize(b * 2 * k);
    const double* rows = data.real_plane().data();
    util::parallel_for(
        b,
        [&](std::size_t j) {
          const std::size_t row = indices[j];
          double* scores = batch_scores_.data() + j * 2 * k;
          kb.dot_rows(rows + row * d, batch_bank_.data(), d, 2 * k, d, scores);
          const double qn = std::sqrt(data.norms2()[row]);
          double* sims = batch_sims_.data() + j * k;
          for (std::size_t c = 0; c < k; ++c) {
            sims[c] = (cluster_norm[c] == 0.0 || qn == 0.0)
                          ? 0.0
                          : scores[c] / (cluster_norm[c] * qn);
          }
          double* conf = batch_conf_.data() + j * k;
          std::copy(sims, sims + k, conf);
          confidences_into(std::span<double>(conf, k));
          double prediction = 0.0;
          for (std::size_t m = 0; m < k; ++m) {
            prediction += conf[m] * (scores[k + m] / dd);
          }
          finish_sample(j, prediction);
        },
        use_threads);
  } else {
    // Generic phase 1 (quantized/naive clusters or binary queries): the
    // per-sample kernels of train_step, parallel over samples.
    util::parallel_for(
        b,
        [&](std::size_t j) {
          const hdc::EncodedSampleView s = data.sample(indices[j]);
          double* sims = batch_sims_.data() + j * k;
          similarities_into(s, std::span<double>(sims, k));
          double* conf = batch_conf_.data() + j * k;
          std::copy(sims, sims + k, conf);
          confidences_into(std::span<double>(conf, k));
          double prediction = 0.0;
          for (std::size_t i = 0; i < k; ++i) {
            prediction += conf[i] * predict_dot(models_[i], s, train_mode);
          }
          finish_sample(j, prediction);
        },
        use_threads);
  }

  // Phase 2a — Eq. 7 model updates, dimension-sliced across workers. Per
  // accumulator component the coefficients chain in ascending list order j,
  // exactly as a serial sample-order replay, and slicing cannot perturb that:
  // add_scaled_real rounds every component as an independent mul-then-add and
  // add_scaled_bipolar adds an exact ±coeff, so a component's value never
  // depends on which slice (or thread) computed it. Looping j outer / model
  // inner keeps each sample's row slice hot across the k model updates and
  // streams the encoded plane exactly once per batch — the per-model-chain
  // alternative re-reads it k times over, which made the first cut of this
  // path slower than the sequential trainer it was meant to beat.
  {
    const hdc::KernelBackend& kb = hdc::active_backend();
    const std::size_t d = config_.dim;
    const bool real_updates = config_.query_precision == QueryPrecision::kReal;
    const double* real_rows = data.real_plane().data();
    const std::int8_t* bipolar_rows = data.bipolar_plane().data();
    const std::size_t workers =
        use_threads != 0 ? use_threads : util::default_thread_count();
    // Cache-line-aligned slice boundaries; boundary placement is free to vary
    // with the worker count because component rounding is position-blind.
    const std::size_t slices = std::min(std::max<std::size_t>(workers, 1),
                                        std::max<std::size_t>(d / 8, 1));
    const std::size_t chunk = (((d + slices - 1) / slices) + 7) & ~std::size_t{7};
    util::parallel_for(
        slices,
        [&](std::size_t s) {
          const std::size_t d0 = std::min(d, s * chunk);
          const std::size_t d1 = std::min(d, d0 + chunk);
          if (d0 >= d1) {
            return;
          }
          const std::size_t len = d1 - d0;
          for (std::size_t j = 0; j < b; ++j) {
            const std::size_t row = indices[j];
            if (confidence_weighted) {
              const double* coeff = batch_coeff_.data() + j * k;
              for (std::size_t m = 0; m < k; ++m) {
                if (coeff[m] == 0.0) {
                  continue;  // train_step's skip: keep −0 components intact
                }
                double* acc = models_[m].accumulator.values().data() + d0;
                if (real_updates) {
                  kb.add_scaled_real(acc, real_rows + row * d + d0, coeff[m], len);
                } else {
                  kb.add_scaled_bipolar(acc, bipolar_rows + row * d + d0, coeff[m], len);
                }
              }
            } else {
              double* acc = models_[batch_winner_[j]].accumulator.values().data() + d0;
              if (real_updates) {
                kb.add_scaled_real(acc, real_rows + row * d + d0, batch_wcoeff_[j], len);
              } else {
                kb.add_scaled_bipolar(acc, bipolar_rows + row * d + d0, batch_wcoeff_[j],
                                      len);
              }
            }
          }
        },
        use_threads);
  }

  // Phase 2b — Eq. 8 cluster updates as k independent chains (a sample only
  // updates its winner, so each chain streams just its own samples). The
  // incremental-norm dot needs the whole accumulator at application time,
  // which is why this phase cannot dimension-slice like 2a; within a chain
  // the float accumulation order is the sample order, independent of thread
  // count.
  if (config_.cluster_mode != ClusterMode::kNaiveBinary) {
    util::parallel_for(
        k,
        [&](std::size_t c_idx) {
          ClusterCenter& c = clusters_[c_idx];
          for (std::size_t j = 0; j < b; ++j) {
            if (batch_winner_[j] != c_idx) {
              continue;
            }
            const double weight = batch_weight_[j];
            if (weight == 0.0) {
              continue;
            }
            obs::count(obs::Counter::kClusterUpdates);
            // Same incremental-norm bookkeeping as train_step; the dot runs
            // against the accumulator with this cluster's earlier in-batch
            // updates applied, exactly as a serial sample-order replay would.
            const hdc::EncodedSampleView s = data.sample(indices[j]);
            const double dot_cs = hdc::dot(c.accumulator, s.real);
            hdc::add_scaled(c.accumulator, s.real, weight);
            c.norm2 += 2.0 * weight * dot_cs + weight * weight * s.real_norm2;
            c.norm2 = std::max(c.norm2, 0.0);
          }
        },
        use_threads);
  }
}

void MultiModelRegressor::sparsify(double fraction) {
  REGHD_CHECK(fraction >= 0.0 && fraction < 1.0,
              "sparsity fraction must lie in [0,1), got " << fraction);
  if (fraction == 0.0) {
    return;
  }
  const auto keep_from = static_cast<std::size_t>(
      fraction * static_cast<double>(config_.dim));
  std::vector<double> magnitudes(config_.dim);
  for (auto& m : models_) {
    for (std::size_t j = 0; j < config_.dim; ++j) {
      magnitudes[j] = std::abs(m.accumulator[j]);
    }
    // Threshold at the `fraction` quantile of |M_j| for this model.
    std::nth_element(magnitudes.begin(),
                     magnitudes.begin() + static_cast<std::ptrdiff_t>(keep_from),
                     magnitudes.end());
    const double threshold = magnitudes[keep_from];
    for (std::size_t j = 0; j < config_.dim; ++j) {
      if (std::abs(m.accumulator[j]) < threshold) {
        m.accumulator[j] = 0.0;
      }
    }
    m.requantize();
  }
  rebuild_packed_bank();
}

double MultiModelRegressor::model_sparsity() const {
  std::size_t zeros = 0;
  for (const auto& m : models_) {
    for (const double v : m.accumulator.values()) {
      zeros += v == 0.0 ? 1 : 0;
    }
  }
  return static_cast<double>(zeros) /
         static_cast<double>(models_.size() * config_.dim);
}

void MultiModelRegressor::decay_models(double factor) {
  REGHD_CHECK(factor > 0.0 && factor <= 1.0,
              "decay factor must lie in (0,1], got " << factor);
  if (factor == 1.0) {
    return;
  }
  for (auto& m : models_) {
    hdc::scale(m.accumulator, factor);
  }
}

void MultiModelRegressor::init_clusters_from_samples(const EncodedDataset& train) {
  // Farthest-point sampling on bipolar encodings: the first center is a
  // seeded-random sample; each next center is the sample with the smallest
  // maximum similarity to the centers chosen so far. O(k·N) Hamming passes.
  util::Rng rng(config_.seed ^ 0x494E4954ULL);  // "INIT"
  const std::size_t n = train.size();
  std::vector<std::size_t> chosen;
  chosen.reserve(config_.models);
  chosen.push_back(static_cast<std::size_t>(rng.uniform_index(n)));

  std::vector<double> max_sim(n, -2.0);
  while (chosen.size() < config_.models) {
    const hdc::BinaryHVView last = train.sample(chosen.back()).binary;
    for (std::size_t i = 0; i < n; ++i) {
      max_sim[i] = std::max(max_sim[i], hdc::hamming_similarity(train.sample(i).binary, last));
    }
    std::size_t best = 0;
    double best_score = 2.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (max_sim[i] < best_score) {
        best_score = max_sim[i];
        best = i;
      }
    }
    chosen.push_back(best);
  }

  for (std::size_t c = 0; c < config_.models; ++c) {
    ClusterCenter& center = clusters_[c];
    center.accumulator = train.sample(chosen[c]).bipolar.to_real();
    center.norm2 = static_cast<double>(config_.dim);
    center.requantize();
  }
  rebuild_packed_bank();
}

void MultiModelRegressor::init_clusters(const EncodedDataset& train) {
  REGHD_CHECK(!train.empty(), "cluster initialization requires training samples");
  REGHD_CHECK(train.dim() == config_.dim,
              "training data dim " << train.dim() << " != configured dim " << config_.dim);
  if (config_.cluster_init == ClusterInit::kFarthestPoint && config_.models > 1) {
    init_clusters_from_samples(train);
  }
}

void MultiModelRegressor::merge_accumulate_delta(const MultiModelRegressor& replica,
                                                 const MultiModelRegressor& base) {
  REGHD_CHECK(replica.config_.dim == config_.dim && base.config_.dim == config_.dim,
              "shard merge requires matching dimensionality, got "
                  << replica.config_.dim << "/" << base.config_.dim << " vs "
                  << config_.dim);
  REGHD_CHECK(replica.models_.size() == models_.size() &&
                  base.models_.size() == models_.size(),
              "shard merge requires matching model counts, got "
                  << replica.models_.size() << "/" << base.models_.size() << " vs "
                  << models_.size());
  const hdc::KernelBackend& kb = hdc::active_backend();
  const std::size_t d = config_.dim;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    kb.merge_accumulate(models_[i].accumulator.values().data(),
                        replica.models_[i].accumulator.values().data(),
                        base.models_[i].accumulator.values().data(), d);
    kb.merge_accumulate(clusters_[i].accumulator.values().data(),
                        replica.clusters_[i].accumulator.values().data(),
                        base.clusters_[i].accumulator.values().data(), d);
  }
  // Snapshots, ‖C‖² and the packed bank are now stale relative to the merged
  // accumulators; requantize() (the caller's finalization step) recomputes
  // all three exactly.
  packed_bank_.valid = false;
}

void MultiModelRegressor::requantize() {
  obs::count(obs::Counter::kRequantizes);
  for (auto& m : models_) {
    m.requantize();
  }
  for (auto& c : clusters_) {
    c.requantize();
    // Recompute the cached norm exactly to null incremental drift.
    double norm2 = 0.0;
    for (const double v : c.accumulator.values()) {
      norm2 += v * v;
    }
    c.norm2 = norm2;
  }
  // Requantize-on-update policy: every snapshot refresh re-packs the scan
  // bank, so the online path never scores through stale packed rows.
  rebuild_packed_bank();
}

TrainingReport MultiModelRegressor::fit(const EncodedDataset& train,
                                        const EncodedDataset& val,
                                        const TrainingHooks* hooks) {
  REGHD_CHECK(!train.empty(), "cannot fit on an empty training set");
  REGHD_CHECK(!val.empty(), "multi-model fit requires a validation set for early stopping");
  REGHD_CHECK(train.dim() == config_.dim,
              "training data dim " << train.dim() << " != configured dim " << config_.dim);

  reset();
  if (config_.cluster_init == ClusterInit::kFarthestPoint && config_.models > 1) {
    init_clusters_from_samples(train);
  }
  util::Rng rng(config_.seed ^ 0x45504F4348ULL);  // "EPOCH"
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainingReport report;
  EarlyStopper stopper(config_.tolerance, config_.patience);
  std::vector<RegressionModel> best_models = models_;
  std::vector<ClusterCenter> best_clusters = clusters_;
  double best_val = std::numeric_limits<double>::infinity();

  std::vector<double> batch_predictions;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double online_sq_err = 0.0;
    std::size_t since_requantize = 0;
    if (config_.batch_size == 0) {
      for (const std::size_t i : order) {
        const hdc::EncodedSampleView s = train.sample(i);
        const double y = train.target(i);
        const double before = train_step(s, y);  // returns the pre-update prediction
        online_sq_err += (y - before) * (y - before);
        if (config_.requantize_interval > 0 &&
            ++since_requantize >= config_.requantize_interval) {
          requantize();
          since_requantize = 0;
        }
      }
    } else {
      // Batch-frozen mini-batches over the same shuffled order. The
      // per-sample loop above checks the requantize counter after every
      // sample; here the counter advances a whole batch at a time, which
      // coincides exactly at B = 1 (the tested bit-identity anchor).
      const std::size_t bsize = config_.batch_size;
      batch_predictions.resize(std::min(bsize, order.size()));
      std::size_t batch = 0;
      for (std::size_t b0 = 0; b0 < order.size(); b0 += bsize, ++batch) {
        const std::size_t bn = std::min(order.size(), b0 + bsize);
        const std::span<const std::size_t> idx(order.data() + b0, bn - b0);
        train_batch(train, idx, std::span<double>(batch_predictions.data(), idx.size()));
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const double y = train.target(idx[j]);
          const double before = batch_predictions[j];
          online_sq_err += (y - before) * (y - before);
        }
        since_requantize += idx.size();
        if (config_.requantize_interval > 0 &&
            since_requantize >= config_.requantize_interval) {
          requantize();
          since_requantize = 0;
        }
        if (hooks != nullptr && hooks->on_batch) {
          hooks->on_batch(epoch, batch, bn);
        }
      }
    }
    requantize();

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse = online_sq_err / static_cast<double>(train.size());
    record.val_mse = evaluate_mse(val);
    report.history.push_back(record);
    report.epochs_run = epoch + 1;

    if (record.val_mse < best_val) {
      best_val = record.val_mse;
      best_models = models_;
      best_clusters = clusters_;
    }
    if (hooks != nullptr && hooks->on_telemetry) {
      hooks->on_telemetry(epoch, obs::snapshot());
    }
    if (hooks != nullptr && hooks->checkpoint_every > 0 && hooks->on_checkpoint &&
        (epoch + 1) % hooks->checkpoint_every == 0) {
      hooks->on_checkpoint(epoch);
    }
    if (stopper.update(record.val_mse)) {
      report.converged = true;
      report.stop_reason = "validation MSE stabilized";
      break;
    }
  }
  if (!report.converged) {
    report.stop_reason = "reached max_epochs";
  }
  // Keep the best validation-epoch state, not the last one. The packed bank
  // was built from the final epoch's snapshots, so re-pack from the restored
  // ones.
  models_ = std::move(best_models);
  clusters_ = std::move(best_clusters);
  rebuild_packed_bank();
  report.best_val_mse = stopper.best();
  return report;
}

}  // namespace reghd::core
