#include "core/multi_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include <cstring>

#include "core/early_stopping.hpp"
#include "hdc/kernel_backend.hpp"
#include "hdc/random_hv.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/statistics.hpp"

namespace reghd::core {

MultiModelRegressor::MultiModelRegressor(const RegHDConfig& config) : config_(config) {
  config_.validate();
  reset();
}

void MultiModelRegressor::reset() {
  util::Rng rng(config_.seed);
  util::Rng cluster_rng = rng.split();

  models_.assign(config_.models, RegressionModel(config_.dim));
  clusters_.clear();
  clusters_.reserve(config_.models);
  for (std::size_t i = 0; i < config_.models; ++i) {
    ClusterCenter c;
    // Paper §2.4: cluster hypervectors initialized to random binary values.
    c.accumulator = hdc::random_bipolar(config_.dim, cluster_rng).to_real();
    c.norm2 = static_cast<double>(config_.dim);
    c.requantize();
    clusters_.push_back(std::move(c));
  }
  for (auto& m : models_) {
    m.requantize();
  }
}

std::vector<double> MultiModelRegressor::similarities(
    const hdc::EncodedSampleView& sample) const {
  REGHD_CHECK(sample.real.dim() == config_.dim,
              "sample dim " << sample.real.dim() << " != configured dim " << config_.dim);
  std::vector<double> sims(clusters_.size());
  switch (config_.cluster_mode) {
    case ClusterMode::kFullPrecision: {
      // Eq. 5 cosine over the integer centers, query at its configured
      // precision. Query norm is cached; cluster norms are maintained
      // incrementally.
      const double qn2 = query_norm2(sample, config_.query_precision);
      const double qn = std::sqrt(qn2);
      for (std::size_t i = 0; i < clusters_.size(); ++i) {
        const double cn = std::sqrt(clusters_[i].norm2);
        if (cn == 0.0 || qn == 0.0) {
          sims[i] = 0.0;
          continue;
        }
        sims[i] =
            raw_query_dot(clusters_[i].accumulator, sample, config_.query_precision) / (cn * qn);
      }
      break;
    }
    case ClusterMode::kQuantized:
    case ClusterMode::kNaiveBinary: {
      // §3.1: Hamming similarity of binary snapshots against the binary
      // query; range [−1, 1] matches the cosine scale.
      for (std::size_t i = 0; i < clusters_.size(); ++i) {
        sims[i] = hdc::hamming_similarity(clusters_[i].binary, sample.binary);
      }
      break;
    }
  }
  return sims;
}

std::size_t MultiModelRegressor::assign_cluster(const hdc::EncodedSampleView& sample) const {
  const auto sims = similarities(sample);
  return static_cast<std::size_t>(
      std::distance(sims.begin(), std::max_element(sims.begin(), sims.end())));
}

std::vector<double> MultiModelRegressor::confidences_from(std::vector<double> sims) const {
  if (config_.normalize_similarities && sims.size() > 1) {
    double mean = 0.0;
    for (const double s : sims) {
      mean += s;
    }
    mean /= static_cast<double>(sims.size());
    double var = 0.0;
    for (const double s : sims) {
      var += (s - mean) * (s - mean);
    }
    var /= static_cast<double>(sims.size());
    const double inv_std = 1.0 / (std::sqrt(var) + 1e-12);
    for (double& s : sims) {
      s = (s - mean) * inv_std;
    }
  }
  util::softmax_inplace(sims, config_.softmax_temperature);
  return sims;
}

double MultiModelRegressor::predict(const hdc::EncodedSampleView& sample) const {
  const auto conf = confidences_from(similarities(sample));
  const PredictionMode mode = config_.prediction_mode();
  double y = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    y += conf[i] * predict_dot(models_[i], sample, mode);
  }
  return y;
}

PredictionDetail MultiModelRegressor::predict_detail(const hdc::EncodedSampleView& sample) const {
  PredictionDetail detail;
  detail.similarities = similarities(sample);
  detail.confidences = confidences_from(detail.similarities);
  detail.best_cluster = static_cast<std::size_t>(std::distance(
      detail.similarities.begin(),
      std::max_element(detail.similarities.begin(), detail.similarities.end())));
  const PredictionMode mode = config_.prediction_mode();
  detail.model_outputs.resize(models_.size());
  detail.prediction = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    detail.model_outputs[i] = predict_dot(models_[i], sample, mode);
    detail.prediction += detail.confidences[i] * detail.model_outputs[i];
  }
  return detail;
}

std::vector<double> MultiModelRegressor::predict_batch(const EncodedDataset& dataset,
                                                       std::size_t threads) const {
  std::vector<double> out(dataset.size());
  const std::size_t use_threads = threads != 0 ? threads : config_.threads;
  const PredictionMode mode = config_.prediction_mode();
  if (config_.cluster_mode == ClusterMode::kFullPrecision &&
      mode.query == QueryPrecision::kReal && mode.model == ModelPrecision::kReal &&
      !dataset.empty() && dataset.dim() == config_.dim) {
    // Full-precision fast path: pack all cluster and model accumulators into
    // one contiguous (k_c + k_m)×D bank so every query row is scored against
    // the whole bank with a single dot_rows sweep (the bank stays hot in
    // cache across rows). dot_rows reduces each bank row exactly like the
    // dot_real_real calls behind raw_query_dot / predict_dot, and the
    // sims → confidences → Eq. 6 arithmetic below replays predict()'s
    // operation sequence, so out[i] is bit-identical to predict(sample(i)).
    const hdc::KernelBackend& kb = hdc::active_backend();
    const std::size_t d = config_.dim;
    const double dd = static_cast<double>(d);
    const std::size_t k_c = clusters_.size();
    const std::size_t k_m = models_.size();
    util::AlignedVector<double> bank((k_c + k_m) * d);
    std::vector<double> cluster_norm(k_c);
    for (std::size_t c = 0; c < k_c; ++c) {
      std::memcpy(bank.data() + c * d, clusters_[c].accumulator.values().data(),
                  d * sizeof(double));
      cluster_norm[c] = std::sqrt(clusters_[c].norm2);
    }
    for (std::size_t m = 0; m < k_m; ++m) {
      std::memcpy(bank.data() + (k_c + m) * d, models_[m].accumulator.values().data(),
                  d * sizeof(double));
    }
    const double* rows = dataset.real_plane().data();
    constexpr std::size_t kChunk = 64;
    const std::size_t chunks = (dataset.size() + kChunk - 1) / kChunk;
    util::parallel_for(
        chunks,
        [&](std::size_t chunk) {
          const std::size_t r0 = chunk * kChunk;
          const std::size_t rn = std::min(dataset.size(), r0 + kChunk);
          std::vector<double> scores(k_c + k_m);
          std::vector<double> sims(k_c);
          for (std::size_t i = r0; i < rn; ++i) {
            kb.dot_rows(rows + i * d, bank.data(), d, k_c + k_m, d, scores.data());
            const double qn = std::sqrt(dataset.norms2()[i]);
            for (std::size_t c = 0; c < k_c; ++c) {
              sims[c] = (cluster_norm[c] == 0.0 || qn == 0.0)
                            ? 0.0
                            : scores[c] / (cluster_norm[c] * qn);
            }
            const std::vector<double> conf = confidences_from(sims);
            double y = 0.0;
            for (std::size_t m = 0; m < k_m; ++m) {
              y += conf[m] * (scores[k_c + m] / dd);
            }
            out[i] = y;
          }
        },
        use_threads);
    return out;
  }
  util::parallel_for(
      dataset.size(), [&](std::size_t i) { out[i] = predict(dataset.sample(i)); },
      use_threads);
  return out;
}

double MultiModelRegressor::evaluate_mse(const EncodedDataset& dataset) const {
  REGHD_CHECK(!dataset.empty(), "cannot evaluate on an empty dataset");
  const std::vector<double> pred = predict_batch(dataset);
  // Serial accumulation in index order keeps the MSE bit-identical for any
  // thread count.
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - dataset.target(i);
    acc += e * e;
  }
  return acc / static_cast<double>(dataset.size());
}

double MultiModelRegressor::train_step(const hdc::EncodedSampleView& sample, double target) {
  const auto sims = similarities(sample);
  const auto conf = confidences_from(sims);
  // The training error is always measured against the integer models being
  // updated (paper §3.2: binary snapshots are regenerated from the integer
  // model per epoch/batch; computing the error from an epoch-frozen snapshot
  // would keep it constant and destabilize the accumulation). Binary kernels
  // apply at inference via predict().
  const PredictionMode mode{config_.query_precision, ModelPrecision::kReal};

  // Eq. 6: confidence-weighted prediction.
  double prediction = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    prediction += conf[i] * predict_dot(models_[i], sample, mode);
  }
  double error = target - prediction;
  if (config_.error_clip > 0.0) {
    error = std::clamp(error, -config_.error_clip, config_.error_clip);
  }

  // Eq. 7: model updates on the integer accumulators.
  const std::size_t winner = static_cast<std::size_t>(
      std::distance(sims.begin(), std::max_element(sims.begin(), sims.end())));
  const double normalizer = update_normalizer(sample, config_.query_precision);
  if (config_.update_rule == UpdateRule::kConfidenceWeighted) {
    // Mixture-normalized LMS: dividing by Σδ'² makes the joint update move
    // this sample's blended prediction by exactly α·err, independent of how
    // soft the confidences are (for one-hot confidence this is Eq. 7
    // verbatim).
    double conf_sq = 0.0;
    for (const double c : conf) {
      conf_sq += c * c;
    }
    const double mix_norm = conf_sq > 0.0 ? 1.0 / conf_sq : 0.0;
    for (std::size_t i = 0; i < models_.size(); ++i) {
      const double coeff = config_.learning_rate * error * conf[i] * normalizer * mix_norm;
      if (coeff != 0.0) {
        update_accumulator(models_[i].accumulator, sample, coeff, config_.query_precision);
      }
    }
  } else {
    update_accumulator(models_[winner].accumulator, sample,
                       config_.learning_rate * error * normalizer, config_.query_precision);
  }

  // Eq. 8 / Eq. 9: cluster update on the winning center's integer
  // accumulator. The paper's Eq. 9 updates the integer copy with the
  // integer-encoded input even when similarity search is binary; frozen in
  // the naive-binarization foil.
  if (config_.cluster_mode != ClusterMode::kNaiveBinary) {
    ClusterCenter& c = clusters_[winner];
    const double weight = 1.0 - sims[winner];
    if (weight != 0.0) {
      // Maintain ‖C‖² incrementally: ‖C + w·S‖² = ‖C‖² + 2w·(C·S) + w²·‖S‖².
      const double dot_cs = hdc::dot(c.accumulator, sample.real);
      hdc::add_scaled(c.accumulator, sample.real, weight);
      c.norm2 += 2.0 * weight * dot_cs + weight * weight * sample.real_norm2;
      c.norm2 = std::max(c.norm2, 0.0);
    }
  }
  return prediction;
}

void MultiModelRegressor::sparsify(double fraction) {
  REGHD_CHECK(fraction >= 0.0 && fraction < 1.0,
              "sparsity fraction must lie in [0,1), got " << fraction);
  if (fraction == 0.0) {
    return;
  }
  const auto keep_from = static_cast<std::size_t>(
      fraction * static_cast<double>(config_.dim));
  std::vector<double> magnitudes(config_.dim);
  for (auto& m : models_) {
    for (std::size_t j = 0; j < config_.dim; ++j) {
      magnitudes[j] = std::abs(m.accumulator[j]);
    }
    // Threshold at the `fraction` quantile of |M_j| for this model.
    std::nth_element(magnitudes.begin(),
                     magnitudes.begin() + static_cast<std::ptrdiff_t>(keep_from),
                     magnitudes.end());
    const double threshold = magnitudes[keep_from];
    for (std::size_t j = 0; j < config_.dim; ++j) {
      if (std::abs(m.accumulator[j]) < threshold) {
        m.accumulator[j] = 0.0;
      }
    }
    m.requantize();
  }
}

double MultiModelRegressor::model_sparsity() const {
  std::size_t zeros = 0;
  for (const auto& m : models_) {
    for (const double v : m.accumulator.values()) {
      zeros += v == 0.0 ? 1 : 0;
    }
  }
  return static_cast<double>(zeros) /
         static_cast<double>(models_.size() * config_.dim);
}

void MultiModelRegressor::decay_models(double factor) {
  REGHD_CHECK(factor > 0.0 && factor <= 1.0,
              "decay factor must lie in (0,1], got " << factor);
  if (factor == 1.0) {
    return;
  }
  for (auto& m : models_) {
    hdc::scale(m.accumulator, factor);
  }
}

void MultiModelRegressor::init_clusters_from_samples(const EncodedDataset& train) {
  // Farthest-point sampling on bipolar encodings: the first center is a
  // seeded-random sample; each next center is the sample with the smallest
  // maximum similarity to the centers chosen so far. O(k·N) Hamming passes.
  util::Rng rng(config_.seed ^ 0x494E4954ULL);  // "INIT"
  const std::size_t n = train.size();
  std::vector<std::size_t> chosen;
  chosen.reserve(config_.models);
  chosen.push_back(static_cast<std::size_t>(rng.uniform_index(n)));

  std::vector<double> max_sim(n, -2.0);
  while (chosen.size() < config_.models) {
    const hdc::BinaryHVView last = train.sample(chosen.back()).binary;
    for (std::size_t i = 0; i < n; ++i) {
      max_sim[i] = std::max(max_sim[i], hdc::hamming_similarity(train.sample(i).binary, last));
    }
    std::size_t best = 0;
    double best_score = 2.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (max_sim[i] < best_score) {
        best_score = max_sim[i];
        best = i;
      }
    }
    chosen.push_back(best);
  }

  for (std::size_t c = 0; c < config_.models; ++c) {
    ClusterCenter& center = clusters_[c];
    center.accumulator = train.sample(chosen[c]).bipolar.to_real();
    center.norm2 = static_cast<double>(config_.dim);
    center.requantize();
  }
}

void MultiModelRegressor::requantize() {
  for (auto& m : models_) {
    m.requantize();
  }
  for (auto& c : clusters_) {
    c.requantize();
    // Recompute the cached norm exactly to null incremental drift.
    double norm2 = 0.0;
    for (const double v : c.accumulator.values()) {
      norm2 += v * v;
    }
    c.norm2 = norm2;
  }
}

TrainingReport MultiModelRegressor::fit(const EncodedDataset& train,
                                        const EncodedDataset& val,
                                        const TrainingHooks* hooks) {
  REGHD_CHECK(!train.empty(), "cannot fit on an empty training set");
  REGHD_CHECK(!val.empty(), "multi-model fit requires a validation set for early stopping");
  REGHD_CHECK(train.dim() == config_.dim,
              "training data dim " << train.dim() << " != configured dim " << config_.dim);

  reset();
  if (config_.cluster_init == ClusterInit::kFarthestPoint && config_.models > 1) {
    init_clusters_from_samples(train);
  }
  util::Rng rng(config_.seed ^ 0x45504F4348ULL);  // "EPOCH"
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainingReport report;
  EarlyStopper stopper(config_.tolerance, config_.patience);
  std::vector<RegressionModel> best_models = models_;
  std::vector<ClusterCenter> best_clusters = clusters_;
  double best_val = std::numeric_limits<double>::infinity();

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double online_sq_err = 0.0;
    std::size_t since_requantize = 0;
    for (const std::size_t i : order) {
      const hdc::EncodedSampleView s = train.sample(i);
      const double y = train.target(i);
      const double before = train_step(s, y);  // returns the pre-update prediction
      online_sq_err += (y - before) * (y - before);
      if (config_.requantize_interval > 0 &&
          ++since_requantize >= config_.requantize_interval) {
        requantize();
        since_requantize = 0;
      }
    }
    requantize();

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse = online_sq_err / static_cast<double>(train.size());
    record.val_mse = evaluate_mse(val);
    report.history.push_back(record);
    report.epochs_run = epoch + 1;

    if (record.val_mse < best_val) {
      best_val = record.val_mse;
      best_models = models_;
      best_clusters = clusters_;
    }
    if (hooks != nullptr && hooks->checkpoint_every > 0 && hooks->on_checkpoint &&
        (epoch + 1) % hooks->checkpoint_every == 0) {
      hooks->on_checkpoint(epoch);
    }
    if (stopper.update(record.val_mse)) {
      report.converged = true;
      report.stop_reason = "validation MSE stabilized";
      break;
    }
  }
  if (!report.converged) {
    report.stop_reason = "reached max_epochs";
  }
  // Keep the best validation-epoch state, not the last one.
  models_ = std::move(best_models);
  clusters_ = std::move(best_clusters);
  report.best_val_mse = stopper.best();
  return report;
}

}  // namespace reghd::core
