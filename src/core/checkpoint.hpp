// Crash-safe checkpointing for RegHD — the persistence story for the
// paper's headline use case, real-time learning on embedded devices (§1,
// §3), where power loss and storage corruption are routine.
//
// Two pieces:
//
//  * An online checkpoint format (v2 framing, file kind "ONLN") capturing
//    the COMPLETE state of an OnlineRegHD stream: configuration, running
//    feature/target statistics (exact Welford accumulators), step counters,
//    the model/cluster accumulators, AND the binary/ternary snapshots with
//    their calibration scales. Snapshots are serialized verbatim rather
//    than re-derived because between requantize boundaries they are
//    intentionally stale relative to the accumulators — re-deriving them on
//    load would make a resumed stream diverge from an uninterrupted one.
//    With everything captured, resume is bit-identical.
//
//  * A CheckpointManager that owns a checkpoint directory: atomic writes
//    (temp file + fsync + rename via util/atomic_file), retention of the
//    newest K checkpoints, tolerance of crash debris (stray .tmp files),
//    and recovery that walks checkpoints newest-first, skipping any file
//    that fails its CRC32C checks or parse, until a valid one loads.
//
// Failure model: a torn or corrupted checkpoint is detected (every section
// and the whole file are checksummed) and skipped; recovery then falls back
// to the previous checkpoint, trading replayed samples for correctness.
// tools/checkpoint_torture drives this end to end with injected faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/model_io.hpp"
#include "core/online.hpp"
#include "util/fault_injection.hpp"

namespace reghd::core {

/// Serializes the full state of an online learner (format kind "ONLN").
void save_online_checkpoint(std::ostream& out, const OnlineRegHD& learner);

/// Restores a learner saved by save_online_checkpoint; the result is
/// bit-identical to the saved one. Throws util::FormatError (typed) on any
/// corruption; never returns a partially-initialized learner.
///
/// `encoder_storage` re-applies a projection-storage deployment choice at
/// construction time. The knob is deliberately not serialized (it is a
/// runtime/footprint setting, not model identity), so a plain load always
/// comes back resident; a rematerialized deployment passes its mode here and
/// the loaded encoder never materializes the F×D matrix at all — cheaper
/// than loading resident and rebuilding, and bit-identical either way.
[[nodiscard]] OnlineRegHD load_online_checkpoint(
    std::istream& in,
    std::optional<hdc::ProjectionStorage> encoder_storage = std::nullopt);

struct CheckpointConfig {
  std::string dir;           ///< Checkpoint directory; created if absent.
  std::size_t keep_last = 3; ///< Retained checkpoints (≥ 1).
  std::size_t every = 0;     ///< maybe_save() cadence in updates; 0 = manual only.
  bool fsync = true;         ///< Durability barrier on every write.
};

class CheckpointManager {
 public:
  /// Creates the directory if needed. Throws util::IoError on failure.
  explicit CheckpointManager(CheckpointConfig config);

  /// Atomically writes ckpt-<step>.reghd (step = samples_seen), prunes to
  /// keep_last, and returns the final path. Throws util::IoError if the
  /// write fails — existing checkpoints are never damaged by a failed save.
  std::string save(const OnlineRegHD& learner);

  /// Periodic-save hook for update loops: saves when `every` divides the
  /// learner's samples_seen. Returns the path when a save happened.
  std::optional<std::string> maybe_save(const OnlineRegHD& learner);

  /// Atomically writes a batch pipeline model as epoch-<step>.reghd
  /// (periodic saves of long fits via TrainingHooks).
  std::string save(const RegHDPipeline& pipeline, std::uint64_t step);

  /// Checkpoint files, newest (highest step) first.
  [[nodiscard]] std::vector<std::string> checkpoints() const;

  /// Loads the newest checkpoint that passes every integrity check; corrupt
  /// or torn files are skipped. nullopt when nothing is recoverable.
  [[nodiscard]] std::optional<OnlineRegHD> recover() const;

  /// Pipeline-model variant of recover().
  [[nodiscard]] std::optional<RegHDPipeline> recover_pipeline() const;

  /// Arms a fault plan for the NEXT save only (crash-safety tests and
  /// tools/checkpoint_torture inject torn/corrupt writes through here).
  void set_fault_plan(util::FaultPlan plan) noexcept { next_fault_ = plan; }

  [[nodiscard]] const CheckpointConfig& config() const noexcept { return config_; }

 private:
  std::string write_checkpoint(const std::string& prefix, std::uint64_t step,
                               const std::string& bytes);

  /// Removes checkpoints beyond keep_last and any stray .tmp crash debris.
  void prune() const;

  CheckpointConfig config_;
  util::FaultPlan next_fault_{};
};

}  // namespace reghd::core
