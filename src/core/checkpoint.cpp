#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/telemetry.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/framing.hpp"
#include "util/serialize.hpp"

namespace reghd::core {

namespace {

namespace fs = std::filesystem;
using util::FormatError;
using util::FormatErrorKind;

// Online-checkpoint section tags (alongside model_io's CONF/SCAL/MODL).
constexpr std::uint32_t kSectionOnlineConfig = util::fourcc("OCFG");
constexpr std::uint32_t kSectionOnlineState = util::fourcc("OSTA");
constexpr std::uint32_t kSectionModels = util::fourcc("MODL");
constexpr std::uint32_t kSectionSnapshots = util::fourcc("SNAP");
constexpr std::uint32_t kSectionPackedBank = util::fourcc("PBNK");

constexpr const char* kOnlinePrefix = "ckpt-";
constexpr const char* kPipelinePrefix = "epoch-";
constexpr const char* kExtension = ".reghd";

void write_running_stats(std::ostream& out, const util::RunningStats& stats) {
  util::write_scalar<std::uint64_t>(out, stats.count());
  util::write_scalar<double>(out, stats.mean());
  util::write_scalar<double>(out, stats.m2());
  util::write_scalar<double>(out, stats.min());
  util::write_scalar<double>(out, stats.max());
}

util::RunningStats read_running_stats(std::istream& in) {
  const auto count = util::read_scalar<std::uint64_t>(in);
  const double mean = util::read_scalar<double>(in);
  const double m2 = util::read_scalar<double>(in);
  const double min = util::read_scalar<double>(in);
  const double max = util::read_scalar<double>(in);
  return util::RunningStats::restore(count, mean, m2, min, max);
}

void write_binary_hv(std::ostream& out, const hdc::BinaryHV& hv) {
  util::write_vector<std::uint64_t>(out, hv.words());
}

hdc::BinaryHV read_binary_hv(std::istream& in, std::size_t dim) {
  auto words = util::read_vector<std::uint64_t>(in);
  hdc::BinaryHV hv(dim);
  if (words.size() != hv.word_count()) {
    throw std::runtime_error("checkpoint: stored snapshot word count " +
                             std::to_string(words.size()) + " does not match dimensionality " +
                             std::to_string(dim));
  }
  if (!words.empty() && (dim % 64) != 0) {
    // Keep the padding bits of the final word zero — whole-word popcount
    // kernels rely on it, and a corrupted-but-CRC-valid file must not be
    // able to break that invariant.
    words.back() &= (1ULL << (dim % 64)) - 1ULL;
  }
  std::copy(words.begin(), words.end(), hv.words().begin());
  return hv;
}

/// Parses one checksum-verified section payload; low-level failures surface
/// as typed FormatErrors (mirrors model_io's section parsing).
template <typename Fn>
auto parse_payload(const util::Section& section, const char* what, Fn&& fn) {
  std::istringstream in(section.payload, std::ios::binary);
  try {
    return fn(in);
  } catch (const FormatError&) {
    throw;
  } catch (const std::exception& e) {
    throw FormatError(FormatErrorKind::kBadValue,
                      std::string("checkpoint: malformed ") + what + " section — " + e.what());
  }
}

std::string checkpoint_filename(const char* prefix, std::uint64_t step) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%020llu%s", prefix,
                static_cast<unsigned long long>(step), kExtension);
  return name;
}

/// Step number encoded in a checkpoint filename, or nullopt for foreign
/// files (debris, user files) which retention and recovery must ignore.
std::optional<std::uint64_t> parse_step(const std::string& filename, const char* prefix) {
  const std::string pre(prefix);
  if (filename.size() <= pre.size() + std::string(kExtension).size() ||
      filename.compare(0, pre.size(), pre) != 0 ||
      filename.compare(filename.size() - 6, 6, kExtension) != 0) {
    return std::nullopt;
  }
  const std::string digits = filename.substr(pre.size(), filename.size() - pre.size() - 6);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos || digits.size() > 20) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

struct CheckpointEntry {
  std::uint64_t step = 0;
  std::string path;
};

std::vector<CheckpointEntry> list_by_prefix(const std::string& dir, const char* prefix) {
  std::vector<CheckpointEntry> entries;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string name = it->path().filename().string();
    if (const auto step = parse_step(name, prefix)) {
      entries.push_back({*step, it->path().string()});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.step != b.step ? a.step > b.step : a.path > b.path;
  });
  return entries;
}

}  // namespace

void save_online_checkpoint(std::ostream& out, const OnlineRegHD& learner) {
  util::write_header(out, kModelMagic, kModelVersionLatest);
  util::SectionWriter writer(out, kFileKindOnline);
  const OnlineConfig& cfg = learner.config();
  const MultiModelRegressor& model = learner.model();

  std::ostringstream ocfg(std::ios::binary);
  io::write_reghd_config(ocfg, cfg.reghd);
  io::write_encoder_config(ocfg, cfg.encoder);
  util::write_scalar<std::uint64_t>(ocfg, cfg.requantize_every);
  util::write_scalar<double>(ocfg, cfg.decay);
  util::write_scalar<std::uint8_t>(ocfg, cfg.adaptive_scaling ? 1 : 0);
  util::write_scalar<std::uint64_t>(ocfg, cfg.warmup);
  util::write_scalar<std::uint64_t>(ocfg, learner.num_features());
  writer.add(kSectionOnlineConfig, ocfg.str());

  std::ostringstream osta(std::ios::binary);
  util::write_scalar<std::uint64_t>(osta, learner.samples_seen());
  util::write_scalar<std::uint64_t>(osta, learner.since_requantize());
  util::write_scalar<std::uint64_t>(osta, learner.feature_stats().size());
  for (const util::RunningStats& stats : learner.feature_stats()) {
    write_running_stats(osta, stats);
  }
  write_running_stats(osta, learner.target_stats());
  writer.add(kSectionOnlineState, osta.str());

  std::ostringstream modl(std::ios::binary);
  io::write_model_section(modl, model);
  writer.add(kSectionModels, modl.str());

  // Snapshots verbatim: between requantize boundaries they are deliberately
  // stale relative to the accumulators, so re-deriving them on load would
  // break bit-identical resume.
  std::ostringstream snap(std::ios::binary);
  for (std::size_t i = 0; i < model.num_models(); ++i) {
    write_binary_hv(snap, model.cluster(i).binary);
    util::write_scalar<double>(snap, model.cluster(i).norm2);
  }
  for (std::size_t i = 0; i < model.num_models(); ++i) {
    const RegressionModel& m = model.model(i);
    write_binary_hv(snap, m.binary);
    util::write_scalar<double>(snap, m.gamma);
    write_binary_hv(snap, m.ternary_mask);
    util::write_scalar<double>(snap, m.gamma_ternary);
  }
  writer.add(kSectionSnapshots, snap.str());

  // Packed scan bank, saved verbatim like the snapshots: a resumed process
  // must score through exactly the bytes the checkpointed one did. Optional
  // section — readers predating it (and readers of files predating it)
  // rebuild the bank from the snapshots instead.
  const PackedTernaryBank& bank = model.packed_bank();
  if (bank.valid) {
    std::ostringstream pbnk(std::ios::binary);
    util::write_scalar<std::uint64_t>(pbnk, bank.rows);
    util::write_scalar<std::uint64_t>(pbnk, bank.words);
    util::write_vector<std::uint64_t>(pbnk, {bank.signs.data(), bank.signs.size()});
    util::write_vector<std::uint64_t>(pbnk, {bank.masks.data(), bank.masks.size()});
    util::write_vector<double>(pbnk, {bank.scale.data(), bank.scale.size()});
    writer.add(kSectionPackedBank, pbnk.str());
  }

  writer.finish();
  if (!out.good()) {
    throw std::runtime_error("checkpoint: stream error while saving");
  }
}

OnlineRegHD load_online_checkpoint(std::istream& in,
                                   std::optional<hdc::ProjectionStorage> encoder_storage) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  try {
    magic = util::read_scalar<std::uint32_t>(in);
    version = util::read_scalar<std::uint32_t>(in);
  } catch (const std::exception&) {
    throw FormatError(FormatErrorKind::kTruncated,
                      "checkpoint: stream ends inside the file header");
  }
  if (magic != kModelMagic) {
    throw FormatError(FormatErrorKind::kBadMagic,
                      "checkpoint: bad magic tag — not a RegHD file");
  }
  if (version != kModelVersionLatest) {
    throw FormatError(FormatErrorKind::kBadVersion,
                      "checkpoint: unsupported format version " + std::to_string(version));
  }
  std::string body;
  {
    std::ostringstream buf(std::ios::binary);
    buf << in.rdbuf();
    body = buf.str();
  }
  const util::ParsedFile file = util::parse_sections(body);
  if (file.kind != kFileKindOnline) {
    throw FormatError(FormatErrorKind::kBadKind,
                      "checkpoint: not an online checkpoint (wrong file kind — is this a "
                      "pipeline model?)");
  }

  struct OnlineHeader {
    OnlineConfig config;
    std::uint64_t num_features = 0;
  };
  const OnlineHeader header =
      parse_payload(file.require(kSectionOnlineConfig), "config", [](auto& s) {
        OnlineHeader h;
        h.config.reghd = io::read_reghd_config(s);
        h.config.encoder = io::read_encoder_config(s);
        h.config.requantize_every = util::read_scalar<std::uint64_t>(s);
        h.config.decay = util::read_scalar<double>(s);
        h.config.adaptive_scaling = util::read_scalar<std::uint8_t>(s) != 0;
        h.config.warmup = util::read_scalar<std::uint64_t>(s);
        h.num_features = util::read_scalar<std::uint64_t>(s);
        if (h.num_features == 0 || h.num_features > (1ULL << 20)) {
          throw std::runtime_error("implausible feature count " +
                                   std::to_string(h.num_features));
        }
        if (!(h.config.decay > 0.0 && h.config.decay <= 1.0)) {
          throw std::runtime_error("decay outside (0,1]");
        }
        return h;
      });

  OnlineConfig config = header.config;
  if (encoder_storage.has_value()) {
    // Applied before construction so a rematerialized deployment never pays
    // for (or holds) the resident F×D matrix the serialized config implies.
    config.encoder.projection_storage = *encoder_storage;
  }
  OnlineRegHD learner(config, header.num_features);
  MultiModelRegressor& model = learner.mutable_model();
  const std::size_t dim = model.config().dim;

  parse_payload(file.require(kSectionModels), "model", [&](auto& s) {
    io::read_model_section(s, model);
    return 0;
  });

  parse_payload(file.require(kSectionSnapshots), "snapshot", [&](auto& s) {
    for (std::size_t i = 0; i < model.num_models(); ++i) {
      model.mutable_clusters()[i].binary = read_binary_hv(s, dim);
      model.mutable_clusters()[i].norm2 = util::read_scalar<double>(s);
    }
    for (std::size_t i = 0; i < model.num_models(); ++i) {
      RegressionModel& m = model.mutable_models()[i];
      m.binary = read_binary_hv(s, dim);
      m.gamma = util::read_scalar<double>(s);
      m.ternary_mask = read_binary_hv(s, dim);
      m.gamma_ternary = util::read_scalar<double>(s);
    }
    return 0;
  });

  // Snapshot restore went through the mutable accessors, so the bank is
  // stale; reload the saved one verbatim when present, else (files written
  // before the PBNK section existed) re-pack from the restored snapshots.
  if (const util::Section* pbnk = file.find(kSectionPackedBank)) {
    parse_payload(*pbnk, "packed bank", [&](auto& s) {
      PackedTernaryBank& bank = model.mutable_packed_bank();
      bank.rows = util::read_scalar<std::uint64_t>(s);
      bank.words = util::read_scalar<std::uint64_t>(s);
      const auto signs = util::read_vector<std::uint64_t>(s);
      const auto masks = util::read_vector<std::uint64_t>(s);
      const auto scale = util::read_vector<double>(s);
      if (bank.words != (dim + 63) / 64 || signs.size() != bank.rows * bank.words ||
          masks.size() != signs.size() || scale.size() != bank.rows) {
        throw std::runtime_error("packed bank geometry does not match the model");
      }
      bank.signs.assign(signs.begin(), signs.end());
      bank.masks.assign(masks.begin(), masks.end());
      bank.scale = scale;
      bank.valid = true;
      return 0;
    });
  } else {
    model.rebuild_packed_bank();
  }

  parse_payload(file.require(kSectionOnlineState), "state", [&](auto& s) {
    const auto seen = util::read_scalar<std::uint64_t>(s);
    const auto since_requantize = util::read_scalar<std::uint64_t>(s);
    const auto stat_count = util::read_scalar<std::uint64_t>(s);
    if (stat_count != header.num_features) {
      throw std::runtime_error("feature statistics count mismatch");
    }
    std::vector<util::RunningStats> feature_stats;
    feature_stats.reserve(stat_count);
    for (std::uint64_t i = 0; i < stat_count; ++i) {
      feature_stats.push_back(read_running_stats(s));
    }
    const util::RunningStats target_stats = read_running_stats(s);
    learner.restore_state(std::move(feature_stats), target_stats, seen, since_requantize);
    return 0;
  });

  return learner;
}

CheckpointManager::CheckpointManager(CheckpointConfig config) : config_(std::move(config)) {
  REGHD_CHECK(!config_.dir.empty(), "checkpoint directory must not be empty");
  REGHD_CHECK(config_.keep_last >= 1, "keep_last must be at least 1");
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    throw util::IoError("checkpoint: cannot create directory '" + config_.dir +
                        "': " + ec.message());
  }
}

std::string CheckpointManager::write_checkpoint(const std::string& prefix, std::uint64_t step,
                                                const std::string& bytes) {
  const std::string path =
      (fs::path(config_.dir) / checkpoint_filename(prefix.c_str(), step)).string();
  util::AtomicWriteOptions options;
  options.fsync = config_.fsync;
  options.fault = std::exchange(next_fault_, util::FaultPlan{});
  const obs::StageTimer timer(obs::Histo::kCkptWriteNs);
  try {
    util::atomic_write_file(path, bytes, options);
  } catch (...) {
    obs::count(obs::Counter::kCkptSaveFailures);
    throw;
  }
  obs::count(obs::Counter::kCkptSaves);
  prune();
  return path;
}

std::string CheckpointManager::save(const OnlineRegHD& learner) {
  std::ostringstream out(std::ios::binary);
  save_online_checkpoint(out, learner);
  return write_checkpoint(kOnlinePrefix, learner.samples_seen(), out.str());
}

std::optional<std::string> CheckpointManager::maybe_save(const OnlineRegHD& learner) {
  if (config_.every == 0 || learner.samples_seen() == 0 ||
      learner.samples_seen() % config_.every != 0) {
    return std::nullopt;
  }
  return save(learner);
}

std::string CheckpointManager::save(const RegHDPipeline& pipeline, std::uint64_t step) {
  std::ostringstream out(std::ios::binary);
  save_pipeline(out, pipeline);
  return write_checkpoint(kPipelinePrefix, step, out.str());
}

std::vector<std::string> CheckpointManager::checkpoints() const {
  std::vector<CheckpointEntry> all = list_by_prefix(config_.dir, kOnlinePrefix);
  for (auto& e : list_by_prefix(config_.dir, kPipelinePrefix)) {
    all.push_back(std::move(e));
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.step != b.step ? a.step > b.step : a.path > b.path;
  });
  std::vector<std::string> paths;
  paths.reserve(all.size());
  for (auto& e : all) {
    paths.push_back(std::move(e.path));
  }
  return paths;
}

void CheckpointManager::prune() const {
  for (const char* prefix : {kOnlinePrefix, kPipelinePrefix}) {
    const std::vector<CheckpointEntry> entries = list_by_prefix(config_.dir, prefix);
    for (std::size_t i = config_.keep_last; i < entries.size(); ++i) {
      std::error_code ec;
      fs::remove(entries[i].path, ec);
    }
  }
  // Crash debris: .tmp files are only live for the duration of one
  // atomic_write_file call, so anything still here is an aborted write.
  std::error_code ec;
  for (fs::directory_iterator it(config_.dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".tmp") {
      std::error_code rm;
      fs::remove(it->path(), rm);
    }
  }
}

std::optional<OnlineRegHD> CheckpointManager::recover() const {
  const obs::StageTimer timer(obs::Histo::kCkptRecoverNs);
  for (const CheckpointEntry& entry : list_by_prefix(config_.dir, kOnlinePrefix)) {
    obs::count(obs::Counter::kCkptRecoverScans);
    try {
      std::istringstream in(util::read_file_bytes(entry.path), std::ios::binary);
      auto learner = load_online_checkpoint(in);
      obs::count(obs::Counter::kCkptRecoveries);
      return learner;
    } catch (const std::exception&) {
      obs::count(obs::Counter::kCkptCorruptions);
      continue;  // corrupt or torn — fall back to the previous checkpoint
    }
  }
  return std::nullopt;
}

std::optional<RegHDPipeline> CheckpointManager::recover_pipeline() const {
  const obs::StageTimer timer(obs::Histo::kCkptRecoverNs);
  for (const CheckpointEntry& entry : list_by_prefix(config_.dir, kPipelinePrefix)) {
    obs::count(obs::Counter::kCkptRecoverScans);
    try {
      std::istringstream in(util::read_file_bytes(entry.path), std::ios::binary);
      auto pipeline = load_pipeline(in);
      obs::count(obs::Counter::kCkptRecoveries);
      return pipeline;
    } catch (const std::exception&) {
      obs::count(obs::Counter::kCkptCorruptions);
      continue;
    }
  }
  return std::nullopt;
}

}  // namespace reghd::core
