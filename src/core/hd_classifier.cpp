#include "core/hd_classifier.hpp"

#include <algorithm>
#include <limits>

#include "hdc/ops.hpp"
#include "util/check.hpp"

namespace reghd::core {

void HdClassifierConfig::validate() const {
  REGHD_CHECK(dim >= 64, "classifier dim must be at least 64, got " << dim);
  REGHD_CHECK(classes >= 2, "classifier requires at least two classes");
  REGHD_CHECK(max_epochs >= 1, "max_epochs must be at least 1");
  REGHD_CHECK(patience >= 1, "patience must be at least 1");
}

HdClassifier::HdClassifier(HdClassifierConfig config) : config_(config) {
  config_.validate();
  class_hvs_.assign(config_.classes, hdc::RealHV(config_.dim));
  class_snapshots_.assign(config_.classes, hdc::BinaryHV(config_.dim));
}

void HdClassifier::requantize() {
  for (std::size_t c = 0; c < config_.classes; ++c) {
    class_snapshots_[c] = class_hvs_[c].sign_packed();
  }
}

std::vector<double> HdClassifier::scores(const hdc::EncodedSampleView& sample) const {
  REGHD_CHECK(sample.real.dim() == config_.dim,
              "sample dim " << sample.real.dim() << " != classifier dim " << config_.dim);
  std::vector<double> out(config_.classes);
  if (config_.quantized) {
    for (std::size_t c = 0; c < config_.classes; ++c) {
      out[c] = hdc::hamming_similarity(class_snapshots_[c], sample.binary);
    }
  } else {
    for (std::size_t c = 0; c < config_.classes; ++c) {
      out[c] = hdc::cosine(class_hvs_[c], sample.bipolar);
    }
  }
  return out;
}

std::size_t HdClassifier::predict(const hdc::EncodedSampleView& sample) const {
  const auto s = scores(sample);
  return static_cast<std::size_t>(
      std::distance(s.begin(), std::max_element(s.begin(), s.end())));
}

double HdClassifier::accuracy(const EncodedDataset& data,
                              std::span<const std::size_t> labels) const {
  REGHD_CHECK(data.size() == labels.size(), "label count must match sample count");
  REGHD_CHECK(!data.empty(), "cannot score an empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += predict(data.sample(i)) == labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

HdClassifierReport HdClassifier::fit(const EncodedDataset& train,
                                     std::span<const std::size_t> labels,
                                     const EncodedDataset& val,
                                     std::span<const std::size_t> val_labels) {
  REGHD_CHECK(!train.empty(), "cannot fit on an empty training set");
  REGHD_CHECK(train.size() == labels.size(), "label count must match sample count");
  REGHD_CHECK(!val.empty() && val.size() == val_labels.size(),
              "classifier fit requires a labelled validation set");
  REGHD_CHECK(train.dim() == config_.dim,
              "training data dim " << train.dim() << " != configured dim " << config_.dim);
  for (const std::size_t label : labels) {
    REGHD_CHECK(label < config_.classes, "label " << label << " out of range for "
                                                  << config_.classes << " classes");
  }

  // Single-pass bundling.
  class_hvs_.assign(config_.classes, hdc::RealHV(config_.dim));
  for (std::size_t i = 0; i < train.size(); ++i) {
    hdc::add_scaled(class_hvs_[labels[i]], train.sample(i).bipolar, 1.0);
  }
  requantize();
  fitted_ = true;

  HdClassifierReport report;
  auto best_hvs = class_hvs_;
  double best_acc = -1.0;
  std::size_t stall = 0;

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    // Perceptron-style corrective pass: misclassified samples are added to
    // their class and subtracted from the predicted one.
    std::size_t mistakes = 0;
    for (std::size_t i = 0; i < train.size(); ++i) {
      const std::size_t predicted = predict(train.sample(i));
      if (predicted != labels[i]) {
        hdc::add_scaled(class_hvs_[labels[i]], train.sample(i).bipolar, 1.0);
        hdc::add_scaled(class_hvs_[predicted], train.sample(i).bipolar, -1.0);
        ++mistakes;
      }
    }
    requantize();
    report.epochs_run = epoch + 1;

    const double acc = accuracy(val, val_labels);
    report.val_accuracy_history.push_back(acc);
    if (acc > best_acc) {
      best_acc = acc;
      best_hvs = class_hvs_;
      stall = 0;
    } else {
      ++stall;
    }
    if (mistakes == 0 || stall >= config_.patience) {
      report.converged = true;
      break;
    }
  }

  class_hvs_ = std::move(best_hvs);
  requantize();
  report.best_val_accuracy = best_acc;
  return report;
}

}  // namespace reghd::core
