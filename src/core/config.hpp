// RegHD configuration: every knob of the algorithm in one aggregate.
//
// The enums mirror the paper's design space:
//  * ClusterMode      — §3.1: full-precision cosine search, the proposed
//                       dual-copy quantized clustering (Hamming search over
//                       binary snapshots, updates on integer accumulators),
//                       or the naive one-shot binarization the paper uses as
//                       its foil in Fig. 6.
//  * QueryPrecision   — §3.2: real-valued encoder output ("integer query")
//                       or its sign-binarized packed form ("binary query").
//  * ModelPrecision   — §3.2: integer (accumulator) regression models or
//                       per-epoch binary snapshots with a calibration scale.
//  * UpdateRule       — Eq. 7 is ambiguous about which models absorb the
//                       shared error; kConfidenceWeighted distributes it by
//                       softmax confidence (reducing to the paper's rule for
//                       one-hot confidence), kWinnerOnly updates only the
//                       most-similar cluster's model. Both are provided and
//                       ablated (DESIGN.md §6.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace reghd::core {

/// How cluster similarity search is performed and clusters are maintained.
enum class ClusterMode : std::uint8_t {
  kFullPrecision = 0,  ///< Cosine similarity over integer (real) centers.
  kQuantized = 1,      ///< Hamming search over binary snapshots (§3.1).
  kNaiveBinary = 2,    ///< One-shot binarization, frozen clusters (Fig. 6 foil).
};

/// Precision of the query entering similarity and prediction kernels.
enum class QueryPrecision : std::uint8_t {
  kReal = 0,    ///< Non-binarized encoder output.
  kBinary = 1,  ///< Sign-binarized, bit-packed.
};

/// Precision of the regression model used for prediction.
enum class ModelPrecision : std::uint8_t {
  kReal = 0,    ///< The integer accumulator model.
  kBinary = 1,  ///< Per-epoch binary snapshot with calibration scale γ.
  /// QuantHD-style ternary snapshot {−γ, 0, +γ}: components below a
  /// threshold fraction of the mean magnitude are masked out, the rest are
  /// binarized. Keeps the multiply-free kernel while dropping the noisy
  /// small components the binary snapshot is forced to round to ±1 (§5's
  /// cited quantization framework, applied to regression).
  kTernary = 2,
};

/// Which regression models absorb the prediction error (Eq. 7).
enum class UpdateRule : std::uint8_t {
  kConfidenceWeighted = 0,
  kWinnerOnly = 1,
};

/// How cluster centers are initialized before iterative training.
enum class ClusterInit : std::uint8_t {
  /// The paper's §2.4 rule: random binary hypervectors. Random centers are
  /// near-orthogonal to every encoded sample, so the first center to win a
  /// sample can run away with the whole dataset (classic winner-take-all
  /// collapse on blob-like data).
  kRandom = 0,
  /// Farthest-point sampling of k encoded training samples (k-means++-style;
  /// the library default). Each center starts inside the data, so clusters
  /// partition the input distribution from epoch one. Ablated against
  /// kRandom in bench/ablation_design.
  kFarthestPoint = 1,
};

[[nodiscard]] std::string to_string(ClusterMode mode);
[[nodiscard]] std::string to_string(QueryPrecision precision);
[[nodiscard]] std::string to_string(ModelPrecision precision);
[[nodiscard]] std::string to_string(UpdateRule rule);
[[nodiscard]] std::string to_string(ClusterInit init);

/// The four named prediction configurations of §3.2 / Fig. 7.
struct PredictionMode {
  QueryPrecision query = QueryPrecision::kReal;
  ModelPrecision model = ModelPrecision::kReal;

  [[nodiscard]] static PredictionMode full_precision() noexcept {
    return {QueryPrecision::kReal, ModelPrecision::kReal};
  }
  [[nodiscard]] static PredictionMode binary_query_integer_model() noexcept {
    return {QueryPrecision::kBinary, ModelPrecision::kReal};
  }
  [[nodiscard]] static PredictionMode integer_query_binary_model() noexcept {
    return {QueryPrecision::kReal, ModelPrecision::kBinary};
  }
  [[nodiscard]] static PredictionMode binary_query_binary_model() noexcept {
    return {QueryPrecision::kBinary, ModelPrecision::kBinary};
  }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const PredictionMode&) const = default;
};

/// Full RegHD hyperparameter set. Defaults reproduce the paper's standard
/// configuration (RegHD-8, D = 4k, full precision).
struct RegHDConfig {
  std::size_t dim = 4096;       ///< D — hypervector dimensionality.
  std::size_t models = 8;       ///< k — cluster/regression model count.
  double learning_rate = 0.15;  ///< α in Eqs. 2 and 7 (normalized-LMS step).

  std::size_t max_epochs = 80;
  std::size_t patience = 8;     ///< Epochs without sufficient improvement before stopping.
  double tolerance = 1e-3;      ///< Minimum relative val-MSE improvement that resets patience.

  /// Softmax temperature for turning similarities into confidences (§2.4).
  /// With normalize_similarities the logits are z-scores (mean 0, std 1
  /// across the k clusters), so τ ≈ 0.5 gives a confident-but-soft gate
  /// regardless of the encoder's similarity scale.
  double softmax_temperature = 0.5;

  /// Z-score the k similarities before the softmax (the paper's
  /// "normalization block" before the confidence weights). Encoders differ
  /// wildly in how much their cosine similarities spread — Eq. 1 encodings
  /// share a large common component that compresses the range — and
  /// z-scoring makes the confidence gate invariant to that scale. Ablated in
  /// bench/ablation_design.
  bool normalize_similarities = true;

  ClusterMode cluster_mode = ClusterMode::kFullPrecision;
  QueryPrecision query_precision = QueryPrecision::kReal;
  ModelPrecision model_precision = ModelPrecision::kReal;
  UpdateRule update_rule = UpdateRule::kConfidenceWeighted;
  ClusterInit cluster_init = ClusterInit::kFarthestPoint;

  /// Robust training: clamp the per-sample error used in the Eq. 2/7 update
  /// to ±error_clip (standardized target units) — the gradient-clipping
  /// analogue of a Huber loss. Label outliers (sensor glitches, the forest
  /// fires tail) then move the model by a bounded step instead of
  /// proportionally to their magnitude. 0 disables.
  double error_clip = 0.0;

  /// Binary-snapshot refresh cadence in samples; 0 refreshes once per epoch.
  /// The paper binarizes "after going through all training data (or a
  /// batch)" — this is the batch option. Smaller intervals keep the
  /// quantized kernels fresher at the cost of more binarization passes
  /// (costed in perf/kernel_costs as cost_binarize per refresh).
  std::size_t requantize_interval = 0;

  /// Mini-batch size for iterative fit(). 0 trains strictly online (the
  /// paper's sample-by-sample Eqs. 5–8, the historical default); B ≥ 1
  /// trains in deterministic batch-frozen mini-batches: each epoch splits
  /// the shuffled order into runs of B samples, the per-sample similarities,
  /// confidences, predictions and update coefficients are computed in
  /// parallel against the batch-start state, and the Eq. 7/8 accumulator
  /// updates are applied serially in sample order. Results depend only on B
  /// (never on thread count), and B = 1 is bit-identical to 0. Unlike
  /// `threads`, this is part of the learning semantics.
  std::size_t batch_size = 0;

  std::uint64_t seed = 0x52E6D5EEDULL;

  /// Worker threads for the batch encode/predict paths; 0 defers to the
  /// REGHD_THREADS environment variable, else hardware concurrency. A pure
  /// runtime knob — results are deterministic regardless of the value, and it
  /// is deliberately not serialized with trained models.
  std::size_t threads = 0;

  /// Route single-sample predict() through the fused encode→search→predict
  /// fast path (MultiModelRegressor::predict_one) when the encoder supports
  /// block encoding and the mode combination has a fused implementation.
  /// The fused path is bit-identical to the materializing path, so this is a
  /// pure runtime knob like `threads` — not serialized with trained models —
  /// and exists mainly so equivalence tests and benchmarks can pin either
  /// path explicitly.
  bool fused_predict = true;

  [[nodiscard]] PredictionMode prediction_mode() const noexcept {
    return {query_precision, model_precision};
  }

  /// Throws std::invalid_argument if any field is out of range.
  void validate() const;
};

}  // namespace reghd::core
