// Multi-model RegHD regression — the paper's primary contribution
// (§2.4, Eqs. 5–8) with the quantization framework of §3 (Eqs. 9, Fig. 5).
//
// State: k cluster hypervectors C_i (random ±1 initialization, integer
// accumulators thereafter) and k regression models M_i (zero-initialized
// accumulators). Per training pair (S, y):
//
//   1. similarities  δ_i = δ(S, C_i)            (Eq. 5 — cosine, or Hamming
//                                                over binary snapshots in
//                                                quantized-cluster mode)
//   2. confidences   δ'_i = softmax(δ / τ)      (normalization block)
//   3. prediction    ŷ = Σ_i δ'_i·(1/D)·M_i·S   (Eq. 6)
//   4. model update  M_i += α·(y−ŷ)·δ'_i·S      (Eq. 7, confidence-weighted;
//                                                winner-only mode available)
//   5. cluster update, l = argmax δ:
//                    C_l += (1−δ_l)·S           (Eq. 8; Eq. 9's dual-copy
//                                                form in quantized mode)
//
// End of each epoch re-binarizes the quantized snapshots (C^b from C, M^b
// and γ from M). Training iterates until validation MSE stabilizes.
// Prediction (Eq. 6) runs steps 1–3 with the configured §3.2 kernel.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/encoded.hpp"
#include "core/kernels.hpp"
#include "core/training.hpp"
#include "util/aligned.hpp"
#include "util/random.hpp"

namespace reghd::hdc {
class Encoder;
}

namespace reghd::core {

/// State of one cluster center: the integer accumulator C, its binary
/// snapshot C^b, and the cached squared norm for O(1) cosine updates.
struct ClusterCenter {
  hdc::RealHV accumulator;
  hdc::BinaryHV binary;
  double norm2 = 0.0;

  /// Refreshes the binary snapshot from the accumulator.
  void requantize() { binary = accumulator.sign_packed(); }
};

/// Per-sample introspection of a prediction (the paper highlights model
/// interpretability; this exposes it).
struct PredictionDetail {
  double prediction = 0.0;
  std::vector<double> similarities;   ///< δ_i per cluster.
  std::vector<double> confidences;    ///< δ'_i (softmax).
  std::vector<double> model_outputs;  ///< (1/D)·M_i·S per model.
  std::size_t best_cluster = 0;       ///< argmax δ.
};

class MultiModelRegressor {
 public:
  /// Validates and stores the configuration; allocates k zero models and k
  /// random ±1 cluster centers drawn from config.seed.
  explicit MultiModelRegressor(const RegHDConfig& config);

  /// Iterative training with early stopping on `val`. Re-initializes all
  /// state first, so fit() is idempotent for a fixed config. `hooks`
  /// (optional) receives the periodic checkpoint callback.
  TrainingReport fit(const EncodedDataset& train, const EncodedDataset& val,
                     const TrainingHooks* hooks = nullptr);

  /// One online training step (used by fit and by the streaming example).
  /// Returns the pre-update prediction for the sample.
  double train_step(const hdc::EncodedSampleView& sample, double target);

  /// One deterministic batch-frozen mini-batch step (the batch_size ≥ 1
  /// semantics of fit, also driven directly by OnlineRegHD::update_batch):
  /// the Eq. 5 similarities, confidences, Eq. 6 predictions, errors and
  /// update coefficients of every listed sample are computed in parallel
  /// against the entry state, then the Eq. 7/8 accumulator updates are
  /// applied serially in ascending list order (per accumulator; distinct
  /// accumulators are independent). predictions[j] receives the pre-update
  /// batch-frozen prediction of data.sample(indices[j]). Results depend only
  /// on the index list, never on `threads` (0 = config.threads); a
  /// single-index call is bit-identical to train_step.
  void train_batch(const EncodedDataset& data, std::span<const std::size_t> indices,
                   std::span<double> predictions, std::size_t threads = 0);

  /// End-of-epoch snapshot refresh; called automatically inside fit().
  void requantize();

  /// Eq. 6 prediction with the configured kernels.
  [[nodiscard]] double predict(const hdc::EncodedSampleView& sample) const;

  /// Prediction plus all intermediate quantities.
  [[nodiscard]] PredictionDetail predict_detail(const hdc::EncodedSampleView& sample) const;

  /// Fused single-query (B = 1) prediction: encode → similarity search →
  /// confidence → predict in one pass over L1-resident blocks of the
  /// hyperspace, the software mirror of the sim/accelerator.hpp stage
  /// pipeline. Instead of materializing the full D-dimensional encoding and
  /// then re-streaming it against every cluster/model row, each 1024-
  /// component block is encoded (encoder.encode_real_block) and immediately
  /// scored against the (k_c + k_m)-row bank while it is still in cache —
  /// dot_rows_block carries per-row reduction state across blocks in the
  /// real/real mode, and the quantized modes sign-encode the block and
  /// accumulate exact integer popcount scores. Bit-identical to
  /// predict(encoder.encode(features)) in every mode: the supported
  /// cluster/query/model combinations fuse (same kernels, same rounding
  /// sequence — see the predict_batch fast paths this replays), all others
  /// fall back to exactly that materializing expression. config().
  /// fused_predict = false forces the fallback. Thread-safe (thread_local
  /// scratch).
  [[nodiscard]] double predict_one(const hdc::Encoder& encoder,
                                   std::span<const double> features) const;

  /// Predicts every sample, parallelized over rows with up to `threads`
  /// workers (0 = config.threads, then REGHD_THREADS / hardware
  /// concurrency). Result i equals predict(sample i) for any thread count.
  [[nodiscard]] std::vector<double> predict_batch(const EncodedDataset& dataset,
                                                  std::size_t threads = 0) const;

  /// Caller-owned scratch for predict_batch_into: the contiguous
  /// (k_c + k_m)×D bank (or its packed 2-bit-plane form in quantized modes)
  /// plus the per-row score/similarity buffers. prepare_predict_scratch
  /// sizes everything once; after that, predict_batch_into touches no
  /// allocator — the invariant the serving runtime's admission batcher
  /// asserts on its predict path. Reusable across calls and across
  /// re-preparations (storage capacity is retained).
  struct PredictScratch {
    util::AlignedVector<double> bank;  ///< Full-precision cluster+model rows.
    std::vector<double> cluster_norm;  ///< √‖C‖² per cluster.
    PackedTernaryBank packed;          ///< Quantized-mode fallback bank.
    std::vector<double> scores;        ///< Per-row real dot scores.
    std::vector<std::int64_t> qscores; ///< Per-row popcount scores.
    std::vector<double> sims;          ///< δ_i scratch (k_c).
    bool prepared = false;
  };

  /// Builds `scratch` from the current model state (bank copy / packed-bank
  /// build, norm cache, buffer sizing). Must be re-run whenever the model
  /// state changes — the serving worker re-prepares once per snapshot swap,
  /// off the per-query path.
  void prepare_predict_scratch(PredictScratch& scratch) const;

  /// Serial, allocation-free predict_batch: writes predict(sample(i)) into
  /// out[i] for every row, scoring through `scratch`'s bank. Bit-identical
  /// to predict_batch(dataset) in every mode (same kernels, same float
  /// expression sequence; the parallel form is row-independent, so the
  /// serial order changes nothing). `scratch` must have been prepared
  /// against this exact model state. The one caveat: mode combinations
  /// outside the two bank fast paths fall back to per-row predict(), which
  /// allocates — same as predict_batch's own generic path.
  void predict_batch_into(const EncodedDataset& dataset, std::span<double> out,
                          PredictScratch& scratch) const;

  [[nodiscard]] double evaluate_mse(const EncodedDataset& dataset) const;

  /// δ_i for every cluster (Eq. 5 / Hamming in quantized mode).
  [[nodiscard]] std::vector<double> similarities(const hdc::EncodedSampleView& sample) const;

  /// Index of the most similar cluster.
  [[nodiscard]] std::size_t assign_cluster(const hdc::EncodedSampleView& sample) const;

  [[nodiscard]] const RegHDConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_models() const noexcept { return models_.size(); }
  [[nodiscard]] const RegressionModel& model(std::size_t i) const { return models_[i]; }
  [[nodiscard]] const ClusterCenter& cluster(std::size_t i) const { return clusters_[i]; }

  /// Mutable access for deserialization (model_io) and white-box tests.
  /// Handing out mutable state invalidates the packed bank — the caller may
  /// rewrite the snapshots it was built from (requantize() or
  /// rebuild_packed_bank() restores it).
  [[nodiscard]] std::vector<RegressionModel>& mutable_models() noexcept {
    packed_bank_.valid = false;
    return models_;
  }
  [[nodiscard]] std::vector<ClusterCenter>& mutable_clusters() noexcept {
    packed_bank_.valid = false;
    return clusters_;
  }

  /// The packed ternary/binary scan bank derived from the current snapshots
  /// (see PackedTernaryBank). Invalid after mutable state access until the
  /// next requantize()/rebuild; predict_batch then falls back to building a
  /// per-call bank, so results never depend on validity.
  [[nodiscard]] const PackedTernaryBank& packed_bank() const noexcept {
    return packed_bank_;
  }

  /// Mutable bank access for checkpoint restore (core/checkpoint): a saved
  /// bank is reloaded verbatim so a resumed process scores through exactly
  /// the bytes the checkpointed one did.
  [[nodiscard]] PackedTernaryBank& mutable_packed_bank() noexcept {
    return packed_bank_;
  }

  /// Rebuilds the packed bank from the current binary/ternary snapshots (the
  /// requantize-on-update policy re-packs through this; also the recovery
  /// path for checkpoints predating the bank section).
  void rebuild_packed_bank();

  /// Re-initializes clusters and models from the configured seed.
  void reset();

  /// Replays fit()'s cluster seeding rule on `train`: farthest-point
  /// initialization when the config asks for it (ClusterInit::kFarthestPoint
  /// with k > 1), a no-op otherwise. The shard-merge path uses this twice —
  /// to re-derive each replica's deterministic post-initialization base, and
  /// to seed the merged model from the full training set.
  void init_clusters(const EncodedDataset& train);

  /// Shard-merge accumulation (see core/sharded_training): adds one trained
  /// replica's training delta into this model. For every cluster and model
  /// accumulator component,
  ///   this += (replica − base)
  /// with each component rounded as one subtract then one add
  /// (KernelBackend::merge_accumulate — bit-identical across backends).
  /// `base` must be the replica's reproducible post-initialization state
  /// (models zero, clusters as seeded from the replica's own shard), so the
  /// delta is exactly what the shard's training added. HD training is
  /// bundling — commutative, associative addition — which is why summed
  /// deltas recover the joint model. Snapshots, cluster norms and the packed
  /// bank are NOT refreshed here; the caller finalizes with requantize()
  /// after the last replica (the exact ‖C‖² recompute and ternary-bank
  /// rebuild).
  void merge_accumulate_delta(const MultiModelRegressor& replica,
                              const MultiModelRegressor& base);

  /// Magnitude pruning of the regression models (SparseHD/QuantHD-style,
  /// the orthogonal optimization the paper cites in §5): zeroes the
  /// `fraction` smallest-|M_j| components of every model accumulator and
  /// refreshes the binary snapshots. Sparse models cut inference memory
  /// traffic and multiplies proportionally (see bench/extension_sparsity).
  void sparsify(double fraction);

  /// Fraction of exactly-zero components across all model accumulators.
  [[nodiscard]] double model_sparsity() const;

  /// Multiplies every model accumulator by `factor` ∈ (0, 1] — exponential
  /// forgetting for non-stationary streams (used by OnlineRegHD).
  void decay_models(double factor);

 private:
  /// Softmax over the similarity vector at the configured temperature.
  [[nodiscard]] std::vector<double> confidences_from(std::vector<double> sims) const;

  /// Eq. 5 similarities written into a caller-owned buffer of size k (the
  /// allocation-free core of similarities(); thread-safe).
  void similarities_into(const hdc::EncodedSampleView& sample, std::span<double> sims) const;

  /// In-place similarities → confidences transform (z-score + softmax); the
  /// allocation-free core of confidences_from(). Thread-safe.
  void confidences_into(std::span<double> sims) const;

  /// Farthest-point cluster seeding from the training data (ClusterInit::
  /// kFarthestPoint).
  void init_clusters_from_samples(const EncodedDataset& train);

  /// Fills `bank` from the current snapshots at the configured model
  /// precision (the allocation-reusing core of rebuild_packed_bank; also
  /// builds predict_batch's per-call fallback bank). Thread-safe.
  void build_packed_bank_into(PackedTernaryBank& bank) const;

  RegHDConfig config_;
  std::vector<RegressionModel> models_;
  std::vector<ClusterCenter> clusters_;
  PackedTernaryBank packed_bank_;

  // Reusable train_step scratch, hoisted out of the per-sample hot loop
  // (similarities()/confidences_from() used to allocate per call). predict()
  // stays allocating: it is const and must remain safe to call concurrently
  // from predict_batch's per-row fallback.
  std::vector<double> step_sims_;
  std::vector<double> step_conf_;

  // train_batch phase-1 scratch, reused across batches of an epoch. Laid out
  // per batch sample j: sims/conf/coeff rows of k, scalar winner/weight.
  util::AlignedVector<double> batch_bank_;  ///< batch-start cluster+model bank.
  std::vector<double> batch_cnorm_;         ///< batch-start cluster norms √‖C‖².
  std::vector<double> batch_scores_;
  std::vector<double> batch_sims_;
  std::vector<double> batch_conf_;
  std::vector<double> batch_coeff_;   ///< per-model coefficients (confidence-weighted).
  std::vector<double> batch_wcoeff_;  ///< winner coefficient (winner-only rule).
  std::vector<double> batch_weight_;  ///< Eq. 8 cluster weight 1 − δ_winner.
  std::vector<std::size_t> batch_winner_;
};

}  // namespace reghd::core
