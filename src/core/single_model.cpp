#include "core/single_model.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "core/early_stopping.hpp"
#include "hdc/kernel_backend.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace reghd::core {

SingleModelRegressor::SingleModelRegressor(const RegHDConfig& config) : config_(config) {
  config_.validate();
  model_ = RegressionModel(config_.dim);
}

void SingleModelRegressor::reset() { model_ = RegressionModel(config_.dim); }

void SingleModelRegressor::train_step(const hdc::EncodedSampleView& sample, double target) {
  const obs::StageTimer timer(obs::Histo::kTrainStepNs);
  obs::count(obs::Counter::kTrainSteps);
  REGHD_CHECK(sample.real.dim() == config_.dim,
              "sample dim " << sample.real.dim() << " != model dim " << config_.dim);
  // The training error is always computed against the integer model being
  // updated (paper §3.2: M ← M + α(y − ŷ)·S updates the integer model). A
  // binary prediction mode only affects inference; using its epoch-frozen
  // snapshot for ŷ here would hold the error constant across an epoch and
  // destabilize the accumulation.
  const PredictionMode train_mode{config_.query_precision, ModelPrecision::kReal};
  const double prediction = predict_dot(model_, sample, train_mode);
  double error = target - prediction;
  if (config_.error_clip > 0.0) {
    error = std::clamp(error, -config_.error_clip, config_.error_clip);
  }
  update_accumulator(model_.accumulator, sample,
                     config_.learning_rate * error * update_normalizer(sample, config_.query_precision),
                     config_.query_precision);
}

void SingleModelRegressor::train_batch(const EncodedDataset& data,
                                       std::span<const std::size_t> indices,
                                       std::span<double> predictions, std::size_t threads) {
  REGHD_CHECK(predictions.size() == indices.size(),
              "train_batch needs one prediction slot per index, got "
                  << predictions.size() << " for " << indices.size());
  if (indices.empty()) {
    return;
  }
  REGHD_CHECK(data.dim() == config_.dim,
              "batch data dim " << data.dim() << " != configured dim " << config_.dim);
  const obs::StageTimer timer(obs::Histo::kTrainBatchNs);
  obs::count(obs::Counter::kTrainBatches);
  obs::count(obs::Counter::kTrainBatchSamples, indices.size());
  const std::size_t use_threads = threads != 0 ? threads : config_.threads;
  const PredictionMode train_mode{config_.query_precision, ModelPrecision::kReal};
  // Phase 1 — batch-frozen Eq. 2 predictions, parallel over samples. Each
  // store lands in sample j's own slot, so the phase is deterministic for
  // any thread count.
  util::parallel_for(
      indices.size(),
      [&](std::size_t j) {
        predictions[j] = predict_dot(model_, data.sample(indices[j]), train_mode);
      },
      use_threads);
  // Coefficients for phase 2, in list order (cheap scalar work, serial).
  batch_coeff_.resize(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    double error = data.target(indices[j]) - predictions[j];
    if (config_.error_clip > 0.0) {
      error = std::clamp(error, -config_.error_clip, config_.error_clip);
    }
    batch_coeff_[j] = config_.learning_rate * error *
                      update_normalizer(data.sample(indices[j]), config_.query_precision);
  }
  // Phase 2 — apply the updates in ascending list order, dimension-sliced
  // across workers. Per accumulator component the coefficients chain in list
  // order exactly as a serial replay: add_scaled_real rounds each component
  // as an independent mul-then-add and add_scaled_bipolar adds an exact
  // ±coeff, so no component's value depends on slice boundaries (and hence
  // on the thread count).
  const hdc::KernelBackend& kb = hdc::active_backend();
  const std::size_t d = config_.dim;
  const bool real_updates = config_.query_precision == QueryPrecision::kReal;
  const double* real_rows = data.real_plane().data();
  const std::int8_t* bipolar_rows = data.bipolar_plane().data();
  const std::size_t workers = use_threads != 0 ? use_threads : util::default_thread_count();
  const std::size_t slices =
      std::min(std::max<std::size_t>(workers, 1), std::max<std::size_t>(d / 8, 1));
  const std::size_t chunk = (((d + slices - 1) / slices) + 7) & ~std::size_t{7};
  util::parallel_for(
      slices,
      [&](std::size_t s) {
        const std::size_t d0 = std::min(d, s * chunk);
        const std::size_t d1 = std::min(d, d0 + chunk);
        if (d0 >= d1) {
          return;
        }
        double* acc = model_.accumulator.values().data() + d0;
        for (std::size_t j = 0; j < indices.size(); ++j) {
          const std::size_t row = indices[j];
          if (real_updates) {
            kb.add_scaled_real(acc, real_rows + row * d + d0, batch_coeff_[j], d1 - d0);
          } else {
            kb.add_scaled_bipolar(acc, bipolar_rows + row * d + d0, batch_coeff_[j],
                                  d1 - d0);
          }
        }
      },
      use_threads);
}

double SingleModelRegressor::predict(const hdc::EncodedSampleView& sample) const {
  const obs::StageTimer timer(obs::Histo::kPredictNs);
  obs::count(obs::Counter::kPredicts);
  return predict_dot(model_, sample, config_.prediction_mode());
}

std::vector<double> SingleModelRegressor::predict_batch(const EncodedDataset& dataset,
                                                        std::size_t threads) const {
  const obs::StageTimer timer(obs::Histo::kPredictBatchNs);
  obs::count(obs::Counter::kPredictBatchRows, dataset.size());
  std::vector<double> out(dataset.size());
  const std::size_t use_threads = threads != 0 ? threads : config_.threads;
  const PredictionMode mode = config_.prediction_mode();
  if (mode.query == QueryPrecision::kReal && mode.model == ModelPrecision::kReal &&
      !dataset.empty() && dataset.dim() == config_.dim) {
    // Full-precision fast path: score the whole SoA real plane against M with
    // the bank kernel. dot_rows reduces each row exactly like dot_real_real,
    // and the /D division is the same one predict_dot performs, so out[i] is
    // bit-identical to predict(sample(i)).
    const hdc::KernelBackend& kb = hdc::active_backend();
    const double* rows = dataset.real_plane().data();
    const double* m = model_.accumulator.values().data();
    const std::size_t d = config_.dim;
    const double dd = static_cast<double>(d);
    constexpr std::size_t kChunk = 64;
    const std::size_t chunks = (dataset.size() + kChunk - 1) / kChunk;
    util::parallel_for(
        chunks,
        [&](std::size_t chunk) {
          const std::size_t r0 = chunk * kChunk;
          const std::size_t rn = std::min(dataset.size(), r0 + kChunk);
          kb.dot_rows(m, rows + r0 * d, d, rn - r0, d, out.data() + r0);
          for (std::size_t r = r0; r < rn; ++r) {
            out[r] /= dd;
          }
        },
        use_threads);
    return out;
  }
  if (mode.query == QueryPrecision::kBinary && mode.model == ModelPrecision::kBinary &&
      !dataset.empty() && dataset.dim() == config_.dim) {
    // Binary bank scan (§3.2 binary-query/binary-model): score the whole SoA
    // binary plane against M^b with the XNOR+popcount bank kernel. The
    // integer bipolar dots are exact and γ·dot/D replays predict_dot's float
    // expression, so out[i] is bit-identical to predict(sample(i)).
    const hdc::KernelBackend& kb = hdc::active_backend();
    const std::uint64_t* q = model_.binary.words().data();
    const std::uint64_t* bits = dataset.binary_plane().data();
    const std::size_t words = dataset.words_per_row();
    const double dd = static_cast<double>(config_.dim);
    const double gamma = model_.gamma;
    constexpr std::size_t kChunk = 64;
    const std::size_t chunks = (dataset.size() + kChunk - 1) / kChunk;
    util::parallel_for(
        chunks,
        [&](std::size_t chunk) {
          const std::size_t r0 = chunk * kChunk;
          const std::size_t rn = std::min(dataset.size(), r0 + kChunk);
          std::vector<std::int64_t> scores(rn - r0);
          kb.dot_rows_binary(q, bits + r0 * words, words, rn - r0, config_.dim,
                             scores.data());
          for (std::size_t r = r0; r < rn; ++r) {
            out[r] = gamma * static_cast<double>(scores[r - r0]) / dd;
          }
        },
        use_threads);
    return out;
  }
  util::parallel_for(
      dataset.size(), [&](std::size_t i) { out[i] = predict(dataset.sample(i)); },
      use_threads);
  return out;
}

double SingleModelRegressor::evaluate_mse(const EncodedDataset& dataset) const {
  REGHD_CHECK(!dataset.empty(), "cannot evaluate on an empty dataset");
  const std::vector<double> pred = predict_batch(dataset);
  // Serial accumulation in index order keeps the MSE bit-identical for any
  // thread count.
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - dataset.target(i);
    acc += e * e;
  }
  return acc / static_cast<double>(dataset.size());
}

TrainingReport SingleModelRegressor::fit(const EncodedDataset& train,
                                         const EncodedDataset& val,
                                         const TrainingHooks* hooks) {
  REGHD_CHECK(!train.empty(), "cannot fit on an empty training set");
  REGHD_CHECK(!val.empty(), "single-model fit requires a validation set for early stopping");
  REGHD_CHECK(train.dim() == config_.dim,
              "training data dim " << train.dim() << " != configured dim " << config_.dim);

  reset();
  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainingReport report;
  EarlyStopper stopper(config_.tolerance, config_.patience);

  const PredictionMode train_mode{config_.query_precision, ModelPrecision::kReal};
  RegressionModel best_model = model_;
  double best_val = std::numeric_limits<double>::infinity();

  std::vector<double> batch_predictions;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double online_sq_err = 0.0;
    if (config_.batch_size == 0) {
      for (const std::size_t i : order) {
        const hdc::EncodedSampleView s = train.sample(i);
        const double y = train.target(i);
        const double prediction = predict_dot(model_, s, train_mode);
        double error = y - prediction;
        online_sq_err += error * error;
        if (config_.error_clip > 0.0) {
          error = std::clamp(error, -config_.error_clip, config_.error_clip);
        }
        update_accumulator(model_.accumulator, s,
                           config_.learning_rate * error *
                               update_normalizer(s, config_.query_precision),
                           config_.query_precision);
      }
    } else {
      // Batch-frozen mini-batches over the same shuffled order; the online
      // MSE still measures the pre-update (batch-frozen) predictions with
      // the unclipped error, as the per-sample loop above does.
      const std::size_t bsize = config_.batch_size;
      batch_predictions.resize(std::min(bsize, order.size()));
      std::size_t batch = 0;
      for (std::size_t b0 = 0; b0 < order.size(); b0 += bsize, ++batch) {
        const std::size_t bn = std::min(order.size(), b0 + bsize);
        const std::span<const std::size_t> idx(order.data() + b0, bn - b0);
        train_batch(train, idx, std::span<double>(batch_predictions.data(), idx.size()));
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const double error = train.target(idx[j]) - batch_predictions[j];
          online_sq_err += error * error;
        }
        if (hooks != nullptr && hooks->on_batch) {
          hooks->on_batch(epoch, batch, bn);
        }
      }
    }
    // End-of-epoch binary snapshot refresh (a no-op cost-wise for the
    // full-precision mode, but keeps binary prediction modes current).
    model_.requantize();

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse = online_sq_err / static_cast<double>(train.size());
    record.val_mse = evaluate_mse(val);
    report.history.push_back(record);
    report.epochs_run = epoch + 1;

    if (record.val_mse < best_val) {
      best_val = record.val_mse;
      best_model = model_;
    }
    if (hooks != nullptr && hooks->on_telemetry) {
      hooks->on_telemetry(epoch, obs::snapshot());
    }
    if (stopper.update(record.val_mse)) {
      report.converged = true;
      report.stop_reason = "validation MSE stabilized";
      break;
    }
  }
  if (!report.converged) {
    report.stop_reason = "reached max_epochs";
  }
  // Keep the best validation-epoch model, not the last one.
  model_ = std::move(best_model);
  report.best_val_mse = stopper.best();
  return report;
}

}  // namespace reghd::core
