#include "core/single_model.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "core/early_stopping.hpp"
#include "hdc/kernel_backend.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace reghd::core {

SingleModelRegressor::SingleModelRegressor(const RegHDConfig& config) : config_(config) {
  config_.validate();
  model_ = RegressionModel(config_.dim);
}

void SingleModelRegressor::reset() { model_ = RegressionModel(config_.dim); }

void SingleModelRegressor::train_step(const hdc::EncodedSampleView& sample, double target) {
  REGHD_CHECK(sample.real.dim() == config_.dim,
              "sample dim " << sample.real.dim() << " != model dim " << config_.dim);
  // The training error is always computed against the integer model being
  // updated (paper §3.2: M ← M + α(y − ŷ)·S updates the integer model). A
  // binary prediction mode only affects inference; using its epoch-frozen
  // snapshot for ŷ here would hold the error constant across an epoch and
  // destabilize the accumulation.
  const PredictionMode train_mode{config_.query_precision, ModelPrecision::kReal};
  const double prediction = predict_dot(model_, sample, train_mode);
  double error = target - prediction;
  if (config_.error_clip > 0.0) {
    error = std::clamp(error, -config_.error_clip, config_.error_clip);
  }
  update_accumulator(model_.accumulator, sample,
                     config_.learning_rate * error * update_normalizer(sample, config_.query_precision),
                     config_.query_precision);
}

double SingleModelRegressor::predict(const hdc::EncodedSampleView& sample) const {
  return predict_dot(model_, sample, config_.prediction_mode());
}

std::vector<double> SingleModelRegressor::predict_batch(const EncodedDataset& dataset,
                                                        std::size_t threads) const {
  std::vector<double> out(dataset.size());
  const std::size_t use_threads = threads != 0 ? threads : config_.threads;
  const PredictionMode mode = config_.prediction_mode();
  if (mode.query == QueryPrecision::kReal && mode.model == ModelPrecision::kReal &&
      !dataset.empty() && dataset.dim() == config_.dim) {
    // Full-precision fast path: score the whole SoA real plane against M with
    // the bank kernel. dot_rows reduces each row exactly like dot_real_real,
    // and the /D division is the same one predict_dot performs, so out[i] is
    // bit-identical to predict(sample(i)).
    const hdc::KernelBackend& kb = hdc::active_backend();
    const double* rows = dataset.real_plane().data();
    const double* m = model_.accumulator.values().data();
    const std::size_t d = config_.dim;
    const double dd = static_cast<double>(d);
    constexpr std::size_t kChunk = 64;
    const std::size_t chunks = (dataset.size() + kChunk - 1) / kChunk;
    util::parallel_for(
        chunks,
        [&](std::size_t chunk) {
          const std::size_t r0 = chunk * kChunk;
          const std::size_t rn = std::min(dataset.size(), r0 + kChunk);
          kb.dot_rows(m, rows + r0 * d, d, rn - r0, d, out.data() + r0);
          for (std::size_t r = r0; r < rn; ++r) {
            out[r] /= dd;
          }
        },
        use_threads);
    return out;
  }
  util::parallel_for(
      dataset.size(), [&](std::size_t i) { out[i] = predict(dataset.sample(i)); },
      use_threads);
  return out;
}

double SingleModelRegressor::evaluate_mse(const EncodedDataset& dataset) const {
  REGHD_CHECK(!dataset.empty(), "cannot evaluate on an empty dataset");
  const std::vector<double> pred = predict_batch(dataset);
  // Serial accumulation in index order keeps the MSE bit-identical for any
  // thread count.
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - dataset.target(i);
    acc += e * e;
  }
  return acc / static_cast<double>(dataset.size());
}

TrainingReport SingleModelRegressor::fit(const EncodedDataset& train,
                                         const EncodedDataset& val) {
  REGHD_CHECK(!train.empty(), "cannot fit on an empty training set");
  REGHD_CHECK(!val.empty(), "single-model fit requires a validation set for early stopping");
  REGHD_CHECK(train.dim() == config_.dim,
              "training data dim " << train.dim() << " != configured dim " << config_.dim);

  reset();
  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainingReport report;
  EarlyStopper stopper(config_.tolerance, config_.patience);

  const PredictionMode train_mode{config_.query_precision, ModelPrecision::kReal};
  RegressionModel best_model = model_;
  double best_val = std::numeric_limits<double>::infinity();

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double online_sq_err = 0.0;
    for (const std::size_t i : order) {
      const hdc::EncodedSampleView s = train.sample(i);
      const double y = train.target(i);
      const double prediction = predict_dot(model_, s, train_mode);
      double error = y - prediction;
      online_sq_err += error * error;
      if (config_.error_clip > 0.0) {
        error = std::clamp(error, -config_.error_clip, config_.error_clip);
      }
      update_accumulator(model_.accumulator, s,
                         config_.learning_rate * error *
                             update_normalizer(s, config_.query_precision),
                         config_.query_precision);
    }
    // End-of-epoch binary snapshot refresh (a no-op cost-wise for the
    // full-precision mode, but keeps binary prediction modes current).
    model_.requantize();

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse = online_sq_err / static_cast<double>(train.size());
    record.val_mse = evaluate_mse(val);
    report.history.push_back(record);
    report.epochs_run = epoch + 1;

    if (record.val_mse < best_val) {
      best_val = record.val_mse;
      best_model = model_;
    }
    if (stopper.update(record.val_mse)) {
      report.converged = true;
      report.stop_reason = "validation MSE stabilized";
      break;
    }
  }
  if (!report.converged) {
    report.stop_reason = "reached max_epochs";
  }
  // Keep the best validation-epoch model, not the last one.
  model_ = std::move(best_model);
  report.best_val_mse = stopper.best();
  return report;
}

}  // namespace reghd::core
