// Sharded data-parallel RegHD training with an associative HD merge.
//
// HD training is bundling: every update in Eqs. 7–8 *adds* a scaled sample
// hypervector into an accumulator, and addition commutes and associates. So
// S replicas trained independently on disjoint shards can be combined by
// summing what each shard's training added — the merged accumulators equal
// a joint model that saw every shard's updates, with no gradient averaging
// or parameter-server round-trips.
//
// Two exactness guarantees make the merge testable bit for bit:
//
//  * Order invariance. Floating-point addition does NOT associate, so a
//    naive "merge in arrival order" changes bits under permutation. A
//    ShardMergeSet therefore never adds numbers when it combines — ⊕ is a
//    multiset union keyed by shard id — and the numeric reduction happens
//    exactly once, in ascending shard order, when the set is applied. Every
//    permutation and every grouping ((a⊕b)⊕c vs a⊕(b⊕c)) reduces through
//    the same float sequence and yields identical bits.
//
//  * S = 1 identity. One shard holds the whole training set, so the merged
//    model must equal a plain fit() — and it does, bit-identically, because
//    the single-shard path adopts the replica verbatim instead of routing it
//    through base-subtraction (fl(base + fl(rep − base)) ≠ rep in general).
//
// After the merge an optional short *refine* pass — a few sequential epochs
// over the full training set, seed-derived like fit()'s epoch stream —
// recovers the cross-shard cluster interactions that independent training
// cannot see. The pre-refine merged state competes in the keep-best rule, so
// refining never ships a worse model than the merge produced.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "core/online.hpp"
#include "core/training.hpp"

namespace reghd::core {

struct ShardedTrainConfig {
  /// Number of data-parallel shards. Clamped to the training-set size; 1
  /// degenerates to a plain fit() (bit-identical).
  std::size_t shards = 1;

  /// Sequential full-data epochs after the merge (0 disables). The refine
  /// epoch stream is seeded from config.seed ^ "RFNE", so it is independent
  /// of fit()'s "EPOCH" stream and reproducible.
  std::size_t refine_epochs = 0;

  /// Workers for the shard fan-out (0 = REGHD_THREADS / hardware
  /// concurrency). Never affects results, only wall-clock: each shard's fit
  /// is internally deterministic and shards touch disjoint state.
  std::size_t threads = 0;
};

/// Telemetry of one shard replica's fit.
struct ShardReport {
  std::size_t shard = 0;
  std::size_t rows = 0;       ///< Training rows assigned to the shard.
  TrainingReport report;      ///< The replica's own fit() report.
};

/// Result of ShardedTrainer::fit.
struct ShardedTrainReport {
  std::size_t shards = 0;     ///< Effective shard count after clamping.
  std::vector<ShardReport> shard_reports;
  double merged_val_mse = 0.0;  ///< Validation MSE of the merged model, pre-refine.
  std::vector<EpochRecord> refine_history;
  double final_val_mse = 0.0;   ///< Validation MSE of the shipped model.
};

/// A multiset of trained shard replicas awaiting reduction.
///
/// ⊕ (combine) is pure bookkeeping — union of the entries, no arithmetic —
/// which is what makes it exactly commutative and associative. The numbers
/// are only reduced by apply_into(), which sorts entries by shard id and
/// folds each replica's training delta (replica − base, per component) into
/// the destination in ascending order, then finalizes with one requantize().
class ShardMergeSet {
 public:
  /// Registers one trained replica with the reproducible post-initialization
  /// base its training started from. Shard ids must be unique per set.
  void add(std::size_t shard, MultiModelRegressor replica, MultiModelRegressor base);

  /// Multiset union. Throws if the operands share a shard id.
  [[nodiscard]] ShardMergeSet combine(const ShardMergeSet& other) const;

  /// Reduces every entry into `out` in ascending shard order and finalizes
  /// with requantize() (fresh snapshots, exact ‖C‖², rebuilt packed bank).
  /// `out` must hold the merged model's base state — typically a fresh
  /// regressor seeded with init_clusters() on the full training set.
  void apply_into(MultiModelRegressor& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  struct Entry {
    std::size_t shard;
    MultiModelRegressor replica;
    MultiModelRegressor base;
  };
  std::vector<Entry> entries_;
};

/// Shard-train → merge → optional refine over one encoded training set.
class ShardedTrainer {
 public:
  explicit ShardedTrainer(const RegHDConfig& config);

  /// Deterministic round-robin partition: row i goes to shard i mod S.
  /// Every shard receives ⌈rows/S⌉ or ⌊rows/S⌋ rows; the assignment depends
  /// only on (rows, shards), never on threads or scheduling.
  [[nodiscard]] static std::vector<std::vector<std::size_t>> partition(
      std::size_t rows, std::size_t shards);

  /// Trains cfg.shards independent replicas in parallel (one per shard, each
  /// a full fit() with early stopping against `val`), merges them through a
  /// ShardMergeSet, and optionally refines. The trained model is available
  /// through regressor()/take_regressor() afterwards.
  ShardedTrainReport fit(const EncodedDataset& train, const EncodedDataset& val,
                         const ShardedTrainConfig& cfg);

  [[nodiscard]] const MultiModelRegressor& regressor() const;

  /// Transfers ownership of the trained model (for RegHDPipeline adoption).
  [[nodiscard]] std::unique_ptr<MultiModelRegressor> take_regressor();

 private:
  /// The post-merge sequential refine pass (see file comment).
  void refine(const EncodedDataset& train, const EncodedDataset& val,
              std::size_t epochs, ShardedTrainReport& report);

  RegHDConfig config_;
  std::unique_ptr<MultiModelRegressor> regressor_;
};

/// Streaming analogue: trains one OnlineRegHD replica per shard over the
/// round-robin partition of a labelled block (row-major rows × num_features,
/// each replica consuming its shard sequentially through update()), then
/// merges them with OnlineRegHD::merge_replicas. cfg.refine_epochs is
/// ignored — a stream has no epochs; keep feeding the merged learner instead.
[[nodiscard]] OnlineRegHD train_online_sharded(const OnlineConfig& config,
                                               std::span<const double> features_flat,
                                               std::span<const double> targets,
                                               std::size_t num_features,
                                               const ShardedTrainConfig& cfg);

}  // namespace reghd::core
