#include "core/model_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/framing.hpp"
#include "util/serialize.hpp"

namespace reghd::core {

namespace {

using util::FormatError;
using util::FormatErrorKind;

// v2 section tags.
constexpr std::uint32_t kSectionConfig = util::fourcc("CONF");
constexpr std::uint32_t kSectionScalers = util::fourcc("SCAL");
constexpr std::uint32_t kSectionModels = util::fourcc("MODL");

/// Reads a byte-backed enum and validates it against its maximum value —
/// a corrupted file must never produce an out-of-range enum (undefined
/// behaviour in downstream switches).
template <typename Enum>
Enum read_enum(std::istream& in, std::uint8_t max_value, const char* what) {
  const auto raw = util::read_scalar<std::uint8_t>(in);
  if (raw > max_value) {
    throw std::runtime_error(std::string("model_io: invalid ") + what + " value " +
                             std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

/// Scaler + pipeline-flag block shared by both format versions (v1 inlines
/// it; v2 wraps the same bytes in CONF/SCAL sections).
struct PipelineFlags {
  bool standardize_features = false;
  bool standardize_target = false;
  double validation_fraction = 0.15;
};

void write_pipeline_flags(std::ostream& out, const PipelineConfig& cfg) {
  util::write_scalar<std::uint8_t>(out, cfg.standardize_features ? 1 : 0);
  util::write_scalar<std::uint8_t>(out, cfg.standardize_target ? 1 : 0);
  util::write_scalar<double>(out, cfg.validation_fraction);
}

PipelineFlags read_pipeline_flags(std::istream& in) {
  PipelineFlags flags;
  flags.standardize_features = util::read_scalar<std::uint8_t>(in) != 0;
  flags.standardize_target = util::read_scalar<std::uint8_t>(in) != 0;
  flags.validation_fraction = util::read_scalar<double>(in);
  return flags;
}

void write_scalers(std::ostream& out, const RegHDPipeline& pipeline) {
  const PipelineConfig& cfg = pipeline.config();
  if (cfg.standardize_features) {
    util::write_vector<double>(out, pipeline.feature_scaler().means());
    util::write_vector<double>(out, pipeline.feature_scaler().stddevs());
  }
  if (cfg.standardize_target) {
    util::write_scalar<double>(out, pipeline.target_scaler().mean());
    util::write_scalar<double>(out, pipeline.target_scaler().stddev());
  }
}

void read_scalers(std::istream& in, const PipelineConfig& cfg, RegHDPipeline& pipeline) {
  if (cfg.standardize_features) {
    auto means = util::read_vector<double>(in);
    auto stddevs = util::read_vector<double>(in);
    pipeline.mutable_feature_scaler().set_params(std::move(means), std::move(stddevs));
  }
  if (cfg.standardize_target) {
    const double mean = util::read_scalar<double>(in);
    const double stddev = util::read_scalar<double>(in);
    pipeline.mutable_target_scaler().set_params(mean, stddev);
  }
}

/// Parses one section payload with the v1 stream readers; any low-level
/// failure inside a checksum-verified section is a structural defect of the
/// payload and surfaces as a typed FormatError.
template <typename Fn>
auto parse_payload(const util::Section& section, const char* what, Fn&& fn) {
  std::istringstream in(section.payload, std::ios::binary);
  try {
    auto result = fn(in);
    return result;
  } catch (const FormatError&) {
    throw;
  } catch (const std::exception& e) {
    throw FormatError(FormatErrorKind::kBadValue,
                      std::string("model_io: malformed ") + what + " section — " + e.what());
  }
}

RegHDPipeline load_pipeline_v1_body(std::istream& in);
RegHDPipeline load_pipeline_v2_body(std::istream& in);

}  // namespace

namespace io {

void write_encoder_config(std::ostream& out, const hdc::EncoderConfig& cfg) {
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.kind));
  util::write_scalar<std::uint64_t>(out, cfg.input_dim);
  util::write_scalar<std::uint64_t>(out, cfg.dim);
  util::write_scalar<std::uint64_t>(out, cfg.seed);
  util::write_scalar<double>(out, cfg.projection_stddev);
  util::write_scalar<std::uint64_t>(out, cfg.levels);
  util::write_scalar<double>(out, cfg.level_min);
  util::write_scalar<double>(out, cfg.level_max);
}

hdc::EncoderConfig read_encoder_config(std::istream& in) {
  hdc::EncoderConfig cfg;
  cfg.kind = read_enum<hdc::EncoderKind>(in, 3, "encoder kind");
  cfg.input_dim = util::read_scalar<std::uint64_t>(in);
  cfg.dim = util::read_scalar<std::uint64_t>(in);
  cfg.seed = util::read_scalar<std::uint64_t>(in);
  cfg.projection_stddev = util::read_scalar<double>(in);
  cfg.levels = util::read_scalar<std::uint64_t>(in);
  cfg.level_min = util::read_scalar<double>(in);
  cfg.level_max = util::read_scalar<double>(in);
  if (cfg.input_dim > (1ULL << 20) || cfg.dim > (1ULL << 24) ||
      cfg.levels > (1ULL << 20) ||
      static_cast<std::uint64_t>(cfg.input_dim) * cfg.dim > (1ULL << 28)) {
    throw std::runtime_error("model_io: implausible encoder dimensions — corrupt stream");
  }
  return cfg;
}

void write_reghd_config(std::ostream& out, const RegHDConfig& cfg) {
  util::write_scalar<std::uint64_t>(out, cfg.dim);
  util::write_scalar<std::uint64_t>(out, cfg.models);
  util::write_scalar<double>(out, cfg.learning_rate);
  util::write_scalar<std::uint64_t>(out, cfg.max_epochs);
  util::write_scalar<std::uint64_t>(out, cfg.patience);
  util::write_scalar<double>(out, cfg.tolerance);
  util::write_scalar<double>(out, cfg.softmax_temperature);
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.cluster_mode));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.query_precision));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.model_precision));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.update_rule));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.cluster_init));
  util::write_scalar<std::uint8_t>(out, cfg.normalize_similarities ? 1 : 0);
  util::write_scalar<std::uint64_t>(out, cfg.requantize_interval);
  util::write_scalar<double>(out, cfg.error_clip);
  util::write_scalar<std::uint64_t>(out, cfg.seed);
}

RegHDConfig read_reghd_config(std::istream& in) {
  RegHDConfig cfg;
  cfg.dim = util::read_scalar<std::uint64_t>(in);
  cfg.models = util::read_scalar<std::uint64_t>(in);
  cfg.learning_rate = util::read_scalar<double>(in);
  cfg.max_epochs = util::read_scalar<std::uint64_t>(in);
  cfg.patience = util::read_scalar<std::uint64_t>(in);
  cfg.tolerance = util::read_scalar<double>(in);
  cfg.softmax_temperature = util::read_scalar<double>(in);
  cfg.cluster_mode = read_enum<ClusterMode>(in, 2, "cluster mode");
  cfg.query_precision = read_enum<QueryPrecision>(in, 1, "query precision");
  cfg.model_precision = read_enum<ModelPrecision>(in, 2, "model precision");
  cfg.update_rule = read_enum<UpdateRule>(in, 1, "update rule");
  cfg.cluster_init = read_enum<ClusterInit>(in, 1, "cluster init");
  cfg.normalize_similarities = util::read_scalar<std::uint8_t>(in) != 0;
  cfg.requantize_interval = util::read_scalar<std::uint64_t>(in);
  cfg.error_clip = util::read_scalar<double>(in);
  cfg.seed = util::read_scalar<std::uint64_t>(in);
  // Sanity bounds before any allocation: a corrupted size field must fail
  // here, not inside a multi-gigabyte vector construction.
  if (cfg.dim > (1ULL << 24) || cfg.models > (1ULL << 16)) {
    throw std::runtime_error("model_io: implausible model dimensions — corrupt stream");
  }
  cfg.validate();
  return cfg;
}

void write_model_section(std::ostream& out, const MultiModelRegressor& regressor) {
  util::write_scalar<std::uint64_t>(out, regressor.num_models());
  for (std::size_t i = 0; i < regressor.num_models(); ++i) {
    util::write_vector<double>(out, regressor.cluster(i).accumulator.values());
    util::write_vector<double>(out, regressor.model(i).accumulator.values());
  }
}

void read_model_section(std::istream& in, MultiModelRegressor& regressor) {
  const RegHDConfig& cfg = regressor.config();
  const auto k = util::read_scalar<std::uint64_t>(in);
  if (k != cfg.models) {
    throw std::runtime_error("model_io: stored model count does not match configuration");
  }
  for (std::size_t i = 0; i < k; ++i) {
    auto cluster_values = util::read_vector<double>(in);
    auto model_values = util::read_vector<double>(in);
    if (cluster_values.size() != cfg.dim || model_values.size() != cfg.dim) {
      throw std::runtime_error("model_io: stored hypervector dimensionality mismatch");
    }
    regressor.mutable_clusters()[i].accumulator = hdc::RealHV(std::move(cluster_values));
    regressor.mutable_models()[i].accumulator = hdc::RealHV(std::move(model_values));
  }
}

}  // namespace io

void save_pipeline_v1(std::ostream& out, const RegHDPipeline& pipeline) {
  REGHD_CHECK(pipeline.fitted(), "cannot save an unfitted pipeline");
  util::write_header(out, kModelMagic, 1);

  const PipelineConfig& cfg = pipeline.config();
  io::write_encoder_config(out, cfg.encoder);
  io::write_reghd_config(out, cfg.reghd);
  write_pipeline_flags(out, cfg);
  write_scalers(out, pipeline);
  io::write_model_section(out, pipeline.regressor());
  if (!out.good()) {
    throw std::runtime_error("model_io: stream error while saving pipeline");
  }
}

void save_pipeline(std::ostream& out, const RegHDPipeline& pipeline) {
  REGHD_CHECK(pipeline.fitted(), "cannot save an unfitted pipeline");
  util::write_header(out, kModelMagic, kModelVersionLatest);

  const PipelineConfig& cfg = pipeline.config();
  util::SectionWriter writer(out, kFileKindPipeline);

  std::ostringstream conf(std::ios::binary);
  io::write_encoder_config(conf, cfg.encoder);
  io::write_reghd_config(conf, cfg.reghd);
  write_pipeline_flags(conf, cfg);
  writer.add(kSectionConfig, conf.str());

  if (cfg.standardize_features || cfg.standardize_target) {
    std::ostringstream scal(std::ios::binary);
    write_scalers(scal, pipeline);
    writer.add(kSectionScalers, scal.str());
  }

  std::ostringstream modl(std::ios::binary);
  io::write_model_section(modl, pipeline.regressor());
  writer.add(kSectionModels, modl.str());

  writer.finish();
  if (!out.good()) {
    throw std::runtime_error("model_io: stream error while saving pipeline");
  }
}

namespace {

RegHDPipeline load_pipeline_v1_body(std::istream& in) {
  PipelineConfig cfg;
  cfg.encoder = io::read_encoder_config(in);
  cfg.reghd = io::read_reghd_config(in);
  const PipelineFlags flags = read_pipeline_flags(in);
  cfg.standardize_features = flags.standardize_features;
  cfg.standardize_target = flags.standardize_target;
  cfg.validation_fraction = flags.validation_fraction;

  RegHDPipeline pipeline(cfg);
  read_scalers(in, cfg, pipeline);

  auto regressor = std::make_unique<MultiModelRegressor>(cfg.reghd);
  io::read_model_section(in, *regressor);
  // Re-derive binary snapshots, γ scales, and cached norms.
  regressor->requantize();

  pipeline.restore(cfg.encoder, std::move(regressor));
  return pipeline;
}

RegHDPipeline load_pipeline_v2_body(std::istream& in) {
  // Slurp the framed body and verify every checksum before interpreting a
  // single payload byte.
  std::string body;
  {
    std::ostringstream buf(std::ios::binary);
    buf << in.rdbuf();
    body = buf.str();
  }
  const util::ParsedFile file = util::parse_sections(body);
  if (file.kind != kFileKindPipeline) {
    throw FormatError(FormatErrorKind::kBadKind,
                      "model_io: not a pipeline model file (wrong file kind — is this an "
                      "online checkpoint?)");
  }

  PipelineConfig cfg = parse_payload(file.require(kSectionConfig), "config", [](auto& s) {
    PipelineConfig c;
    c.encoder = io::read_encoder_config(s);
    c.reghd = io::read_reghd_config(s);
    const PipelineFlags flags = read_pipeline_flags(s);
    c.standardize_features = flags.standardize_features;
    c.standardize_target = flags.standardize_target;
    c.validation_fraction = flags.validation_fraction;
    return c;
  });

  RegHDPipeline pipeline(cfg);
  if (cfg.standardize_features || cfg.standardize_target) {
    parse_payload(file.require(kSectionScalers), "scaler", [&](auto& s) {
      read_scalers(s, cfg, pipeline);
      return 0;
    });
  }

  auto regressor = std::make_unique<MultiModelRegressor>(cfg.reghd);
  parse_payload(file.require(kSectionModels), "model", [&](auto& s) {
    io::read_model_section(s, *regressor);
    return 0;
  });
  regressor->requantize();

  pipeline.restore(cfg.encoder, std::move(regressor));
  return pipeline;
}

}  // namespace

RegHDPipeline load_pipeline(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  try {
    magic = util::read_scalar<std::uint32_t>(in);
    version = util::read_scalar<std::uint32_t>(in);
  } catch (const std::exception&) {
    throw FormatError(FormatErrorKind::kTruncated,
                      "model_io: stream ends inside the file header");
  }
  if (magic != kModelMagic) {
    throw FormatError(FormatErrorKind::kBadMagic,
                      "model_io: bad magic tag — not a RegHD model file");
  }
  if (version == 1) {
    return load_pipeline_v1_body(in);
  }
  if (version == kModelVersionLatest) {
    return load_pipeline_v2_body(in);
  }
  throw FormatError(FormatErrorKind::kBadVersion,
                    "model_io: unsupported format version " + std::to_string(version));
}

void save_pipeline_file(const std::string& path, const RegHDPipeline& pipeline) {
  std::ostringstream out(std::ios::binary);
  save_pipeline(out, pipeline);
  util::atomic_write_file(path, out.str());
}

RegHDPipeline load_pipeline_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("model_io: cannot open '" + path + "' for reading");
  }
  return load_pipeline(in);
}

}  // namespace reghd::core
