#include "core/model_io.hpp"

#include <fstream>
#include <vector>

#include "util/check.hpp"
#include "util/serialize.hpp"

namespace reghd::core {

namespace {

constexpr std::uint32_t kMagic = 0x52474844;  // "RGHD"
constexpr std::uint32_t kVersion = 1;

/// Reads a byte-backed enum and validates it against its maximum value —
/// a corrupted file must never produce an out-of-range enum (undefined
/// behaviour in downstream switches).
template <typename Enum>
Enum read_enum(std::istream& in, std::uint8_t max_value, const char* what) {
  const auto raw = util::read_scalar<std::uint8_t>(in);
  if (raw > max_value) {
    throw std::runtime_error(std::string("model_io: invalid ") + what + " value " +
                             std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

void write_encoder_config(std::ostream& out, const hdc::EncoderConfig& cfg) {
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.kind));
  util::write_scalar<std::uint64_t>(out, cfg.input_dim);
  util::write_scalar<std::uint64_t>(out, cfg.dim);
  util::write_scalar<std::uint64_t>(out, cfg.seed);
  util::write_scalar<double>(out, cfg.projection_stddev);
  util::write_scalar<std::uint64_t>(out, cfg.levels);
  util::write_scalar<double>(out, cfg.level_min);
  util::write_scalar<double>(out, cfg.level_max);
}

hdc::EncoderConfig read_encoder_config(std::istream& in) {
  hdc::EncoderConfig cfg;
  cfg.kind = read_enum<hdc::EncoderKind>(in, 3, "encoder kind");
  cfg.input_dim = util::read_scalar<std::uint64_t>(in);
  cfg.dim = util::read_scalar<std::uint64_t>(in);
  cfg.seed = util::read_scalar<std::uint64_t>(in);
  cfg.projection_stddev = util::read_scalar<double>(in);
  cfg.levels = util::read_scalar<std::uint64_t>(in);
  cfg.level_min = util::read_scalar<double>(in);
  cfg.level_max = util::read_scalar<double>(in);
  if (cfg.input_dim > (1ULL << 20) || cfg.dim > (1ULL << 24) ||
      cfg.levels > (1ULL << 20) ||
      static_cast<std::uint64_t>(cfg.input_dim) * cfg.dim > (1ULL << 28)) {
    throw std::runtime_error("model_io: implausible encoder dimensions — corrupt stream");
  }
  return cfg;
}

void write_reghd_config(std::ostream& out, const RegHDConfig& cfg) {
  util::write_scalar<std::uint64_t>(out, cfg.dim);
  util::write_scalar<std::uint64_t>(out, cfg.models);
  util::write_scalar<double>(out, cfg.learning_rate);
  util::write_scalar<std::uint64_t>(out, cfg.max_epochs);
  util::write_scalar<std::uint64_t>(out, cfg.patience);
  util::write_scalar<double>(out, cfg.tolerance);
  util::write_scalar<double>(out, cfg.softmax_temperature);
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.cluster_mode));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.query_precision));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.model_precision));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.update_rule));
  util::write_scalar<std::uint8_t>(out, static_cast<std::uint8_t>(cfg.cluster_init));
  util::write_scalar<std::uint8_t>(out, cfg.normalize_similarities ? 1 : 0);
  util::write_scalar<std::uint64_t>(out, cfg.requantize_interval);
  util::write_scalar<double>(out, cfg.error_clip);
  util::write_scalar<std::uint64_t>(out, cfg.seed);
}

RegHDConfig read_reghd_config(std::istream& in) {
  RegHDConfig cfg;
  cfg.dim = util::read_scalar<std::uint64_t>(in);
  cfg.models = util::read_scalar<std::uint64_t>(in);
  cfg.learning_rate = util::read_scalar<double>(in);
  cfg.max_epochs = util::read_scalar<std::uint64_t>(in);
  cfg.patience = util::read_scalar<std::uint64_t>(in);
  cfg.tolerance = util::read_scalar<double>(in);
  cfg.softmax_temperature = util::read_scalar<double>(in);
  cfg.cluster_mode = read_enum<ClusterMode>(in, 2, "cluster mode");
  cfg.query_precision = read_enum<QueryPrecision>(in, 1, "query precision");
  cfg.model_precision = read_enum<ModelPrecision>(in, 2, "model precision");
  cfg.update_rule = read_enum<UpdateRule>(in, 1, "update rule");
  cfg.cluster_init = read_enum<ClusterInit>(in, 1, "cluster init");
  cfg.normalize_similarities = util::read_scalar<std::uint8_t>(in) != 0;
  cfg.requantize_interval = util::read_scalar<std::uint64_t>(in);
  cfg.error_clip = util::read_scalar<double>(in);
  cfg.seed = util::read_scalar<std::uint64_t>(in);
  // Sanity bounds before any allocation: a corrupted size field must fail
  // here, not inside a multi-gigabyte vector construction.
  if (cfg.dim > (1ULL << 24) || cfg.models > (1ULL << 16)) {
    throw std::runtime_error("model_io: implausible model dimensions — corrupt stream");
  }
  cfg.validate();
  return cfg;
}

}  // namespace

void save_pipeline(std::ostream& out, const RegHDPipeline& pipeline) {
  REGHD_CHECK(pipeline.fitted(), "cannot save an unfitted pipeline");
  util::write_header(out, kMagic, kVersion);

  const PipelineConfig& cfg = pipeline.config();
  write_encoder_config(out, cfg.encoder);
  write_reghd_config(out, cfg.reghd);
  util::write_scalar<std::uint8_t>(out, cfg.standardize_features ? 1 : 0);
  util::write_scalar<std::uint8_t>(out, cfg.standardize_target ? 1 : 0);
  util::write_scalar<double>(out, cfg.validation_fraction);

  // Scalers.
  if (cfg.standardize_features) {
    util::write_vector<double>(out, pipeline.feature_scaler().means());
    util::write_vector<double>(out, pipeline.feature_scaler().stddevs());
  }
  if (cfg.standardize_target) {
    util::write_scalar<double>(out, pipeline.target_scaler().mean());
    util::write_scalar<double>(out, pipeline.target_scaler().stddev());
  }

  // Learned state: cluster and model accumulators.
  const MultiModelRegressor& reg = pipeline.regressor();
  util::write_scalar<std::uint64_t>(out, reg.num_models());
  for (std::size_t i = 0; i < reg.num_models(); ++i) {
    util::write_vector<double>(out, reg.cluster(i).accumulator.values());
    util::write_vector<double>(out, reg.model(i).accumulator.values());
  }
  if (!out.good()) {
    throw std::runtime_error("model_io: stream error while saving pipeline");
  }
}

RegHDPipeline load_pipeline(std::istream& in) {
  util::read_header(in, kMagic, kVersion);

  PipelineConfig cfg;
  cfg.encoder = read_encoder_config(in);
  cfg.reghd = read_reghd_config(in);
  cfg.standardize_features = util::read_scalar<std::uint8_t>(in) != 0;
  cfg.standardize_target = util::read_scalar<std::uint8_t>(in) != 0;
  cfg.validation_fraction = util::read_scalar<double>(in);

  RegHDPipeline pipeline(cfg);

  if (cfg.standardize_features) {
    auto means = util::read_vector<double>(in);
    auto stddevs = util::read_vector<double>(in);
    pipeline.mutable_feature_scaler().set_params(std::move(means), std::move(stddevs));
  }
  if (cfg.standardize_target) {
    const double mean = util::read_scalar<double>(in);
    const double stddev = util::read_scalar<double>(in);
    pipeline.mutable_target_scaler().set_params(mean, stddev);
  }

  auto regressor = std::make_unique<MultiModelRegressor>(cfg.reghd);
  const auto k = util::read_scalar<std::uint64_t>(in);
  if (k != cfg.reghd.models) {
    throw std::runtime_error("model_io: stored model count does not match configuration");
  }
  for (std::size_t i = 0; i < k; ++i) {
    auto cluster_values = util::read_vector<double>(in);
    auto model_values = util::read_vector<double>(in);
    if (cluster_values.size() != cfg.reghd.dim || model_values.size() != cfg.reghd.dim) {
      throw std::runtime_error("model_io: stored hypervector dimensionality mismatch");
    }
    regressor->mutable_clusters()[i].accumulator = hdc::RealHV(std::move(cluster_values));
    regressor->mutable_models()[i].accumulator = hdc::RealHV(std::move(model_values));
  }
  // Re-derive binary snapshots, γ scales, and cached norms.
  regressor->requantize();

  pipeline.restore(cfg.encoder, std::move(regressor));
  return pipeline;
}

void save_pipeline_file(const std::string& path, const RegHDPipeline& pipeline) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("model_io: cannot open '" + path + "' for writing");
  }
  save_pipeline(out, pipeline);
}

RegHDPipeline load_pipeline_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("model_io: cannot open '" + path + "' for reading");
  }
  return load_pipeline(in);
}

}  // namespace reghd::core
