// OnlineRegHD — streaming regression for non-stationary IoT data.
//
// The paper motivates RegHD with real-time learning on embedded devices
// (§1, §3); this wrapper packages the pieces a deployment needs around
// MultiModelRegressor::train_step:
//
//  * anytime feature/target standardization from running statistics (no
//    offline scaler fit);
//  * predict-then-train ("prequential") updates, returning each prediction
//    in original target units before the label is consumed;
//  * periodic binary-snapshot refresh (the paper's batch-level
//    re-binarization) without epoch boundaries;
//  * optional exponential forgetting (accumulator decay) so the model tracks
//    concept drift instead of averaging over it.
//
// The underlying model is accessible for persistence or inspection.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "core/config.hpp"
#include "core/encoded.hpp"
#include "core/multi_model.hpp"
#include "hdc/encoding.hpp"
#include "util/statistics.hpp"

namespace reghd::core {

struct OnlineConfig {
  RegHDConfig reghd;
  hdc::EncoderConfig encoder;  ///< input_dim set at construction; dim forced to reghd.dim.

  /// Refresh binary snapshots every this many updates (0 disables; only
  /// meaningful for quantized cluster/model modes).
  std::size_t requantize_every = 256;

  /// Accumulator decay applied once per update; 1.0 disables. 0.999 ≈ a
  /// forgetting horizon of ~1000 samples.
  double decay = 1.0;

  /// Standardize features/target with running statistics. When false, raw
  /// units flow straight into the encoder.
  bool adaptive_scaling = true;

  /// Updates before scaling statistics are trusted. Warmup convention: a
  /// reading trains the model only once *more than* `warmup` readings have
  /// been consumed (the first trained reading is number warmup+1), and
  /// predict() returns the running target mean (cold-start guard) while
  /// seen ≤ warmup — i.e. until at least one reading has trained the model.
  /// Both gates use the same boundary, so the first model-backed prediction
  /// and the first model update happen on the same reading.
  std::size_t warmup = 10;
};

class OnlineRegHD;

/// One trained shard replica of a stream, keyed by its shard id. The id is
/// the canonical merge key: merge_replicas reduces in ascending shard order
/// no matter how the span is arranged, which is what makes the merge
/// order-invariant bit for bit.
struct OnlineShardReplica {
  std::size_t shard = 0;
  const OnlineRegHD* learner = nullptr;
};

class OnlineRegHD {
 public:
  /// `num_features` fixes the stream's input width.
  OnlineRegHD(OnlineConfig config, std::size_t num_features);

  /// Merges independently trained replicas of one stream (identical configs
  /// and feature counts, distinct shard ids) into a single learner:
  ///
  ///  * model/cluster accumulators — summed training deltas against the
  ///    shared post-construction base (HD bundling; exact because every
  ///    replica starts from the same seeded state), reduced in ascending
  ///    shard order, finalized with one requantize() (fresh snapshots, exact
  ///    ‖C‖², rebuilt packed bank);
  ///  * feature/target statistics — parallel Welford merge, ascending shard
  ///    order;
  ///  * accounting — samples_seen sums; since_requantize becomes the summed
  ///    counters modulo requantize_every (the merge itself requantized).
  ///
  /// A single replica is adopted verbatim (stale snapshots and all), so S = 1
  /// is bit-identical to the replica — and therefore to an unsharded stream.
  [[nodiscard]] static OnlineRegHD merge_replicas(
      std::span<const OnlineShardReplica> replicas);

  /// Predict-then-train on one labelled reading. Returns the prediction
  /// made *before* the label was used (original units) — the prequential
  /// protocol.
  double update(std::span<const double> features, double target);

  /// Predict-then-train on a block of labelled readings (row-major
  /// num_readings × num_features). Block-frozen prequential semantics: every
  /// returned prediction is made against the model and statistics at block
  /// entry; the labels are then consumed in reading order (statistics,
  /// warmup accounting) and the post-warmup readings are trained as one
  /// deterministic mini-batch (MultiModelRegressor::train_batch) with decay
  /// applied once per trained reading. Results never depend on thread count,
  /// and a one-reading block is bit-identical to update().
  std::vector<double> update_batch(std::span<const double> features_flat,
                                   std::span<const double> targets);

  /// Prediction only (original units).
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// predict() with a caller-owned standardization buffer: identical math,
  /// counters and results, but the scaled-reading scratch lives with the
  /// caller, so steady-state calls touch no allocator once the buffer has
  /// grown to the feature count. The serving runtime's low-load fused path
  /// keeps one such buffer per shard worker. predict() itself delegates here.
  [[nodiscard]] double predict_reusing(std::span<const double> features,
                                       std::vector<double>& scaled_scratch) const;

  /// True while predict() is in the cold-start regime (adaptive scaling on
  /// and no reading has trained the model yet — see the warmup convention).
  [[nodiscard]] bool cold() const noexcept {
    return config_.adaptive_scaling && seen_ <= config_.warmup;
  }

  /// The fallback value predict() returns while cold(): the running target
  /// mean, or 0 before any label has been consumed.
  [[nodiscard]] double cold_prediction() const {
    return target_stats_.count() > 0 ? target_stats_.mean() : 0.0;
  }

  /// Standardizes a row-major block of readings (num_rows × num_features)
  /// into `out` with exactly predict()'s per-feature transform — identity
  /// copy when adaptive scaling is off. Allocation-free; the serving batch
  /// path standardizes the admission batch through this before encoding it
  /// into the shard's arena.
  void standardize_rows_into(std::span<const double> rows_flat, std::size_t num_rows,
                             std::span<double> out) const;

  /// Maps a model-space prediction back to original target units (the public
  /// form of the internal unscale transform — the serving batch path
  /// composes MultiModelRegressor::predict_batch_into with this).
  [[nodiscard]] double unscale(double y_scaled) const { return unscale_target(y_scaled); }

  /// Encoder access for callers that drive the regressor's batch/fused
  /// kernels directly on standardized readings (serving runtime, benches).
  [[nodiscard]] const hdc::Encoder& encoder() const noexcept { return *encoder_; }

  /// Re-applies a projection-storage deployment choice by rebuilding the
  /// encoder from its own config. Storage is a runtime/footprint knob, not
  /// model identity — it is deliberately not serialized, so every checkpoint
  /// loads kResident; callers running rematerialized (the serving runtime
  /// re-applies its configured mode to each snapshot roundtrip) switch back
  /// here. Encodings are bit-identical in both modes.
  void set_projection_storage(hdc::ProjectionStorage storage);

  [[nodiscard]] std::size_t samples_seen() const noexcept { return seen_; }

  [[nodiscard]] const MultiModelRegressor& model() const noexcept { return *model_; }
  [[nodiscard]] MultiModelRegressor& mutable_model() noexcept { return *model_; }
  [[nodiscard]] const OnlineConfig& config() const noexcept { return config_; }

  /// Streaming-state introspection (checkpointing, tests).
  [[nodiscard]] std::size_t num_features() const noexcept { return feature_stats_.size(); }
  [[nodiscard]] const std::vector<util::RunningStats>& feature_stats() const noexcept {
    return feature_stats_;
  }
  [[nodiscard]] const util::RunningStats& target_stats() const noexcept {
    return target_stats_;
  }
  [[nodiscard]] std::size_t since_requantize() const noexcept { return since_requantize_; }

  /// Restores the streaming state captured by a checkpoint
  /// (core/checkpoint). Together with restoring the regressor's full state
  /// through mutable_model(), this makes a resumed stream bit-identical to
  /// one that never stopped. Throws if the feature count differs.
  void restore_state(std::vector<util::RunningStats> feature_stats,
                     util::RunningStats target_stats, std::size_t seen,
                     std::size_t since_requantize);

 private:
  /// Standardizes one reading with the running statistics.
  [[nodiscard]] hdc::EncodedSample encode(std::span<const double> features) const;
  [[nodiscard]] double scale_target(double y) const;
  [[nodiscard]] double unscale_target(double y_scaled) const;

  OnlineConfig config_;
  std::unique_ptr<hdc::Encoder> encoder_;
  std::unique_ptr<MultiModelRegressor> model_;
  std::vector<util::RunningStats> feature_stats_;
  util::RunningStats target_stats_;
  std::size_t seen_ = 0;
  std::size_t since_requantize_ = 0;

  // update() scratch: the standardization buffer and a one-reading encode
  // arena. Both reach steady-state capacity on the first update, after which
  // the per-sample train path touches no allocator — update() runs once per
  // sample on the serving trainer thread, where a fresh std::vector per call
  // is real jitter. Pure scratch: never serialized, never compared.
  std::vector<double> update_scratch_;
  EncodedDataset update_arena_;
};

}  // namespace reghd::core
