#include "core/sharded_training.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/telemetry.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace reghd::core {

void ShardMergeSet::add(std::size_t shard, MultiModelRegressor replica,
                        MultiModelRegressor base) {
  for (const Entry& e : entries_) {
    REGHD_CHECK(e.shard != shard, "merge set already holds shard " << shard);
  }
  entries_.push_back(Entry{shard, std::move(replica), std::move(base)});
}

ShardMergeSet ShardMergeSet::combine(const ShardMergeSet& other) const {
  ShardMergeSet out = *this;
  for (const Entry& e : other.entries_) {
    out.add(e.shard, e.replica, e.base);
  }
  return out;
}

void ShardMergeSet::apply_into(MultiModelRegressor& out) const {
  REGHD_CHECK(!entries_.empty(), "cannot apply an empty merge set");
  const obs::StageTimer timer(obs::Histo::kShardMergeNs);
  obs::count(obs::Counter::kShardMerges);

  // The one and only numeric reduction: ascending shard id, whatever order
  // the entries were added or combined in. See the file comment in the
  // header — this is what makes ⊕ exactly order-invariant.
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const Entry& e : entries_) {
    ordered.push_back(&e);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->shard < b->shard; });
  for (const Entry* e : ordered) {
    out.merge_accumulate_delta(e->replica, e->base);
  }
  out.requantize();
}

ShardedTrainer::ShardedTrainer(const RegHDConfig& config) : config_(config) {
  config_.validate();
}

std::vector<std::vector<std::size_t>> ShardedTrainer::partition(std::size_t rows,
                                                                std::size_t shards) {
  REGHD_CHECK(shards > 0, "partition requires at least one shard");
  REGHD_CHECK(shards <= rows,
              "cannot spread " << rows << " rows over " << shards << " shards");
  std::vector<std::vector<std::size_t>> parts(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    parts[s].reserve(rows / shards + 1);
  }
  for (std::size_t i = 0; i < rows; ++i) {
    parts[i % shards].push_back(i);
  }
  return parts;
}

ShardedTrainReport ShardedTrainer::fit(const EncodedDataset& train,
                                       const EncodedDataset& val,
                                       const ShardedTrainConfig& cfg) {
  REGHD_CHECK(!train.empty(), "sharded fit requires training samples");
  const std::size_t requested = cfg.shards > 0 ? cfg.shards : 1;
  const std::size_t shards = std::min(requested, train.size());

  ShardedTrainReport report;
  report.shards = shards;

  if (shards == 1) {
    // One shard holds everything: a plain fit() IS the merged model, and
    // going through the merge set would perturb it (base-subtraction
    // round-off). This short-circuit is what the S = 1 bit-identity property
    // tests pin down.
    const obs::StageTimer timer(obs::Histo::kShardFitNs);
    obs::count(obs::Counter::kShardFits);
    regressor_ = std::make_unique<MultiModelRegressor>(config_);
    TrainingReport tr = regressor_->fit(train, val);
    report.shard_reports.push_back(ShardReport{0, train.size(), std::move(tr)});
  } else {
    const std::vector<std::vector<std::size_t>> parts = partition(train.size(), shards);
    std::vector<std::unique_ptr<MultiModelRegressor>> replicas(shards);
    std::vector<std::unique_ptr<MultiModelRegressor>> bases(shards);
    report.shard_reports.resize(shards);
    // Shards touch disjoint state (own replica, own base, own slice of the
    // report vector; `train` and `val` are only read), so the fan-out is
    // safe at any worker count and each shard's fit is internally
    // deterministic — results never depend on cfg.threads.
    util::parallel_for(
        shards,
        [&](std::size_t s) {
          const obs::StageTimer timer(obs::Histo::kShardFitNs);
          obs::count(obs::Counter::kShardFits);
          const EncodedDataset shard_data = train.subset(parts[s]);
          auto replica = std::make_unique<MultiModelRegressor>(config_);
          TrainingReport tr = replica->fit(shard_data, val);
          // Re-derive the replica's reproducible post-initialization state:
          // fresh construction replays reset(), init_clusters replays fit()'s
          // seeding rule on the same shard. The delta (replica − base) is
          // then exactly what this shard's training added.
          auto base = std::make_unique<MultiModelRegressor>(config_);
          base->init_clusters(shard_data);
          report.shard_reports[s] = ShardReport{s, parts[s].size(), std::move(tr)};
          replicas[s] = std::move(replica);
          bases[s] = std::move(base);
        },
        cfg.threads);

    ShardMergeSet set;
    for (std::size_t s = 0; s < shards; ++s) {
      set.add(s, std::move(*replicas[s]), std::move(*bases[s]));
    }
    regressor_ = std::make_unique<MultiModelRegressor>(config_);
    regressor_->init_clusters(train);
    set.apply_into(*regressor_);
  }

  report.merged_val_mse = regressor_->evaluate_mse(val);
  report.final_val_mse = report.merged_val_mse;
  refine(train, val, cfg.refine_epochs, report);
  return report;
}

void ShardedTrainer::refine(const EncodedDataset& train, const EncodedDataset& val,
                            std::size_t epochs, ShardedTrainReport& report) {
  if (epochs == 0) {
    return;
  }
  const obs::StageTimer timer(obs::Histo::kShardRefineNs);
  util::Rng rng(config_.seed ^ 0x52464E45ULL);  // "RFNE"
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  // The merged state competes in the keep-best rule: refining can only ship
  // a model at least as good (on validation) as the merge produced.
  std::vector<RegressionModel> best_models = regressor_->mutable_models();
  std::vector<ClusterCenter> best_clusters = regressor_->mutable_clusters();
  double best_val = report.merged_val_mse;

  std::vector<double> batch_predictions;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    obs::count(obs::Counter::kShardRefineEpochs);
    rng.shuffle(order);
    double online_sq_err = 0.0;
    std::size_t since_requantize = 0;
    if (config_.batch_size == 0) {
      for (const std::size_t i : order) {
        const hdc::EncodedSampleView s = train.sample(i);
        const double y = train.target(i);
        const double before = regressor_->train_step(s, y);
        online_sq_err += (y - before) * (y - before);
        if (config_.requantize_interval > 0 &&
            ++since_requantize >= config_.requantize_interval) {
          regressor_->requantize();
          since_requantize = 0;
        }
      }
    } else {
      const std::size_t bsize = config_.batch_size;
      batch_predictions.resize(std::min(bsize, order.size()));
      for (std::size_t b0 = 0; b0 < order.size(); b0 += bsize) {
        const std::size_t bn = std::min(order.size(), b0 + bsize);
        const std::span<const std::size_t> idx(order.data() + b0, bn - b0);
        regressor_->train_batch(train, idx,
                                std::span<double>(batch_predictions.data(), idx.size()));
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const double y = train.target(idx[j]);
          const double before = batch_predictions[j];
          online_sq_err += (y - before) * (y - before);
        }
        since_requantize += idx.size();
        if (config_.requantize_interval > 0 &&
            since_requantize >= config_.requantize_interval) {
          regressor_->requantize();
          since_requantize = 0;
        }
      }
    }
    regressor_->requantize();

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse = online_sq_err / static_cast<double>(train.size());
    record.val_mse = regressor_->evaluate_mse(val);
    report.refine_history.push_back(record);
    if (record.val_mse < best_val) {
      best_val = record.val_mse;
      best_models = regressor_->mutable_models();
      best_clusters = regressor_->mutable_clusters();
    }
  }
  regressor_->mutable_models() = std::move(best_models);
  regressor_->mutable_clusters() = std::move(best_clusters);
  regressor_->rebuild_packed_bank();
  report.final_val_mse = best_val;
}

const MultiModelRegressor& ShardedTrainer::regressor() const {
  REGHD_CHECK(regressor_ != nullptr, "sharded trainer has no model before fit()");
  return *regressor_;
}

std::unique_ptr<MultiModelRegressor> ShardedTrainer::take_regressor() {
  REGHD_CHECK(regressor_ != nullptr, "sharded trainer has no model before fit()");
  return std::move(regressor_);
}

OnlineRegHD train_online_sharded(const OnlineConfig& config,
                                 std::span<const double> features_flat,
                                 std::span<const double> targets,
                                 std::size_t num_features,
                                 const ShardedTrainConfig& cfg) {
  REGHD_CHECK(num_features > 0, "sharded online training requires features");
  REGHD_CHECK(features_flat.size() == targets.size() * num_features,
              "feature block has " << features_flat.size() << " values, expected "
                                   << targets.size() << " readings x " << num_features
                                   << " features");
  const std::size_t rows = targets.size();
  REGHD_CHECK(rows > 0, "sharded online training requires at least one reading");
  const std::size_t requested = cfg.shards > 0 ? cfg.shards : 1;
  const std::size_t shards = std::min(requested, rows);
  const std::vector<std::vector<std::size_t>> parts =
      ShardedTrainer::partition(rows, shards);

  std::vector<std::unique_ptr<OnlineRegHD>> replicas(shards);
  util::parallel_for(
      shards,
      [&](std::size_t s) {
        const obs::StageTimer timer(obs::Histo::kShardFitNs);
        obs::count(obs::Counter::kShardFits);
        auto learner = std::make_unique<OnlineRegHD>(config, num_features);
        for (const std::size_t r : parts[s]) {
          learner->update(features_flat.subspan(r * num_features, num_features),
                          targets[r]);
        }
        replicas[s] = std::move(learner);
      },
      cfg.threads);

  std::vector<OnlineShardReplica> refs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    refs[s] = OnlineShardReplica{s, replicas[s].get()};
  }
  return OnlineRegHD::merge_replicas(refs);
}

}  // namespace reghd::core
