#include "core/hd_clustering.hpp"

#include <algorithm>
#include <cmath>

#include "hdc/ops.hpp"
#include "hdc/random_hv.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace reghd::core {

void HdClusteringConfig::validate() const {
  REGHD_CHECK(dim >= 64, "clustering dim must be at least 64, got " << dim);
  REGHD_CHECK(clusters >= 1, "clustering requires at least one cluster");
  REGHD_CHECK(max_epochs >= 1, "max_epochs must be at least 1");
  REGHD_CHECK(reassignment_tolerance >= 0.0 && reassignment_tolerance < 1.0,
              "reassignment_tolerance must lie in [0,1)");
}

HdClustering::HdClustering(HdClusteringConfig config) : config_(config) {
  config_.validate();
}

void HdClustering::requantize() {
  for (auto& c : centers_) {
    c.requantize();
    double norm2 = 0.0;
    for (const double v : c.accumulator.values()) {
      norm2 += v * v;
    }
    c.norm2 = norm2;
  }
}

void HdClustering::init_centers(const EncodedDataset& data, std::uint64_t seed) {
  centers_.assign(config_.clusters, ClusterCenter{});
  util::Rng rng(seed);

  if (config_.init == ClusterInit::kRandom || config_.clusters == 1 ||
      data.size() < config_.clusters) {
    for (auto& c : centers_) {
      c.accumulator = hdc::random_bipolar(config_.dim, rng).to_real();
      c.norm2 = static_cast<double>(config_.dim);
      c.requantize();
    }
    return;
  }

  // k-means++-style seeding: subsequent centers are sampled with probability
  // proportional to squared dissimilarity from the chosen set. Unlike
  // deterministic farthest-point, restarts explore different seedings, so
  // the best-of-restarts selection can escape an unlucky first draw.
  std::vector<std::size_t> chosen;
  chosen.push_back(static_cast<std::size_t>(rng.uniform_index(data.size())));
  std::vector<double> max_sim(data.size(), -2.0);
  std::vector<double> weight(data.size());
  while (chosen.size() < config_.clusters) {
    const hdc::BinaryHVView last = data.sample(chosen.back()).binary;
    double total = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      max_sim[i] = std::max(max_sim[i], hdc::hamming_similarity(data.sample(i).binary, last));
      const double dissim = std::max(0.0, 1.0 - max_sim[i]);
      weight[i] = dissim * dissim;
      total += weight[i];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      double r = rng.uniform() * total;
      for (std::size_t i = 0; i < data.size(); ++i) {
        r -= weight[i];
        if (r <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<std::size_t>(rng.uniform_index(data.size()));
    }
    chosen.push_back(pick);
  }
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    centers_[c].accumulator = data.sample(chosen[c]).bipolar.to_real();
    centers_[c].norm2 = static_cast<double>(config_.dim);
    centers_[c].requantize();
  }
}

std::vector<double> HdClustering::similarities(const hdc::EncodedSampleView& sample) const {
  REGHD_CHECK(!centers_.empty(), "clustering must be fitted (or initialized) first");
  REGHD_CHECK(sample.real.dim() == config_.dim,
              "sample dim " << sample.real.dim() << " != clustering dim " << config_.dim);
  std::vector<double> sims(centers_.size());
  if (config_.mode == ClusterMode::kFullPrecision) {
    const double qn = sample.real_norm;
    for (std::size_t i = 0; i < centers_.size(); ++i) {
      const double cn = std::sqrt(centers_[i].norm2);
      sims[i] = (cn == 0.0 || qn == 0.0)
                    ? 0.0
                    : hdc::dot(centers_[i].accumulator, sample.real) / (cn * qn);
    }
  } else {
    for (std::size_t i = 0; i < centers_.size(); ++i) {
      sims[i] = hdc::hamming_similarity(centers_[i].binary, sample.binary);
    }
  }
  return sims;
}

std::size_t HdClustering::assign(const hdc::EncodedSampleView& sample) const {
  const auto sims = similarities(sample);
  return static_cast<std::size_t>(
      std::distance(sims.begin(), std::max_element(sims.begin(), sims.end())));
}

HdClusteringReport HdClustering::fit(const EncodedDataset& data) {
  REGHD_CHECK(!data.empty(), "cannot cluster an empty dataset");
  REGHD_CHECK(data.dim() == config_.dim,
              "data dim " << data.dim() << " != clustering dim " << config_.dim);
  REGHD_CHECK(config_.restarts >= 1, "clustering requires at least one restart");

  HdClusteringReport best_report;
  std::vector<ClusterCenter> best_centers;
  double best_cohesion = -2.0;
  for (std::size_t r = 0; r < config_.restarts; ++r) {
    HdClusteringReport report = fit_once(data, config_.seed + 0x9E3779B9ULL * r);
    if (report.cohesion > best_cohesion) {
      best_cohesion = report.cohesion;
      best_report = std::move(report);
      best_centers = centers_;
    }
  }
  centers_ = std::move(best_centers);
  return best_report;
}

HdClusteringReport HdClustering::fit_once(const EncodedDataset& data, std::uint64_t seed) {
  init_centers(data, seed);
  fitted_ = true;

  HdClusteringReport report;
  report.assignments.assign(data.size(), config_.clusters);  // sentinel: unassigned

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    std::size_t reassigned = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const hdc::EncodedSampleView s = data.sample(i);
      const auto sims = similarities(s);
      const auto winner = static_cast<std::size_t>(
          std::distance(sims.begin(), std::max_element(sims.begin(), sims.end())));
      if (winner != report.assignments[i]) {
        ++reassigned;
        report.assignments[i] = winner;
      }
      // Eq. 8/9: saturation-aware center update on the integer accumulator.
      ClusterCenter& c = centers_[winner];
      const double weight = 1.0 - sims[winner];
      if (weight != 0.0) {
        const double dot_cs = hdc::dot(c.accumulator, s.real);
        hdc::add_scaled(c.accumulator, s.real, weight);
        c.norm2 += 2.0 * weight * dot_cs + weight * weight * s.real_norm2;
        c.norm2 = std::max(c.norm2, 0.0);
      }
    }
    requantize();
    report.epochs_run = epoch + 1;

    const double frac = static_cast<double>(reassigned) / static_cast<double>(data.size());
    // The first epoch reassigns everything (sentinel); never stop on it.
    if (epoch > 0 && frac <= config_.reassignment_tolerance) {
      report.converged = true;
      break;
    }
  }

  // Final pass with the converged centers: recompute assignments (the
  // in-epoch ones lag behind the last center updates) and measure cohesion.
  double cohesion = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto sims = similarities(data.sample(i));
    const auto winner = static_cast<std::size_t>(
        std::distance(sims.begin(), std::max_element(sims.begin(), sims.end())));
    report.assignments[i] = winner;
    cohesion += sims[winner];
  }
  report.cohesion = cohesion / static_cast<double>(data.size());
  return report;
}

}  // namespace reghd::core
