#include "core/online.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace reghd::core {

OnlineRegHD::OnlineRegHD(OnlineConfig config, std::size_t num_features)
    : config_(std::move(config)), feature_stats_(num_features) {
  REGHD_CHECK(num_features > 0, "online learner requires at least one feature");
  REGHD_CHECK(config_.decay > 0.0 && config_.decay <= 1.0,
              "decay must lie in (0,1], got " << config_.decay);
  config_.reghd.validate();
  config_.encoder.input_dim = num_features;
  config_.encoder.dim = config_.reghd.dim;
  encoder_ = hdc::make_encoder(config_.encoder);
  model_ = std::make_unique<MultiModelRegressor>(config_.reghd);
}

void OnlineRegHD::set_projection_storage(hdc::ProjectionStorage storage) {
  if (config_.encoder.projection_storage == storage) {
    return;
  }
  config_.encoder.projection_storage = storage;
  // Rebuilding from the (updated) config reproduces the identical encoder —
  // every weight derives from the counter-based kernel either way.
  encoder_ = hdc::make_encoder(config_.encoder);
}

OnlineRegHD OnlineRegHD::merge_replicas(std::span<const OnlineShardReplica> replicas) {
  REGHD_CHECK(!replicas.empty(), "online merge requires at least one replica");
  const obs::StageTimer timer(obs::Histo::kShardMergeNs);
  obs::count(obs::Counter::kShardMerges);

  // Canonical reduction order: ascending shard id, regardless of span order.
  // Float accumulation then happens in exactly one sequence for every
  // permutation of the input, making the merge order-invariant bit for bit.
  std::vector<const OnlineShardReplica*> ordered;
  ordered.reserve(replicas.size());
  for (const OnlineShardReplica& r : replicas) {
    REGHD_CHECK(r.learner != nullptr, "online merge given a null replica");
    ordered.push_back(&r);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const OnlineShardReplica* a, const OnlineShardReplica* b) {
              return a->shard < b->shard;
            });
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    REGHD_CHECK(ordered[i - 1]->shard != ordered[i]->shard,
                "online merge given duplicate shard id " << ordered[i]->shard);
  }
  const OnlineRegHD& first = *ordered.front()->learner;
  const std::size_t nf = first.num_features();
  const std::size_t k = first.model().num_models();
  for (const OnlineShardReplica* r : ordered) {
    REGHD_CHECK(r->learner->num_features() == nf &&
                    r->learner->model().num_models() == k &&
                    r->learner->config().reghd.dim == first.config().reghd.dim &&
                    r->learner->config().reghd.seed == first.config().reghd.seed,
                "online merge requires replicas of one stream configuration");
  }

  OnlineRegHD out(first.config(), nf);
  if (ordered.size() == 1) {
    // Verbatim adoption: copying the replica's exact state (including
    // snapshots that may be stale mid-requantize-interval) keeps S = 1
    // bit-identical to an unsharded stream. Re-deriving anything here would
    // not.
    const OnlineRegHD& rep = first;
    std::vector<RegressionModel>& models = out.model_->mutable_models();
    std::vector<ClusterCenter>& clusters = out.model_->mutable_clusters();
    for (std::size_t i = 0; i < k; ++i) {
      models[i] = rep.model().model(i);
      clusters[i] = rep.model().cluster(i);
    }
    out.model_->mutable_packed_bank() = rep.model().packed_bank();
    out.restore_state(rep.feature_stats(), rep.target_stats(), rep.samples_seen(),
                      rep.since_requantize());
    return out;
  }

  // Every replica was constructed from the same config, so they share one
  // post-construction base state (zero models, seeded random clusters) —
  // which `out` is still in. Summing per-replica deltas against that base
  // bundles what each shard's training added.
  const MultiModelRegressor base(first.config().reghd);
  for (const OnlineShardReplica* r : ordered) {
    out.model_->merge_accumulate_delta(r->learner->model(), base);
  }
  out.model_->requantize();

  std::vector<util::RunningStats> feature_stats(nf);
  util::RunningStats target_stats;
  std::size_t seen = 0;
  std::size_t since = 0;
  for (const OnlineShardReplica* r : ordered) {
    for (std::size_t f = 0; f < nf; ++f) {
      feature_stats[f].merge(r->learner->feature_stats()[f]);
    }
    target_stats.merge(r->learner->target_stats());
    seen += r->learner->samples_seen();
    since += r->learner->since_requantize();
  }
  if (out.config_.requantize_every > 0) {
    since %= out.config_.requantize_every;
  }
  out.restore_state(std::move(feature_stats), target_stats, seen, since);
  return out;
}

void OnlineRegHD::restore_state(std::vector<util::RunningStats> feature_stats,
                                util::RunningStats target_stats, std::size_t seen,
                                std::size_t since_requantize) {
  REGHD_CHECK(feature_stats.size() == feature_stats_.size(),
              "checkpoint has " << feature_stats.size() << " feature statistics, stream has "
                                << feature_stats_.size() << " features");
  feature_stats_ = std::move(feature_stats);
  target_stats_ = target_stats;
  seen_ = seen;
  since_requantize_ = since_requantize;
}

hdc::EncodedSample OnlineRegHD::encode(std::span<const double> features) const {
  REGHD_CHECK(features.size() == feature_stats_.size(),
              "reading has " << features.size() << " features, stream expects "
                             << feature_stats_.size());
  if (!config_.adaptive_scaling) {
    return encoder_->encode(features);
  }
  std::vector<double> scaled(features.size());
  for (std::size_t k = 0; k < features.size(); ++k) {
    const double sd = feature_stats_[k].stddev();
    scaled[k] = sd > 0.0 ? (features[k] - feature_stats_[k].mean()) / sd : 0.0;
  }
  return encoder_->encode(scaled);
}

double OnlineRegHD::scale_target(double y) const {
  if (!config_.adaptive_scaling) {
    return y;
  }
  const double sd = target_stats_.stddev();
  return sd > 0.0 ? (y - target_stats_.mean()) / sd : 0.0;
}

double OnlineRegHD::unscale_target(double y_scaled) const {
  if (!config_.adaptive_scaling) {
    return y_scaled;
  }
  const double sd = target_stats_.stddev();
  return sd > 0.0 ? y_scaled * sd + target_stats_.mean()
                  : target_stats_.mean();
}

double OnlineRegHD::predict(std::span<const double> features) const {
  std::vector<double> scaled;
  return predict_reusing(features, scaled);
}

double OnlineRegHD::predict_reusing(std::span<const double> features,
                                    std::vector<double>& scaled_scratch) const {
  REGHD_CHECK(features.size() == feature_stats_.size(),
              "reading has " << features.size() << " features, stream expects "
                             << feature_stats_.size());
  if (cold()) {
    // Cold start: running statistics are not trustworthy yet. The boundary
    // matches update()'s training gate (see the warmup convention note in
    // online.hpp): while no reading has trained the model, fall back to the
    // running target mean rather than an untrained model's output.
    obs::count(obs::Counter::kOnlineColdPredicts);
    return cold_prediction();
  }
  if (!config_.adaptive_scaling) {
    return unscale_target(model_->predict_one(*encoder_, features));
  }
  // Standardize exactly like encode(), then hand the scaled reading to the
  // fused single-query path (bit-identical to predict(encode(features)),
  // falling back internally when the mode combination is not fusable).
  scaled_scratch.resize(features.size());
  for (std::size_t k = 0; k < features.size(); ++k) {
    const double sd = feature_stats_[k].stddev();
    scaled_scratch[k] = sd > 0.0 ? (features[k] - feature_stats_[k].mean()) / sd : 0.0;
  }
  return unscale_target(model_->predict_one(*encoder_, scaled_scratch));
}

void OnlineRegHD::standardize_rows_into(std::span<const double> rows_flat,
                                        std::size_t num_rows,
                                        std::span<double> out) const {
  const std::size_t nf = feature_stats_.size();
  REGHD_CHECK(rows_flat.size() == num_rows * nf,
              "feature block has " << rows_flat.size() << " values, expected "
                                   << num_rows << " readings x " << nf << " features");
  REGHD_CHECK(out.size() >= num_rows * nf,
              "standardize output span holds " << out.size() << " values for "
                                              << num_rows * nf);
  if (!config_.adaptive_scaling) {
    std::copy(rows_flat.begin(), rows_flat.end(), out.begin());
    return;
  }
  // Element transform identical to predict_reusing's; loop order is
  // irrelevant to the values.
  for (std::size_t r = 0; r < num_rows; ++r) {
    for (std::size_t k = 0; k < nf; ++k) {
      const double sd = feature_stats_[k].stddev();
      out[r * nf + k] =
          sd > 0.0 ? (rows_flat[r * nf + k] - feature_stats_[k].mean()) / sd : 0.0;
    }
  }
}

double OnlineRegHD::update(std::span<const double> features, double target) {
  const obs::StageTimer timer(obs::Histo::kOnlineUpdateNs);
  obs::count(obs::Counter::kOnlineUpdates);
  // Member scratch, not predict(): identical math, but steady-state updates
  // never construct a standardization vector (this is the serving trainer's
  // per-sample path).
  const double prediction = predict_reusing(features, update_scratch_);

  // Consume the label: update statistics first so the very first readings
  // produce usable scales, then train.
  if (config_.adaptive_scaling) {
    for (std::size_t k = 0; k < features.size(); ++k) {
      feature_stats_[k].add(features[k]);
    }
    target_stats_.add(target);
  }
  ++seen_;
  if (config_.adaptive_scaling && seen_ <= config_.warmup) {
    obs::count(obs::Counter::kOnlineWarmupSkips);
    return prediction;  // still warming up; no model update yet
  }

  if (config_.decay < 1.0) {
    obs::count(obs::Counter::kOnlineDecays);
    model_->decay_models(config_.decay);
  }
  // Standardize with the post-consumption statistics (the transform encode()
  // applies) into the member scratch, then re-encode through the one-reading
  // arena: assign_rows is bit-identical to encode(row) and reuses its plane
  // storage, so the train side of the update is allocation-free too.
  update_scratch_.resize(features.size());
  standardize_rows_into(features, 1, update_scratch_);
  update_arena_.assign_rows(*encoder_, {update_scratch_.data(), features.size()}, 1, 1);
  model_->train_step(update_arena_.sample(0), scale_target(target));
  if (config_.requantize_every > 0 && ++since_requantize_ >= config_.requantize_every) {
    model_->requantize();
    since_requantize_ = 0;
  }
  return prediction;
}

std::vector<double> OnlineRegHD::update_batch(std::span<const double> features_flat,
                                              std::span<const double> targets) {
  const std::size_t nf = feature_stats_.size();
  REGHD_CHECK(features_flat.size() == targets.size() * nf,
              "feature block has " << features_flat.size() << " values, expected "
                                   << targets.size() << " readings x " << nf << " features");
  const std::size_t n = targets.size();
  std::vector<double> predictions(n);
  if (n == 0) {
    return predictions;
  }
  const obs::StageTimer timer(obs::Histo::kOnlineBatchNs);
  obs::count(obs::Counter::kOnlineUpdates, n);

  // 1) Block-frozen prequential predictions: every reading is scored against
  //    the model, statistics and warmup state at block entry, before any
  //    label in the block is consumed.
  for (std::size_t j = 0; j < n; ++j) {
    predictions[j] = predict(features_flat.subspan(j * nf, nf));
  }

  // 2) Consume the labels in reading order: statistics and warmup accounting
  //    advance exactly as n update() calls would.
  std::vector<std::size_t> trained;  // readings past warmup, trained below
  trained.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (config_.adaptive_scaling) {
      const std::span<const double> f = features_flat.subspan(j * nf, nf);
      for (std::size_t k = 0; k < nf; ++k) {
        feature_stats_[k].add(f[k]);
      }
      target_stats_.add(targets[j]);
    }
    ++seen_;
    if (config_.adaptive_scaling && seen_ <= config_.warmup) {
      obs::count(obs::Counter::kOnlineWarmupSkips);
      continue;  // still warming up; no model update for this reading
    }
    trained.push_back(j);
  }
  if (trained.empty()) {
    return predictions;
  }

  // 3) Decay once per trained reading (the same total forgetting as the
  //    sequential protocol), encode the trained readings with the post-block
  //    statistics, and train them as one batch-frozen mini-batch.
  if (config_.decay < 1.0) {
    obs::count(obs::Counter::kOnlineDecays, trained.size());
    for (std::size_t t = 0; t < trained.size(); ++t) {
      model_->decay_models(config_.decay);
    }
  }
  EncodedDataset block;
  for (const std::size_t j : trained) {
    block.add(encode(features_flat.subspan(j * nf, nf)), scale_target(targets[j]));
  }
  std::vector<std::size_t> idx(block.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<double> frozen(block.size());
  model_->train_batch(block, idx, frozen);
  if (config_.requantize_every > 0) {
    // The sequential protocol requantizes after every `requantize_every`-th
    // trained reading, i.e. ⌊(since + trained)/every⌋ times across this block,
    // and leaves the counter at (since + trained) mod every. requantize() is a
    // pure re-derivation of the binary snapshot from the accumulator, so one
    // call at block end reproduces the final state of all intermediate calls;
    // the counter must still advance by the modulo, not reset to zero, or
    // follow-on updates requantize at the wrong step.
    const std::size_t total = since_requantize_ + trained.size();
    if (total >= config_.requantize_every) {
      model_->requantize();
    }
    since_requantize_ = total % config_.requantize_every;
  }
  return predictions;
}

}  // namespace reghd::core
