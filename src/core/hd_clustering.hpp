// Standalone hyperdimensional clustering.
//
// RegHD "performs clustering and regression at the same time" (§2.4); this
// class exposes the clustering half on its own — the same Eq. 8 center
// update `C_l += (1−δ_l)·S` with the saturation-aware weight, the same
// optional Hamming-search quantization (Eq. 9), and the same farthest-point
// seeding — as a k-means-style unsupervised tool over encoded data. Useful
// both as a library feature and for inspecting what RegHD's input model has
// learned.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/encoded.hpp"
#include "core/multi_model.hpp"  // ClusterCenter

namespace reghd::core {

struct HdClusteringConfig {
  std::size_t dim = 4096;
  std::size_t clusters = 8;
  std::size_t max_epochs = 20;
  /// Stop when fewer than this fraction of assignments change in an epoch.
  double reassignment_tolerance = 0.01;
  /// Independent restarts (distinct seeds); the fit with the best cohesion
  /// wins. Guards against unlucky farthest-point seeds that place two
  /// initial centers in one mode.
  std::size_t restarts = 3;
  ClusterMode mode = ClusterMode::kFullPrecision;
  ClusterInit init = ClusterInit::kFarthestPoint;
  std::uint64_t seed = 0xC1057E12ULL;

  void validate() const;
};

/// Result of a fit: per-sample assignments plus convergence telemetry.
struct HdClusteringReport {
  std::vector<std::size_t> assignments;
  std::size_t epochs_run = 0;
  bool converged = false;
  /// Mean similarity of each sample to its assigned center (higher = tighter).
  double cohesion = 0.0;
};

class HdClustering {
 public:
  explicit HdClustering(HdClusteringConfig config);

  /// Iterative clustering over pre-encoded samples (best of
  /// config.restarts independent runs, by cohesion).
  HdClusteringReport fit(const EncodedDataset& data);

  /// Index of the most similar center. Requires a prior fit().
  [[nodiscard]] std::size_t assign(const hdc::EncodedSampleView& sample) const;

  /// Similarities of a sample to every center (cosine or Hamming, per mode).
  [[nodiscard]] std::vector<double> similarities(const hdc::EncodedSampleView& sample) const;

  [[nodiscard]] std::size_t num_clusters() const noexcept { return config_.clusters; }
  [[nodiscard]] const ClusterCenter& center(std::size_t i) const { return centers_[i]; }
  [[nodiscard]] const HdClusteringConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

 private:
  void init_centers(const EncodedDataset& data, std::uint64_t seed);
  HdClusteringReport fit_once(const EncodedDataset& data, std::uint64_t seed);
  void requantize();

  HdClusteringConfig config_;
  std::vector<ClusterCenter> centers_;
  bool fitted_ = false;
};

}  // namespace reghd::core
