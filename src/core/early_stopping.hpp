// Early-stopping rule shared by the core trainers: stop when the validation
// MSE has not improved by at least `tolerance` (relative) for `patience`
// consecutive epochs — the paper's "minor changes on the model during a few
// consecutive iterations" criterion, measured on held-out error.
#pragma once

#include <cstddef>
#include <limits>

namespace reghd::core {

class EarlyStopper {
 public:
  EarlyStopper(double tolerance, std::size_t patience) noexcept
      : tolerance_(tolerance), patience_(patience) {}

  /// Feeds one end-of-epoch validation MSE; returns true when training
  /// should stop.
  bool update(double val_mse) noexcept {
    if (val_mse < best_ * (1.0 - tolerance_)) {
      best_ = val_mse;
      stall_ = 0;
      return false;
    }
    if (val_mse < best_) {
      best_ = val_mse;  // still track the best, even if below tolerance
    }
    ++stall_;
    return stall_ >= patience_;
  }

  [[nodiscard]] double best() const noexcept { return best_; }
  [[nodiscard]] std::size_t stall() const noexcept { return stall_; }

 private:
  double tolerance_;
  std::size_t patience_;
  double best_ = std::numeric_limits<double>::infinity();
  std::size_t stall_ = 0;
};

}  // namespace reghd::core
