#include "core/training.hpp"

#include <sstream>

namespace reghd::core {

std::string TrainingReport::summary() const {
  std::ostringstream oss;
  oss << "epochs=" << epochs_run << " converged=" << (converged ? "yes" : "no")
      << " best_val_mse=" << best_val_mse << " (" << stop_reason << ")";
  return oss.str();
}

}  // namespace reghd::core
