// Single-model RegHD regression (paper §2.3, Eq. 2).
//
// One model hypervector M, initialized to zero. For each training pair
// (S, y): predict ŷ = (1/D)·M·S, then update M ← M + α·(y − ŷ)·S. Training
// iterates epochs until the validation MSE stabilizes.
//
// This learner exists both as the k = 1 baseline of the multi-model
// experiments (Fig. 3) and as the pedagogical core of the algorithm; its
// hypervector-capacity limitation on multi-modal tasks (§2.3, Eq. 4) is what
// motivates MultiModelRegressor.
#pragma once

#include <span>

#include "core/config.hpp"
#include "core/encoded.hpp"
#include "core/kernels.hpp"
#include "core/training.hpp"

namespace reghd::core {

class SingleModelRegressor {
 public:
  /// Uses dim, learning_rate, the epoch/stopping fields, and the
  /// query/model precisions of `config`; `models` and the cluster fields
  /// are ignored. Throws on invalid config.
  explicit SingleModelRegressor(const RegHDConfig& config);

  /// Iterative training (paper's "iterative learning") with early stopping
  /// on `val`. Resets the model first. With config.batch_size ≥ 1 each epoch
  /// trains in deterministic batch-frozen mini-batches via train_batch and
  /// `hooks->on_batch` fires after every applied batch.
  TrainingReport fit(const EncodedDataset& train, const EncodedDataset& val,
                     const TrainingHooks* hooks = nullptr);

  /// One single-pass online step (encode-train-discard); exposed for the
  /// streaming example and the single-pass-vs-iterative experiment.
  void train_step(const hdc::EncodedSampleView& sample, double target);

  /// One deterministic batch-frozen mini-batch step: Eq. 2 predictions of
  /// every listed sample are computed in parallel against the entry model,
  /// then the updates are applied serially in ascending list order.
  /// predictions[j] receives the pre-update prediction of
  /// data.sample(indices[j]). Results depend only on the index list, never
  /// on `threads` (0 = config.threads); a single-index call is bit-identical
  /// to train_step.
  void train_batch(const EncodedDataset& data, std::span<const std::size_t> indices,
                   std::span<double> predictions, std::size_t threads = 0);

  /// ŷ = (1/D)·M·S at the configured prediction precision.
  [[nodiscard]] double predict(const hdc::EncodedSampleView& sample) const;

  /// Predicts every sample, parallelized over rows with up to `threads`
  /// workers (0 = config.threads, then REGHD_THREADS / hardware
  /// concurrency). Result i equals predict(sample i) for any thread count.
  [[nodiscard]] std::vector<double> predict_batch(const EncodedDataset& dataset,
                                                  std::size_t threads = 0) const;

  /// Mean squared error over an encoded dataset.
  [[nodiscard]] double evaluate_mse(const EncodedDataset& dataset) const;

  [[nodiscard]] const RegressionModel& model() const noexcept { return model_; }
  [[nodiscard]] const RegHDConfig& config() const noexcept { return config_; }

  /// Re-derives the binary snapshot from the accumulator (done automatically
  /// at each epoch boundary during fit()).
  void requantize() {
    obs::count(obs::Counter::kRequantizes);
    model_.requantize();
  }

  /// Resets M to zero.
  void reset();

 private:
  RegHDConfig config_;
  RegressionModel model_;

  // train_batch phase-2 coefficient scratch, reused across batches.
  std::vector<double> batch_coeff_;
};

}  // namespace reghd::core
