#include "core/kernels.hpp"

#include <cmath>

namespace reghd::core {

void RegressionModel::requantize() {
  binary = accumulator.sign_packed();
  double abs_sum = 0.0;
  for (const double v : accumulator.values()) {
    abs_sum += std::abs(v);
  }
  const std::size_t dim = accumulator.dim();
  gamma = dim > 0 ? abs_sum / static_cast<double>(dim) : 0.0;

  // Ternary snapshot: dead-zone components below kTernaryThreshold·γ.
  ternary_mask = hdc::BinaryHV(dim);
  const double threshold = kTernaryThreshold * gamma;
  double kept_sum = 0.0;
  std::size_t kept = 0;
  for (std::size_t j = 0; j < dim; ++j) {
    const double mag = std::abs(accumulator[j]);
    if (mag >= threshold) {
      ternary_mask.set_bit(j, true);
      kept_sum += mag;
      ++kept;
    }
  }
  gamma_ternary = kept > 0 ? kept_sum / static_cast<double>(kept) : 0.0;
}

double predict_dot(const RegressionModel& model, const hdc::EncodedSampleView& query,
                   PredictionMode mode) {
  const auto d = static_cast<double>(model.accumulator.dim());
  REGHD_CHECK(d > 0, "predict_dot on an empty model");
  if (mode.model == ModelPrecision::kReal) {
    if (mode.query == QueryPrecision::kReal) {
      return hdc::dot(model.accumulator, query.real) / d;  // full precision
    }
    return hdc::dot(model.accumulator, query.binary) / d;  // binary query, multiply-free
  }
  if (mode.model == ModelPrecision::kTernary) {
    // Ternary model: dead-zone components contribute nothing; survivors
    // carry ±γ_t.
    if (mode.query == QueryPrecision::kReal) {
      return model.gamma_ternary *
             hdc::masked_dot(query.real, model.binary, model.ternary_mask) / d;
    }
    return model.gamma_ternary *
           static_cast<double>(
               hdc::masked_bipolar_dot(model.binary, query.binary, model.ternary_mask)) /
           d;
  }
  // Binary model: popcount-class kernels scaled by γ.
  if (mode.query == QueryPrecision::kReal) {
    return model.gamma * hdc::dot(query.real, model.binary) / d;
  }
  return model.gamma * static_cast<double>(hdc::bipolar_dot(model.binary, query.binary)) / d;
}

void update_accumulator(hdc::RealHV& accumulator, const hdc::EncodedSampleView& sample,
                        double coeff, QueryPrecision precision) {
  if (precision == QueryPrecision::kReal) {
    hdc::add_scaled(accumulator, sample.real, coeff);
  } else {
    hdc::add_scaled(accumulator, sample.bipolar, coeff);
  }
}

double raw_query_dot(const hdc::RealHV& accumulator, const hdc::EncodedSampleView& query,
                     QueryPrecision precision) {
  if (precision == QueryPrecision::kReal) {
    return hdc::dot(accumulator, query.real);
  }
  return hdc::dot(accumulator, query.binary);
}

double update_normalizer(const hdc::EncodedSampleView& sample, QueryPrecision precision) {
  if (precision == QueryPrecision::kBinary) {
    return 1.0;
  }
  const double n2 = sample.real_norm2;
  if (n2 <= 0.0) {
    return 0.0;  // degenerate all-zero encoding: skip the update
  }
  return static_cast<double>(sample.real.dim()) / n2;
}

double query_norm2(const hdc::EncodedSampleView& query, QueryPrecision precision) {
  if (precision == QueryPrecision::kReal) {
    return query.real_norm2;
  }
  return static_cast<double>(query.binary.dim());
}

}  // namespace reghd::core
