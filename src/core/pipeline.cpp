#include "core/pipeline.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace reghd::core {

RegHDPipeline::RegHDPipeline(PipelineConfig config) : config_(std::move(config)) {
  config_.reghd.validate();
  REGHD_CHECK(config_.validation_fraction > 0.0 && config_.validation_fraction < 0.5,
              "validation_fraction must lie in (0, 0.5), got " << config_.validation_fraction);
  config_.encoder.dim = config_.reghd.dim;
}

std::string RegHDPipeline::name() const {
  std::ostringstream oss;
  oss << "RegHD-" << config_.reghd.models;
  if (config_.reghd.cluster_mode == ClusterMode::kQuantized) {
    oss << "-qc";
  } else if (config_.reghd.cluster_mode == ClusterMode::kNaiveBinary) {
    oss << "-naive";
  }
  const PredictionMode mode = config_.reghd.prediction_mode();
  if (!(mode == PredictionMode::full_precision())) {
    oss << (mode.query == QueryPrecision::kBinary ? "-bq" : "-iq");
    switch (mode.model) {
      case ModelPrecision::kReal:
        oss << "im";
        break;
      case ModelPrecision::kBinary:
        oss << "bm";
        break;
      case ModelPrecision::kTernary:
        oss << "tm";
        break;
    }
  }
  return oss.str();
}

void RegHDPipeline::fit(const data::Dataset& train) {
  static const TrainingHooks kNoHooks{};
  fit(train, kNoHooks);
}

void RegHDPipeline::fit(const data::Dataset& train, const TrainingHooks& hooks) {
  REGHD_CHECK(train.size() >= 8, "pipeline fit requires at least 8 samples, got "
                                     << train.size());

  // Work on a scaled copy; fitting statistics come from the full provided
  // training set (the held-out validation part below is only for the
  // stopping rule, not a reported test set).
  data::Dataset scaled = train;
  if (config_.standardize_features) {
    feature_scaler_.fit(scaled);
    feature_scaler_.transform(scaled);
  }
  if (config_.standardize_target) {
    target_scaler_.fit(scaled);
    target_scaler_.transform(scaled);
  }

  config_.encoder.input_dim = scaled.num_features();
  config_.encoder.dim = config_.reghd.dim;
  encoder_ = hdc::make_encoder(config_.encoder);

  util::Rng split_rng(config_.reghd.seed ^ 0x53504C4954ULL);  // "SPLIT"
  const data::TrainTestSplit split =
      data::train_test_split(scaled, config_.validation_fraction, split_rng);

  const EncodedDataset train_enc =
      EncodedDataset::from(*encoder_, split.train, config_.reghd.threads);
  const EncodedDataset val_enc =
      EncodedDataset::from(*encoder_, split.test, config_.reghd.threads);

  regressor_ = std::make_unique<MultiModelRegressor>(config_.reghd);
  report_ = regressor_->fit(train_enc, val_enc, &hooks);
  sharded_report_.reset();
}

ShardedTrainReport RegHDPipeline::fit_sharded(const data::Dataset& train,
                                              const ShardedTrainConfig& cfg) {
  REGHD_CHECK(train.size() >= 8, "pipeline fit requires at least 8 samples, got "
                                     << train.size());

  // Identical preamble to fit() — scalers, encoder, split, encode — so the
  // S = 1 degenerate case reduces to exactly the same regressor fit on
  // exactly the same encoded data.
  data::Dataset scaled = train;
  if (config_.standardize_features) {
    feature_scaler_.fit(scaled);
    feature_scaler_.transform(scaled);
  }
  if (config_.standardize_target) {
    target_scaler_.fit(scaled);
    target_scaler_.transform(scaled);
  }

  config_.encoder.input_dim = scaled.num_features();
  config_.encoder.dim = config_.reghd.dim;
  encoder_ = hdc::make_encoder(config_.encoder);

  util::Rng split_rng(config_.reghd.seed ^ 0x53504C4954ULL);  // "SPLIT"
  const data::TrainTestSplit split =
      data::train_test_split(scaled, config_.validation_fraction, split_rng);

  const EncodedDataset train_enc =
      EncodedDataset::from(*encoder_, split.train, config_.reghd.threads);
  const EncodedDataset val_enc =
      EncodedDataset::from(*encoder_, split.test, config_.reghd.threads);

  ShardedTrainer trainer(config_.reghd);
  ShardedTrainReport sharded = trainer.fit(train_enc, val_enc, cfg);
  regressor_ = trainer.take_regressor();

  // Synthesize a TrainingReport so report()-based callers (examples, grid
  // search) keep working: one shard's fit report is the whole story at
  // S = 1; otherwise summarize merge + refine.
  if (sharded.shards == 1 && cfg.refine_epochs == 0) {
    report_ = sharded.shard_reports.front().report;
  } else {
    TrainingReport synthesized;
    synthesized.history = sharded.refine_history;
    synthesized.epochs_run = sharded.refine_history.size();
    synthesized.converged = false;
    synthesized.best_val_mse = sharded.final_val_mse;
    synthesized.stop_reason = "sharded merge";
    report_ = std::move(synthesized);
  }
  sharded_report_ = sharded;
  return sharded;
}

const ShardedTrainReport& RegHDPipeline::sharded_report() const {
  REGHD_CHECK(sharded_report_.has_value(),
              "pipeline has no sharded report before fit_sharded()");
  return *sharded_report_;
}

hdc::EncodedSample RegHDPipeline::encode_row(std::span<const double> features) const {
  REGHD_CHECK(encoder_ != nullptr, "pipeline must be fitted before prediction");
  if (config_.standardize_features) {
    const std::vector<double> scaled = feature_scaler_.transform_row(features);
    return encoder_->encode(scaled);
  }
  return encoder_->encode(features);
}

double RegHDPipeline::predict(std::span<const double> features) const {
  REGHD_CHECK(regressor_ != nullptr, "pipeline must be fitted before prediction");
  const double y_scaled = regressor_->predict(encode_row(features));
  return config_.standardize_target ? target_scaler_.inverse_value(y_scaled) : y_scaled;
}

PredictionDetail RegHDPipeline::predict_detail(std::span<const double> features) const {
  REGHD_CHECK(regressor_ != nullptr, "pipeline must be fitted before prediction");
  PredictionDetail detail = regressor_->predict_detail(encode_row(features));
  if (config_.standardize_target) {
    detail.prediction = target_scaler_.inverse_value(detail.prediction);
    for (double& out : detail.model_outputs) {
      out = target_scaler_.inverse_value(out);
    }
  }
  return detail;
}

std::vector<double> RegHDPipeline::predict_batch(const data::Dataset& dataset) const {
  REGHD_CHECK(regressor_ != nullptr, "pipeline must be fitted before prediction");
  REGHD_CHECK(encoder_ != nullptr, "pipeline must be fitted before prediction");
  const std::size_t n = dataset.num_features();
  REGHD_CHECK(n == encoder_->input_dim(),
              "dataset has " << n << " features, encoder expects " << encoder_->input_dim());

  // One flat scaled copy of the feature block feeds the SoA arena batch
  // encoder (GEMM path for RFF), then the bank batch predictor scores all
  // rows — no per-sample allocation anywhere on this path.
  std::vector<double> flat(dataset.features_flat().begin(), dataset.features_flat().end());
  if (config_.standardize_features) {
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      feature_scaler_.transform_row_inplace(std::span<double>(flat.data() + i * n, n));
    }
  }
  const EncodedDataset enc =
      EncodedDataset::from_rows(*encoder_, flat, dataset.size(), config_.reghd.threads);
  std::vector<double> out = regressor_->predict_batch(enc, config_.reghd.threads);
  if (config_.standardize_target) {
    for (double& y : out) {
      y = target_scaler_.inverse_value(y);
    }
  }
  return out;
}

double RegHDPipeline::evaluate_mse(const data::Dataset& dataset) const {
  REGHD_CHECK(!dataset.empty(), "cannot evaluate on an empty dataset");
  const std::vector<double> pred = predict_batch(dataset);
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - dataset.target(i);
    acc += e * e;
  }
  return acc / static_cast<double>(dataset.size());
}

const TrainingReport& RegHDPipeline::report() const {
  REGHD_CHECK(report_.has_value(), "pipeline has no training report before fit()");
  return *report_;
}

const MultiModelRegressor& RegHDPipeline::regressor() const {
  REGHD_CHECK(regressor_ != nullptr, "pipeline must be fitted first");
  return *regressor_;
}

MultiModelRegressor& RegHDPipeline::mutable_regressor() {
  REGHD_CHECK(regressor_ != nullptr, "pipeline must be fitted or restored first");
  return *regressor_;
}

const hdc::Encoder& RegHDPipeline::encoder() const {
  REGHD_CHECK(encoder_ != nullptr, "pipeline must be fitted first");
  return *encoder_;
}

void RegHDPipeline::restore(hdc::EncoderConfig encoder_config,
                            std::unique_ptr<MultiModelRegressor> regressor) {
  REGHD_CHECK(regressor != nullptr, "restore requires a regressor");
  config_.encoder = encoder_config;
  encoder_ = hdc::make_encoder(config_.encoder);
  regressor_ = std::move(regressor);
  report_.reset();
  sharded_report_.reset();
}

}  // namespace reghd::core
