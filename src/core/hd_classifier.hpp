// Hyperdimensional classification.
//
// "The application of all existing HD algorithms is mainly in
// classification" (§5) — RegHD generalizes that machinery to regression.
// This class provides the classification side with the same substrate: one
// class hypervector per label, single-pass bundling of encoded samples,
// then perceptron-style corrective refinement (the iterative HD training of
// the paper's refs. [19][23]), with optional quantized (Hamming) inference.
//
// It is also the engine behind baselines::BaselineHd (regression emulated by
// classifying discretized outputs), and usable on its own for the
// gesture/biosignal workloads the paper cites.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/encoded.hpp"
#include "hdc/hypervector.hpp"

namespace reghd::core {

struct HdClassifierConfig {
  std::size_t dim = 4096;
  std::size_t classes = 2;
  std::size_t max_epochs = 20;
  /// Stop when validation accuracy fails to improve for this many epochs.
  std::size_t patience = 5;
  /// Hamming inference over binary class snapshots instead of cosine.
  bool quantized = false;
  std::uint64_t seed = 0xC1A55ULL;

  void validate() const;
};

/// Telemetry of a classifier fit.
struct HdClassifierReport {
  std::size_t epochs_run = 0;
  bool converged = false;
  double best_val_accuracy = 0.0;
  std::vector<double> val_accuracy_history;
};

class HdClassifier {
 public:
  explicit HdClassifier(HdClassifierConfig config);

  /// Trains on encoded samples with integer labels in [0, classes).
  /// `val` drives early stopping and best-epoch restore.
  HdClassifierReport fit(const EncodedDataset& train, std::span<const std::size_t> labels,
                         const EncodedDataset& val, std::span<const std::size_t> val_labels);

  /// Most similar class for one encoded sample.
  [[nodiscard]] std::size_t predict(const hdc::EncodedSampleView& sample) const;

  /// Similarity of the sample to every class hypervector.
  [[nodiscard]] std::vector<double> scores(const hdc::EncodedSampleView& sample) const;

  /// Fraction of correct predictions on an encoded set.
  [[nodiscard]] double accuracy(const EncodedDataset& data,
                                std::span<const std::size_t> labels) const;

  [[nodiscard]] const HdClassifierConfig& config() const noexcept { return config_; }
  [[nodiscard]] const hdc::RealHV& class_hv(std::size_t c) const { return class_hvs_[c]; }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

 private:
  void requantize();

  HdClassifierConfig config_;
  std::vector<hdc::RealHV> class_hvs_;
  std::vector<hdc::BinaryHV> class_snapshots_;
  bool fitted_ = false;
};

}  // namespace reghd::core
