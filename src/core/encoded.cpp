#include "core/encoded.hpp"

#include "util/check.hpp"

namespace reghd::core {

void EncodedDataset::assign_rows(const hdc::Encoder& encoder,
                                 std::span<const double> rows_flat,
                                 std::size_t num_rows, std::size_t threads) {
  dim_ = encoder.dim();
  words_ = (dim_ + 63) / 64;
  // assign() reuses existing plane capacity: steady-state re-encoding of
  // admission batches (num_rows bounded by the batcher's cap) never touches
  // the allocator after the first full-size batch.
  targets_.assign(num_rows, 0.0);
  real_.assign(num_rows * dim_, 0.0);  // encoders accumulate in place
  bipolar_.assign(num_rows * dim_, 0);
  binary_.assign(num_rows * words_, 0);
  norm_.assign(num_rows, 0.0);
  norm2_.assign(num_rows, 0.0);
  const hdc::EncodedArenaRef arena{real_.data(), bipolar_.data(), binary_.data(),
                                   norm_.data(), norm2_.data(),   dim_,
                                   words_};
  encoder.encode_batch_into(rows_flat, num_rows, arena, threads);
}

EncodedDataset EncodedDataset::build(const hdc::Encoder& encoder,
                                     std::span<const double> rows_flat,
                                     std::size_t num_rows, std::vector<double> targets,
                                     std::size_t threads) {
  EncodedDataset out;
  out.assign_rows(encoder, rows_flat, num_rows, threads);
  out.targets_ = std::move(targets);
  return out;
}

EncodedDataset EncodedDataset::from(const hdc::Encoder& encoder,
                                    const data::Dataset& dataset, std::size_t threads) {
  REGHD_CHECK(dataset.num_features() == encoder.input_dim(),
              "dataset has " << dataset.num_features() << " features, encoder expects "
                             << encoder.input_dim());
  return build(encoder, dataset.features_flat(), dataset.size(),
               {dataset.targets().begin(), dataset.targets().end()}, threads);
}

EncodedDataset EncodedDataset::from_rows(const hdc::Encoder& encoder,
                                         std::span<const double> rows_flat,
                                         std::size_t num_rows, std::size_t threads) {
  return build(encoder, rows_flat, num_rows, std::vector<double>(num_rows, 0.0),
               threads);
}

EncodedDataset EncodedDataset::subset(std::span<const std::size_t> rows) const {
  EncodedDataset out;
  out.dim_ = dim_;
  out.words_ = words_;
  out.real_.reserve(rows.size() * dim_);
  out.bipolar_.reserve(rows.size() * dim_);
  out.binary_.reserve(rows.size() * words_);
  out.norm_.reserve(rows.size());
  out.norm2_.reserve(rows.size());
  out.targets_.reserve(rows.size());
  for (const std::size_t r : rows) {
    REGHD_CHECK(r < size(), "subset row " << r << " out of range for " << size()
                                          << " samples");
    out.real_.insert(out.real_.end(), real_.data() + r * dim_,
                     real_.data() + (r + 1) * dim_);
    out.bipolar_.insert(out.bipolar_.end(), bipolar_.data() + r * dim_,
                        bipolar_.data() + (r + 1) * dim_);
    out.binary_.insert(out.binary_.end(), binary_.data() + r * words_,
                       binary_.data() + (r + 1) * words_);
    out.norm_.push_back(norm_[r]);
    out.norm2_.push_back(norm2_[r]);
    out.targets_.push_back(targets_[r]);
  }
  return out;
}

void EncodedDataset::add(const hdc::EncodedSample& sample, double target) {
  REGHD_CHECK(empty() || sample.real.dim() == dim_,
              "encoded sample dimensionality " << sample.real.dim()
                                               << " does not match dataset dim " << dim_);
  if (empty()) {
    dim_ = sample.real.dim();
    words_ = (dim_ + 63) / 64;
    real_.clear();
    bipolar_.clear();
    binary_.clear();
    norm_.clear();
    norm2_.clear();
  }
  REGHD_CHECK(sample.bipolar.dim() == dim_ && sample.binary.dim() == dim_,
              "encoded sample representations disagree on dimensionality");
  real_.insert(real_.end(), sample.real.values().begin(), sample.real.values().end());
  bipolar_.insert(bipolar_.end(), sample.bipolar.values().begin(),
                  sample.bipolar.values().end());
  binary_.insert(binary_.end(), sample.binary.words().begin(),
                 sample.binary.words().end());
  norm_.push_back(sample.real_norm);
  norm2_.push_back(sample.real_norm2);
  targets_.push_back(target);
}

}  // namespace reghd::core
