#include "core/encoded.hpp"

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace reghd::core {

EncodedDataset EncodedDataset::from(const hdc::Encoder& encoder,
                                    const data::Dataset& dataset, std::size_t threads) {
  REGHD_CHECK(dataset.num_features() == encoder.input_dim(),
              "dataset has " << dataset.num_features() << " features, encoder expects "
                             << encoder.input_dim());
  EncodedDataset out;
  out.samples_.resize(dataset.size());
  out.targets_.assign(dataset.targets().begin(), dataset.targets().end());
  // Encoding is embarrassingly parallel (the encoder is immutable and each
  // sample writes a disjoint slot); block assignment keeps it deterministic.
  util::parallel_for(
      dataset.size(),
      [&](std::size_t i) { out.samples_[i] = encoder.encode(dataset.row(i)); },
      threads);
  return out;
}

void EncodedDataset::add(hdc::EncodedSample sample, double target) {
  REGHD_CHECK(samples_.empty() || sample.real.dim() == dim(),
              "encoded sample dimensionality " << sample.real.dim()
                                               << " does not match dataset dim " << dim());
  samples_.push_back(std::move(sample));
  targets_.push_back(target);
}

}  // namespace reghd::core
