// Umbrella header: include this to get the entire RegHD public API.
//
//   #include "core/reghd.hpp"
//
//   reghd::core::PipelineConfig cfg;
//   cfg.reghd.models = 8;              // RegHD-8
//   cfg.reghd.dim = 4096;              // D
//   reghd::core::RegHDPipeline model(cfg);
//   model.fit(train);                  // reghd::data::Dataset
//   double y = model.predict(features);
//
// See README.md for the architecture overview and examples/ for runnable
// programs.
#pragma once

#include "core/checkpoint.hpp"     // IWYU pragma: export
#include "core/config.hpp"         // IWYU pragma: export
#include "core/encoded.hpp"        // IWYU pragma: export
#include "core/hd_classifier.hpp"  // IWYU pragma: export
#include "core/hd_clustering.hpp"  // IWYU pragma: export
#include "core/model_io.hpp"       // IWYU pragma: export
#include "core/multi_model.hpp"    // IWYU pragma: export
#include "core/online.hpp"         // IWYU pragma: export
#include "core/pipeline.hpp"          // IWYU pragma: export
#include "core/sharded_training.hpp"  // IWYU pragma: export
#include "core/single_model.hpp"      // IWYU pragma: export
#include "core/training.hpp"       // IWYU pragma: export
