// Shared prediction/update kernels used by both the single-model and
// multi-model regressors.
//
// Prediction normalization: all prediction dot products are divided by the
// dimensionality D, i.e. ŷ contributions are (1/D)·M·Q. This makes the
// learning rate α dimension-independent (an update M += α·err·S changes the
// sample's own prediction by ≈ α·err regardless of D) and keeps the paper's
// nominal α values stable across the Table 2 dimensionality sweep.
#pragma once

#include "core/config.hpp"
#include "hdc/encoding.hpp"
#include "hdc/ops.hpp"

namespace reghd::core {

/// State of one regression model: the integer accumulator M, its binary
/// snapshot M^b, the ternary mask (QuantHD extension), and the calibration
/// scales fitted at quantization time (§3.2; map popcount scores back to
/// accumulator units).
struct RegressionModel {
  hdc::RealHV accumulator;
  hdc::BinaryHV binary;
  double gamma = 0.0;  ///< mean_j |M_j| — the binary-snapshot scale.

  /// Ternary snapshot: bit j of `ternary_mask` is set iff |M_j| clears the
  /// threshold; signs come from `binary`. `gamma_ternary` is the mean |M_j|
  /// over the surviving components.
  hdc::BinaryHV ternary_mask;
  double gamma_ternary = 0.0;

  /// Fraction of mean |M_j| below which a component is masked out of the
  /// ternary snapshot (QuantHD's dead-zone width).
  static constexpr double kTernaryThreshold = 0.6;

  explicit RegressionModel(std::size_t dim)
      : accumulator(dim), binary(dim), ternary_mask(dim) {}
  RegressionModel() = default;

  /// Refreshes binary + ternary snapshots and both scales from the
  /// accumulator.
  void requantize();
};

/// Normalized prediction dot of one model against one encoded query, at the
/// configured precision (the four §3.2 kernels).
[[nodiscard]] double predict_dot(const RegressionModel& model, const hdc::EncodedSampleView& query,
                                 PredictionMode mode);

/// Accumulator update M += coeff·S with the sample taken at the given query
/// precision (real encoder output vs bipolar sign vector).
void update_accumulator(hdc::RealHV& accumulator, const hdc::EncodedSampleView& sample,
                        double coeff, QueryPrecision precision);

/// Normalization factor D/‖S‖² that turns the LMS update into normalized
/// LMS: with it, an update α·err changes the sample's own (1/D)·M·S
/// prediction by exactly α·err regardless of encoder output scale. For
/// bipolar/binary queries ‖S‖² = D and the factor is exactly 1 — i.e. the
/// paper's literal update rule (Eqs. 2, 7) is recovered.
[[nodiscard]] double update_normalizer(const hdc::EncodedSampleView& sample,
                                       QueryPrecision precision);

/// Raw (unnormalized) dot of a real accumulator against the query at the
/// given precision; used where the caller owns normalization (cosine).
[[nodiscard]] double raw_query_dot(const hdc::RealHV& accumulator,
                                   const hdc::EncodedSampleView& query, QueryPrecision precision);

/// Squared norm of the query at the given precision (bipolar: exactly D).
[[nodiscard]] double query_norm2(const hdc::EncodedSampleView& query, QueryPrecision precision);

}  // namespace reghd::core
