// Pre-encoded dataset: the in-memory form the core learners train on.
//
// Encoding is deterministic and independent of the model state, so every
// sample is mapped into hyperspace exactly once and reused across training
// epochs — the same structure a hardware implementation uses (the encoder
// block streams each input once per pass; iterative epochs replay the
// encoded buffer).
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "hdc/encoding.hpp"

namespace reghd::core {

class EncodedDataset {
 public:
  EncodedDataset() = default;

  /// Encodes every row of `dataset` with `encoder`, parallelized over rows
  /// with up to `threads` workers (0 = REGHD_THREADS / hardware concurrency;
  /// results are identical for any thread count). Throws if the feature
  /// counts disagree.
  static EncodedDataset from(const hdc::Encoder& encoder, const data::Dataset& dataset,
                             std::size_t threads = 0);

  void add(hdc::EncodedSample sample, double target);

  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return targets_.empty(); }

  /// Hyperspace dimensionality; 0 when empty.
  [[nodiscard]] std::size_t dim() const noexcept {
    return samples_.empty() ? 0 : samples_.front().real.dim();
  }

  [[nodiscard]] const hdc::EncodedSample& sample(std::size_t i) const { return samples_[i]; }
  [[nodiscard]] double target(std::size_t i) const { return targets_[i]; }
  [[nodiscard]] std::span<const double> targets() const noexcept { return targets_; }

 private:
  std::vector<hdc::EncodedSample> samples_;
  std::vector<double> targets_;
};

}  // namespace reghd::core
