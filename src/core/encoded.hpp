// Pre-encoded dataset: the in-memory form the core learners train on.
//
// Encoding is deterministic and independent of the model state, so every
// sample is mapped into hyperspace exactly once and reused across training
// epochs — the same structure a hardware implementation uses (the encoder
// block streams each input once per pass; iterative epochs replay the
// encoded buffer).
//
// Storage is SoA: one contiguous cache-line-aligned row-major B×D real
// matrix, one dense B×D bipolar plane, one packed B×⌈D/64⌉ bit-plane, and
// flat norm/norm²/target arrays. sample(i) hands out an EncodedSampleView
// over row i, so the per-sample training/prediction code is unchanged, while
// the flat planes feed the GEMM batch kernels (encode_batch_into,
// dot_rows-based bank prediction) without any per-sample allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "hdc/encoding.hpp"
#include "util/aligned.hpp"

namespace reghd::core {

/// Packed 2-bit-plane quantization of a model/cluster row bank — the §3.2
/// bank-scan form of MultiModelRegressor's state. Per row: a sign bit-plane,
/// a mask bit-plane (bit set ⇔ the component participates), and one real
/// score scale. A binarized row is its sign snapshot under a full mask with
/// scale γ; a ternary row additionally masks the QuantHD dead zone and
/// scales by γ_ternary; cluster rows carry a full mask and scale 1 (their
/// scores feed the exact Hamming-similarity replay directly). Scored against
/// a packed binary query by KernelBackend::dot_rows_ternary — 2 bits
/// resident per component instead of the 8-byte f64 bank row it replaces
/// (32× per plane pair vs the real bank; ≥4× vs any float storage).
/// Padding bits past `dim` are zero in both planes (the kernel contract).
struct PackedTernaryBank {
  std::size_t rows = 0;
  std::size_t words = 0;  ///< 64-bit words per row in each plane.
  util::AlignedVector<std::uint64_t> signs;  ///< rows × words sign bits.
  util::AlignedVector<std::uint64_t> masks;  ///< rows × words mask bits.
  std::vector<double> scale;                 ///< Per-row score scale.
  bool valid = false;  ///< False ⇒ stale relative to the owner's snapshots.

  /// Resident bytes of the packed planes + scales (the footprint the bank
  /// trades against the f64 rows; reported by the microbench).
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return (signs.size() + masks.size()) * sizeof(std::uint64_t) +
           scale.size() * sizeof(double);
  }
};

class EncodedDataset {
 public:
  EncodedDataset() = default;

  /// Encodes every row of `dataset` with `encoder`, parallelized over rows
  /// with up to `threads` workers (0 = REGHD_THREADS / hardware concurrency;
  /// results are identical for any thread count). Throws if the feature
  /// counts disagree.
  static EncodedDataset from(const hdc::Encoder& encoder, const data::Dataset& dataset,
                             std::size_t threads = 0);

  /// Encodes a flat row-major feature block (num_rows · input_dim doubles)
  /// with all targets zero — the batch prediction path, which has no targets,
  /// reuses the SoA arena through this.
  static EncodedDataset from_rows(const hdc::Encoder& encoder,
                                  std::span<const double> rows_flat,
                                  std::size_t num_rows, std::size_t threads = 0);

  /// Appends one owning sample (copied into the arena planes).
  void add(const hdc::EncodedSample& sample, double target);

  /// Re-encodes a flat row-major feature block (num_rows · input_dim doubles)
  /// into this arena in place, replacing its previous contents. Plane storage
  /// is reused — once capacity covers the largest batch seen, re-encoding
  /// allocates nothing, which is what lets the serving runtime's admission
  /// batcher run one arena per shard on an allocation-free predict path.
  /// Targets are zeroed; geometry follows `encoder`. Contents are identical
  /// to from_rows(encoder, rows_flat, num_rows, threads).
  void assign_rows(const hdc::Encoder& encoder, std::span<const double> rows_flat,
                   std::size_t num_rows, std::size_t threads = 0);

  /// New arena holding the listed rows, in list order (plane rows are copied
  /// verbatim, so subset(i).sample(j) views the exact bytes of sample(rows[j])).
  /// The shard partitioner materializes each shard's training set through
  /// this. Throws if any index is out of range.
  [[nodiscard]] EncodedDataset subset(std::span<const std::size_t> rows) const;

  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return targets_.empty(); }

  /// Hyperspace dimensionality; 0 when empty.
  [[nodiscard]] std::size_t dim() const noexcept { return empty() ? 0 : dim_; }

  /// View of encoded row i; valid until the dataset is modified or destroyed.
  [[nodiscard]] hdc::EncodedSampleView sample(std::size_t i) const noexcept {
    return {hdc::RealHVView(std::span<const double>(real_.data() + i * dim_, dim_)),
            hdc::BipolarHVView(
                std::span<const std::int8_t>(bipolar_.data() + i * dim_, dim_)),
            hdc::BinaryHVView(
                dim_, std::span<const std::uint64_t>(binary_.data() + i * words_, words_)),
            norm_[i], norm2_[i]};
  }

  [[nodiscard]] double target(std::size_t i) const { return targets_[i]; }
  [[nodiscard]] std::span<const double> targets() const noexcept { return targets_; }

  // Flat SoA planes for the GEMM batch kernels. Row r of the real plane is
  // components [r·dim, (r+1)·dim).
  [[nodiscard]] std::size_t words_per_row() const noexcept { return words_; }
  [[nodiscard]] std::span<const double> real_plane() const noexcept {
    return {real_.data(), real_.size()};
  }
  /// Dense ±1 bipolar plane (dim doubles-worth of int8 per row) for the
  /// binary-query update slices of the mini-batch trainer.
  [[nodiscard]] std::span<const std::int8_t> bipolar_plane() const noexcept {
    return {bipolar_.data(), bipolar_.size()};
  }
  /// Packed bit plane (words_per_row() words per row) for the popcount bank
  /// kernels; padding bits of each row's final word are zero.
  [[nodiscard]] std::span<const std::uint64_t> binary_plane() const noexcept {
    return {binary_.data(), binary_.size()};
  }
  [[nodiscard]] std::span<const double> norms() const noexcept { return norm_; }
  [[nodiscard]] std::span<const double> norms2() const noexcept { return norm2_; }

 private:
  static EncodedDataset build(const hdc::Encoder& encoder,
                              std::span<const double> rows_flat, std::size_t num_rows,
                              std::vector<double> targets, std::size_t threads);

  std::size_t dim_ = 0;
  std::size_t words_ = 0;
  util::AlignedVector<double> real_;
  util::AlignedVector<std::int8_t> bipolar_;
  util::AlignedVector<std::uint64_t> binary_;
  std::vector<double> norm_;
  std::vector<double> norm2_;
  std::vector<double> targets_;
};

}  // namespace reghd::core
